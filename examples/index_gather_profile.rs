//! Profile a request/response workload: bale's index-gather on a
//! two-mailbox selector, showing how ActorProf separates the mailboxes in
//! the PAPI message trace and how the overall breakdown shifts when the
//! PROC side does real work.
//!
//! ```text
//! cargo run --release --example index_gather_profile
//! ```

use actorprof_suite::actorprof::report;
use actorprof_suite::actorprof_trace::{PapiConfig, TraceConfig};
use actorprof_suite::fabsp_apps::index_gather::{self, IndexGatherConfig};
use actorprof_suite::fabsp_shmem::Grid;

fn main() {
    let grid = Grid::new(2, 4).expect("grid");
    let mut config = IndexGatherConfig::new(grid);
    config.reads_per_pe = 10_000;
    config.table_size_per_pe = 2048;
    config.trace = TraceConfig::off()
        .with_logical()
        .with_overall()
        .with_papi(PapiConfig::case_study());

    let outcome = index_gather::run(&config).expect("index-gather");
    println!(
        "index-gather: {} reads answered and verified\n",
        outcome.correct_reads
    );

    // Per-mailbox view: mailbox 0 carries requests, mailbox 1 responses.
    for pe in [0usize, grid.n_pes() - 1] {
        println!("PAPI message trace lines for PE{pe} (dst, mailbox, sends, TOT_INS, LST_INS):");
        for r in outcome.bundle.papi_records(pe) {
            println!(
                "  -> PE{} mb{}  {:>6} sends  {:>9} ins  {:>8} ld/st",
                r.dst_pe, r.mailbox_id, r.num_sends, r.counters[0], r.counters[1]
            );
        }
    }

    println!();
    print!("{}", report::render(&outcome.bundle, "index-gather"));
}
