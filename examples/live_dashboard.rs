//! Live telemetry dashboard: subscribe to the always-on metrics registry
//! while a run is in flight and redraw an ASCII dashboard on every
//! observer tick — per-PE send rates, cumulative counters, and current
//! conveyor occupancy.
//!
//! ```text
//! cargo run --release --example live_dashboard
//! ```

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

use actorprof_suite::actorprof::{Counter, Frame, Profiler};
use actorprof_suite::actorprof_viz::ascii;
use actorprof_suite::fabsp_shmem::Grid;

const N: usize = 200_000; // messages per PE — long enough to see ticks
const TABLE: usize = 512;

fn main() {
    let grid = Grid::new(1, 4).expect("grid");
    let report = Profiler::new(grid)
        .observe_every(Duration::from_millis(5), move |frame: &Frame| {
            // Redraw in place: the dashboard is a handful of lines, so a
            // simple clear-and-print is enough for a terminal. A final
            // frame always fires when the run completes, so the last
            // redraw shows the full totals.
            print!("\x1b[2J\x1b[H{}", ascii::dashboard(frame));
        })
        .run(|pe, ctx| {
            let larray = Rc::new(RefCell::new(vec![0u64; TABLE]));
            let handler_array = Rc::clone(&larray);
            let mut actor = ctx
                .selector(1, move |_mb, idx: u64, _from, _ctx| {
                    handler_array.borrow_mut()[idx as usize % TABLE] += 1;
                })
                .expect("selector");
            actor
                .execute(pe, |main| {
                    for i in 0..N {
                        let dst = (i * 7 + main.rank()) % main.n_pes();
                        main.send(0, i as u64, dst).expect("send");
                    }
                    main.done(0).expect("done");
                })
                .expect("execute");
            let mass: u64 = larray.borrow().iter().sum();
            mass
        })
        .expect("profiled run");

    let total: u64 = report.results.iter().sum();
    assert_eq!(total, (N * 4) as u64, "every message handled");

    // The end-of-run snapshot carries the same totals the last frame saw.
    let snap = report.telemetry.expect("telemetry on by default");
    println!(
        "\ndone: {} messages handled on {} PEs ({} sends, {} yields counted)",
        total,
        report.bundle.n_pes(),
        snap.counter_total(Counter::ActorSends),
        snap.counter_total(Counter::ActorYields),
    );
}
