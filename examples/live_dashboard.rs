//! Glass-cockpit demo: fly a run live, then replay a crash.
//!
//! Part 1 runs a hash-table histogram under **continuous profiling** — the
//! overhead governor meters instrumentation cost online and ratchets span
//! sampling to stay inside a 5% budget — while the cockpit redraws on
//! every observer tick: master status, governor verdict, hottest phases
//! with `file:line` attribution, per-PE load bars, and a throughput
//! sparkline.
//!
//! Part 2 injects a PE kill with a flight-recorder directory configured,
//! recovers from checkpoint, and renders the post-mortem
//! `flightrec-pe*.json` dumps as a time-rebased replay.
//!
//! ```text
//! cargo run --release --example live_dashboard
//! ```

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Mutex;
use std::time::Duration;

use actorprof_suite::actorprof::{
    Counter, FlightDump, Frame, OverheadBudget, Profiler, RecoverySpec,
};
use actorprof_suite::actorprof_viz::cockpit::{Cockpit, CockpitConfig};
use actorprof_suite::fabsp_shmem::{FaultSpec, Grid};

const N: usize = 200_000; // messages per PE — long enough to see ticks
const TABLE: usize = 512;

fn histogram_run(p: Profiler, n: usize) -> actorprof_suite::actorprof::Report<u64> {
    p.run(move |pe, ctx| {
        let larray = Rc::new(RefCell::new(vec![0u64; TABLE]));
        let handler_array = Rc::clone(&larray);
        let mut actor = ctx
            .selector(1, move |_mb, idx: u64, _from, _ctx| {
                handler_array.borrow_mut()[idx as usize % TABLE] += 1;
            })
            .expect("selector");
        actor
            .execute(pe, |main| {
                for i in 0..n {
                    let dst = (i * 7 + main.rank()) % main.n_pes();
                    main.send(0, i as u64, dst).expect("send");
                }
                main.done(0).expect("done");
            })
            .expect("execute");
        let mass: u64 = larray.borrow().iter().sum();
        mass
    })
    .expect("profiled run")
}

fn main() {
    // ---- part 1: live cockpit over a continuous-profiling run ----------
    let cockpit = Mutex::new(Cockpit::new(CockpitConfig::default()));
    let report = histogram_run(
        Profiler::new(Grid::new(1, 4).expect("grid"))
            .continuous(OverheadBudget::pct(5.0))
            .observe_every(Duration::from_millis(5), move |frame: &Frame| {
                let mut cockpit = cockpit.lock().expect("cockpit");
                print!("{}{}", cockpit.clear(), cockpit.render(frame));
            }),
        N,
    );
    let total: u64 = report.results.iter().sum();
    assert_eq!(total, (N * 4) as u64, "every message handled");

    let snap = report.telemetry.expect("telemetry on by default");
    let governor = report.continuous.expect("continuous mode on");
    println!(
        "\ndone: {} messages on {} PEs ({} sends, {} spans kept)\n\
         governor: {} windows, {} ratchets, final stride {}, \
         final overhead {:.2}% (budget {:.1}%)",
        total,
        report.bundle.n_pes(),
        snap.counter_total(Counter::ActorSends),
        snap.counter_total(Counter::TelemetrySpans),
        governor.windows(),
        governor.ratchet_transitions(),
        governor.final_stride(),
        governor.final_overhead_pct(),
        governor.budget.pct,
    );

    // ---- part 2: crash, recover, replay the flight recorder ------------
    let dumps_dir = std::env::temp_dir().join(format!("actorprof-cockpit-{}", std::process::id()));
    let report = histogram_run(
        Profiler::new(Grid::single_node(2).expect("grid"))
            .flightrec_dir(&dumps_dir)
            .faults(FaultSpec::kill_pe(1, 0))
            .checkpoint_every(1)
            .recovery(RecoverySpec::restart(2)),
        2_000,
    );
    println!(
        "\nkilled pe1 once, recovered: {} restarts, {} wasted supersteps",
        report.recovery.restarts, report.recovery.wasted_supersteps
    );
    let dumps = FlightDump::load_dir(&dumps_dir).expect("load dumps");
    let cockpit = Cockpit::new(CockpitConfig::default());
    print!("{}", cockpit.render_replay(&dumps));
    let _ = std::fs::remove_dir_all(&dumps_dir);
}
