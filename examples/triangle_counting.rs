//! The paper's case study end-to-end: distributed triangle counting on an
//! R-MAT graph, 1D Cyclic vs 1D Range, profiled with ActorProf and
//! rendered as heatmaps/violins/stacked bars.
//!
//! ```text
//! cargo run --release --example triangle_counting            # scale 9
//! ACTORPROF_SCALE=12 cargo run --release --example triangle_counting
//! ```

use actorprof_suite::actorprof::compare::Comparison;
use actorprof_suite::actorprof::overall::OverallSummary;
use actorprof_suite::actorprof::stats::Imbalance;
use actorprof_suite::actorprof::{report, writer};
use actorprof_suite::actorprof_trace::TraceConfig;
use actorprof_suite::actorprof_viz::{ascii, heatmap, stacked, violin};
use actorprof_suite::fabsp_apps::triangle::{count_triangles, DistKind, TriangleConfig};
use actorprof_suite::fabsp_graph::edgelist::to_lower_triangular;
use actorprof_suite::fabsp_graph::rmat::{generate_edges, RmatParams};
use actorprof_suite::fabsp_graph::Csr;
use actorprof_suite::fabsp_shmem::Grid;

fn main() {
    let scale: u32 = std::env::var("ACTORPROF_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(9);
    let params = RmatParams::graph500(scale);
    let edges = to_lower_triangular(&generate_edges(&params));
    let l = Csr::from_edges(params.n_vertices(), &edges);
    println!(
        "R-MAT scale {scale}: {} vertices, {} lower-triangular edges, {} wedges",
        l.n(),
        l.nnz(),
        l.wedge_count()
    );

    let grid = Grid::new(2, 8).expect("grid"); // 2 nodes x 8 PEs
    let out_root = std::path::Path::new("target/actorprof-triangle");

    let mut speed = Vec::new();
    let mut bundles = Vec::new();
    for dist in [DistKind::Cyclic, DistKind::RangeByNnz] {
        println!("\n################ {} ################", dist.label());
        let config = TriangleConfig::new(grid)
            .with_dist(dist)
            .with_trace(TraceConfig::all());
        let outcome = count_triangles(&l, &config).expect("triangle run");
        println!(
            "triangles: {} (validated against the sequential reference)",
            outcome.triangles
        );

        // the two heatmaps of Figs 3/4 and 8/9
        let logical = outcome.bundle.logical_matrix().expect("logical");
        print!("{}", ascii::heatmap(&logical, "logical sends"));
        let sends = Imbalance::of(&logical.row_totals());
        let recvs = Imbalance::of(&logical.col_totals());
        println!(
            "send imbalance max/mean {:.2} (PE{}), recv {:.2} (PE{})",
            sends.max_over_mean, sends.argmax, recvs.max_over_mean, recvs.argmax
        );

        let tag = if dist == DistKind::Cyclic { "cyclic" } else { "range" };
        let dir = out_root.join(tag);
        writer::write_all(&dir, &outcome.bundle).expect("write traces");
        heatmap::render(&logical, &heatmap::HeatmapSpec::titled(dist.label()))
            .save(&dir.join("logical_heatmap.svg"))
            .expect("svg");
        let physical = outcome.bundle.physical_matrix(None).expect("physical");
        heatmap::render(&physical, &heatmap::HeatmapSpec::titled("physical buffers"))
            .save(&dir.join("physical_heatmap.svg"))
            .expect("svg");
        violin::render(
            &[
                violin::ViolinSeries::new("sends", logical.row_totals()),
                violin::ViolinSeries::new("recvs", logical.col_totals()),
            ],
            dist.label(),
        )
        .save(&dir.join("violin.svg"))
        .expect("svg");
        let records = outcome.bundle.overall_records().expect("overall");
        stacked::render(&records, stacked::StackedMode::Relative, dist.label())
            .save(&dir.join("overall.svg"))
            .expect("svg");

        let summary = OverallSummary::of(&records);
        println!(
            "regions: MAIN {:.1}% | COMM {:.1}% | PROC {:.1}% (bottleneck {})",
            summary.main.fraction * 100.0,
            summary.comm.fraction * 100.0,
            summary.proc.fraction * 100.0,
            summary.bottleneck
        );
        print!("{}", report::render(&outcome.bundle, dist.label()));
        println!("artifacts in {}", dir.display());
        speed.push((dist.label(), summary.max_total_cycles));
        bundles.push(outcome.bundle);
    }

    if let [cyclic, range] = &bundles[..] {
        println!();
        print!(
            "{}",
            Comparison::between("1D Cyclic", cyclic, "1D Range", range)
                .expect("same world")
                .render()
        );
    }

    if let [(_, cyc), (_, rng)] = speed[..] {
        println!(
            "\n1D Range vs 1D Cyclic total-time speedup: {:.2}x (paper: ~2x)",
            cyc as f64 / rng.max(1) as f64
        );
    }
}
