//! The paper's case study end-to-end: distributed triangle counting on an
//! R-MAT graph (Algorithm 1), 1D Cyclic vs 1D Range, profiled through the
//! `Profiler` facade and rendered as heatmaps/violins/stacked bars.
//!
//! ```text
//! cargo run --release --example triangle_counting            # scale 9
//! ACTORPROF_SCALE=12 cargo run --release --example triangle_counting
//! ```

use actorprof_suite::actorprof::compare::Comparison;
use actorprof_suite::actorprof::overall::OverallSummary;
use actorprof_suite::actorprof::stats::Imbalance;
use actorprof_suite::actorprof::Profiler;
use actorprof_suite::actorprof_viz::{ascii, heatmap, stacked, violin};
use actorprof_suite::fabsp_apps::triangle::DistKind;
use actorprof_suite::fabsp_graph::edgelist::to_lower_triangular;
use actorprof_suite::fabsp_graph::rmat::{generate_edges, RmatParams};
use actorprof_suite::fabsp_graph::{triangle_ref, Csr};
use actorprof_suite::fabsp_hwpc::Cost;
use actorprof_suite::fabsp_shmem::Grid;
use std::cell::RefCell;
use std::rc::Rc;

/// Pack a wedge `(j, k)` into the 8-byte message of Algorithm 1.
#[inline]
fn pack(j: u32, k: u32) -> u64 {
    ((j as u64) << 32) | k as u64
}

fn main() {
    let scale: u32 = std::env::var("ACTORPROF_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(9);
    let params = RmatParams::graph500(scale);
    let edges = to_lower_triangular(&generate_edges(&params));
    let l = Csr::from_edges(params.n_vertices(), &edges);
    println!(
        "R-MAT scale {scale}: {} vertices, {} lower-triangular edges, {} wedges",
        l.n(),
        l.nnz(),
        l.wedge_count()
    );
    let reference = triangle_ref::count_by_wedges(&l);

    let grid = Grid::new(2, 8).expect("grid"); // 2 nodes x 8 PEs
    let out_root = std::path::Path::new("target/actorprof-triangle");

    let mut speed = Vec::new();
    let mut bundles = Vec::new();
    for dist_kind in [DistKind::Cyclic, DistKind::RangeByNnz] {
        println!("\n################ {} ################", dist_kind.label());
        let dist = dist_kind.resolve(&l, grid.n_pes());
        let l_ref = &l;
        let dist_ref = &dist;

        // Algorithm 1 on the facade: one selector per PE; ActorProcess
        // counts a triangle when the probed edge exists.
        let report = Profiler::new(grid)
            .all_traces()
            .run(|pe, ctx| {
                let counter = Rc::new(RefCell::new(0u64));
                let c = Rc::clone(&counter);
                let mut actor = ctx
                    .selector(1, move |_mb, msg: u64, _from, _ctx| {
                        let j = (msg >> 32) as usize;
                        let k = (msg & 0xffff_ffff) as u32;
                        let probes = (l_ref.degree(j).max(1) as u64).ilog2() as u64 + 1;
                        Cost::instructions(10 + 6 * probes).charge();
                        if l_ref.has_edge(j, k) {
                            *c.borrow_mut() += 1;
                        }
                    })
                    .expect("selector");
                actor
                    .execute(pe, |main| {
                        let me = main.rank();
                        for i in dist_ref.rows_of(me, l_ref.n()) {
                            let row = l_ref.row(i);
                            for (a, &j) in row.iter().enumerate() {
                                let owner = dist_ref.owner(j as usize);
                                for &k in &row[..a] {
                                    main.send(0, pack(j, k), owner).expect("wedge send");
                                }
                            }
                        }
                        main.done(0).expect("done(0)");
                    })
                    .expect("triangle execute");
                let local = *counter.borrow();
                local
            })
            .expect("triangle run");

        let triangles: u64 = report.results.iter().sum();
        assert_eq!(triangles, reference, "validated against the sequential reference");
        println!("triangles: {triangles} (validated against the sequential reference)");

        // the two heatmaps of Figs 3/4 and 8/9
        let logical = report.bundle.logical_matrix().expect("logical");
        print!("{}", ascii::heatmap(&logical, "logical sends"));
        let sends = Imbalance::of(&logical.row_totals());
        let recvs = Imbalance::of(&logical.col_totals());
        println!(
            "send imbalance max/mean {:.2} (PE{}), recv {:.2} (PE{})",
            sends.max_over_mean, sends.argmax, recvs.max_over_mean, recvs.argmax
        );

        let tag = if dist_kind == DistKind::Cyclic { "cyclic" } else { "range" };
        let dir = out_root.join(tag);
        report.write_to(&dir).expect("write traces");
        heatmap::render(&logical, &heatmap::HeatmapSpec::titled(dist_kind.label()))
            .save(&dir.join("logical_heatmap.svg"))
            .expect("svg");
        let physical = report.bundle.physical_matrix(None).expect("physical");
        heatmap::render(&physical, &heatmap::HeatmapSpec::titled("physical buffers"))
            .save(&dir.join("physical_heatmap.svg"))
            .expect("svg");
        violin::render(
            &[
                violin::ViolinSeries::new("sends", logical.row_totals()),
                violin::ViolinSeries::new("recvs", logical.col_totals()),
            ],
            dist_kind.label(),
        )
        .save(&dir.join("violin.svg"))
        .expect("svg");
        let records = report.bundle.overall_records().expect("overall");
        stacked::render(&records, stacked::StackedMode::Relative, dist_kind.label())
            .save(&dir.join("overall.svg"))
            .expect("svg");

        let summary = OverallSummary::of(&records);
        println!(
            "regions: MAIN {:.1}% | COMM {:.1}% | PROC {:.1}% (bottleneck {})",
            summary.main.fraction * 100.0,
            summary.comm.fraction * 100.0,
            summary.proc.fraction * 100.0,
            summary.bottleneck
        );
        print!("{}", report.render(dist_kind.label()));
        println!("artifacts in {}", dir.display());
        speed.push((dist_kind.label(), summary.max_total_cycles));
        bundles.push(report.bundle);
    }

    if let [cyclic, range] = &bundles[..] {
        println!();
        print!(
            "{}",
            Comparison::between("1D Cyclic", cyclic, "1D Range", range)
                .expect("same world")
                .render()
        );
    }

    if let [(_, cyc), (_, rng)] = speed[..] {
        println!(
            "\n1D Range vs 1D Cyclic total-time speedup: {:.2}x (paper: ~2x)",
            cyc as f64 / rng.max(1) as f64
        );
    }
}
