//! The visualization pipeline on its own: generate traces with one run,
//! then — like the paper's `logical.py` / `physical.py` / `Overall.py`
//! scripts — read the files back from disk and render every chart. This
//! demonstrates that the on-disk formats round-trip and that charts can be
//! produced long after the run.
//!
//! ```text
//! cargo run --release --example visualize
//! ```

use actorprof_suite::actorprof::{reader, writer, Matrix};
use actorprof_suite::actorprof_trace::{SendType, TraceConfig};
use actorprof_suite::actorprof_viz::{ascii, bar, heatmap, stacked, violin};
use actorprof_suite::fabsp_apps::histogram::{self, HistogramConfig};
use actorprof_suite::fabsp_shmem::Grid;

fn main() {
    // 1. Produce traces.
    let grid = Grid::new(2, 3).expect("grid");
    let mut config = HistogramConfig::new(grid);
    config.updates_per_pe = 30_000;
    config.trace = TraceConfig::all();
    let outcome = histogram::run(&config).expect("histogram");
    let dir = std::path::PathBuf::from("target/actorprof-visualize");
    let files = writer::write_all(&dir, &outcome.bundle).expect("write traces");
    println!("wrote {} trace files to {}", files.len(), dir.display());

    // 2. Read them back from disk (nothing below touches the live bundle).
    let n_pes = grid.n_pes();
    let logical = reader::read_logical_matrix(&dir, n_pes).expect("read logical");
    let physical_records = reader::read_physical(&dir.join("physical.txt")).expect("read physical");
    let overall = reader::read_overall(&dir.join("overall.txt")).expect("read overall");

    // 3. Render, exactly as `actorprof-viz -l/-p/-lp/-s` would.
    heatmap::render(&logical, &heatmap::HeatmapSpec::titled("logical sends"))
        .save(&dir.join("logical_heatmap.svg"))
        .expect("svg");
    print!("{}", ascii::heatmap(&logical, "logical sends (from disk)"));

    let mut phys = Matrix::zeros(n_pes);
    for r in &physical_records {
        if r.send_type != SendType::NonblockProgress {
            phys.add(r.src_pe as usize, r.dst_pe as usize, 1);
        }
    }
    heatmap::render(&phys, &heatmap::HeatmapSpec::titled("physical buffers"))
        .save(&dir.join("physical_heatmap.svg"))
        .expect("svg");

    violin::render(
        &[
            violin::ViolinSeries::new("sends", logical.row_totals()),
            violin::ViolinSeries::new("recvs", logical.col_totals()),
        ],
        "logical quartiles",
    )
    .save(&dir.join("violin.svg"))
    .expect("svg");

    // PAPI bars from the per-PE csv files.
    let mut tot_ins = vec![0u64; n_pes];
    for (pe, v) in tot_ins.iter_mut().enumerate() {
        let path = dir.join(format!("PE{pe}_PAPI.csv"));
        let (_, records) = reader::read_papi(&path).expect("read papi");
        *v = records.iter().map(|r| r.counters[0]).sum();
    }
    bar::render(
        &tot_ins,
        &bar::BarSpec {
            title: "PAPI_TOT_INS vs PE".into(),
            log: true,
            ..Default::default()
        },
    )
    .save(&dir.join("papi_totins.svg"))
    .expect("svg");
    print!("{}", ascii::bars(&tot_ins, "PAPI_TOT_INS (send-path)", true));

    stacked::render(&overall, stacked::StackedMode::Relative, "overall (relative)")
        .save(&dir.join("overall_relative.svg"))
        .expect("svg");
    print!("{}", ascii::stacked(&overall, "overall"));

    println!("\ncharts written to {}", dir.display());
}
