//! Quickstart: the paper's Listings 1–2 (a remote-increment histogram)
//! with the full ActorProf pipeline — run traced through the `Profiler`
//! facade, print the analysis report, and write the paper-format trace
//! files.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::cell::RefCell;
use std::rc::Rc;

use actorprof_suite::actorprof::{PapiConfig, Profiler};
use actorprof_suite::fabsp_shmem::Grid;

const N: usize = 20_000; // messages per PE
const TABLE: usize = 512; // per-PE table slots

fn main() {
    // 1 "node" of 4 PEs; enable every ActorProf trace (the equivalent of
    // compiling with -DENABLE_TRACE -DENABLE_TCOMM_PROFILING
    // -DENABLE_TRACE_PHYSICAL).
    let grid = Grid::new(1, 4).expect("grid");
    let dir = std::path::Path::new("target/actorprof-quickstart");
    let report = Profiler::new(grid)
        .logical()
        .overall()
        .physical()
        .spans()
        .papi(PapiConfig::case_study())
        .trace_events_path(dir.join("trace_events.json"))
        .run(|pe, ctx| {
            // Listing 1, line 2: each PE allocates a local array.
            let larray = Rc::new(RefCell::new(vec![0u64; TABLE]));
            let handler_array = Rc::clone(&larray);

            // Listing 2: the actor class — one mailbox whose process()
            // does a plain (non-atomic) increment.
            let mut actor = ctx
                .selector(1, move |_mb, idx: u64, _from, _ctx| {
                    handler_array.borrow_mut()[idx as usize % TABLE] += 1;
                })
                .expect("selector");

            // Listing 1, lines 4-12: the finish body sends N async
            // messages. The workload is bucketed per destination and
            // submitted with the batched `send_slice` — one call stages a
            // whole same-destination run through the conveyor's
            // `push_slice` path. (Migrating from the per-item API is
            // mechanical: collect what you would have `send`-ed per
            // destination, then `send_slice` each bucket; `send` remains
            // available and both surfaces deliver identically.)
            actor
                .execute(pe, |main| {
                    let mut buckets: Vec<Vec<u64>> = vec![Vec::new(); main.n_pes()];
                    for i in 0..N {
                        let dst = (i * 7 + main.rank()) % main.n_pes();
                        buckets[dst].push(i as u64);
                    }
                    for (dst, msgs) in buckets.iter().enumerate() {
                        main.send_slice(0, msgs, dst).expect("send_slice");
                    }
                    main.done(0).expect("done");
                })
                .expect("execute");

            let mass: u64 = larray.borrow().iter().sum();
            mass
        })
        .expect("profiled run");

    let total: u64 = report.results.iter().sum();
    assert_eq!(total, (N * grid.n_pes()) as u64, "every message handled");
    println!(
        "histogram: {} messages delivered and handled across {} PEs\n",
        total,
        grid.n_pes()
    );

    print!("{}", report.render("quickstart histogram"));

    let files = report.write_to(dir).expect("write traces");
    println!("\ntrace files written to {}:", dir.display());
    for f in files {
        println!("  {f}");
    }
    println!(
        "\nPerfetto timeline (open at https://ui.perfetto.dev): {}",
        dir.join("trace_events.json").display()
    );
    println!("visualize with: cargo run -p actorprof-viz --bin actorprof-viz -- -s {} 4", dir.display());
}
