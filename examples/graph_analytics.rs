//! Graph-analytics tour: BFS and PageRank — two of the irregular
//! applications the paper's introduction motivates FA-BSP with — running
//! distributed on the actor runtime with ActorProf attached.
//!
//! ```text
//! cargo run --release --example graph_analytics
//! ```

use actorprof_suite::actorprof::report;
use actorprof_suite::actorprof_trace::TraceConfig;
use actorprof_suite::fabsp_apps::bfs::{self, symmetric_adjacency, BfsConfig};
use actorprof_suite::fabsp_apps::pagerank::{self, PageRankConfig};
use actorprof_suite::fabsp_graph::edgelist::to_lower_triangular;
use actorprof_suite::fabsp_graph::rmat::{generate_edges, RmatParams};
use actorprof_suite::fabsp_shmem::Grid;

fn main() {
    let scale: u32 = std::env::var("ACTORPROF_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(9);
    let params = RmatParams::graph500(scale);
    let lower = to_lower_triangular(&generate_edges(&params));
    let adj = symmetric_adjacency(params.n_vertices(), &lower);
    let grid = Grid::new(2, 4).expect("grid");
    println!(
        "R-MAT scale {scale}: {} vertices, {} directed adjacency entries, {} PEs\n",
        adj.n(),
        adj.nnz(),
        grid.n_pes()
    );

    // ---- BFS ----
    let mut cfg = BfsConfig::new(grid);
    cfg.trace = TraceConfig::off().with_logical().with_overall();
    let out = bfs::run(&adj, &cfg).expect("bfs");
    println!(
        "BFS from vertex 0: reached {}/{} vertices in {} supersteps \
         (validated against sequential BFS)",
        out.reached,
        adj.n(),
        out.levels
    );
    let mut histogram = std::collections::BTreeMap::new();
    for &d in &out.distances {
        if d != bfs::UNREACHED {
            *histogram.entry(d).or_insert(0u32) += 1;
        }
    }
    println!("distance histogram: {histogram:?}");
    print!("{}", report::render(&out.bundle, "BFS (final superstep)"));

    // ---- PageRank ----
    let mut cfg = PageRankConfig::new(grid);
    cfg.iterations = 10;
    cfg.trace = TraceConfig::off().with_logical().with_overall();
    let out = pagerank::run(&adj, &cfg).expect("pagerank");
    let mut top: Vec<(usize, f64)> = out.ranks.iter().copied().enumerate().collect();
    top.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!(
        "\nPageRank (10 iterations, L1 vs sequential reference: {:.2e})",
        out.l1_vs_reference
    );
    println!("top-5 vertices by rank:");
    for (v, r) in top.iter().take(5) {
        println!("  v{v:<6} {r:.6}");
    }
    print!("{}", report::render(&out.bundle, "PageRank (final iteration)"));
}
