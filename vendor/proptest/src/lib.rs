//! Minimal `proptest`-compatible shim.
//!
//! Registry access is unavailable in the build environment, so the real
//! `proptest` cannot be fetched. This crate implements the subset of its
//! API the workspace's property tests use:
//!
//! - the [`proptest!`] macro (multiple `#[test]` fns, `pat in strategy`
//!   bindings, optional `#![proptest_config(..)]`),
//! - [`strategy::Strategy`] with `prop_map` / `prop_flat_map`,
//! - ranges, tuples, and [`strategy::Just`] as strategies,
//! - [`fn@collection::vec`],
//! - [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test seed (reproducible runs, overridable with the
//! `PROPTEST_BASE_SEED` environment variable) and failing cases are
//! reported but **not shrunk**.

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Value generator. Unlike upstream there is no value tree — we only
    /// generate, never shrink.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut StdRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    rng.gen_range(self.start as u64..self.end as u64) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    let (lo, hi) = (*self.start() as u64, *self.end() as u64);
                    assert!(lo <= hi, "empty range strategy");
                    if lo == hi {
                        return lo as $t;
                    }
                    rng.gen_range(lo..hi + 1) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, G);
}

pub mod collection {
    use super::strategy::Strategy;

    /// Length specification for [`fn@vec`]: a fixed size or a range of sizes.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A strategy for `Vec`s whose length lies in `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut rand::rngs::StdRng) -> Vec<S::Value> {
            use rand::Rng;
            let len = if self.size.lo == self.size.hi_inclusive {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo as u64..self.size.hi_inclusive as u64 + 1) as usize
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Per-`proptest!` configuration. Only `cases` and `base_seed` are
    /// honoured; the struct-update syntax `.. ProptestConfig::default()`
    /// works as in upstream.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
        /// Base seed mixed into every case's RNG. Defaults to 0, can be
        /// swept via the `PROPTEST_BASE_SEED` environment variable.
        pub base_seed: u64,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig {
                cases: 64,
                base_seed: 0,
            }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig {
                cases,
                ..ProptestConfig::default()
            }
        }
    }

    /// Drives one `proptest!` test: seeds each case deterministically from
    /// the test name, the case index, and the base seed.
    pub struct Runner {
        config: ProptestConfig,
        name_hash: u64,
        env_seed: u64,
    }

    impl Runner {
        pub fn new(config: ProptestConfig, name: &str) -> Runner {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            let env_seed = std::env::var("PROPTEST_BASE_SEED")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(0);
            Runner {
                config,
                name_hash: h,
                env_seed,
            }
        }

        pub fn cases(&self) -> u32 {
            self.config.cases
        }

        pub fn case_seed(&self, case: u32) -> u64 {
            self.name_hash
                .wrapping_add(case as u64)
                .wrapping_add(self.config.base_seed.rotate_left(17))
                .wrapping_add(self.env_seed.rotate_left(33))
        }

        pub fn rng_for_case(&self, case: u32) -> StdRng {
            StdRng::seed_from_u64(self.case_seed(case))
        }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert inside a proptest body. Without shrinking there is nothing to
/// return early for, so this is `assert!` with proptest's name.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The `proptest!` block: accepts an optional
/// `#![proptest_config(<expr>)]` followed by `#[test]` functions whose
/// arguments are `pattern in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let runner = $crate::test_runner::Runner::new(config, stringify!($name));
            for case in 0..runner.cases() {
                let mut rng = runner.rng_for_case(case);
                let ($($pat,)+) = (
                    $($crate::strategy::Strategy::generate(&($strat), &mut rng),)+
                );
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| $body));
                if let Err(payload) = outcome {
                    eprintln!(
                        "proptest {}: case {}/{} failed (case seed {:#x}); rerun is deterministic",
                        stringify!($name),
                        case + 1,
                        runner.cases(),
                        runner.case_seed(case),
                    );
                    std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone)]
    struct Combo {
        n: usize,
        values: Vec<u32>,
    }

    fn arb_combo() -> impl Strategy<Value = Combo> {
        (2usize..=5).prop_flat_map(|n| {
            (Just(n), collection::vec(0u32..100, n..=n))
                .prop_map(|(n, values)| Combo { n, values })
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, .. ProptestConfig::default() })]

        /// Doc comments and config blocks parse; dependent sizes hold.
        #[test]
        fn flat_map_links_length(combo in arb_combo()) {
            prop_assert_eq!(combo.values.len(), combo.n);
            prop_assert!(combo.values.iter().all(|&v| v < 100));
        }

        #[test]
        fn tuples_and_ranges((a, b) in (1u64..10, 5usize..=6), c in 0u32..3) {
            prop_assert!((1..10).contains(&a));
            prop_assert!(b == 5 || b == 6);
            prop_assert!(c < 3);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(v in collection::vec(0u64..1000, 0..20)) {
            prop_assert!(v.len() < 20);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        let runner =
            crate::test_runner::Runner::new(ProptestConfig::with_cases(4), "determinism");
        let s = collection::vec(0u32..1_000_000, 3..10);
        let a: Vec<_> = (0..4).map(|c| s.generate(&mut runner.rng_for_case(c))).collect();
        let b: Vec<_> = (0..4).map(|c| s.generate(&mut runner.rng_for_case(c))).collect();
        assert_eq!(a, b);
    }
}
