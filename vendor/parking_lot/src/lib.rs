//! Minimal `parking_lot`-compatible shim over `std::sync`.
//!
//! The workspace is built in environments without registry access, so the
//! real `parking_lot` cannot be fetched. This shim provides the exact API
//! surface the workspace uses — [`Mutex`] (lock without a `Result`) and
//! [`Condvar`] (wait on `&mut MutexGuard`) — by wrapping `std::sync` and
//! treating poisoning as "keep going": a panicking PE thread is handled at
//! a higher level (world poisoning), so lock poisoning carries no extra
//! information here.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

#[cfg(debug_assertions)]
thread_local! {
    static LOCK_ACQUISITIONS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

#[inline]
fn note_acquisition() {
    #[cfg(debug_assertions)]
    LOCK_ACQUISITIONS.with(|c| c.set(c.get() + 1));
}

/// Number of mutex acquisitions (successful `lock`/`try_lock`) performed by
/// the *calling thread* since it started. Debug builds only; release builds
/// always return 0.
///
/// This exists so lock-freedom claims are testable: code that must not take
/// a mutex (e.g. the conveyor's per-message hot path) samples the counter
/// before and after and asserts a zero delta.
#[inline]
pub fn lock_acquisitions() -> u64 {
    #[cfg(debug_assertions)]
    {
        LOCK_ACQUISITIONS.with(|c| c.get())
    }
    #[cfg(not(debug_assertions))]
    {
        0
    }
}

/// A mutex whose `lock` never returns a `Result` (parking_lot semantics).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]; the `Option` dance lets [`Condvar::wait`]
/// temporarily take the inner std guard by `&mut`.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        note_acquisition();
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => {
                note_acquisition();
                Some(MutexGuard { inner: Some(g) })
            }
            Err(std::sync::TryLockError::Poisoned(p)) => {
                note_acquisition();
                Some(MutexGuard {
                    inner: Some(p.into_inner()),
                })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

/// A condition variable that waits on `&mut MutexGuard` (parking_lot
/// semantics) instead of consuming and returning the guard.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard already taken");
        guard.inner = Some(
            self.inner
                .wait(std_guard)
                .unwrap_or_else(PoisonError::into_inner),
        );
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard already taken");
        let (std_guard, res) = match self.inner.wait_timeout(std_guard, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(std_guard);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Result of [`Condvar::wait_for`].
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        thread::sleep(std::time::Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        h.join().unwrap();
    }

    #[test]
    #[cfg(debug_assertions)]
    fn acquisition_counter_is_per_thread_and_counts_locks() {
        let before = lock_acquisitions();
        let m = Mutex::new(0u8);
        drop(m.lock());
        assert!(m.try_lock().is_some());
        assert_eq!(lock_acquisitions(), before + 2);
        // a failed try_lock is not an acquisition
        let _held = m.lock();
        let mid = lock_acquisitions();
        assert!(m.try_lock().is_none());
        assert_eq!(lock_acquisitions(), mid);
        // other threads' locks don't bleed into this thread's count
        thread::spawn(|| {
            let m = Mutex::new(());
            drop(m.lock());
        })
        .join()
        .unwrap();
        assert_eq!(lock_acquisitions(), mid);
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(1u32));
        let m2 = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std mutex");
        })
        .join();
        // parking_lot semantics: lock still works after a panicking holder
        assert_eq!(*m.lock(), 1);
    }
}
