//! Minimal `rand 0.8`-compatible shim.
//!
//! Registry access is unavailable in the build environment, so the real
//! `rand` cannot be fetched. This crate implements exactly the API surface
//! the workspace uses — `StdRng::seed_from_u64`, `Rng::{gen, gen_range,
//! gen_bool}`, and `seq::SliceRandom::shuffle` — on top of a xoshiro256**
//! generator seeded via splitmix64 (the same seeding scheme the real
//! `rand_xoshiro` uses).
//!
//! Streams are **not** bit-compatible with upstream `rand`; everything in
//! the workspace that consumes randomness treats the stream as opaque and
//! only relies on determinism-given-seed, which this shim guarantees.

/// Core 64-bit generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 random mantissa bits.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Types usable as [`Rng::gen_range`] bounds.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_below<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_below<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                let span = (high - low) as u64;
                // Debiased multiply-shift (Lemire); span == 0 is rejected
                // by the gen_range assert before we get here.
                let mut x = rng.next_u64();
                let mut m = (x as u128) * (span as u128);
                let mut lo = m as u64;
                if lo < span {
                    let t = span.wrapping_neg() % span;
                    while lo < t {
                        x = rng.next_u64();
                        m = (x as u128) * (span as u128);
                        lo = m as u64;
                    }
                }
                low + (m >> 64) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u64, usize, u32);

/// The subset of `rand::Rng` the workspace uses.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        assert!(range.start < range.end, "gen_range on an empty range");
        T::sample_below(self, range.start, range.end)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding interface (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** seeded by splitmix64 — deterministic, fast, and good
    /// enough for workload generation (not cryptographic).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// The `shuffle` subset of `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            seen[v - 3] = true;
        }
        assert!(seen.iter().all(|&s| s), "1000 draws cover 7 values");
        let v = rng.gen_range(0u64..1);
        assert_eq!(v, 0);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut StdRng::seed_from_u64(9));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements almost surely move");
    }
}
