//! Minimal `criterion`-compatible harness.
//!
//! Registry access is unavailable in the build environment, so the real
//! `criterion` cannot be fetched. This crate keeps the workspace's
//! `[[bench]]` targets compiling and runnable: it implements the subset of
//! criterion's API they use, measures with simple adaptive timing loops,
//! and prints `name: median time [min .. max]` lines plus derived
//! throughput. No statistics engine, plots, or baseline comparisons.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Unit for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A benchmark identifier; `from_parameter` mirrors criterion's API.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Passed to the benchmark closure; runs and times the workload.
pub struct Bencher {
    samples: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    /// Per-sample durations of the last run, each normalized per iteration.
    results: Vec<Duration>,
}

impl Bencher {
    /// Time `routine` per call (criterion's `iter`).
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        self.iter_custom(|iters| {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            start.elapsed()
        });
    }

    /// Let the routine time itself over `iters` iterations (criterion's
    /// `iter_custom`).
    pub fn iter_custom(&mut self, mut routine: impl FnMut(u64) -> Duration) {
        // Warm-up and iteration-count calibration.
        let mut iters: u64 = 1;
        let warm_start = Instant::now();
        let mut per_iter = Duration::from_millis(1);
        while warm_start.elapsed() < self.warm_up_time {
            let d = routine(iters);
            per_iter = d.checked_div(iters as u32).unwrap_or(Duration::ZERO);
            if d < Duration::from_millis(1) {
                iters = iters.saturating_mul(2);
            }
        }
        // Aim to fit `samples` samples into the measurement window.
        let budget_per_sample = self.measurement_time / self.samples as u32;
        if per_iter > Duration::ZERO {
            let fit = (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)) as u64;
            iters = fit.clamp(1, 1_000_000_000);
        }
        self.results.clear();
        let run_start = Instant::now();
        for _ in 0..self.samples {
            let d = routine(iters);
            self.results
                .push(d.checked_div(iters as u32).unwrap_or(Duration::ZERO));
            if run_start.elapsed() > self.measurement_time.saturating_mul(2) {
                break; // workload much slower than budgeted; stop early
            }
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.measurement_time = t;
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher {
            samples: self.criterion.sample_size,
            measurement_time: self.criterion.measurement_time,
            warm_up_time: self.criterion.warm_up_time,
            results: Vec::new(),
        };
        f(&mut bencher);
        let mut sorted = bencher.results.clone();
        sorted.sort();
        let (min, median, max) = if sorted.is_empty() {
            (Duration::ZERO, Duration::ZERO, Duration::ZERO)
        } else {
            (sorted[0], sorted[sorted.len() / 2], sorted[sorted.len() - 1])
        };
        let mut line = format!(
            "{}/{}: time [{:?} {:?} {:?}]",
            self.name, id.id, min, median, max
        );
        if let Some(tp) = self.throughput {
            let per_sec = |n: u64| -> f64 {
                if median.is_zero() {
                    f64::INFINITY
                } else {
                    n as f64 / median.as_secs_f64()
                }
            };
            match tp {
                Throughput::Elements(n) => {
                    line.push_str(&format!(" thrpt {:.3} Melem/s", per_sec(n) / 1e6));
                }
                Throughput::Bytes(n) => {
                    line.push_str(&format!(" thrpt {:.3} MiB/s", per_sec(n) / (1024.0 * 1024.0)));
                }
            }
        }
        println!("{line}");
        self
    }

    pub fn finish(&mut self) {}
}

/// Harness configuration + entry point, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Criterion {
        self.measurement_time = t;
        self
    }

    pub fn warm_up_time(mut self, t: Duration) -> Criterion {
        self.warm_up_time = t;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            throughput: None,
        }
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Criterion {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }

    /// Called by `criterion_main!` after all groups ran.
    pub fn final_summary(&mut self) {}
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` runs bench targets with `--test`; benches only
            // measure under `cargo bench` (criterion behaves the same way).
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_reports_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(10));
        let mut ran = false;
        g.bench_function(BenchmarkId::from_parameter("noop"), |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        g.finish();
        assert!(ran);
    }

    #[test]
    fn iter_custom_uses_reported_durations() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1));
        c.bench_function("custom", |b| {
            b.iter_custom(|iters| Duration::from_nanos(iters * 10))
        });
    }
}
