//! The lint gate: the checked-in tree must be clean, and seeded violations
//! of each class must produce findings — so the lint cannot silently rot
//! into a yes-machine.

use std::path::{Path, PathBuf};

use fabsp_analyzer::{lint_source, lint_tree, load_policy, Policy};

fn workspace_root() -> PathBuf {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    fabsp_analyzer::find_workspace_root(here).expect("workspace root above CARGO_MANIFEST_DIR")
}

#[test]
fn checked_in_tree_is_clean() {
    let root = workspace_root();
    let policy = load_policy(&root).expect("policy.toml parses");
    let findings = lint_tree(&root, &policy).expect("tree scans");
    assert!(
        findings.is_empty(),
        "the workspace must lint clean; findings:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn checked_in_policy_mentions_only_real_files() {
    // A policy row pointing at a renamed/deleted file is dead weight that
    // silently allowlists nothing; keep the table honest.
    let root = workspace_root();
    let policy = load_policy(&root).expect("policy.toml parses");
    for file in policy
        .lock_files
        .iter()
        .chain(policy.ordering.iter().map(|r| &r.file))
    {
        assert!(
            root.join(file).is_file(),
            "policy.toml references `{file}`, which does not exist"
        );
    }
}

fn real_policy() -> Policy {
    load_policy(&workspace_root()).expect("policy.toml parses")
}

#[test]
fn seeded_undocumented_unsafe_is_flagged() {
    let src = "\
pub fn f(p: *const u8) -> u8 {
    unsafe { *p }
}
";
    let findings = lint_source("crates/shmem/src/seeded.rs", src, &real_policy());
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].lint, "undocumented-unsafe");
    assert_eq!(findings[0].line, 2);
}

#[test]
fn seeded_unlisted_ordering_is_flagged() {
    // A new Relaxed in ring.rs, outside any policied symbol, must fail.
    let src = "\
fn sneak(x: &std::sync::atomic::AtomicU64) -> u64 {
    x.load(Ordering::Relaxed)
}
";
    let findings = lint_source("crates/shmem/src/ring.rs", src, &real_policy());
    assert!(
        findings.iter().any(|f| f.lint == "unlisted-ordering" && f.line == 2),
        "{findings:?}"
    );
}

#[test]
fn seeded_stray_mutex_is_flagged() {
    let src = "use parking_lot::Mutex;\nstatic M: Mutex<u32> = Mutex::new(0);\n";
    let findings = lint_source("crates/conveyors/src/convey.rs", src, &real_policy());
    assert!(
        findings.iter().any(|f| f.lint == "lock-outside-allowlist"),
        "{findings:?}"
    );
    // ...while the same text inside an allowlisted file is fine.
    let findings = lint_source("crates/shmem/src/sync.rs", src, &real_policy());
    assert!(
        !findings.iter().any(|f| f.lint == "lock-outside-allowlist"),
        "{findings:?}"
    );
}

#[test]
fn seeded_violation_fails_a_full_tree_scan() {
    // End-to-end through lint_tree: copy a tiny tree into a temp dir,
    // plant one violation, and watch the scan fail with file:line.
    let dir = std::env::temp_dir().join(format!(
        "fabsp-analyzer-test-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let src_dir = dir.join("crates/foo/src");
    std::fs::create_dir_all(&src_dir).unwrap();
    std::fs::write(
        src_dir.join("lib.rs"),
        "#![forbid(unsafe_code)]\npub mod bar;\n",
    )
    .unwrap();
    std::fs::write(
        src_dir.join("bar.rs"),
        "pub fn f(x: &std::sync::atomic::AtomicU64) {\n    x.store(1, Ordering::Relaxed);\n}\n",
    )
    .unwrap();

    let findings = lint_tree(&dir, &Policy::default()).unwrap();
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].file, "crates/foo/src/bar.rs");
    assert_eq!(findings[0].line, 2);
    assert_eq!(findings[0].lint, "unlisted-ordering");

    std::fs::remove_dir_all(&dir).ok();
}
