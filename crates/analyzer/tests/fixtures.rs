//! The fixture gate: every lint class the analyzer can emit is seeded in
//! `crates/analyzer/fixtures/`, and the report over that corpus is golden
//! (`fixtures/expected.txt`, byte-stable). Regenerate after an intentional
//! change with:
//!
//! ```text
//! FABSP_UPDATE_GOLDEN=1 cargo test -p fabsp-analyzer --test fixtures
//! ```

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use fabsp_analyzer::policy::Policy;
use fabsp_analyzer::sarif;

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<String>) {
    for entry in std::fs::read_dir(dir).expect("fixtures dir reads") {
        let path = entry.expect("dir entry").path();
        if path.is_dir() {
            walk(root, &path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .expect("walked path is under root")
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push(rel);
        }
    }
}

fn corpus_findings() -> Vec<fabsp_analyzer::Finding> {
    let root = fixtures_root();
    let policy_text =
        std::fs::read_to_string(root.join("policy.toml")).expect("fixture policy reads");
    let policy = Policy::parse(&policy_text).expect("fixture policy parses");
    let mut files = Vec::new();
    walk(&root, &root, &mut files);
    files.sort();
    fabsp_analyzer::lint_files(&root, &files, &policy).expect("fixture scan")
}

fn render(findings: &[fabsp_analyzer::Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!("{f}\n"));
    }
    out
}

#[test]
fn fixture_corpus_matches_golden() {
    let report = render(&corpus_findings());
    let golden_path = fixtures_root().join("expected.txt");
    if std::env::var_os("FABSP_UPDATE_GOLDEN").is_some() {
        std::fs::write(&golden_path, &report).expect("golden writes");
        return;
    }
    let golden = std::fs::read_to_string(&golden_path).expect(
        "fixtures/expected.txt missing — run with FABSP_UPDATE_GOLDEN=1 to create it",
    );
    assert_eq!(
        report, golden,
        "fixture report drifted from the golden file; if the change is \
         intentional, regenerate with FABSP_UPDATE_GOLDEN=1"
    );
}

#[test]
fn every_violation_class_is_seeded() {
    // The corpus must keep exercising every rule the analyzer can emit —
    // a rule with no seeded violation is a rule that can silently die.
    let found: BTreeSet<&str> = corpus_findings().iter().map(|f| f.lint).collect();
    let required = [
        "undocumented-unsafe",
        "lock-outside-allowlist",
        "unlisted-ordering",
        "ordering-use-import",
        "static-mut",
        "ptr-cast",
        "missing-forbid",
        "push-without-rearm",
        "pull-outside-drain",
        "rearm-before-terminate",
        "checkpoint-not-quiesced",
        "nbi-read-before-quiet",
        "blocking-in-handler",
        "orphaned-release",
        "orphaned-acquire",
        "bad-waiver",
    ];
    for rule in required {
        assert!(found.contains(rule), "no seeded violation exercises `{rule}`");
    }
    // ...and the SARIF driver declares each of them.
    for rule in required {
        assert!(
            sarif::RULES.iter().any(|(id, _)| *id == rule),
            "SARIF driver does not declare `{rule}`"
        );
    }
}

#[test]
fn every_finding_carries_a_fix_it_hint() {
    for f in corpus_findings() {
        assert!(
            !f.hint.is_empty(),
            "{}:{} [{}] has no fix-it hint",
            f.file,
            f.line,
            f.lint
        );
    }
}

#[test]
fn waived_sites_are_suppressed_and_paired_symbols_stay_silent() {
    let findings = corpus_findings();
    // The justified waiver in waivers/waived.rs suppresses its violation:
    // only the *unjustified* fn's findings remain for that file.
    let waiver_lints: Vec<&str> = findings
        .iter()
        .filter(|f| f.file == "waivers/waived.rs")
        .map(|f| f.lint)
        .collect();
    assert!(
        !waiver_lints.contains(&"push-without-rearm"),
        "justified waiver failed to suppress: {waiver_lints:?}"
    );
    assert!(waiver_lints.contains(&"bad-waiver"));
    assert!(waiver_lints.contains(&"pull-outside-drain"));
    // The properly paired `ready` symbol never flags.
    assert!(
        !findings
            .iter()
            .any(|f| f.file == "pairing/orphans.rs" && f.message.contains("`ready")),
        "paired symbol flagged"
    );
}

#[test]
fn sarif_report_over_the_corpus_is_valid() {
    let findings = corpus_findings();
    let log = sarif::emit(&findings);
    let doc = sarif::json_parse(&log).expect("SARIF output is well-formed JSON");
    assert_eq!(
        doc.get("version").and_then(sarif::Json::as_str),
        Some("2.1.0")
    );
    let run = doc
        .get("runs")
        .and_then(|r| r.idx(0))
        .expect("one run");
    let results = run
        .get("results")
        .and_then(sarif::Json::as_arr)
        .expect("results array");
    assert_eq!(results.len(), findings.len());
    let declared: Vec<&str> = run
        .get("tool")
        .and_then(|t| t.get("driver"))
        .and_then(|d| d.get("rules"))
        .and_then(sarif::Json::as_arr)
        .expect("driver rules")
        .iter()
        .filter_map(|r| r.get("id").and_then(sarif::Json::as_str))
        .collect();
    for (r, f) in results.iter().zip(&findings) {
        let id = r.get("ruleId").and_then(sarif::Json::as_str).expect("ruleId");
        assert_eq!(id, f.lint);
        assert!(declared.contains(&id), "rule `{id}` not declared by the driver");
        let loc = r
            .get("locations")
            .and_then(|l| l.idx(0))
            .and_then(|l| l.get("physicalLocation"))
            .expect("physicalLocation");
        assert_eq!(
            loc.get("artifactLocation")
                .and_then(|a| a.get("uri"))
                .and_then(sarif::Json::as_str),
            Some(f.file.as_str())
        );
        assert_eq!(
            loc.get("region")
                .and_then(|reg| reg.get("startLine"))
                .and_then(sarif::Json::as_num),
            Some(f.line as f64)
        );
    }
}
