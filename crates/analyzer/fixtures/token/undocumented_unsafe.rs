//! Seeded violation: an `unsafe` block with no SAFETY comment.

pub fn read(p: *const u8) -> u8 {
    unsafe { *p }
}

pub fn read_checked(p: *const u8) -> u8 {
    // SAFETY: documented sites stay silent — null-checked by the caller.
    unsafe { *p }
}
