//! Seeded violation: lock types outside the allowlist.

use std::sync::Mutex;

pub fn hold(m: &Mutex<u32>) -> u32 {
    *m.lock().unwrap()
}

pub fn chan() {
    let (_tx, _rx) = std::sync::mpsc::channel::<u8>();
}
