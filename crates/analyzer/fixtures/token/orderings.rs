//! Seeded violations: an `Ordering` site with no policy entry, and a
//! variant import that would hide sites from the policy table.

use std::sync::atomic::Ordering::Relaxed;

pub fn sneak(x: &std::sync::atomic::AtomicU64) -> u64 {
    x.load(Ordering::Relaxed)
}
