//! Seeded violations: forbidden global mutability and a raw-pointer cast
//! outside the shmem/hwpc allowlist.

static mut COUNTER: u64 = 0;

pub fn peek(v: &u64) -> *const u64 {
    v as *const u64
}
