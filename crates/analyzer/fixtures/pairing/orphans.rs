//! Seeded violations: dangling happens-before edges. `seq` publishes with
//! Release but nothing ever Acquires it; `gate` Acquires what nothing
//! publishes. `ready` is properly paired and must stay silent.

pub fn publish_only(cell: &Slot) {
    cell.seq.store(1, Ordering::Release);
}

pub fn consume_only(cell: &Slot) -> u64 {
    cell.gate.load(Ordering::Acquire)
}

pub fn paired_writer(cell: &Slot) {
    cell.ready.store(1, Ordering::Release);
}

pub fn paired_reader(cell: &Slot) -> u64 {
    cell.ready.load(Ordering::Acquire)
}
