//! Seeded violation: a crate root that never pins its unsafe posture.

pub fn noop() {}
