//! Waiver mechanics: a justified waiver silences its finding; a bare
//! waiver is itself a violation (and suppresses nothing).

fn justified(pe: &Pe) {
    let mut c = Conveyor::<u64>::new(pe, opts).unwrap();
    c.push(pe, 1, 0).unwrap();
    while c.advance(pe, true) {}
    // analyzer: allow(push-without-rearm): deliberate litmus — the runtime must reject this push
    c.push(pe, 2, 0).unwrap();
}

fn unjustified(pe: &Pe) {
    let mut c = Conveyor::<u64>::new(pe, opts).unwrap();
    while c.advance(pe, true) {}
    // analyzer: allow(pull-outside-drain)
    let _ = c.pull();
}
