//! Seeded violations: mailbox handlers that reach blocking calls —
//! directly, and transitively through a same-file free function.

fn direct(pe: &Pe) {
    prof.selector(1, move |_mb, _msg: u64, _from, _ctx| {
        let _g = state.lock();
    });
}

fn slow_path() {
    bus.lock();
}

fn indirect(pe: &Pe) {
    let _s = Selector::new(pe, 1, cfg, move |_mb, _m: u64, _from, _ctx| {
        slow_path();
    });
}
