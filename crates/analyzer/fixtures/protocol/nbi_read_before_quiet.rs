//! Seeded violation: reading a symmetric array while a non-blocking put
//! to the same array may still be in flight.

fn racy_read(pe: &Pe) {
    let sym = pe.alloc_sym::<u64>(1);
    sym.put_nbi(pe, 1, 0, &[42]).unwrap();
    let _v = sym.local_get(pe, 0);
}
