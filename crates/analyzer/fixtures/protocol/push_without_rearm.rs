//! Seeded violation: push after the exchange terminated, with no re-arm.

fn superstep(pe: &Pe) {
    let mut c = Conveyor::<u64>::new(pe, opts).unwrap();
    c.push(pe, 1, 0).unwrap();
    while c.advance(pe, true) {
        while c.pull().is_some() {}
    }
    c.push(pe, 2, 0).unwrap();
}
