//! Seeded violation: a checkpoint cut that is not dominated by a quiet —
//! the put is pending on one path into the cut.

fn cut(pe: &Pe) {
    let sym = pe.alloc_sym::<u64>(1);
    if pe.rank() == 0 {
        sym.put_nbi(pe, 1, 0, &[5]).unwrap();
    }
    let _snap = pe.checkpoint();
}
