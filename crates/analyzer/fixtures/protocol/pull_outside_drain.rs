//! Seeded violations: pulls outside the advance/drain loop — once before
//! any advance, once after termination.

fn before_advance(pe: &Pe) {
    let mut c = Conveyor::<u64>::new(pe, opts).unwrap();
    c.push(pe, 7, 0).unwrap();
    let _ = c.pull();
}

fn after_termination(pe: &Pe) {
    let mut c = Conveyor::<u64>::new(pe, opts).unwrap();
    while c.advance(pe, true) {}
    let _ = c.pull();
}
