//! Seeded violation: collective reset while the exchange is still live.

fn eager_reset(pe: &Pe) {
    let mut c = Conveyor::<u64>::new(pe, opts).unwrap();
    c.push(pe, 1, 0).unwrap();
    c.reset(pe);
}
