//! CLI for the concurrency lint pass.
//!
//! ```text
//! fabsp-analyzer lint        # lint the workspace; exit 1 on findings
//! fabsp-analyzer orderings   # dump Ordering sites as policy.toml skeleton
//! ```

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: fabsp-analyzer <lint|orderings> [--root DIR]\n\
         \n\
         lint       run the concurrency lint pass over the workspace\n\
         orderings  print every Ordering::* site as [[ordering]] skeleton\n\
         --root DIR workspace root (default: walk up from the cwd)"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        return usage();
    };
    let mut root: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|cwd| fabsp_analyzer::find_workspace_root(&cwd))
    }) {
        Some(root) => root,
        None => {
            eprintln!("fabsp-analyzer: cannot locate the workspace root (pass --root)");
            return ExitCode::FAILURE;
        }
    };

    match cmd.as_str() {
        "lint" => {
            let policy = match fabsp_analyzer::load_policy(&root) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("fabsp-analyzer: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let findings = match fabsp_analyzer::lint_tree(&root, &policy) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("fabsp-analyzer: scan failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if findings.is_empty() {
                println!("fabsp-analyzer: clean");
                ExitCode::SUCCESS
            } else {
                for f in &findings {
                    println!("{f}");
                }
                println!("fabsp-analyzer: {} finding(s)", findings.len());
                ExitCode::FAILURE
            }
        }
        "orderings" => {
            let sites = match fabsp_analyzer::ordering_inventory(&root) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("fabsp-analyzer: scan failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            // Group by (file, symbol): one [[ordering]] skeleton each.
            let mut grouped: Vec<(String, String, Vec<String>)> = Vec::new();
            for site in sites {
                match grouped
                    .iter_mut()
                    .find(|(f, s, _)| *f == site.file && *s == site.symbol)
                {
                    Some((_, _, variants)) => {
                        if !variants.contains(&site.variant) {
                            variants.push(site.variant);
                        }
                    }
                    None => grouped.push((site.file, site.symbol, vec![site.variant])),
                }
            }
            for (file, symbol, variants) in grouped {
                let allow = variants
                    .iter()
                    .map(|v| format!("\"{v}\""))
                    .collect::<Vec<_>>()
                    .join(", ");
                println!("[[ordering]]");
                println!("file = \"{file}\"");
                println!("symbol = \"{symbol}\"");
                println!("allow = [{allow}]");
                println!("why = \"TODO\"");
                println!();
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
