//! CLI for the concurrency lint pass.
//!
//! ```text
//! fabsp-analyzer lint                   # lint the workspace; exit 1 on findings
//! fabsp-analyzer lint --format sarif    # emit SARIF 2.1.0 instead of text
//! fabsp-analyzer lint --out report.sarif
//! fabsp-analyzer lint --diff origin/main  # findings in changed files only
//! fabsp-analyzer orderings              # dump Ordering sites as policy skeleton
//! ```

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: fabsp-analyzer <lint|orderings> [--root DIR] [--format text|sarif]\n\
         \x20                                  [--out FILE] [--diff BASE]\n\
         \n\
         lint           run the concurrency lint pass over the workspace\n\
         orderings      print every Ordering::* site as [[ordering]] skeleton\n\
         --root DIR     workspace root (default: walk up from the cwd)\n\
         --format KIND  lint output: text (default) or sarif (SARIF 2.1.0)\n\
         --out FILE     write the report to FILE instead of stdout\n\
         --diff BASE    only report findings in files changed vs. git BASE\n\
         \x20              (cross-file passes still see the whole tree)"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        return usage();
    };
    let mut root: Option<PathBuf> = None;
    let mut format = String::from("text");
    let mut out_file: Option<PathBuf> = None;
    let mut diff_base: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage(),
            },
            "--format" => match args.next() {
                Some(v) if v == "text" || v == "sarif" => format = v,
                _ => return usage(),
            },
            "--out" => match args.next() {
                Some(f) => out_file = Some(PathBuf::from(f)),
                None => return usage(),
            },
            "--diff" => match args.next() {
                Some(b) => diff_base = Some(b),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|cwd| fabsp_analyzer::find_workspace_root(&cwd))
    }) {
        Some(root) => root,
        None => {
            eprintln!("fabsp-analyzer: cannot locate the workspace root (pass --root)");
            return ExitCode::FAILURE;
        }
    };

    match cmd.as_str() {
        "lint" => {
            let policy = match fabsp_analyzer::load_policy(&root) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("fabsp-analyzer: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let mut findings = match fabsp_analyzer::lint_tree(&root, &policy) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("fabsp-analyzer: scan failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            // Diff mode: the passes still ran over the whole tree (the
            // pairing audit is cross-file), but only findings in changed
            // files are *reported* — a PR lane fails on what it touched.
            if let Some(base) = &diff_base {
                let changed = match fabsp_analyzer::diff_files(&root, base) {
                    Ok(c) => c,
                    Err(e) => {
                        eprintln!("fabsp-analyzer: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                let before = findings.len();
                findings.retain(|f| changed.iter().any(|c| c == &f.file));
                eprintln!(
                    "fabsp-analyzer: diff vs {base}: {} changed file(s), \
                     {}/{before} finding(s) in scope",
                    changed.len(),
                    findings.len()
                );
            }
            let report = if format == "sarif" {
                fabsp_analyzer::sarif::emit(&findings)
            } else {
                let mut text = String::new();
                for f in &findings {
                    text.push_str(&format!("{f}\n"));
                }
                if findings.is_empty() {
                    text.push_str("fabsp-analyzer: clean\n");
                } else {
                    text.push_str(&format!(
                        "fabsp-analyzer: {} finding(s)\n",
                        findings.len()
                    ));
                }
                text
            };
            match &out_file {
                Some(path) => {
                    if let Err(e) = std::fs::write(path, &report) {
                        eprintln!("fabsp-analyzer: cannot write {}: {e}", path.display());
                        return ExitCode::FAILURE;
                    }
                    eprintln!("fabsp-analyzer: report written to {}", path.display());
                }
                None => print!("{report}"),
            }
            if findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        "orderings" => {
            let sites = match fabsp_analyzer::ordering_inventory(&root) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("fabsp-analyzer: scan failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            // Group by (file, symbol): one [[ordering]] skeleton each.
            let mut grouped: Vec<(String, String, Vec<String>)> = Vec::new();
            for site in sites {
                match grouped
                    .iter_mut()
                    .find(|(f, s, _)| *f == site.file && *s == site.symbol)
                {
                    Some((_, _, variants)) => {
                        if !variants.contains(&site.variant) {
                            variants.push(site.variant);
                        }
                    }
                    None => grouped.push((site.file, site.symbol, vec![site.variant])),
                }
            }
            for (file, symbol, variants) in grouped {
                let allow = variants
                    .iter()
                    .map(|v| format!("\"{v}\""))
                    .collect::<Vec<_>>()
                    .join(", ");
                println!("[[ordering]]");
                println!("file = \"{file}\"");
                println!("symbol = \"{symbol}\"");
                println!("allow = [{allow}]");
                println!("why = \"TODO\"");
                println!();
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
