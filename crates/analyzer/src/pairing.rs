//! Release/Acquire pairing audit.
//!
//! The `[[ordering]]` policy table justifies each site in isolation; it
//! cannot see that a `Release` publish lost its `Acquire` partner in a
//! refactor. This pass can: it collects every atomic call site that names
//! an `Ordering`, groups them by the atomic's *symbol* (the last
//! identifier of the receiver chain — `self.state.store(..)` → `state`)
//! across the whole tree, and classifies each site as publish-side,
//! consume-side, or both:
//!
//! - publish: `store`/RMW with `Release`, RMW with `AcqRel`, anything
//!   `SeqCst`-writing;
//! - consume: `load` with `Acquire`, RMW with `Acquire`/`AcqRel`,
//!   `SeqCst` loads;
//! - `compare_exchange*` success orderings count for both of its sides;
//! - `Relaxed` is neither and never flags.
//!
//! A symbol with publishes but no consumes anywhere in the tree is an
//! `orphaned-release` (flagged at every publish site); consumes with no
//! publishes are `orphaned-acquire`. `[[pairing]]` policy entries waive a
//! symbol (optionally per file) with a justification — e.g. a flag whose
//! Acquire partner lives behind a pointer the textual audit cannot trace.

use std::collections::BTreeMap;

use crate::lints::Finding;
use crate::parser::tokenize;
use crate::policy::Policy;

/// One atomic call site naming an `Ordering::*` variant.
#[derive(Debug, Clone)]
pub struct AtomicSite {
    pub file: String,
    pub line: usize,
    /// Last receiver-chain identifier (`state` for `self.state.store`).
    pub symbol: String,
    /// The atomic method (`store`, `load`, `fetch_add`, …).
    pub method: String,
    /// The `Ordering::*` variants passed to this call, in order.
    pub orderings: Vec<String>,
}

/// Collect the atomic sites of one file's blanked code. A token-stream
/// walk keeps a stack of open calls; each `Ordering::Variant` is
/// attributed to the innermost open call, so multi-line calls and nested
/// argument expressions attribute correctly.
pub fn collect(rel_path: &str, code: &str) -> Vec<AtomicSite> {
    let toks = tokenize(code);
    let mut out: Vec<AtomicSite> = Vec::new();
    // (method, symbol, line, site-index-or-none)
    let mut stack: Vec<Option<usize>> = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_ident
            && t.text == "Ordering"
            && toks.get(i + 1).is_some_and(|n| n.text == "::")
            && toks.get(i + 2).is_some_and(|n| n.is_ident)
        {
            const VARIANTS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];
            let variant = toks[i + 2].text.clone();
            if VARIANTS.contains(&variant.as_str()) {
                if let Some(Some(site)) = stack.iter().rev().find(|s| s.is_some()) {
                    out[*site].orderings.push(variant);
                }
            }
            i += 3;
            continue;
        }
        if t.is_ident && toks.get(i + 1).is_some_and(|n| n.text == "(") {
            // A call opens: record it if it has a dotted receiver.
            let mut symbol = None;
            if i >= 2 && toks[i - 1].text == "." && toks[i - 2].is_ident {
                symbol = Some(toks[i - 2].text.clone());
            }
            let site = symbol.map(|sym| {
                out.push(AtomicSite {
                    file: rel_path.to_string(),
                    line: t.line,
                    symbol: sym,
                    method: t.text.clone(),
                    orderings: Vec::new(),
                });
                out.len() - 1
            });
            stack.push(site);
            i += 2;
            continue;
        }
        match t.text.as_str() {
            "(" => stack.push(None),
            ")" => {
                stack.pop();
            }
            _ => {}
        }
        i += 1;
    }
    out.retain(|s| !s.orderings.is_empty());
    out
}

#[derive(Default, Clone, Copy)]
struct Sides {
    publish: bool,
    consume: bool,
}

/// Classify which pairing sides a site participates in.
fn sides(site: &AtomicSite) -> Sides {
    let is_load = site.method == "load";
    let is_store = site.method == "store";
    // Everything else that takes an ordering is a read-modify-write
    // (fetch_*, swap, compare_exchange*): both a read and a write.
    let is_rmw = !is_load && !is_store;
    let mut s = Sides::default();
    for o in &site.orderings {
        match o.as_str() {
            "Release" => s.publish |= is_store || is_rmw,
            "Acquire" => s.consume |= is_load || is_rmw,
            "AcqRel" => {
                s.publish |= is_store || is_rmw;
                s.consume |= is_load || is_rmw;
            }
            "SeqCst" => {
                s.publish |= is_store || is_rmw;
                s.consume |= is_load || is_rmw;
            }
            _ => {} // Relaxed
        }
    }
    s
}

/// Cross-file audit: flag publish sites whose symbol is never consumed
/// with Acquire anywhere, and vice versa.
pub fn audit(sites: &[AtomicSite], policy: &Policy) -> Vec<Finding> {
    let mut per_symbol: BTreeMap<&str, Sides> = BTreeMap::new();
    for site in sites {
        let s = sides(site);
        let e = per_symbol.entry(site.symbol.as_str()).or_default();
        e.publish |= s.publish;
        e.consume |= s.consume;
    }
    let waived = |symbol: &str, file: &str| {
        policy
            .pairing
            .iter()
            .any(|r| r.symbol == symbol && (r.file == "*" || r.file == file))
    };
    let mut findings = Vec::new();
    for site in sites {
        let s = sides(site);
        let total = per_symbol[site.symbol.as_str()];
        if waived(&site.symbol, &site.file) {
            continue;
        }
        if s.publish && !total.consume {
            findings.push(Finding {
                file: site.file.clone(),
                line: site.line,
                lint: "orphaned-release",
                message: format!(
                    "`{}.{}(.., Release)` publishes, but no `Acquire`/`AcqRel` \
                     consume of `{}` exists anywhere in the tree — the \
                     happens-before edge dangles",
                    site.symbol, site.method, site.symbol
                ),
                hint: format!(
                    "add the matching `{}.load(Ordering::Acquire)` on the \
                     consumer side, or waive the symbol with a [[pairing]] \
                     entry in policy.toml explaining how it synchronizes",
                    site.symbol
                ),
            });
        }
        if s.consume && !total.publish {
            findings.push(Finding {
                file: site.file.clone(),
                line: site.line,
                lint: "orphaned-acquire",
                message: format!(
                    "`{}.{}(Acquire, ..)` consumes, but no `Release`/`AcqRel` \
                     publish of `{}` exists anywhere in the tree — there is \
                     nothing to synchronize with",
                    site.symbol, site.method, site.symbol
                ),
                hint: format!(
                    "publish `{}` with `Ordering::Release` on the writer \
                     side, or waive the symbol with a [[pairing]] entry in \
                     policy.toml",
                    site.symbol
                ),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;

    fn sites_of(file: &str, src: &str) -> Vec<AtomicSite> {
        collect(file, &lexer::scan(src).code)
    }

    #[test]
    fn collects_symbols_methods_and_orderings() {
        let src = "\
fn f() {
    self.state.store(1, Ordering::Release);
    let v = cell.state.load(Ordering::Acquire);
    flag.compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire).ok();
}
";
        let s = sites_of("a.rs", src);
        assert_eq!(s.len(), 3);
        assert_eq!((s[0].symbol.as_str(), s[0].method.as_str()), ("state", "store"));
        assert_eq!(s[0].orderings, vec!["Release"]);
        assert_eq!((s[1].symbol.as_str(), s[1].method.as_str()), ("state", "load"));
        assert_eq!(s[2].orderings, vec!["AcqRel", "Acquire"]);
    }

    #[test]
    fn multiline_calls_attribute_to_the_right_site() {
        let src = "\
fn f() {
    slot.state.compare_exchange(
        EMPTY,
        BUSY,
        Ordering::AcqRel,
        Ordering::Relaxed,
    ).ok();
}
";
        let s = sites_of("a.rs", src);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].line, 2, "site at the call, not the ordering line");
        assert_eq!(s[0].orderings, vec!["AcqRel", "Relaxed"]);
    }

    #[test]
    fn paired_symbols_are_clean_orphans_flag() {
        let a = sites_of("a.rs", "fn f() { self.seq.store(1, Ordering::Release); }");
        let b = sites_of("b.rs", "fn g() { let v = self.seq.load(Ordering::Acquire); }");
        let all: Vec<AtomicSite> = a.into_iter().chain(b).collect();
        assert!(audit(&all, &Policy::default()).is_empty());

        let lone = sites_of("a.rs", "fn f() { self.seq.store(1, Ordering::Release); }");
        let f = audit(&lone, &Policy::default());
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].lint, "orphaned-release");
        assert_eq!(f[0].line, 1);

        let lone = sites_of("a.rs", "fn f() { let v = self.seq.load(Ordering::Acquire); }");
        let f = audit(&lone, &Policy::default());
        assert_eq!(f[0].lint, "orphaned-acquire");
    }

    #[test]
    fn relaxed_and_seqcst_never_orphan() {
        let s = sites_of(
            "a.rs",
            "fn f() { x.counter.fetch_add(1, Ordering::Relaxed); y.gate.store(1, Ordering::SeqCst); z.gate.load(Ordering::SeqCst); }",
        );
        assert!(audit(&s, &Policy::default()).is_empty());
    }

    #[test]
    fn seqcst_counts_as_both_sides_for_pairing() {
        // A SeqCst store paired with an Acquire load: no orphan either way.
        let s = sites_of(
            "a.rs",
            "fn f() { a.flag.store(1, Ordering::SeqCst); let v = b.flag.load(Ordering::Acquire); }",
        );
        assert!(audit(&s, &Policy::default()).is_empty());
    }

    #[test]
    fn rmw_release_needs_an_acquire_somewhere() {
        let s = sites_of("a.rs", "fn f() { q.head.fetch_add(1, Ordering::Release); }");
        let f = audit(&s, &Policy::default());
        assert_eq!(f[0].lint, "orphaned-release");
    }

    #[test]
    fn pairing_waiver_suppresses() {
        let s = sites_of("a.rs", "fn f() { self.seq.store(1, Ordering::Release); }");
        let policy = Policy::parse(
            "[[pairing]]\nsymbol = \"seq\"\nwhy = \"consumed through the fence in flush()\"\n",
        )
        .unwrap();
        assert!(audit(&s, &policy).is_empty());
    }
}
