//! # fabsp-analyzer — the workspace's concurrency lint pass
//!
//! PR 2 made the conveyor hot path lock-free: dozens of atomic-ordering
//! sites and a handful of `unsafe` blocks now carry the correctness of the
//! whole FA-BSP substrate. This crate is the static half of the guard rail
//! (the dynamic half is `fabsp-shmem`'s `race-detect` feature):
//!
//! - every `unsafe` must carry a `// SAFETY:` comment;
//! - lock types are forbidden outside an explicit allowlist — the hot path
//!   is lock-free by contract;
//! - every `Ordering::*` site must appear in the checked-in policy table
//!   (`crates/analyzer/policy.toml`) with a one-line justification, so a
//!   new `Relaxed` in `ring.rs` fails CI until it is argued for;
//! - hygiene: no `static mut`, no raw-pointer casts outside shmem/hwpc,
//!   and crate roots must pin `#![forbid(unsafe_code)]` /
//!   `#![deny(unsafe_op_in_unsafe_fn)]`.
//!
//! Dependency-free by necessity (the build environment has no registry
//! access): a hand-rolled lexer ([`lexer`]) separates code from comments
//! and literals, and a minimal TOML-subset reader ([`policy`]) loads the
//! policy. Run it as:
//!
//! ```text
//! cargo run -p fabsp-analyzer -- lint
//! ```

#![forbid(unsafe_code)]

pub mod cfg;
pub mod lexer;
pub mod lints;
pub mod pairing;
pub mod parser;
pub mod policy;
pub mod protocol;
pub mod sarif;

pub use lints::{lint_source, Finding};
pub use policy::{Policy, PolicyError};

use std::path::{Path, PathBuf};

/// Directories (relative to the workspace root) the lint scans. `vendor/`
/// is deliberately absent: the shims are API stand-ins, not our code.
pub const SCAN_ROOTS: [&str; 4] = ["crates", "suite", "tests", "examples"];

/// Locate the workspace root: walk up from `start` to the first directory
/// whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// All `.rs` files under the scan roots, as workspace-relative
/// `/`-separated paths, sorted. `target/` subtrees are skipped.
pub fn source_files(root: &Path) -> std::io::Result<Vec<String>> {
    let mut out = Vec::new();
    for scan in SCAN_ROOTS {
        let dir = root.join(scan);
        if dir.is_dir() {
            walk(root, &dir, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            // `fixtures/` holds the analyzer's own seeded-violation corpus
            // — deliberately dirty, never part of the workspace scan.
            if name == "target" || name == "vendor" || name == "fixtures" {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .expect("walked path is under root")
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push(rel);
        }
    }
    Ok(())
}

/// Load the policy from its checked-in location.
pub fn load_policy(root: &Path) -> Result<Policy, String> {
    let path = root.join("crates/analyzer/policy.toml");
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    Policy::parse(&text).map_err(|e| e.to_string())
}

/// Lint the whole tree under `root` with `policy`; findings are sorted by
/// file, then line. Runs the per-file passes (token lints + the protocol
/// dataflow checker) and the cross-file Release/Acquire pairing audit.
pub fn lint_tree(root: &Path, policy: &Policy) -> std::io::Result<Vec<Finding>> {
    let files = source_files(root)?;
    lint_files(root, &files, policy)
}

/// Lint an explicit file list (workspace-relative paths under `root`).
/// [`lint_tree`] scans the standard roots; the fixture harness and the
/// diff-aware lanes pass their own lists.
pub fn lint_files(root: &Path, files: &[String], policy: &Policy) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    let mut atomic_sites = Vec::new();
    let mut waivers_by_file: std::collections::BTreeMap<String, Vec<lints::Waiver>> =
        std::collections::BTreeMap::new();
    for rel in files {
        let src = std::fs::read_to_string(root.join(rel))?;
        findings.extend(lint_source(rel, &src, policy));
        let scanned = lexer::scan(&src);
        atomic_sites.extend(pairing::collect(rel, &scanned.code));
        waivers_by_file.insert(rel.clone(), lints::waivers(&scanned));
    }
    // The pairing audit needs the whole tree's sites; waivers still apply
    // per site (bad-waiver findings already came from lint_source).
    let waived = |f: &Finding| {
        waivers_by_file.get(&f.file).is_some_and(|ws| {
            ws.iter().any(|w| {
                w.has_why && w.lint == f.lint && w.start_line <= f.line && f.line <= w.end_line
            })
        })
    };
    findings.extend(
        pairing::audit(&atomic_sites, policy)
            .into_iter()
            .filter(|f| !waived(f)),
    );
    findings.sort_by(|a, b| a.file.cmp(&b.file).then(a.line.cmp(&b.line)));
    Ok(findings)
}

/// Restrict findings to the files changed relative to `base` (per
/// `git diff --name-only <base>`), for the diff-aware CI lanes. Returns
/// the changed-file set alongside, so callers can report coverage.
pub fn diff_files(root: &Path, base: &str) -> Result<Vec<String>, String> {
    let out = std::process::Command::new("git")
        .arg("-C")
        .arg(root)
        .args(["diff", "--name-only", "--diff-filter=d", base])
        .output()
        .map_err(|e| format!("cannot run git diff: {e}"))?;
    if !out.status.success() {
        return Err(format!(
            "git diff --name-only {base} failed: {}",
            String::from_utf8_lossy(&out.stderr).trim()
        ));
    }
    Ok(String::from_utf8_lossy(&out.stdout)
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .map(str::to_string)
        .collect())
}

/// One discovered `Ordering::*` site (the `orderings` subcommand's output,
/// used to author policy entries).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderingSite {
    pub file: String,
    pub line: usize,
    pub symbol: String,
    pub variant: String,
}

/// Enumerate every `Ordering::*` site in the tree.
pub fn ordering_inventory(root: &Path) -> std::io::Result<Vec<OrderingSite>> {
    let mut out = Vec::new();
    for rel in source_files(root)? {
        let src = std::fs::read_to_string(root.join(&rel))?;
        let scanned = lexer::scan(&src);
        let fns = lexer::enclosing_fns(&scanned.code);
        for (line, variant) in lexer::ordering_sites(&scanned.code) {
            if !["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"]
                .contains(&variant.as_str())
            {
                continue;
            }
            out.push(OrderingSite {
                file: rel.clone(),
                line,
                symbol: fns
                    .get(line)
                    .and_then(|s| s.clone())
                    .unwrap_or_else(|| "*".to_string()),
                variant,
            });
        }
    }
    Ok(out)
}
