//! The checked-in concurrency policy (`crates/analyzer/policy.toml`) and a
//! minimal parser for the TOML subset it uses.
//!
//! The registry is offline, so no `toml` crate: this hand-rolled reader
//! supports exactly what the policy file needs — `[table]` headers,
//! `[[array-of-table]]` headers, `key = "string"` and
//! `key = ["a", "b"]` values (arrays may span lines), and `#` comments.
//! Unknown syntax is an error, not a silent skip: a malformed policy must
//! fail the lint run, never weaken it.

use std::collections::HashMap;
use std::fmt;

/// A value in the policy file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    Str(String),
    List(Vec<String>),
}

/// One `[section]` or `[[section]]` instance with its key/value pairs.
#[derive(Debug, Clone)]
pub struct Section {
    pub name: String,
    pub entries: HashMap<String, Value>,
    /// 1-based line of the section header (for error reporting).
    pub line: usize,
}

/// Policy parse/validation failure.
#[derive(Debug)]
pub struct PolicyError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "policy.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for PolicyError {}

fn err(line: usize, message: impl Into<String>) -> PolicyError {
    PolicyError {
        line,
        message: message.into(),
    }
}

/// Parse the TOML subset into sections, in file order.
pub fn parse_sections(src: &str) -> Result<Vec<Section>, PolicyError> {
    let mut sections: Vec<Section> = Vec::new();
    let lines: Vec<&str> = src.lines().collect();
    let mut i = 0usize;
    while i < lines.len() {
        let lineno = i + 1;
        let line = strip_comment(lines[i]).trim().to_string();
        i += 1;
        if line.is_empty() {
            continue;
        }
        if let Some(name) = header(&line) {
            sections.push(Section {
                name,
                entries: HashMap::new(),
                line: lineno,
            });
            continue;
        }
        let Some((key, mut rest)) = line.split_once('=') else {
            return Err(err(lineno, format!("expected `key = value`, got `{line}`")));
        };
        let key = key.trim().to_string();
        let mut value_text = rest.trim().to_string();
        // Multi-line array: keep consuming until the bracket closes.
        if value_text.starts_with('[') {
            while !bracket_closed(&value_text) {
                if i >= lines.len() {
                    return Err(err(lineno, "unterminated array"));
                }
                rest = strip_comment(lines[i]);
                value_text.push(' ');
                value_text.push_str(rest.trim());
                i += 1;
            }
        }
        let value = parse_value(&value_text, lineno)?;
        let Some(section) = sections.last_mut() else {
            return Err(err(lineno, "key/value before any [section] header"));
        };
        if section.entries.insert(key.clone(), value).is_some() {
            return Err(err(lineno, format!("duplicate key `{key}` in section")));
        }
    }
    Ok(sections)
}

fn strip_comment(line: &str) -> &str {
    // `#` only introduces a comment outside of strings; policy strings
    // never contain `#`, so a plain scan suffices — but stay honest about
    // quotes anyway.
    let mut in_str = false;
    for (idx, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..idx],
            _ => {}
        }
    }
    line
}

fn header(line: &str) -> Option<String> {
    let inner = line
        .strip_prefix("[[")
        .and_then(|s| s.strip_suffix("]]"))
        .or_else(|| line.strip_prefix('[').and_then(|s| s.strip_suffix(']')))?;
    Some(inner.trim().to_string())
}

fn bracket_closed(text: &str) -> bool {
    let mut depth = 0i64;
    let mut in_str = false;
    for c in text.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth <= 0
}

fn parse_value(text: &str, line: usize) -> Result<Value, PolicyError> {
    let text = text.trim();
    if let Some(inner) = text.strip_prefix('"') {
        let Some(s) = inner.strip_suffix('"') else {
            return Err(err(line, format!("unterminated string: {text}")));
        };
        return Ok(Value::Str(s.to_string()));
    }
    if let Some(inner) = text.strip_prefix('[') {
        let Some(body) = inner.strip_suffix(']') else {
            return Err(err(line, format!("unterminated array: {text}")));
        };
        let mut items = Vec::new();
        for piece in body.split(',') {
            let piece = piece.trim();
            if piece.is_empty() {
                continue; // trailing comma
            }
            match parse_value(piece, line)? {
                Value::Str(s) => items.push(s),
                Value::List(_) => {
                    return Err(err(line, "nested arrays are not supported"))
                }
            }
        }
        return Ok(Value::List(items));
    }
    Err(err(
        line,
        format!("unsupported value `{text}` (only strings and string arrays)"),
    ))
}

/// One `[[ordering]]` policy entry: which `Ordering::*` variants a
/// file+symbol may use, and why.
#[derive(Debug, Clone)]
pub struct OrderingRule {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// Enclosing `fn` name, or `"*"` to cover the whole file.
    pub symbol: String,
    pub allow: Vec<String>,
    pub why: String,
}

/// The `[protocol]` section: the API surface of the FA-BSP phase state
/// machine the dataflow checker tracks. Every key is a method-name set;
/// `handlers` entries may be qualified (`Selector::new`) to match path
/// calls. Defaults cover the workspace's real surface so unit tests with
/// `Policy::default()` exercise the checker.
#[derive(Debug, Clone)]
pub struct ProtocolPolicy {
    /// Type names whose constructor calls (`Conveyor::new(..)`, any
    /// method) mark the bound local as a fresh conveyor.
    pub conveyor_types: Vec<String>,
    /// Methods that progress the exchange (`advance`).
    pub advance: Vec<String>,
    /// Producer-side methods (`push`, `push_slice`).
    pub push: Vec<String>,
    /// Consumer-side methods (`pull`, `pull_batch`).
    pub pull: Vec<String>,
    /// Collective re-arm methods (`reset`).
    pub rearm: Vec<String>,
    /// Methods that drive the exchange to termination (`drain_and_park`).
    pub terminate: Vec<String>,
    /// Non-blocking put methods on symmetric arrays (`put_nbi`).
    pub nbi_put: Vec<String>,
    /// Methods that read a symmetric array and would observe stale data
    /// while an nbi put to it is pending.
    pub nbi_consume: Vec<String>,
    /// Methods that complete pending nbi puts (`quiet`, barriers and
    /// barrier-synchronized collectives).
    pub quiet: Vec<String>,
    /// Checkpoint methods that require a quiescent cut.
    pub checkpoint: Vec<String>,
    /// Calls whose closure argument is a mailbox handler.
    pub handlers: Vec<String>,
    /// Methods a mailbox handler must never (transitively) call.
    pub blocking: Vec<String>,
}

impl Default for ProtocolPolicy {
    fn default() -> Self {
        fn v(items: &[&str]) -> Vec<String> {
            items.iter().map(|s| s.to_string()).collect()
        }
        ProtocolPolicy {
            conveyor_types: v(&["Conveyor"]),
            advance: v(&["advance"]),
            push: v(&["push", "push_slice"]),
            pull: v(&["pull", "pull_batch"]),
            rearm: v(&["reset"]),
            terminate: v(&["drain_and_park"]),
            nbi_put: v(&["put_nbi"]),
            nbi_consume: v(&["get", "local_get", "read_local", "read_local_range"]),
            quiet: v(&[
                "quiet",
                "barrier_all",
                "allreduce",
                "allreduce_sum_u64",
                "allreduce_sum_i64",
                "allreduce_sum_f64",
                "allreduce_max_u64",
                "allreduce_min_u64",
            ]),
            checkpoint: v(&["checkpoint"]),
            handlers: v(&["selector", "Selector::new"]),
            blocking: v(&[
                "lock",
                "wait",
                "wait_timeout",
                "wait_with_idle",
                "recv",
                "recv_timeout",
                "join",
                "sleep",
                "park",
                "barrier_all",
            ]),
        }
    }
}

/// One `[[pairing]]` waiver: a symbol whose Release/Acquire sides are
/// deliberately unpaired (or paired through a mechanism the cross-file
/// audit cannot see), with a justification.
#[derive(Debug, Clone)]
pub struct PairingRule {
    /// Atomic field/variable name as it appears at the call sites.
    pub symbol: String,
    /// Optional file restriction (`*` or omitted = any file).
    pub file: String,
    pub why: String,
}

/// The full parsed policy.
#[derive(Debug, Clone, Default)]
pub struct Policy {
    /// Files allowed to name lock types (`Mutex`, `RwLock`, `Condvar`, …)
    /// or mention `parking_lot`.
    pub lock_files: Vec<String>,
    /// Path prefixes under which `as *mut`/`as *const` casts are allowed.
    pub ptr_cast_prefixes: Vec<String>,
    pub ordering: Vec<OrderingRule>,
    pub protocol: ProtocolPolicy,
    pub pairing: Vec<PairingRule>,
}

impl Policy {
    /// Parse and validate policy text.
    pub fn parse(src: &str) -> Result<Policy, PolicyError> {
        let mut policy = Policy::default();
        for section in parse_sections(src)? {
            match section.name.as_str() {
                "lock-allowlist" => {
                    policy.lock_files =
                        take_list(&section, "files")?;
                }
                "ptr-cast-allowlist" => {
                    policy.ptr_cast_prefixes =
                        take_list(&section, "prefixes")?;
                }
                "ordering" => {
                    policy.ordering.push(OrderingRule {
                        file: take_str(&section, "file")?,
                        symbol: take_str(&section, "symbol")?,
                        allow: take_list(&section, "allow")?,
                        why: take_str(&section, "why")?,
                    });
                }
                "protocol" => {
                    let p = &mut policy.protocol;
                    for (key, slot) in [
                        ("conveyor-types", &mut p.conveyor_types),
                        ("advance", &mut p.advance),
                        ("push", &mut p.push),
                        ("pull", &mut p.pull),
                        ("rearm", &mut p.rearm),
                        ("terminate", &mut p.terminate),
                        ("nbi-put", &mut p.nbi_put),
                        ("nbi-consume", &mut p.nbi_consume),
                        ("quiet", &mut p.quiet),
                        ("checkpoint", &mut p.checkpoint),
                        ("handlers", &mut p.handlers),
                        ("blocking", &mut p.blocking),
                    ] {
                        if section.entries.contains_key(key) {
                            *slot = take_list(&section, key)?;
                        }
                    }
                    for key in section.entries.keys() {
                        const KNOWN: [&str; 12] = [
                            "conveyor-types",
                            "advance",
                            "push",
                            "pull",
                            "rearm",
                            "terminate",
                            "nbi-put",
                            "nbi-consume",
                            "quiet",
                            "checkpoint",
                            "handlers",
                            "blocking",
                        ];
                        if !KNOWN.contains(&key.as_str()) {
                            return Err(err(
                                section.line,
                                format!("unknown [protocol] key `{key}`"),
                            ));
                        }
                    }
                }
                "pairing" => {
                    policy.pairing.push(PairingRule {
                        symbol: take_str(&section, "symbol")?,
                        file: match section.entries.get("file") {
                            Some(Value::Str(s)) => s.clone(),
                            Some(Value::List(_)) => {
                                return Err(err(
                                    section.line,
                                    "[[pairing]] `file` must be a string",
                                ))
                            }
                            None => "*".to_string(),
                        },
                        why: take_str(&section, "why")?,
                    });
                }
                other => {
                    return Err(err(
                        section.line,
                        format!("unknown policy section `{other}`"),
                    ))
                }
            }
        }
        for rule in &policy.pairing {
            if rule.why.trim().is_empty() {
                return Err(err(
                    0,
                    format!("pairing waiver for `{}` has an empty justification", rule.symbol),
                ));
            }
        }
        for rule in &policy.ordering {
            if rule.why.trim().is_empty() {
                return Err(err(
                    0,
                    format!(
                        "ordering rule {}#{} has an empty justification",
                        rule.file, rule.symbol
                    ),
                ));
            }
            for variant in &rule.allow {
                const KNOWN: [&str; 5] =
                    ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];
                if !KNOWN.contains(&variant.as_str()) {
                    return Err(err(
                        0,
                        format!(
                            "ordering rule {}#{} allows unknown variant `{variant}`",
                            rule.file, rule.symbol
                        ),
                    ));
                }
            }
        }
        Ok(policy)
    }

    /// The orderings allowed at `file` within `symbol` (an enclosing fn
    /// name or `None` for module scope). File-wildcard (`symbol = "*"`)
    /// rules apply everywhere in the file.
    pub fn allowed_orderings(&self, file: &str, symbol: Option<&str>) -> Vec<&OrderingRule> {
        self.ordering
            .iter()
            .filter(|r| {
                r.file == file && (r.symbol == "*" || Some(r.symbol.as_str()) == symbol)
            })
            .collect()
    }
}

fn take_str(section: &Section, key: &str) -> Result<String, PolicyError> {
    match section.entries.get(key) {
        Some(Value::Str(s)) => Ok(s.clone()),
        Some(Value::List(_)) => Err(err(
            section.line,
            format!("[{}] `{key}` must be a string", section.name),
        )),
        None => Err(err(
            section.line,
            format!("[{}] missing key `{key}`", section.name),
        )),
    }
}

fn take_list(section: &Section, key: &str) -> Result<Vec<String>, PolicyError> {
    match section.entries.get(key) {
        Some(Value::List(l)) => Ok(l.clone()),
        Some(Value::Str(_)) => Err(err(
            section.line,
            format!("[{}] `{key}` must be an array", section.name),
        )),
        None => Err(err(
            section.line,
            format!("[{}] missing key `{key}`", section.name),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# comment
[lock-allowlist]
files = [
    "crates/shmem/src/sync.rs", # inline comment
    "crates/testkit/src/lib.rs",
]

[ptr-cast-allowlist]
prefixes = ["crates/shmem/", "crates/hwpc/"]

[[ordering]]
file = "crates/shmem/src/ring.rs"
symbol = "state"
allow = ["Acquire"]
why = "consumer poll pairs with Release publish"

[[ordering]]
file = "crates/shmem/src/ring.rs"
symbol = "*"
allow = ["Relaxed"]
why = "debug asserts only"
"#;

    #[test]
    fn parses_sample() {
        let p = Policy::parse(SAMPLE).unwrap();
        assert_eq!(p.lock_files.len(), 2);
        assert_eq!(p.ptr_cast_prefixes, vec!["crates/shmem/", "crates/hwpc/"]);
        assert_eq!(p.ordering.len(), 2);
        let rules = p.allowed_orderings("crates/shmem/src/ring.rs", Some("state"));
        assert_eq!(rules.len(), 2, "named + wildcard rules both apply");
    }

    #[test]
    fn protocol_section_overrides_defaults() {
        let src = "[protocol]\npush = [\"shove\"]\nblocking = [\"lock\"]\n";
        let p = Policy::parse(src).unwrap();
        assert_eq!(p.protocol.push, vec!["shove"]);
        assert_eq!(p.protocol.blocking, vec!["lock"]);
        // Unlisted keys keep their defaults.
        assert!(p.protocol.pull.contains(&"pull_batch".to_string()));
        assert!(Policy::parse("[protocol]\nmystery = [\"x\"]\n").is_err());
    }

    #[test]
    fn pairing_waivers_parse_and_require_why() {
        let src = "[[pairing]]\nsymbol = \"cursor\"\nwhy = \"consumed via fence\"\n";
        let p = Policy::parse(src).unwrap();
        assert_eq!(p.pairing.len(), 1);
        assert_eq!(p.pairing[0].file, "*");
        assert!(Policy::parse("[[pairing]]\nsymbol = \"x\"\nwhy = \" \"\n").is_err());
    }

    #[test]
    fn rejects_unknown_variant() {
        let src = "[[ordering]]\nfile = \"a.rs\"\nsymbol = \"*\"\nallow = [\"Sequential\"]\nwhy = \"x\"\n";
        assert!(Policy::parse(src).is_err());
    }

    #[test]
    fn rejects_unknown_section() {
        assert!(Policy::parse("[mystery]\nfiles = []\n").is_err());
    }

    #[test]
    fn rejects_empty_why() {
        let src = "[[ordering]]\nfile = \"a.rs\"\nsymbol = \"*\"\nallow = [\"Relaxed\"]\nwhy = \" \"\n";
        assert!(Policy::parse(src).is_err());
    }
}
