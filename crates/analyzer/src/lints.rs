//! The lint passes. Each pass runs over one scanned file plus the parsed
//! [`Policy`] and yields [`Finding`]s; [`lint_source`] runs them all.
//!
//! | lint | rule |
//! |------|------|
//! | `undocumented-unsafe`  | every `unsafe` must carry a `// SAFETY:` comment on the same line or in the contiguous comment block directly above |
//! | `lock-outside-allowlist` | lock types (`Mutex`, `RwLock`, `Condvar`, guards, `parking_lot`, `std::sync::mpsc`/`Barrier`) only in `[lock-allowlist]` files |
//! | `unlisted-ordering`    | every `Ordering::*` site must match an `[[ordering]]` rule (file + enclosing fn, or file-wildcard `*`) allowing that variant |
//! | `ordering-use-import`  | no `use …Ordering::…` imports — orderings must be spelled `Ordering::X` at the use site so the policy table stays greppable |
//! | `static-mut`           | no `static mut` anywhere |
//! | `ptr-cast`             | `as *mut` / `as *const` only under `[ptr-cast-allowlist]` path prefixes |
//! | `missing-forbid`       | crate roots must pin their unsafe posture: `#![forbid(unsafe_code)]`, or for the unsafe-bearing crates (shmem, hwpc) `#![deny(unsafe_op_in_unsafe_fn)]` |

use crate::lexer::{self, ScannedFile};
use crate::policy::Policy;

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Lint identifier (kebab-case).
    pub lint: &'static str,
    pub message: String,
    /// Fix-it hint: the concrete change that clears the finding.
    pub hint: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.lint, self.message
        )?;
        if !self.hint.is_empty() {
            write!(f, "\n    = hint: {}", self.hint)?;
        }
        Ok(())
    }
}

/// Inline waiver comments: `// analyzer: allow(rule-id): why`. Deliberate
/// negative tests (litmus code that *must* violate the protocol) carry one
/// on the offending line or directly above it. A waiver without a why is
/// itself a finding, so the justification cannot silently rot away.
#[derive(Debug, Clone)]
pub struct Waiver {
    pub lint: String,
    /// Lines the waiver covers: its comment's span plus the line below.
    pub start_line: usize,
    pub end_line: usize,
    pub has_why: bool,
}

/// Extract waivers from a file's comments.
pub fn waivers(scanned: &ScannedFile) -> Vec<Waiver> {
    let mut out = Vec::new();
    for c in &scanned.comments {
        let mut rest = c.text.as_str();
        while let Some(pos) = rest.find("analyzer: allow(") {
            rest = &rest[pos + "analyzer: allow(".len()..];
            let Some(close) = rest.find(')') else { break };
            let lint = rest[..close].trim().to_string();
            let after = &rest[close + 1..];
            let has_why = after
                .trim_start()
                .strip_prefix(':')
                .map(|why| {
                    !why.trim_start()
                        .lines()
                        .next()
                        .unwrap_or("")
                        .trim()
                        .is_empty()
                })
                .unwrap_or(false);
            out.push(Waiver {
                lint,
                start_line: c.start_line,
                end_line: c.end_line + 1,
                has_why,
            });
            rest = after;
        }
    }
    out
}

/// Drop findings covered by a well-formed waiver; flag malformed waivers.
pub fn apply_waivers(
    rel_path: &str,
    findings: Vec<Finding>,
    waivers: &[Waiver],
) -> Vec<Finding> {
    let mut out: Vec<Finding> = findings
        .into_iter()
        .filter(|f| {
            !waivers.iter().any(|w| {
                w.has_why
                    && w.lint == f.lint
                    && w.start_line <= f.line
                    && f.line <= w.end_line
            })
        })
        .collect();
    for w in waivers {
        if !w.has_why {
            out.push(finding(
                rel_path,
                w.start_line,
                "bad-waiver",
                format!("waiver for `{}` has no justification", w.lint),
                "write `// analyzer: allow(rule-id): <why this violation is \
                 deliberate>`",
            ));
        }
    }
    out
}

/// Lock-ish identifiers that must not appear outside the allowlist. Full
/// idents, so `MutexGuard` does not hide behind `Mutex` and `OnceLock`
/// (non-blocking after init) stays legal.
const LOCK_IDENTS: [&str; 7] = [
    "Mutex",
    "RwLock",
    "Condvar",
    "MutexGuard",
    "RwLockReadGuard",
    "RwLockWriteGuard",
    "parking_lot",
];

/// Crates that legitimately contain `unsafe` and therefore pin
/// `#![deny(unsafe_op_in_unsafe_fn)]` instead of `#![forbid(unsafe_code)]`.
const UNSAFE_CRATES: [&str; 2] = ["shmem", "hwpc"];

/// Run every pass over one file. `rel_path` is workspace-relative with
/// `/` separators (it is matched against the policy verbatim).
pub fn lint_source(rel_path: &str, src: &str, policy: &Policy) -> Vec<Finding> {
    let scanned = lexer::scan(src);
    let mut findings = Vec::new();
    lint_unsafe_comments(rel_path, &scanned, &mut findings);
    lint_locks(rel_path, &scanned, policy, &mut findings);
    lint_orderings(rel_path, &scanned, policy, &mut findings);
    lint_static_mut_and_casts(rel_path, &scanned, policy, &mut findings);
    lint_crate_root_attrs(rel_path, &scanned, &mut findings);
    findings.extend(crate::protocol::check_file(rel_path, &scanned, policy));
    let mut findings = apply_waivers(rel_path, findings, &waivers(&scanned));
    findings.sort_by_key(|f| f.line);
    findings
}

fn finding(
    rel_path: &str,
    line: usize,
    lint: &'static str,
    message: impl Into<String>,
    hint: impl Into<String>,
) -> Finding {
    Finding {
        file: rel_path.to_string(),
        line,
        lint,
        message: message.into(),
        hint: hint.into(),
    }
}

/// `unsafe` must carry a SAFETY comment on its line or in the contiguous
/// comment/blank block directly above.
fn lint_unsafe_comments(rel_path: &str, scanned: &ScannedFile, findings: &mut Vec<Finding>) {
    let code_lines: Vec<&str> = scanned.code.lines().collect();
    let mut unsafe_lines: Vec<usize> = lexer::idents(&scanned.code)
        .into_iter()
        .filter(|(_, _, w)| *w == "unsafe")
        .map(|(line, _, _)| line)
        .collect();
    unsafe_lines.dedup();

    let comment_on = |line: usize| -> bool {
        scanned
            .comments
            .iter()
            .any(|c| c.start_line <= line && line <= c.end_line && c.text.contains("SAFETY:"))
    };
    let line_is_commentary = |line: usize| -> bool {
        code_lines
            .get(line - 1)
            .map(|l| l.trim().is_empty())
            .unwrap_or(false)
    };

    'sites: for site in unsafe_lines {
        if comment_on(site) {
            continue;
        }
        let mut line = site;
        while line > 1 && line_is_commentary(line - 1) {
            line -= 1;
            if comment_on(line) {
                continue 'sites;
            }
        }
        findings.push(finding(
            rel_path,
            site,
            "undocumented-unsafe",
            "`unsafe` without a `// SAFETY:` comment on the same line or \
             in the comment block directly above",
            "add `// SAFETY: <why the invariants hold>` directly above the \
             unsafe block",
        ));
    }
}

fn lint_locks(
    rel_path: &str,
    scanned: &ScannedFile,
    policy: &Policy,
    findings: &mut Vec<Finding>,
) {
    if policy.lock_files.iter().any(|f| f == rel_path) {
        return;
    }
    for (line, _, word) in lexer::idents(&scanned.code) {
        if LOCK_IDENTS.contains(&word) {
            findings.push(finding(
                rel_path,
                line,
                "lock-outside-allowlist",
                format!(
                    "`{word}` outside the lock allowlist — the message hot path \
                     is lock-free by contract; add the file to \
                     [lock-allowlist] in policy.toml only with justification"
                ),
                "use the lock-free primitives, or add this file to \
                 [lock-allowlist] in crates/analyzer/policy.toml with a \
                 justification",
            ));
        }
    }
    for (lineno, text) in scanned.code.lines().enumerate() {
        for needle in ["std::sync::mpsc", "std::sync::Barrier"] {
            if text.contains(needle) {
                findings.push(finding(
                    rel_path,
                    lineno + 1,
                    "lock-outside-allowlist",
                    format!("`{needle}` outside the lock allowlist"),
                    "use the conveyor/mailbox primitives instead of \
                     channel/barrier sync, or allowlist the file with a \
                     justification",
                ));
            }
        }
    }
}

fn lint_orderings(
    rel_path: &str,
    scanned: &ScannedFile,
    policy: &Policy,
    findings: &mut Vec<Finding>,
) {
    // Only the atomic variants: `Ordering::Less`/`Equal`/`Greater` are
    // `std::cmp::Ordering` and none of this lint's business.
    const ATOMIC_VARIANTS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];
    let sites = lexer::ordering_sites(&scanned.code);
    let fns = lexer::enclosing_fns(&scanned.code);
    for (line, variant) in sites {
        if !ATOMIC_VARIANTS.contains(&variant.as_str()) {
            continue;
        }
        let symbol = fns.get(line).and_then(|s| s.as_deref());
        let rules = policy.allowed_orderings(rel_path, symbol);
        let allowed = rules
            .iter()
            .any(|r| r.allow.iter().any(|v| v == &variant));
        if !allowed {
            let symbol = symbol.unwrap_or("<module>");
            findings.push(finding(
                rel_path,
                line,
                "unlisted-ordering",
                format!(
                    "`Ordering::{variant}` in `{symbol}` has no matching \
                     [[ordering]] policy entry — add one to \
                     crates/analyzer/policy.toml with a justification"
                ),
                format!(
                    "add `[[ordering]]` with file = \"{rel_path}\", symbol = \
                     \"{symbol}\", allow = [\"{variant}\"] and a one-line why"
                ),
            ));
        }
    }
    for (lineno, text) in scanned.code.lines().enumerate() {
        let trimmed = text.trim_start();
        if (trimmed.starts_with("use ") || trimmed.starts_with("pub use "))
            && text.contains("Ordering::")
        {
            findings.push(finding(
                rel_path,
                lineno + 1,
                "ordering-use-import",
                "importing `Ordering` variants hides them from the policy \
                 table; spell `Ordering::X` at the use site",
                "drop the variant import and write `Ordering::<Variant>` at \
                 every call site",
            ));
        }
    }
}

fn lint_static_mut_and_casts(
    rel_path: &str,
    scanned: &ScannedFile,
    policy: &Policy,
    findings: &mut Vec<Finding>,
) {
    let cast_allowed = policy
        .ptr_cast_prefixes
        .iter()
        .any(|p| rel_path.starts_with(p.as_str()));
    for (lineno, text) in scanned.code.lines().enumerate() {
        let squashed = squash_spaces(text);
        if squashed.contains("static mut ") {
            findings.push(finding(
                rel_path,
                lineno + 1,
                "static-mut",
                "`static mut` is forbidden everywhere (use atomics or \
                 interior mutability)",
                "replace with an atomic, `OnceLock`, or thread-local \
                 interior mutability",
            ));
        }
        if !cast_allowed
            && (squashed.contains("as *mut") || squashed.contains("as *const"))
        {
            findings.push(finding(
                rel_path,
                lineno + 1,
                "ptr-cast",
                "raw-pointer cast outside the shmem/hwpc allowlist",
                "move the cast into an allowlisted crate, or extend \
                 [ptr-cast-allowlist] in policy.toml with a justification",
            ));
        }
    }
}

fn squash_spaces(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut prev_space = false;
    for c in text.chars() {
        let is_space = c.is_whitespace();
        if is_space {
            if !prev_space {
                out.push(' ');
            }
        } else {
            out.push(c);
        }
        prev_space = is_space;
    }
    out
}

/// Crate roots (`crates/<name>/src/lib.rs`) must pin their unsafe posture.
fn lint_crate_root_attrs(rel_path: &str, scanned: &ScannedFile, findings: &mut Vec<Finding>) {
    let Some(rest) = rel_path.strip_prefix("crates/") else {
        return;
    };
    let Some(crate_name) = rest.strip_suffix("/src/lib.rs") else {
        return;
    };
    let code = &scanned.code;
    if UNSAFE_CRATES.contains(&crate_name) {
        if !code.contains("#![deny(unsafe_op_in_unsafe_fn)]") {
            findings.push(finding(
                rel_path,
                1,
                "missing-forbid",
                format!(
                    "crate `{crate_name}` contains unsafe code and must \
                     declare `#![deny(unsafe_op_in_unsafe_fn)]`"
                ),
                "add the attribute at the top of the crate root",
            ));
        }
    } else if !code.contains("#![forbid(unsafe_code)]") {
        findings.push(finding(
            rel_path,
            1,
            "missing-forbid",
            format!("crate `{crate_name}` must declare `#![forbid(unsafe_code)]`"),
            "add `#![forbid(unsafe_code)]` at the top of the crate root",
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Policy;

    fn empty_policy() -> Policy {
        Policy::default()
    }

    fn lints_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.lint).collect()
    }

    #[test]
    fn undocumented_unsafe_is_flagged_documented_is_not() {
        let src = "\
// SAFETY: the invariant holds by construction.
let a = unsafe { f() };
let b = unsafe { g() };
";
        let f = lint_source("x.rs", src, &empty_policy());
        assert_eq!(lints_of(&f), vec!["undocumented-unsafe"]);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn safety_comment_spans_blank_and_attr_free_block() {
        let src = "\
// SAFETY: single producer per cell; ownership transfers
// through Release/Acquire on the state word.

unsafe impl<T: Send> Sync for Inner<T> {}
";
        assert!(lint_source("x.rs", src, &empty_policy()).is_empty());
    }

    #[test]
    fn safety_in_string_does_not_count() {
        let src = "let s = \"SAFETY: nope\";\nlet a = unsafe { f() };\n";
        let f = lint_source("x.rs", src, &empty_policy());
        assert_eq!(lints_of(&f), vec!["undocumented-unsafe"]);
    }

    #[test]
    fn locks_flagged_outside_allowlist_only() {
        let src = "use std::sync::Mutex;\n";
        let f = lint_source("crates/foo/src/a.rs", src, &empty_policy());
        assert_eq!(lints_of(&f), vec!["lock-outside-allowlist"]);

        let mut policy = empty_policy();
        policy.lock_files.push("crates/foo/src/a.rs".to_string());
        assert!(lint_source("crates/foo/src/a.rs", src, &policy).is_empty());
    }

    #[test]
    fn ordering_requires_policy_entry() {
        let src = "fn publish() {\n    s.store(1, Ordering::Release);\n}\n";
        let f = lint_source("crates/foo/src/a.rs", src, &empty_policy());
        assert_eq!(lints_of(&f), vec!["unlisted-ordering"]);
        assert!(f[0].message.contains("publish"));

        let policy = Policy::parse(
            "[[ordering]]\nfile = \"crates/foo/src/a.rs\"\nsymbol = \"publish\"\n\
             allow = [\"Release\"]\nwhy = \"publication store\"\n",
        )
        .unwrap();
        assert!(lint_source("crates/foo/src/a.rs", src, &policy).is_empty());
        // …but the same ordering in another fn is still a finding.
        let src2 = "fn other() {\n    s.store(1, Ordering::Release);\n}\n";
        assert_eq!(
            lints_of(&lint_source("crates/foo/src/a.rs", src2, &policy)),
            vec!["unlisted-ordering"]
        );
    }

    #[test]
    fn wildcard_symbol_covers_file() {
        let policy = Policy::parse(
            "[[ordering]]\nfile = \"a.rs\"\nsymbol = \"*\"\nallow = [\"SeqCst\"]\nwhy = \"tests\"\n",
        )
        .unwrap();
        let src = "fn any() { x.load(Ordering::SeqCst); }\n";
        assert!(lint_source("a.rs", src, &policy).is_empty());
        let src = "fn any() { x.load(Ordering::Relaxed); }\n";
        assert_eq!(lints_of(&lint_source("a.rs", src, &policy)), vec!["unlisted-ordering"]);
    }

    #[test]
    fn cmp_ordering_variants_are_ignored() {
        let src = "fn f() { match a.cmp(&b) { Ordering::Less => 1, _ => 2 }; }\n";
        assert!(lint_source("a.rs", src, &empty_policy()).is_empty());
    }

    #[test]
    fn ordering_import_evasion_is_flagged() {
        let src = "use std::sync::atomic::Ordering::Relaxed;\n";
        let f = lint_source("a.rs", src, &empty_policy());
        assert!(lints_of(&f).contains(&"ordering-use-import"));
    }

    #[test]
    fn static_mut_and_ptr_casts() {
        let src = "static mut X: u32 = 0;\nlet p = &x as *const u32;\n";
        let f = lint_source("crates/foo/src/a.rs", src, &empty_policy());
        assert_eq!(lints_of(&f), vec!["static-mut", "ptr-cast"]);

        let policy = Policy::parse(
            "[ptr-cast-allowlist]\nprefixes = [\"crates/shmem/\"]\n",
        )
        .unwrap();
        let f = lint_source("crates/shmem/src/a.rs", src, &policy);
        assert_eq!(lints_of(&f), vec!["static-mut"], "cast allowed, static mut never");
    }

    #[test]
    fn crate_roots_must_pin_unsafe_posture() {
        let f = lint_source("crates/actor/src/lib.rs", "fn f() {}\n", &empty_policy());
        assert_eq!(lints_of(&f), vec!["missing-forbid"]);
        assert!(lint_source(
            "crates/actor/src/lib.rs",
            "#![forbid(unsafe_code)]\nfn f() {}\n",
            &empty_policy()
        )
        .is_empty());
        let f = lint_source("crates/shmem/src/lib.rs", "fn f() {}\n", &empty_policy());
        assert_eq!(lints_of(&f), vec!["missing-forbid"]);
        assert!(lint_source(
            "crates/shmem/src/lib.rs",
            "#![deny(unsafe_op_in_unsafe_fn)]\nfn f() {}\n",
            &empty_policy()
        )
        .is_empty());
    }
}
