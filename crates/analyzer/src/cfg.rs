//! Intra-procedural control-flow graphs over [`crate::parser`] statement
//! trees, plus the two analyses the protocol checker needs: iterative
//! dominators and a generic forward-dataflow driver.
//!
//! Shape: block 0 is the entry, block 1 the exit. `return` (and `break`
//! outside a loop, which cannot happen in well-formed input) edges to the
//! exit. Statements following a diverging statement in the same sequence
//! are unreachable and are not emitted — the passes only report facts that
//! hold on *reachable* paths, so dropping dead code is sound.
//!
//! Branch edges can carry an [`Assume`]: when an `if`/`while` header ends
//! in a recognizable call test (`while c.advance(pe, done)`), the taken /
//! not-taken edges record the call and the branch polarity, letting a pass
//! refine its state differently on the two sides (the conveyor pass maps
//! `advance → false` to "terminated").

use crate::parser::{CallSite, CondTest, Stmt};

/// An event observed while executing a block, in order.
#[derive(Debug, Clone)]
pub enum Event {
    Call(CallSite),
    /// `let name = ..;` with the initializer's calls (already emitted as
    /// `Call` events before this) — lets a pass bind constructor results.
    Bind { name: String, init_calls: Vec<CallSite> },
}

/// A branch-edge refinement: the header test `call` evaluated to `branch`.
#[derive(Debug, Clone)]
pub struct Assume {
    pub test: CondTest,
    pub branch: bool,
}

#[derive(Debug, Clone)]
pub struct Edge {
    pub to: usize,
    pub assume: Option<Assume>,
}

#[derive(Debug, Default, Clone)]
pub struct Block {
    pub events: Vec<Event>,
    pub succs: Vec<Edge>,
}

#[derive(Debug, Clone)]
pub struct Cfg {
    pub blocks: Vec<Block>,
}

pub const ENTRY: usize = 0;
pub const EXIT: usize = 1;

struct LoopCtx {
    break_to: usize,
    continue_to: usize,
}

struct Builder {
    blocks: Vec<Block>,
    loops: Vec<LoopCtx>,
}

impl Builder {
    fn new_block(&mut self) -> usize {
        self.blocks.push(Block::default());
        self.blocks.len() - 1
    }
    fn edge(&mut self, from: usize, to: usize) {
        self.blocks[from].succs.push(Edge { to, assume: None });
    }
    fn edge_assume(&mut self, from: usize, to: usize, test: &Option<CondTest>, branch: bool) {
        let assume = test.as_ref().map(|t| Assume { test: t.clone(), branch });
        self.blocks[from].succs.push(Edge { to, assume });
    }

    /// Emit `stmts` starting in block `cur`; returns the block control
    /// falls out of, or `None` if every path diverged.
    fn emit(&mut self, stmts: &[Stmt], mut cur: usize) -> Option<usize> {
        for s in stmts {
            match s {
                Stmt::Call(c) => self.blocks[cur].events.push(Event::Call(c.clone())),
                Stmt::Let { name, init_calls } => {
                    if let Some(n) = name {
                        self.blocks[cur].events.push(Event::Bind {
                            name: n.clone(),
                            init_calls: init_calls.clone(),
                        });
                    }
                }
                Stmt::Closure(_) => {}
                Stmt::If { cond, test, then_b, else_b } => {
                    cur = self.emit(cond, cur)?;
                    let t = self.new_block();
                    let e = self.new_block();
                    let j = self.new_block();
                    self.edge_assume(cur, t, test, true);
                    self.edge_assume(cur, e, test, false);
                    if let Some(t_end) = self.emit(then_b, t) {
                        self.edge(t_end, j);
                    }
                    if let Some(e_end) = self.emit(else_b, e) {
                        self.edge(e_end, j);
                    }
                    cur = j;
                }
                Stmt::Loop { cond, test, body } => {
                    let header = self.new_block();
                    self.edge(cur, header);
                    let h_end = self.emit(cond, header).unwrap_or(header);
                    let b = self.new_block();
                    let x = self.new_block();
                    let endless = cond.is_empty() && test.is_none();
                    self.edge_assume(h_end, b, test, true);
                    if !endless {
                        // `loop {}` has no fallthrough exit; `while`/`for`
                        // exit when the test fails / iterator ends.
                        self.edge_assume(h_end, x, test, false);
                    }
                    self.loops.push(LoopCtx { break_to: x, continue_to: header });
                    if let Some(b_end) = self.emit(body, b) {
                        self.edge(b_end, header);
                    }
                    self.loops.pop();
                    cur = x;
                }
                Stmt::Match { scrutinee, arms } => {
                    cur = self.emit(scrutinee, cur)?;
                    let j = self.new_block();
                    if arms.is_empty() {
                        self.edge(cur, j);
                    }
                    for arm in arms {
                        let a = self.new_block();
                        self.edge(cur, a);
                        if let Some(a_end) = self.emit(arm, a) {
                            self.edge(a_end, j);
                        }
                    }
                    cur = j;
                }
                Stmt::Return => {
                    self.edge(cur, EXIT);
                    return None;
                }
                Stmt::Break => {
                    let to = self.loops.last().map(|l| l.break_to).unwrap_or(EXIT);
                    self.edge(cur, to);
                    return None;
                }
                Stmt::Continue => {
                    let to = self.loops.last().map(|l| l.continue_to).unwrap_or(EXIT);
                    self.edge(cur, to);
                    return None;
                }
            }
        }
        Some(cur)
    }
}

/// Build a CFG from a scope body.
pub fn build(body: &[Stmt]) -> Cfg {
    let mut b = Builder { blocks: vec![Block::default(), Block::default()], loops: Vec::new() };
    if let Some(end) = b.emit(body, ENTRY) {
        b.edge(end, EXIT);
    }
    Cfg { blocks: b.blocks }
}

impl Cfg {
    /// Blocks reachable from entry, in reverse postorder.
    pub fn reverse_postorder(&self) -> Vec<usize> {
        let mut visited = vec![false; self.blocks.len()];
        let mut post = Vec::new();
        // Iterative DFS with an explicit stack of (block, next-succ-index).
        let mut stack: Vec<(usize, usize)> = vec![(ENTRY, 0)];
        visited[ENTRY] = true;
        while let Some(&mut (b, ref mut next)) = stack.last_mut() {
            if let Some(e) = self.blocks[b].succs.get(*next) {
                *next += 1;
                if !visited[e.to] {
                    visited[e.to] = true;
                    stack.push((e.to, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        post.reverse();
        post
    }

    /// Immediate dominators (Cooper/Harvey/Kennedy iterative algorithm).
    /// `idom[ENTRY] == ENTRY`; unreachable blocks get `None`.
    pub fn dominators(&self) -> Vec<Option<usize>> {
        let rpo = self.reverse_postorder();
        let mut rpo_index = vec![usize::MAX; self.blocks.len()];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_index[b] = i;
        }
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); self.blocks.len()];
        for (b, blk) in self.blocks.iter().enumerate() {
            if rpo_index[b] == usize::MAX {
                continue;
            }
            for e in &blk.succs {
                preds[e.to].push(b);
            }
        }
        let mut idom: Vec<Option<usize>> = vec![None; self.blocks.len()];
        idom[ENTRY] = Some(ENTRY);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<usize> = None;
                for &p in &preds[b] {
                    if idom[p].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_index, p, cur),
                    });
                }
                if new_idom.is_some() && idom[b] != new_idom {
                    idom[b] = new_idom;
                    changed = true;
                }
            }
        }
        idom
    }

    /// Whether block `a` dominates block `b` (per `dominators()` output).
    pub fn dominates(idom: &[Option<usize>], a: usize, b: usize) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match idom[cur] {
                Some(d) if d != cur => cur = d,
                _ => return false,
            }
        }
    }
}

fn intersect(idom: &[Option<usize>], rpo_index: &[usize], mut a: usize, mut b: usize) -> usize {
    while a != b {
        while rpo_index[a] > rpo_index[b] {
            a = idom[a].unwrap_or(a);
        }
        while rpo_index[b] > rpo_index[a] {
            b = idom[b].unwrap_or(b);
        }
    }
    a
}

/// A join-semilattice fact for forward dataflow.
pub trait Fact: Clone + PartialEq {
    fn join(&self, other: &Self) -> Self;
}

/// Run forward dataflow to a fixpoint. Returns the in-fact of every block
/// (`None` = unreachable). `transfer(block, fact)` applies the block's
/// events; `refine(fact, edge)` applies a branch assumption to the fact
/// flowing along `edge`.
pub fn forward<F: Fact>(
    cfg: &Cfg,
    entry: F,
    mut transfer: impl FnMut(usize, &F) -> F,
    refine: impl Fn(&F, &Edge) -> F,
) -> Vec<Option<F>> {
    let rpo = cfg.reverse_postorder();
    let mut input: Vec<Option<F>> = vec![None; cfg.blocks.len()];
    input[ENTRY] = Some(entry);
    let mut changed = true;
    // The lattices used here are finite and joins are monotone, so this
    // terminates; the sweep count is bounded by lattice height x depth.
    let mut sweeps = 0usize;
    while changed && sweeps < 1000 {
        changed = false;
        sweeps += 1;
        for &b in &rpo {
            let Some(in_fact) = input[b].clone() else { continue };
            let out = transfer(b, &in_fact);
            for e in &cfg.blocks[b].succs {
                let along = refine(&out, e);
                let merged = match &input[e.to] {
                    None => along,
                    Some(existing) => existing.join(&along),
                };
                if input[e.to].as_ref() != Some(&merged) {
                    input[e.to] = Some(merged);
                    changed = true;
                }
            }
        }
    }
    input
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_source, ScopeKind};

    fn cfg_of(src: &str) -> Cfg {
        let scopes = parse_source(src);
        let f = scopes
            .into_iter()
            .find(|s| matches!(s.kind, ScopeKind::Fn { .. }))
            .expect("fn scope");
        build(&f.body)
    }

    fn call_block(cfg: &Cfg, method: &str) -> usize {
        cfg.blocks
            .iter()
            .position(|b| {
                b.events.iter().any(
                    |e| matches!(e, Event::Call(c) if c.method == method),
                )
            })
            .unwrap_or_else(|| panic!("no block calls {method}"))
    }

    #[test]
    fn straight_line_is_one_block() {
        let cfg = cfg_of("fn f() { a.x(); b.y(); }");
        let rpo = cfg.reverse_postorder();
        assert!(rpo.contains(&ENTRY) && rpo.contains(&EXIT));
        assert_eq!(call_block(&cfg, "x"), call_block(&cfg, "y"));
    }

    #[test]
    fn if_branches_join() {
        let cfg = cfg_of("fn f() { if c() { a.t(); } else { a.e(); } a.after(); }");
        let t = call_block(&cfg, "t");
        let e = call_block(&cfg, "e");
        let after = call_block(&cfg, "after");
        assert_ne!(t, e);
        let idom = cfg.dominators();
        // The join block is dominated by the branch head, not by either arm.
        assert!(!Cfg::dominates(&idom, t, after));
        assert!(!Cfg::dominates(&idom, e, after));
    }

    #[test]
    fn while_loop_has_back_edge_and_assumes() {
        let cfg = cfg_of("fn f() { while c.advance(pe, true) { c.pull(); } c.reset(pe); }");
        let header = call_block(&cfg, "advance");
        let body = call_block(&cfg, "pull");
        let after = call_block(&cfg, "reset");
        // Header branches to body (assume true) and exit (assume false).
        let mut saw_true = false;
        let mut saw_false = false;
        for e in &cfg.blocks[header].succs {
            if let Some(a) = &e.assume {
                assert_eq!(a.test.call.method, "advance");
                if a.branch {
                    saw_true = true;
                    assert_eq!(e.to, body);
                } else {
                    saw_false = true;
                }
            }
        }
        assert!(saw_true && saw_false);
        // Loop body edges back to header.
        assert!(cfg.blocks[body].succs.iter().any(|e| e.to == header));
        let idom = cfg.dominators();
        assert!(Cfg::dominates(&idom, header, after));
        assert!(!Cfg::dominates(&idom, body, after));
    }

    #[test]
    fn break_exits_loop() {
        let cfg = cfg_of("fn f() { loop { if done() { break; } a.work(); } a.after(); }");
        let work = call_block(&cfg, "work");
        let after = call_block(&cfg, "after");
        let rpo = cfg.reverse_postorder();
        assert!(rpo.contains(&work));
        assert!(rpo.contains(&after));
        let idom = cfg.dominators();
        assert!(!Cfg::dominates(&idom, work, after), "work is skippable");
    }

    #[test]
    fn return_makes_following_code_unreachable() {
        let cfg = cfg_of("fn f() { if c() { return; } a.x(); }");
        let x = call_block(&cfg, "x");
        let rpo = cfg.reverse_postorder();
        assert!(rpo.contains(&x));
        // But code after an unconditional return is not emitted at all.
        let cfg2 = cfg_of("fn f() { return; a.x(); }");
        assert!(
            !cfg2.blocks.iter().any(|b| b
                .events
                .iter()
                .any(|e| matches!(e, Event::Call(c) if c.method == "x"))),
            "statements after unconditional return are dropped"
        );
    }

    #[test]
    fn dominators_on_diamond() {
        let cfg = cfg_of(
            "fn f() { pre.p(); if c() { a.t(); } else { a.e(); } post.q(); }",
        );
        let pre = call_block(&cfg, "p");
        let post = call_block(&cfg, "q");
        let idom = cfg.dominators();
        assert!(Cfg::dominates(&idom, pre, post));
        assert!(Cfg::dominates(&idom, ENTRY, post));
    }

    #[derive(Clone, PartialEq, Debug)]
    struct Count(u32);
    impl Fact for Count {
        fn join(&self, o: &Self) -> Self {
            Count(self.0.max(o.0))
        }
    }

    #[test]
    fn forward_dataflow_reaches_fixpoint() {
        // Count calls along paths; loop must not diverge (capped join).
        let cfg = cfg_of("fn f() { while c() { a.x(); } a.y(); }");
        let facts = forward(
            &cfg,
            Count(0),
            |b, f| Count((f.0 + cfg.blocks[b].events.len() as u32).min(10)),
            |f, _| f.clone(),
        );
        let y = call_block(&cfg, "y");
        assert!(facts[y].is_some(), "exit-side block reachable");
        assert!(facts[EXIT].is_some());
    }
}
