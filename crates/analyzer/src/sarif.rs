//! SARIF 2.1.0 emitter for CI annotation.
//!
//! Hand-rolled JSON (the registry is offline) producing the minimal valid
//! static-analysis log: `$schema`/`version`, one `run` with a
//! `tool.driver` that declares every rule (id + short description), and
//! one `result` per finding with `ruleId`, `level`, `message.text` (the
//! message plus the fix-it hint), and a `physicalLocation` with
//! `artifactLocation.uri` + `region.startLine`. GitHub's SARIF ingestion
//! and the 2.1.0 schema both accept this shape; the self-test in
//! `tests/sarif_output.rs` structurally validates the required properties.

use crate::lints::Finding;

/// Escape a string for a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Rule metadata: every lint the analyzer can emit, with a one-line help
/// text (shown by SARIF viewers next to the finding).
pub const RULES: [(&str, &str); 16] = [
    ("undocumented-unsafe", "unsafe blocks must carry a SAFETY comment"),
    ("lock-outside-allowlist", "lock types are forbidden outside the policy allowlist"),
    ("unlisted-ordering", "atomic orderings must be registered in policy.toml"),
    ("ordering-use-import", "Ordering variants must be spelled at the call site"),
    ("static-mut", "static mut is forbidden"),
    ("ptr-cast", "raw-pointer casts are restricted to allowlisted crates"),
    ("missing-forbid", "crate roots must pin their unsafe posture"),
    ("push-without-rearm", "conveyor push after termination without a collective reset"),
    ("pull-outside-drain", "conveyor pull outside the advance/drain loop"),
    ("rearm-before-terminate", "conveyor reset before the exchange terminated"),
    ("checkpoint-not-quiesced", "checkpoint cut while a put_nbi may be in flight"),
    ("nbi-read-before-quiet", "symmetric-array read racing a pending put_nbi"),
    ("blocking-in-handler", "mailbox handlers must not reach blocking calls"),
    ("orphaned-release", "Release publish with no Acquire consume on the symbol"),
    ("orphaned-acquire", "Acquire consume with no Release publish on the symbol"),
    ("bad-waiver", "inline waivers must carry a justification"),
];

/// Render findings as a SARIF 2.1.0 log.
pub fn emit(findings: &[Finding]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(
        "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n",
    );
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"fabsp-analyzer\",\n");
    out.push_str("          \"informationUri\": \"https://github.com/\",\n");
    out.push_str("          \"rules\": [\n");
    for (i, (id, desc)) in RULES.iter().enumerate() {
        out.push_str(&format!(
            "            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}}}{}\n",
            json_escape(id),
            json_escape(desc),
            if i + 1 < RULES.len() { "," } else { "" }
        ));
    }
    out.push_str("          ]\n        }\n      },\n");
    out.push_str("      \"results\": [\n");
    for (i, f) in findings.iter().enumerate() {
        let text = if f.hint.is_empty() {
            f.message.clone()
        } else {
            format!("{} Fix: {}", f.message, f.hint)
        };
        out.push_str(&format!(
            "        {{\"ruleId\": \"{}\", \"level\": \"error\", \"message\": {{\"text\": \"{}\"}}, \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \"region\": {{\"startLine\": {}}}}}}}]}}{}\n",
            json_escape(f.lint),
            json_escape(&text),
            json_escape(&f.file),
            f.line.max(1),
            if i + 1 < findings.len() { "," } else { "" }
        ));
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

/// A minimal JSON value, for the structural self-validation tests.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
    pub fn idx(&self, i: usize) -> Option<&Json> {
        match self {
            Json::Arr(items) => items.get(i),
            _ => None,
        }
    }
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parse a JSON document (strict enough for round-trip validation).
pub fn json_parse(src: &str) -> Result<Json, String> {
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let v = parse_value(&chars, &mut i)?;
    skip_ws(&chars, &mut i);
    if i != chars.len() {
        return Err(format!("trailing data at offset {i}"));
    }
    Ok(v)
}

fn skip_ws(chars: &[char], i: &mut usize) {
    while *i < chars.len() && chars[*i].is_whitespace() {
        *i += 1;
    }
}

fn parse_value(chars: &[char], i: &mut usize) -> Result<Json, String> {
    skip_ws(chars, i);
    match chars.get(*i) {
        None => Err("unexpected end of input".into()),
        Some('{') => {
            *i += 1;
            let mut fields = Vec::new();
            skip_ws(chars, i);
            if chars.get(*i) == Some(&'}') {
                *i += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(chars, i);
                let Json::Str(key) = parse_value(chars, i)? else {
                    return Err("object key must be a string".into());
                };
                skip_ws(chars, i);
                if chars.get(*i) != Some(&':') {
                    return Err(format!("expected `:` at offset {i}", i = *i));
                }
                *i += 1;
                let val = parse_value(chars, i)?;
                fields.push((key, val));
                skip_ws(chars, i);
                match chars.get(*i) {
                    Some(',') => *i += 1,
                    Some('}') => {
                        *i += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at offset {i}", i = *i)),
                }
            }
        }
        Some('[') => {
            *i += 1;
            let mut items = Vec::new();
            skip_ws(chars, i);
            if chars.get(*i) == Some(&']') {
                *i += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(chars, i)?);
                skip_ws(chars, i);
                match chars.get(*i) {
                    Some(',') => *i += 1,
                    Some(']') => {
                        *i += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at offset {i}", i = *i)),
                }
            }
        }
        Some('"') => {
            *i += 1;
            let mut s = String::new();
            while let Some(&c) = chars.get(*i) {
                *i += 1;
                match c {
                    '"' => return Ok(Json::Str(s)),
                    '\\' => {
                        let Some(&e) = chars.get(*i) else {
                            return Err("unterminated escape".into());
                        };
                        *i += 1;
                        match e {
                            '"' => s.push('"'),
                            '\\' => s.push('\\'),
                            '/' => s.push('/'),
                            'n' => s.push('\n'),
                            'r' => s.push('\r'),
                            't' => s.push('\t'),
                            'b' => s.push('\u{8}'),
                            'f' => s.push('\u{c}'),
                            'u' => {
                                let hex: String = chars[*i..(*i + 4).min(chars.len())]
                                    .iter()
                                    .collect();
                                if hex.len() != 4 {
                                    return Err("short \\u escape".into());
                                }
                                *i += 4;
                                let code = u32::from_str_radix(&hex, 16)
                                    .map_err(|e| format!("bad \\u escape: {e}"))?;
                                s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            }
                            other => return Err(format!("bad escape `\\{other}`")),
                        }
                    }
                    c => s.push(c),
                }
            }
            Err("unterminated string".into())
        }
        Some(c) if *c == '-' || c.is_ascii_digit() => {
            let start = *i;
            *i += 1;
            while chars
                .get(*i)
                .is_some_and(|c| c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-'))
            {
                *i += 1;
            }
            let text: String = chars[start..*i].iter().collect();
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|e| format!("bad number `{text}`: {e}"))
        }
        Some('t') if chars[*i..].starts_with(&['t', 'r', 'u', 'e']) => {
            *i += 4;
            Ok(Json::Bool(true))
        }
        Some('f') if chars[*i..].starts_with(&['f', 'a', 'l', 's', 'e']) => {
            *i += 5;
            Ok(Json::Bool(false))
        }
        Some('n') if chars[*i..].starts_with(&['n', 'u', 'l', 'l']) => {
            *i += 4;
            Ok(Json::Null)
        }
        Some(c) => Err(format!("unexpected `{c}` at offset {i}", i = *i)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Finding> {
        vec![
            Finding {
                file: "crates/x/src/a.rs".into(),
                line: 7,
                lint: "push-without-rearm",
                message: "push after \"termination\"".into(),
                hint: "call reset".into(),
            },
            Finding {
                file: "tests/b.rs".into(),
                line: 1,
                lint: "orphaned-release",
                message: "no acquire\nanywhere".into(),
                hint: String::new(),
            },
        ]
    }

    #[test]
    fn emits_parseable_json_with_schema_and_version() {
        let log = emit(&sample());
        let doc = json_parse(&log).expect("valid JSON");
        assert_eq!(
            doc.get("$schema").and_then(Json::as_str).map(|s| s.contains("sarif-schema-2.1.0")),
            Some(true)
        );
        assert_eq!(doc.get("version").and_then(Json::as_str), Some("2.1.0"));
    }

    #[test]
    fn results_carry_rule_location_and_hint() {
        let log = emit(&sample());
        let doc = json_parse(&log).unwrap();
        let run = doc.get("runs").and_then(|r| r.idx(0)).unwrap();
        let results = run.get("results").and_then(Json::as_arr).unwrap();
        assert_eq!(results.len(), 2);
        let r0 = &results[0];
        assert_eq!(r0.get("ruleId").and_then(Json::as_str), Some("push-without-rearm"));
        let msg = r0.get("message").and_then(|m| m.get("text")).and_then(Json::as_str).unwrap();
        assert!(msg.contains("push after \"termination\""));
        assert!(msg.contains("Fix: call reset"));
        let loc = r0
            .get("locations")
            .and_then(|l| l.idx(0))
            .and_then(|l| l.get("physicalLocation"))
            .unwrap();
        assert_eq!(
            loc.get("artifactLocation").and_then(|a| a.get("uri")).and_then(Json::as_str),
            Some("crates/x/src/a.rs")
        );
        assert_eq!(
            loc.get("region").and_then(|r| r.get("startLine")).and_then(Json::as_num),
            Some(7.0)
        );
    }

    #[test]
    fn every_emitted_result_rule_is_declared_by_the_driver() {
        let log = emit(&sample());
        let doc = json_parse(&log).unwrap();
        let run = doc.get("runs").and_then(|r| r.idx(0)).unwrap();
        let rules = run
            .get("tool")
            .and_then(|t| t.get("driver"))
            .and_then(|d| d.get("rules"))
            .and_then(Json::as_arr)
            .unwrap();
        let declared: Vec<&str> = rules
            .iter()
            .filter_map(|r| r.get("id").and_then(Json::as_str))
            .collect();
        for r in run.get("results").and_then(Json::as_arr).unwrap() {
            let id = r.get("ruleId").and_then(Json::as_str).unwrap();
            assert!(declared.contains(&id), "undeclared rule {id}");
        }
        // The driver has a name, as the schema requires.
        let name = run
            .get("tool")
            .and_then(|t| t.get("driver"))
            .and_then(|d| d.get("name"))
            .and_then(Json::as_str);
        assert_eq!(name, Some("fabsp-analyzer"));
    }

    #[test]
    fn empty_findings_still_valid() {
        let doc = json_parse(&emit(&[])).unwrap();
        let results = doc
            .get("runs")
            .and_then(|r| r.idx(0))
            .and_then(|r| r.get("results"))
            .and_then(Json::as_arr)
            .unwrap();
        assert!(results.is_empty());
    }
}
