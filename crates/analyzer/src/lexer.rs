//! A minimal Rust surface lexer: just enough to separate *code* from
//! *comments and literals* without a real parser (the build environment has
//! no registry access, so `syn` is not an option — and the lints only need
//! token-level facts anyway).
//!
//! [`scan`] produces a [`ScannedFile`]:
//!
//! - `code` — a copy of the source in which every comment and every
//!   string/char-literal *body* has been replaced by spaces (newlines kept,
//!   quote characters kept), so byte offsets and line numbers still line up
//!   with the original. All token searches run over this text and can never
//!   match inside a comment, a `"string"`, or a `'c'` literal.
//! - `comments` — each comment's line span and text, for the SAFETY lint.
//!
//! Handled: `//` line comments, nested `/* */` block comments, `"…"`
//! strings with escapes, `r"…"`/`r#"…"#` raw strings, byte/char literals,
//! raw identifiers (`r#unsafe` is blanked — it is *not* the keyword), and
//! the `'lifetime` ambiguity (a `'` followed by an identifier and no
//! closing `'` is a lifetime, not a char literal).

/// One comment in the original source.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub start_line: usize,
    /// 1-based line the comment ends on.
    pub end_line: usize,
    /// Full comment text including delimiters.
    pub text: String,
}

/// The result of scanning one source file.
#[derive(Debug)]
pub struct ScannedFile {
    /// Source with comments and literal bodies blanked out (same length,
    /// same line structure as the original).
    pub code: String,
    /// All comments, in source order.
    pub comments: Vec<Comment>,
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Scan `src` into code text and comments; see the module docs.
pub fn scan(src: &str) -> ScannedFile {
    let bytes: Vec<char> = src.chars().collect();
    let mut code = String::with_capacity(src.len());
    let mut comments = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;

    // Push `c` to the code text, tracking lines.
    macro_rules! keep {
        ($c:expr) => {{
            let c = $c;
            if c == '\n' {
                line += 1;
            }
            code.push(c);
        }};
    }
    // Blank out `c` in the code text (newlines survive so lines align).
    macro_rules! blank {
        ($c:expr) => {{
            let c = $c;
            if c == '\n' {
                line += 1;
                code.push('\n');
            } else {
                code.push(' ');
            }
        }};
    }

    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied();

        if c == '/' && next == Some('/') {
            let start_line = line;
            let mut text = String::new();
            while i < bytes.len() && bytes[i] != '\n' {
                text.push(bytes[i]);
                blank!(bytes[i]);
                i += 1;
            }
            comments.push(Comment {
                start_line,
                end_line: line,
                text,
            });
            continue;
        }

        if c == '/' && next == Some('*') {
            let start_line = line;
            let mut text = String::new();
            let mut depth = 0usize;
            while i < bytes.len() {
                let c = bytes[i];
                let next = bytes.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    depth += 1;
                    text.push('/');
                    text.push('*');
                    blank!('/');
                    blank!('*');
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    depth -= 1;
                    text.push('*');
                    text.push('/');
                    blank!('*');
                    blank!('/');
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    text.push(c);
                    blank!(c);
                    i += 1;
                }
            }
            comments.push(Comment {
                start_line,
                end_line: line,
                text,
            });
            continue;
        }

        if c == '"' {
            keep!('"');
            i += 1;
            while i < bytes.len() {
                let c = bytes[i];
                if c == '\\' {
                    blank!(c);
                    if let Some(&e) = bytes.get(i + 1) {
                        blank!(e);
                    }
                    i += 2;
                } else if c == '"' {
                    keep!('"');
                    i += 1;
                    break;
                } else {
                    blank!(c);
                    i += 1;
                }
            }
            continue;
        }

        // Raw strings: r"…" / r#"…"# / br#"…"# (with any # count).
        if (c == 'r' || c == 'b')
            && !(i > 0 && is_ident_char(bytes[i - 1]))
        {
            let mut j = i;
            if bytes[j] == 'b' && bytes.get(j + 1) == Some(&'r') {
                j += 1;
            }
            if bytes[j] == 'r' {
                let mut hashes = 0usize;
                let mut k = j + 1;
                while bytes.get(k) == Some(&'#') {
                    hashes += 1;
                    k += 1;
                }
                // Raw identifier, e.g. `r#unsafe` / `r#fn`: exactly one `#`
                // followed by an identifier, not a quote. The ident text is
                // explicitly *not* the keyword it spells, so blank the whole
                // thing — otherwise `let r#unsafe = 1;` leaks an `unsafe`
                // token into the blanked code and trips the lints.
                if j == i && hashes == 1 && bytes.get(k).is_some_and(|&c| is_ident_char(c)) {
                    blank!('r');
                    blank!('#');
                    i += 2;
                    while i < bytes.len() && is_ident_char(bytes[i]) {
                        blank!(bytes[i]);
                        i += 1;
                    }
                    continue;
                }
                if bytes.get(k) == Some(&'"') {
                    // Confirmed raw string from i..; emit prefix verbatim.
                    while i <= k {
                        keep!(bytes[i]);
                        i += 1;
                    }
                    // Body until `"` followed by `hashes` #'s.
                    'body: while i < bytes.len() {
                        if bytes[i] == '"' {
                            let mut m = 0usize;
                            while m < hashes && bytes.get(i + 1 + m) == Some(&'#') {
                                m += 1;
                            }
                            if m == hashes {
                                keep!('"');
                                i += 1;
                                for _ in 0..hashes {
                                    keep!('#');
                                    i += 1;
                                }
                                break 'body;
                            }
                        }
                        blank!(bytes[i]);
                        i += 1;
                    }
                    continue;
                }
            }
        }

        if c == '\'' {
            // Lifetime (or loop label) vs char literal: `'ident` with no
            // closing quote right after is a lifetime. A char literal is
            // `'x'`, `'\n'`, `'\u{…}'` — always closed within a few chars.
            let is_lifetime = match next {
                Some(n) if is_ident_char(n) && n != '\\' => {
                    // find end of ident run; lifetime iff not followed by '
                    let mut j = i + 1;
                    while j < bytes.len() && is_ident_char(bytes[j]) {
                        j += 1;
                    }
                    bytes.get(j) != Some(&'\'')
                }
                _ => false,
            };
            if is_lifetime {
                keep!('\'');
                i += 1;
                continue;
            }
            keep!('\'');
            i += 1;
            while i < bytes.len() {
                let c = bytes[i];
                if c == '\\' {
                    blank!(c);
                    if let Some(&e) = bytes.get(i + 1) {
                        blank!(e);
                    }
                    i += 2;
                } else if c == '\'' {
                    keep!('\'');
                    i += 1;
                    break;
                } else {
                    blank!(c);
                    i += 1;
                }
            }
            continue;
        }

        keep!(c);
        i += 1;
    }

    ScannedFile { code, comments }
}

/// Iterator over `(line, column, ident)` words in blanked code text.
pub fn idents(code: &str) -> Vec<(usize, usize, &str)> {
    let mut out = Vec::new();
    for (lineno, line) in code.lines().enumerate() {
        let mut start: Option<usize> = None;
        for (idx, c) in line.char_indices().chain([(line.len(), ' ')]) {
            if is_ident_char(c) {
                if start.is_none() {
                    start = Some(idx);
                }
            } else if let Some(s) = start.take() {
                let word = &line[s..idx];
                if !word.chars().all(|c| c.is_ascii_digit()) {
                    out.push((lineno + 1, s, word));
                }
            }
        }
    }
    out
}

/// For each `Ordering::Variant` occurrence in blanked code text, the
/// (1-based line, variant name).
pub fn ordering_sites(code: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (lineno, line) in code.lines().enumerate() {
        let mut from = 0usize;
        while let Some(pos) = line[from..].find("Ordering::") {
            let abs = from + pos;
            // Reject e.g. `MyOrdering::` by requiring a non-ident char before.
            let preceded_ok = abs == 0
                || !is_ident_char(line[..abs].chars().next_back().unwrap());
            let rest = &line[abs + "Ordering::".len()..];
            let variant: String = rest.chars().take_while(|&c| is_ident_char(c)).collect();
            if preceded_ok && !variant.is_empty() {
                out.push((lineno + 1, variant));
            }
            from = abs + "Ordering::".len();
        }
    }
    out
}

/// Track the innermost enclosing `fn` name for every line of blanked code.
///
/// Returns, for each 1-based line number, the name of the function whose
/// body covers it (`None` at module scope). Good enough for attributing a
/// lint site to a symbol: walks tokens, records `fn <name>` declarations,
/// and matches their brace spans.
pub fn enclosing_fns(code: &str) -> Vec<Option<String>> {
    let n_lines = code.lines().count();
    let mut per_line: Vec<Option<String>> = vec![None; n_lines + 2];

    // (name, depth at which the fn's body opened); popped when depth drops
    // back below it.
    let mut stack: Vec<(String, usize)> = Vec::new();
    let mut depth = 0usize;
    let mut pending_fn: Option<String> = None;
    let mut last_was_fn_kw = false;
    for (lineno, text) in code.lines().enumerate() {
        per_line[lineno + 1] = stack.last().map(|(n, _)| n.clone());
        let mut word = String::new();
        for c in text.chars().chain([' ']) {
            if is_ident_char(c) {
                word.push(c);
                continue;
            }
            if !word.is_empty() {
                if last_was_fn_kw {
                    pending_fn = Some(word.clone());
                    last_was_fn_kw = false;
                } else if word == "fn" {
                    last_was_fn_kw = true;
                }
                word.clear();
            }
            match c {
                '{' => {
                    depth += 1;
                    if let Some(name) = pending_fn.take() {
                        stack.push((name, depth));
                        // A fn opening on this line owns the line.
                        per_line[lineno + 1] = Some(stack.last().unwrap().0.clone());
                    }
                }
                '}' => {
                    if let Some((_, d)) = stack.last() {
                        if *d == depth {
                            stack.pop();
                        }
                    }
                    depth = depth.saturating_sub(1);
                }
                ';' => pending_fn = None,
                _ => {}
            }
        }
    }
    per_line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_are_blanked_but_lines_align() {
        let src = "let a = 1; // trailing\n/* block\nspans */ let b = 2;\n";
        let s = scan(src);
        assert_eq!(s.code.lines().count(), src.lines().count());
        assert!(!s.code.contains("trailing"));
        assert!(!s.code.contains("spans"));
        assert!(s.code.contains("let b = 2;"));
        assert_eq!(s.comments.len(), 2);
        assert_eq!(s.comments[0].start_line, 1);
        assert_eq!(s.comments[1].start_line, 2);
        assert_eq!(s.comments[1].end_line, 3);
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* a /* b */ c */ code";
        let s = scan(src);
        assert!(s.code.contains("code"));
        assert!(!s.code.contains('a'));
        assert_eq!(s.comments.len(), 1);
    }

    #[test]
    fn strings_and_chars_are_blanked() {
        let src = r#"let s = "Ordering::Relaxed // unsafe"; let c = '"'; let l: &'static str = s;"#;
        let s = scan(src);
        assert!(!s.code.contains("Relaxed"));
        assert!(!s.code.contains("unsafe"));
        assert!(s.code.contains("'static"), "lifetime survives: {}", s.code);
        assert!(s.comments.is_empty());
    }

    #[test]
    fn raw_strings_are_blanked() {
        let src = r##"let s = r#"unsafe { Mutex }"#; let t = 1;"##;
        let s = scan(src);
        assert!(!s.code.contains("Mutex"));
        assert!(s.code.contains("let t = 1;"));
    }

    #[test]
    fn ordering_sites_found_with_variant() {
        let src = "a.load(Ordering::Acquire);\nb.store(1, Ordering::Release); // Ordering::SeqCst\n";
        let s = scan(src);
        let sites = ordering_sites(&s.code);
        assert_eq!(
            sites,
            vec![(1, "Acquire".to_string()), (2, "Release".to_string())]
        );
    }

    #[test]
    fn enclosing_fn_attribution() {
        let src = "fn outer() {\n    let x = 1;\n    fn inner() {\n        let y = 2;\n    }\n    let z = 3;\n}\n";
        let s = scan(src);
        let fns = enclosing_fns(&s.code);
        assert_eq!(fns[2].as_deref(), Some("outer"));
        assert_eq!(fns[4].as_deref(), Some("inner"));
        assert_eq!(fns[6].as_deref(), Some("outer"));
    }

    #[test]
    fn nested_block_comments_cannot_leak_tokens() {
        // Regression: an `unsafe`/`Ordering::` token inside a *nested*
        // block comment must never reach the blanked code, even when the
        // nesting closes and reopens on one line.
        let src = "/* outer /* unsafe { Ordering::Relaxed } */ still /* Mutex */ out */ fn ok() {}\n";
        let s = scan(src);
        assert!(!s.code.contains("unsafe"));
        assert!(!s.code.contains("Ordering"));
        assert!(!s.code.contains("Mutex"));
        assert!(s.code.contains("fn ok() {}"));
        assert_eq!(s.comments.len(), 1);
        assert!(ordering_sites(&s.code).is_empty());
    }

    #[test]
    fn raw_strings_with_hashes_cannot_leak_tokens() {
        // Regression: raw strings whose body contains `"#`-like runs plus
        // `unsafe` / `Ordering::` text, at several hash depths.
        let src = concat!(
            "let a = r\"unsafe Ordering::Acquire\";\n",
            "let b = r##\"quote \"# inside, still unsafe Ordering::Release\"##;\n",
            "let c = br#\"bytes with Mutex and unsafe\"#;\n",
            "let after = 1;\n",
        );
        let s = scan(src);
        assert!(!s.code.contains("unsafe"));
        assert!(!s.code.contains("Mutex"));
        assert!(ordering_sites(&s.code).is_empty());
        assert!(s.code.contains("let after = 1;"), "scan resynced: {}", s.code);
        assert_eq!(s.code.lines().count(), src.lines().count());
    }

    #[test]
    fn raw_identifiers_are_not_keywords() {
        // `r#unsafe` is a plain identifier named "unsafe"; it must not
        // surface an `unsafe` token (the undocumented-unsafe lint keys on
        // exactly that word). Same for `r#fn`, which would corrupt
        // enclosing-fn attribution.
        let src = "let r#unsafe = 1;\nlet x = r#fn + r#unsafe;\nfn real() { let y = 2; }\n";
        let s = scan(src);
        assert!(!s.code.contains("unsafe"), "blanked: {}", s.code);
        let words: Vec<&str> = idents(&s.code).iter().map(|&(_, _, w)| w).collect();
        assert!(!words.contains(&"unsafe"));
        assert!(!words.contains(&"fn") || words.iter().filter(|&&w| w == "fn").count() == 1);
        let fns = enclosing_fns(&s.code);
        assert_eq!(fns[3].as_deref(), Some("real"));
        // A raw string still scans as a string right after (prefix overlap).
        let s2 = scan("let s = r#\"unsafe\"#; let r#unsafe = 2;");
        assert!(!s2.code.contains("unsafe"));
    }

    #[test]
    fn idents_split_on_boundaries() {
        let words = idents("MutexGuard Mutex foo_bar");
        let names: Vec<&str> = words.iter().map(|(_, _, w)| *w).collect();
        assert_eq!(names, vec!["MutexGuard", "Mutex", "foo_bar"]);
    }
}
