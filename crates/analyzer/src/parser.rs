//! A lightweight statement parser over the lexer's blanked code text.
//!
//! This is *not* a Rust grammar — it is the smallest recursive-descent
//! parser that recovers what the dataflow passes need from a source file:
//!
//! - every `fn` (free, impl, trait-default, nested) and every closure, as a
//!   separate [`Scope`] with a statement tree;
//! - control flow: `if`/`else`, `while`/`for`/`loop`, `match` arms,
//!   `return`/`break`/`continue`;
//! - call events, with the receiver chain (`c.pull()` → base `c`), the
//!   path qualifier (`Conveyor::<u64>::new(..)` → qualifier `Conveyor`),
//!   and the atomic `Ordering::*` arguments used inside the call;
//! - `let` bindings (`let mut c = Conveyor::new(..)`), so a pass can tell
//!   which local a constructor call was bound to.
//!
//! The parser leans on two Rust grammar facts to stay simple: struct
//! literals are illegal in `if`/`while`/`for`/`match` header expressions
//! (so the first `{` at paren-depth zero opens the block), and closure
//! parameter lists cannot contain a top-level `|`.
//!
//! Everything it cannot classify it skips without error: the output is a
//! best-effort event tree, and the passes built on it only act on
//! *definitely* recognized shapes.

use crate::lexer;

/// One token of blanked code: an identifier/number word or a punctuation
/// run (compound operators like `::`, `=>`, `->`, `||` kept together).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    pub text: String,
    pub line: usize,
    pub is_ident: bool,
}

/// Tokenize blanked code text. Quote characters left behind by the lexer's
/// literal blanking (and the `'` of lifetimes) are dropped.
pub fn tokenize(code: &str) -> Vec<Tok> {
    let mut out = Vec::new();
    let mut line = 1usize;
    let chars: Vec<char> = code.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() || c == '"' || c == '\'' {
            i += 1;
            continue;
        }
        if c.is_alphanumeric() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            out.push(Tok {
                text: chars[start..i].iter().collect(),
                line,
                is_ident: true,
            });
            continue;
        }
        // Punctuation: greedily take known compound operators.
        let two: String = chars[i..chars.len().min(i + 2)].iter().collect();
        let three: String = chars[i..chars.len().min(i + 3)].iter().collect();
        const THREE: &[&str] = &["..=", "<<=", ">>="];
        const TWO: &[&str] = &[
            "::", "=>", "->", "||", "&&", "==", "!=", "<=", ">=", "+=", "-=", "*=", "/=", "|=",
            "&=", "^=", "%=", "..", "<<", ">>",
        ];
        if THREE.contains(&three.as_str()) {
            out.push(Tok { text: three, line, is_ident: false });
            i += 3;
        } else if TWO.contains(&two.as_str()) {
            out.push(Tok { text: two, line, is_ident: false });
            i += 2;
        } else {
            out.push(Tok { text: c.to_string(), line, is_ident: false });
            i += 1;
        }
    }
    out
}

/// A call event: `base.method(..)` or `Qualifier::method(..)` or `method(..)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// Dotted receiver chain, e.g. `c` in `c.pull()`, `conveyor` in
    /// `mailbox.conveyor.pull()` (the chain is cut at any non-ident link
    /// such as an index expression). `None` for free/path calls.
    pub base: Option<String>,
    /// Last `::` path segment before the method, e.g. `Conveyor` in
    /// `Conveyor::<u64>::new(..)`. `None` for plain method/free calls.
    pub qualifier: Option<String>,
    pub method: String,
    pub line: usize,
    /// `Ordering::Variant` names appearing among this call's own arguments
    /// (not inside nested calls).
    pub orderings: Vec<String>,
}

/// The trailing condition test of an `if`/`while` header, when the header
/// ends in `[!] chain(..)` — lets the CFG refine state on branch edges
/// (e.g. `while c.advance(pe, done)`: body edge = still active, exit edge
/// = terminated).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CondTest {
    pub call: CallSite,
    pub negated: bool,
}

/// One statement in a scope body.
#[derive(Debug, Clone)]
pub enum Stmt {
    /// A call event, in evaluation order.
    Call(CallSite),
    /// `let name = ..;` — the binding name (None for destructuring
    /// patterns) and the calls evaluated in the initializer, in order.
    /// Call events inside the initializer are *also* emitted as separate
    /// `Stmt::Call`s before this marker; `Let` only records the binding.
    Let { name: Option<String>, init_calls: Vec<CallSite> },
    If { cond: Vec<Stmt>, test: Option<CondTest>, then_b: Vec<Stmt>, else_b: Vec<Stmt> },
    /// `while`/`for`/`loop`. `cond` is empty for `loop`; `test` is the
    /// trailing header call when recognizable.
    Loop { cond: Vec<Stmt>, test: Option<CondTest>, body: Vec<Stmt> },
    Match { scrutinee: Vec<Stmt>, arms: Vec<Vec<Stmt>> },
    /// A closure body. Not part of the enclosing control flow (it runs
    /// whenever the callee invokes it); analyzed as its own scope.
    Closure(usize),
    Return,
    Break,
    Continue,
}

/// What kind of scope a body is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScopeKind {
    /// A named `fn`.
    Fn { name: String },
    /// A closure; `passed_to` is the method/function call it was an
    /// argument of — `selector` for `prof.selector(1, move |..| ..)`,
    /// `Selector::new` for `Selector::new(pe, 1, cfg, move |..| ..)`
    /// (qualified form when the callee was a path call).
    Closure { passed_to: Option<String>, enclosing_fn: Option<String> },
}

/// One analyzable body: a function or closure.
#[derive(Debug, Clone)]
pub struct Scope {
    pub kind: ScopeKind,
    pub line: usize,
    pub body: Vec<Stmt>,
}

/// Parse blanked code into scopes. Closures referenced by
/// [`Stmt::Closure`] indices live in the same returned vector.
pub fn parse_file(code: &str) -> Vec<Scope> {
    let toks = tokenize(code);
    let mut p = Parser { toks: &toks, i: 0, scopes: Vec::new(), fn_stack: Vec::new() };
    while p.i < p.toks.len() {
        if p.at_fn_decl() {
            p.parse_fn();
        } else {
            p.i += 1;
        }
    }
    p.scopes
}

struct Parser<'t> {
    toks: &'t [Tok],
    i: usize,
    scopes: Vec<Scope>,
    fn_stack: Vec<String>,
}

impl<'t> Parser<'t> {
    fn peek(&self, off: usize) -> Option<&Tok> {
        self.toks.get(self.i + off)
    }
    fn at(&self, text: &str) -> bool {
        self.peek(0).is_some_and(|t| t.text == text)
    }

    /// `fn` keyword followed by a name (not an `fn(..)` pointer type).
    fn at_fn_decl(&self) -> bool {
        self.at("fn") && self.peek(1).is_some_and(|t| t.is_ident)
    }

    /// Parse `fn name .. { body }` (or a bodiless trait signature).
    fn parse_fn(&mut self) {
        let name = self.peek(1).map(|t| t.text.clone()).unwrap_or_default();
        let line = self.peek(0).map(|t| t.line).unwrap_or(0);
        self.i += 2;
        // Skip the signature to the body `{` or a terminating `;`.
        while let Some(t) = self.peek(0) {
            match t.text.as_str() {
                "{" => break,
                ";" => {
                    self.i += 1;
                    return;
                }
                _ => self.i += 1,
            }
        }
        if self.peek(0).is_none() {
            return;
        }
        self.i += 1; // consume `{`
        self.fn_stack.push(name.clone());
        let body = self.parse_block();
        self.fn_stack.pop();
        self.scopes.push(Scope { kind: ScopeKind::Fn { name }, line, body });
    }

    /// Parse statements until the matching `}` (consumed).
    fn parse_block(&mut self) -> Vec<Stmt> {
        let mut out = Vec::new();
        while let Some(t) = self.peek(0) {
            match t.text.as_str() {
                "}" => {
                    self.i += 1;
                    return out;
                }
                ";" => self.i += 1,
                "fn" if self.at_fn_decl() => self.parse_fn(),
                "if" => {
                    let s = self.parse_if();
                    out.push(s);
                }
                "while" => {
                    self.i += 1;
                    // `while let pat = expr` — the header is still scanned
                    // the same way; `let` is just a token in it.
                    let (cond, test) = self.parse_header();
                    let body = if self.at("{") {
                        self.i += 1;
                        self.parse_block()
                    } else {
                        Vec::new()
                    };
                    out.push(Stmt::Loop { cond, test, body });
                }
                "for" => {
                    self.i += 1;
                    // Skip the loop pattern up to `in`.
                    while let Some(t) = self.peek(0) {
                        if t.text == "in" || t.text == "{" {
                            break;
                        }
                        self.i += 1;
                    }
                    if self.at("in") {
                        self.i += 1;
                    }
                    let (cond, _) = self.parse_header();
                    let body = if self.at("{") {
                        self.i += 1;
                        self.parse_block()
                    } else {
                        Vec::new()
                    };
                    out.push(Stmt::Loop { cond, test: None, body });
                }
                "loop" => {
                    self.i += 1;
                    if self.at("{") {
                        self.i += 1;
                        let body = self.parse_block();
                        out.push(Stmt::Loop { cond: Vec::new(), test: None, body });
                    }
                }
                "match" => {
                    let s = self.parse_match();
                    out.push(s);
                }
                "let" => {
                    let stmts = self.parse_let();
                    out.extend(stmts);
                }
                "return" => {
                    self.i += 1;
                    let mut events = Vec::new();
                    self.scan_expr(&mut events, &[";"], None);
                    out.extend(events);
                    out.push(Stmt::Return);
                }
                "break" => {
                    self.i += 1;
                    let mut events = Vec::new();
                    self.scan_expr(&mut events, &[";"], None);
                    out.extend(events);
                    out.push(Stmt::Break);
                }
                "continue" => {
                    self.i += 1;
                    let mut events = Vec::new();
                    self.scan_expr(&mut events, &[";"], None);
                    out.extend(events);
                    out.push(Stmt::Continue);
                }
                "unsafe" | "{" => {
                    if t.text == "unsafe" {
                        self.i += 1;
                        if !self.at("{") {
                            continue;
                        }
                    }
                    self.i += 1;
                    let inner = self.parse_block();
                    out.extend(inner);
                }
                "#" => {
                    // Attribute: `#[..]` — skip the bracket group.
                    self.i += 1;
                    if self.at("[") {
                        self.skip_group("[", "]");
                    }
                }
                _ => {
                    // Expression statement.
                    let mut events = Vec::new();
                    self.scan_expr(&mut events, &[";"], None);
                    out.extend(events);
                }
            }
        }
        out
    }

    fn parse_if(&mut self) -> Stmt {
        self.i += 1; // `if`
        let (cond, test) = self.parse_header();
        let then_b = if self.at("{") {
            self.i += 1;
            self.parse_block()
        } else {
            Vec::new()
        };
        let mut else_b = Vec::new();
        if self.at("else") {
            self.i += 1;
            if self.at("if") {
                else_b.push(self.parse_if());
            } else if self.at("{") {
                self.i += 1;
                else_b = self.parse_block();
            }
        }
        Stmt::If { cond, test, then_b, else_b }
    }

    /// Scan an `if`/`while`/`for`-header expression up to its block `{`
    /// (not consumed). Returns the call events and, when the header ends
    /// in `[!] chain(..)`, that trailing call as a branch test.
    fn parse_header(&mut self) -> (Vec<Stmt>, Option<CondTest>) {
        let mut events = Vec::new();
        let start = self.i;
        self.scan_expr(&mut events, &["{"], None);
        let end = self.i; // at `{` (or EOF)
        // Trailing-test detection: last header token is `)` closing a call
        // whose events we recorded; check whether the whole tail from the
        // call's base is preceded by `!`.
        let mut test = None;
        if let Some(Stmt::Call(last)) = events.iter().rev().find(|s| matches!(s, Stmt::Call(_))) {
            if end > start && self.toks.get(end - 1).is_some_and(|t| t.text == ")") {
                // Find the `!` by scanning header tokens for one directly
                // before the call chain's first token.
                let negated = self.header_negates(start, end, last);
                test = Some(CondTest { call: last.clone(), negated });
            }
        }
        (events, test)
    }

    /// Whether the header `start..end` applies `!` to the trailing call.
    fn header_negates(&self, start: usize, end: usize, call: &CallSite) -> bool {
        // Walk back from `end` to the token that starts the call chain
        // (the base ident, qualifier, or method name), then look one
        // before it.
        let first_name = call
            .base
            .as_deref()
            .and_then(|b| b.split('.').next())
            .or(call.qualifier.as_deref())
            .unwrap_or(&call.method);
        let mut j = end;
        while j > start {
            j -= 1;
            if self.toks[j].is_ident && self.toks[j].text == first_name {
                return j > start && self.toks[j - 1].text == "!";
            }
        }
        false
    }

    fn parse_match(&mut self) -> Stmt {
        self.i += 1; // `match`
        let mut scrutinee = Vec::new();
        self.scan_expr(&mut scrutinee, &["{"], None);
        let mut arms = Vec::new();
        if self.at("{") {
            self.i += 1;
            loop {
                // Skip the pattern (and guard) up to `=>` at zero depth.
                let mut depth = 0isize;
                let mut guard_events = Vec::new();
                loop {
                    let Some(t) = self.peek(0) else { return Stmt::Match { scrutinee, arms } };
                    match t.text.as_str() {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" => depth -= 1,
                        "}" if depth == 0 => {
                            self.i += 1;
                            return Stmt::Match { scrutinee, arms };
                        }
                        "}" => depth -= 1,
                        "=>" if depth == 0 => {
                            self.i += 1;
                            break;
                        }
                        "if" if depth == 0 => {
                            // Pattern guard: its calls run before the arm.
                            self.i += 1;
                            self.scan_expr(&mut guard_events, &["=>"], None);
                            continue;
                        }
                        _ => {}
                    }
                    self.i += 1;
                }
                // Arm body: a block, a control statement, or an expression
                // up to the `,` (or closing `}`) at zero depth.
                let mut body = guard_events;
                if self.at("{") {
                    self.i += 1;
                    body.extend(self.parse_block());
                } else if self.at("if") {
                    body.push(self.parse_if());
                } else if self.at("match") {
                    body.push(self.parse_match());
                } else if self.at("return") || self.at("break") || self.at("continue") {
                    let kind = self.peek(0).unwrap().text.clone();
                    self.i += 1;
                    self.scan_expr(&mut body, &[",", "}"], None);
                    body.push(match kind.as_str() {
                        "return" => Stmt::Return,
                        "break" => Stmt::Break,
                        _ => Stmt::Continue,
                    });
                } else {
                    self.scan_expr(&mut body, &[",", "}"], None);
                }
                arms.push(body);
                if self.at(",") {
                    self.i += 1;
                }
            }
        }
        Stmt::Match { scrutinee, arms }
    }

    /// `let [mut] name [: ty] = init ;` — emits the initializer's call
    /// events followed by a `Let` marker recording the binding.
    fn parse_let(&mut self) -> Vec<Stmt> {
        self.i += 1; // `let`
        if self.at("mut") {
            self.i += 1;
        }
        // Simple binding name: `ident` directly followed by `=` or `:`.
        let name = match (self.peek(0), self.peek(1)) {
            (Some(id), Some(nx)) if id.is_ident && (nx.text == "=" || nx.text == ":") => {
                Some(id.text.clone())
            }
            _ => None,
        };
        // Skip to `=` at zero depth (destructuring patterns, type
        // annotations with generics).
        let mut depth = 0isize;
        while let Some(t) = self.peek(0) {
            match t.text.as_str() {
                "(" | "[" | "{" | "<" => depth += 1,
                ")" | "]" | "}" | ">" => depth -= 1,
                "=" if depth <= 0 => break,
                ";" if depth <= 0 => {
                    // `let x;` — no initializer.
                    self.i += 1;
                    return vec![Stmt::Let { name, init_calls: Vec::new() }];
                }
                _ => {}
            }
            self.i += 1;
        }
        if self.at("=") {
            self.i += 1;
        }
        let mut events: Vec<Stmt> = Vec::new();
        // `let x = if ..` / `match ..` / `loop ..`: parse the construct
        // properly, then expect `;`.
        if self.at("if") {
            events.push(self.parse_if());
        } else if self.at("match") {
            events.push(self.parse_match());
        } else if self.at("loop") {
            self.i += 1;
            if self.at("{") {
                self.i += 1;
                let body = self.parse_block();
                events.push(Stmt::Loop { cond: Vec::new(), test: None, body });
            }
        } else {
            self.scan_expr(&mut events, &[";"], None);
        }
        let init_calls: Vec<CallSite> = events
            .iter()
            .filter_map(|s| match s {
                Stmt::Call(c) => Some(c.clone()),
                _ => None,
            })
            .collect();
        events.push(Stmt::Let { name, init_calls });
        events
    }

    /// Skip a bracketed group, assuming the cursor is at the opener.
    fn skip_group(&mut self, open: &str, close: &str) {
        let mut depth = 0isize;
        while let Some(t) = self.peek(0) {
            if t.text == open {
                depth += 1;
            } else if t.text == close {
                depth -= 1;
                if depth == 0 {
                    self.i += 1;
                    return;
                }
            }
            self.i += 1;
        }
    }

    /// Scan an expression, collecting call events (and closures) until one
    /// of `terminators` appears at zero bracket depth (the terminator is
    /// consumed iff it is `;` or `,`; `{`, `}`, `=>` and `)` are left for
    /// the caller). `ctx` is the method name of the call whose argument
    /// list we are inside, for closure `passed_to` attribution.
    fn scan_expr(&mut self, out: &mut Vec<Stmt>, terminators: &[&str], ctx: Option<&str>) {
        let mut depth = 0isize;
        let mut prev: Option<String> = None;
        loop {
            let Some(t) = self.peek(0) else { return };
            let text = t.text.clone();

            if depth == 0 && terminators.contains(&text.as_str()) {
                if text == ";" || text == "," {
                    self.i += 1;
                }
                return;
            }
            // A `}` above our depth always ends the expression (tail
            // position); never consume it.
            if text == "}" && depth == 0 {
                return;
            }

            // Closure?
            let expr_start = matches!(
                prev.as_deref(),
                None | Some(
                    "(" | "," | "=" | "=>" | "{" | ";" | "return" | "move" | "&" | "&&" | "|"
                        | "||" | "==" | "!=" | "+" | "-" | "*" | "/" | "%" | "!" | ":" | "if"
                        | "match" | ".." | "..="
                )
            );
            if (text == "|" || text == "||") && (expr_start || prev.as_deref() == Some("move")) {
                let line = t.line;
                self.i += 1;
                if text == "|" {
                    // Skip parameter list to the closing `|`.
                    let mut d = 0isize;
                    while let Some(t) = self.peek(0) {
                        match t.text.as_str() {
                            "(" | "[" | "<" => d += 1,
                            ")" | "]" | ">" => d -= 1,
                            "|" if d == 0 => {
                                self.i += 1;
                                break;
                            }
                            _ => {}
                        }
                        self.i += 1;
                    }
                }
                // Closure body.
                let body = if self.at("{") {
                    self.i += 1;
                    self.parse_block()
                } else {
                    let mut b = Vec::new();
                    self.scan_expr(&mut b, &[",", ")", ";", "}"], ctx);
                    // Leave `)`/`}` for the caller; `,`/`;` were consumed
                    // by scan_expr — step back so the caller still sees
                    // its own terminator semantics? No: consuming `,` here
                    // is correct (it separated the closure from the next
                    // argument, and the caller loops).
                    b
                };
                let enclosing_fn = self.fn_stack.last().cloned();
                self.scopes.push(Scope {
                    kind: ScopeKind::Closure { passed_to: ctx.map(str::to_string), enclosing_fn },
                    line,
                    body,
                });
                out.push(Stmt::Closure(self.scopes.len() - 1));
                prev = Some(")".to_string()); // closure is a complete operand
                continue;
            }

            // Call? ident followed by `(`; macro: ident `!` `(` or `[`.
            if t.is_ident && !is_keyword(&text) {
                let nx = self.peek(1).map(|t| t.text.clone());
                if nx.as_deref() == Some("(") {
                    let call = self.call_at();
                    let line = t.line;
                    self.i += 2; // name + `(`
                    let mut call = CallSite { line, ..call };
                    // Scan arguments; direct-argument Ordering:: uses are
                    // attributed to this call.
                    self.scan_args(out, &mut call);
                    out.push(Stmt::Call(call));
                    prev = Some(")".to_string());
                    continue;
                }
                if nx.as_deref() == Some("!")
                    && self
                        .peek(2)
                        .is_some_and(|t| t.text == "(" || t.text == "[" || t.text == "{")
                {
                    // Macro invocation: scan the delimited group as an
                    // expression list (calls inside matter: e.g.
                    // `assert!(matches!(c.push(..), ..))`).
                    self.i += 2;
                    let open = self.peek(0).unwrap().text.clone();
                    let close: &str = match open.as_str() {
                        "(" => ")",
                        "[" => "]",
                        _ => "}",
                    };
                    self.i += 1;
                    let mut d = 1isize;
                    // Scan tokens inside the macro, extracting calls via a
                    // nested expression scan per comma-segment.
                    while d > 0 {
                        let before = self.i;
                        self.scan_expr(out, &[",", close], ctx);
                        match self.peek(0).map(|t| t.text.clone()).as_deref() {
                            Some(c) if c == close => {
                                d -= 1;
                                self.i += 1;
                            }
                            None => break,
                            _ => {}
                        }
                        if self.i == before {
                            // No progress (e.g. stray close token): bail.
                            self.i += 1;
                            break;
                        }
                    }
                    prev = Some(")".to_string());
                    continue;
                }
            }

            // `Ordering::Variant` at the current position is recorded by
            // scan_args via the pending list; here just track depth/prev.
            match text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => {
                    depth -= 1;
                    if depth < 0 {
                        // Closing bracket of an enclosing group: done.
                        return;
                    }
                }
                "{" => {
                    // Brace group inside an expression (struct literal,
                    // inline const, etc.): scan its contents linearly.
                    depth += 1;
                }
                "=>" => {}
                _ => {}
            }
            if text == "}" {
                depth -= 1;
                if depth < 0 {
                    return;
                }
            }
            prev = Some(text);
            self.i += 1;
        }
    }

    /// Scan a call's argument list (cursor just past the `(`), collecting
    /// nested events into `out` and direct `Ordering::` uses into `call`.
    fn scan_args(&mut self, out: &mut Vec<Stmt>, call: &mut CallSite) {
        let ctx_name = match &call.qualifier {
            Some(q) => format!("{q}::{}", call.method),
            None => call.method.clone(),
        };
        loop {
            // Check for a direct `Ordering :: Variant` argument.
            if self.at("Ordering")
                && self.peek(1).is_some_and(|t| t.text == "::")
                && self.peek(2).is_some_and(|t| t.is_ident)
            {
                call.orderings.push(self.peek(2).unwrap().text.clone());
                self.i += 3;
                continue;
            }
            let before = self.i;
            self.scan_expr(out, &[",", ")"], Some(&ctx_name));
            match self.peek(0).map(|t| t.text.clone()).as_deref() {
                Some(")") => {
                    self.i += 1;
                    return;
                }
                None => return,
                _ => {}
            }
            if self.i == before {
                self.i += 1;
            }
        }
    }

    /// Build the base/qualifier for the call whose name token is at the
    /// cursor, by walking backwards over the token stream.
    fn call_at(&self) -> CallSite {
        let method = self.toks[self.i].text.clone();
        let line = self.toks[self.i].line;
        let mut base = None;
        let mut qualifier = None;
        if self.i >= 1 {
            let prevt = &self.toks[self.i - 1];
            if prevt.text == "." {
                // Receiver chain: walk `ident . ident . … .` backwards,
                // stopping at any non-ident link (`)`, `]`, …).
                let mut parts: Vec<String> = Vec::new();
                let mut j = self.i - 1;
                loop {
                    if j == 0 {
                        break;
                    }
                    let t = &self.toks[j - 1];
                    if t.is_ident && !is_keyword(&t.text) {
                        parts.push(t.text.clone());
                        if j >= 2 && self.toks[j - 2].text == "." {
                            j -= 2;
                            continue;
                        }
                    }
                    break;
                }
                if !parts.is_empty() {
                    parts.reverse();
                    base = Some(parts.join("."));
                }
            } else if prevt.text == "::" {
                // Path call: `Qual::method(`, possibly with a turbofish
                // `Qual::<T>::method(`.
                let mut j = self.i - 1; // at `::`
                if j >= 1 && self.toks[j - 1].text == ">" {
                    // Walk back over the turbofish to its `<`.
                    let mut depth = 1isize;
                    let mut k = j - 1;
                    while k > 0 && depth > 0 {
                        k -= 1;
                        match self.toks[k].text.as_str() {
                            ">" | ">>" => depth += 1,
                            "<" => depth -= 1,
                            "<<" => depth -= 2,
                            _ => {}
                        }
                    }
                    // Expect `:: <` — qualifier sits before that `::`.
                    if k >= 2 && self.toks[k - 1].text == "::" {
                        j = k - 1;
                    }
                }
                if j >= 1 && self.toks[j - 1].is_ident {
                    qualifier = Some(self.toks[j - 1].text.clone());
                }
            }
        }
        CallSite { base, qualifier, method, line, orderings: Vec::new() }
    }
}

fn is_keyword(w: &str) -> bool {
    matches!(
        w,
        "if" | "else" | "while" | "for" | "loop" | "match" | "let" | "mut" | "fn" | "return"
            | "break" | "continue" | "move" | "in" | "as" | "ref" | "unsafe" | "pub" | "use"
            | "mod" | "impl" | "trait" | "struct" | "enum" | "static" | "const" | "where"
            | "dyn" | "self" | "Self" | "super" | "crate" | "true" | "false" | "await" | "async"
    )
}

/// Convenience: scan + parse a raw source string.
pub fn parse_source(src: &str) -> Vec<Scope> {
    let scanned = lexer::scan(src);
    parse_file(&scanned.code)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn calls_of(body: &[Stmt]) -> Vec<String> {
        let mut out = Vec::new();
        fn walk(stmts: &[Stmt], out: &mut Vec<String>) {
            for s in stmts {
                match s {
                    Stmt::Call(c) => out.push(format!(
                        "{}{}",
                        c.base.as_deref().map(|b| format!("{b}.")).unwrap_or_default(),
                        c.method
                    )),
                    Stmt::If { cond, then_b, else_b, .. } => {
                        walk(cond, out);
                        walk(then_b, out);
                        walk(else_b, out);
                    }
                    Stmt::Loop { cond, body, .. } => {
                        walk(cond, out);
                        walk(body, out);
                    }
                    Stmt::Match { scrutinee, arms } => {
                        walk(scrutinee, out);
                        for a in arms {
                            walk(a, out);
                        }
                    }
                    _ => {}
                }
            }
        }
        walk(body, &mut out);
        out
    }

    fn only_fn(src: &str) -> Scope {
        let scopes = parse_source(src);
        scopes
            .into_iter()
            .find(|s| matches!(s.kind, ScopeKind::Fn { .. }))
            .expect("a fn scope")
    }

    #[test]
    fn method_calls_with_receiver_chains() {
        let f = only_fn(
            "fn f() { c.push(pe, 1, 0); mailbox.conveyor.pull(); self.mailboxes[mb].conveyor.pull_batch(buf); }",
        );
        assert_eq!(
            calls_of(&f.body),
            vec!["c.push", "mailbox.conveyor.pull", "conveyor.pull_batch"]
        );
    }

    #[test]
    fn path_call_qualifier_and_turbofish() {
        let f = only_fn("fn f() { let c = Conveyor::<u64>::new(pe, opts); let d = Conveyor::new(pe); }");
        let quals: Vec<Option<String>> = f
            .body
            .iter()
            .filter_map(|s| match s {
                Stmt::Call(c) => Some(c.qualifier.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(quals, vec![Some("Conveyor".into()), Some("Conveyor".into())]);
        // Let markers captured the binding names.
        let lets: Vec<Option<String>> = f
            .body
            .iter()
            .filter_map(|s| match s {
                Stmt::Let { name, .. } => Some(name.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(lets, vec![Some("c".into()), Some("d".into())]);
    }

    #[test]
    fn while_header_test_recognized() {
        let f = only_fn("fn f() { while c.advance(pe, true) { c.pull(); } }");
        match &f.body[0] {
            Stmt::Loop { test: Some(t), body, .. } => {
                assert_eq!(t.call.method, "advance");
                assert_eq!(t.call.base.as_deref(), Some("c"));
                assert!(!t.negated);
                assert_eq!(calls_of(body), vec!["c.pull"]);
            }
            s => panic!("expected while loop with test, got {s:?}"),
        }
    }

    #[test]
    fn negated_if_test_recognized() {
        let f = only_fn("fn f() { loop { if !c.advance(pe, done) { break; } } }");
        match &f.body[0] {
            Stmt::Loop { body, .. } => match &body[0] {
                Stmt::If { test: Some(t), then_b, .. } => {
                    assert!(t.negated);
                    assert_eq!(t.call.method, "advance");
                    assert!(matches!(then_b[0], Stmt::Break));
                }
                s => panic!("expected if with negated test, got {s:?}"),
            },
            s => panic!("expected loop, got {s:?}"),
        }
    }

    #[test]
    fn closures_become_scopes_with_passed_to() {
        let scopes = parse_source(
            "fn f() { prof.selector(1, move |mb, w, from, ctx| { state.lock(); }); }",
        );
        let cl = scopes
            .iter()
            .find(|s| matches!(s.kind, ScopeKind::Closure { .. }))
            .expect("closure scope");
        match &cl.kind {
            ScopeKind::Closure { passed_to, enclosing_fn } => {
                assert_eq!(passed_to.as_deref(), Some("selector"));
                assert_eq!(enclosing_fn.as_deref(), Some("f"));
            }
            _ => unreachable!(),
        }
        assert_eq!(calls_of(&cl.body), vec!["state.lock"]);
        // The closure's calls are NOT part of the enclosing fn's flow.
        let f = scopes.iter().find(|s| matches!(s.kind, ScopeKind::Fn { .. })).unwrap();
        assert!(!calls_of(&f.body).contains(&"state.lock".to_string()));
    }

    #[test]
    fn path_call_closures_get_qualified_passed_to() {
        let scopes = parse_source(
            "fn f() { let a = Selector::new(pe, 1, cfg, move |mb, m, from, ctx| { h(m); }); }",
        );
        let cl = scopes
            .iter()
            .find(|s| matches!(s.kind, ScopeKind::Closure { .. }))
            .expect("closure scope");
        match &cl.kind {
            ScopeKind::Closure { passed_to, .. } => {
                assert_eq!(passed_to.as_deref(), Some("Selector::new"));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn empty_param_closure_and_expression_body() {
        let scopes = parse_source("fn f() { run(|| pe.quiet()); spawn(move || { pe.fence(); }); }");
        let closures: Vec<&Scope> = scopes
            .iter()
            .filter(|s| matches!(s.kind, ScopeKind::Closure { .. }))
            .collect();
        assert_eq!(closures.len(), 2);
        assert_eq!(calls_of(&closures[0].body), vec!["pe.quiet"]);
        assert_eq!(calls_of(&closures[1].body), vec!["pe.fence"]);
    }

    #[test]
    fn match_arms_parse_including_guards_and_struct_patterns() {
        let f = only_fn(
            "fn f() { match r { Err(E::Bad { dst, .. }) => c.reset(pe), Ok(v) if v.check() => c.push(pe, v, 0), _ => {} } }",
        );
        match &f.body[0] {
            Stmt::Match { arms, .. } => {
                assert_eq!(arms.len(), 3);
                assert_eq!(calls_of(&arms[0]), vec!["c.reset"]);
                assert_eq!(calls_of(&arms[1]), vec!["v.check", "c.push"]);
                assert!(calls_of(&arms[2]).is_empty());
            }
            s => panic!("expected match, got {s:?}"),
        }
    }

    #[test]
    fn calls_inside_macros_are_extracted() {
        let f = only_fn(
            "fn f() { assert!(matches!(c.push(pe, 2, 0), Err(ConveyorError::PushAfterDone))); }",
        );
        assert!(calls_of(&f.body).contains(&"c.push".to_string()));
    }

    #[test]
    fn ordering_arguments_attributed_to_the_call() {
        let f = only_fn(
            "fn f() { state.store(1, Ordering::Release); let v = state.load(Ordering::Acquire); flag.compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire); }",
        );
        let calls: Vec<(String, Vec<String>)> = f
            .body
            .iter()
            .filter_map(|s| match s {
                Stmt::Call(c) => Some((c.method.clone(), c.orderings.clone())),
                _ => None,
            })
            .collect();
        assert_eq!(calls[0], ("store".into(), vec!["Release".into()]));
        assert_eq!(calls[1], ("load".into(), vec!["Acquire".into()]));
        assert_eq!(
            calls[2],
            ("compare_exchange".into(), vec!["AcqRel".into(), "Acquire".into()])
        );
    }

    #[test]
    fn nested_fns_are_separate_scopes() {
        let scopes = parse_source("fn outer() { a.run(); fn inner() { b.run(); } c.run(); }");
        let outer = scopes.iter().find(|s| matches!(&s.kind, ScopeKind::Fn { name } if name == "outer")).unwrap();
        let inner = scopes.iter().find(|s| matches!(&s.kind, ScopeKind::Fn { name } if name == "inner")).unwrap();
        assert_eq!(calls_of(&outer.body), vec!["a.run", "c.run"]);
        assert_eq!(calls_of(&inner.body), vec!["b.run"]);
    }

    #[test]
    fn while_let_pull_is_seen() {
        let f = only_fn("fn f() { while let Some(d) = c.pull() { sink(d); } }");
        match &f.body[0] {
            Stmt::Loop { cond, body, .. } => {
                assert!(calls_of(cond).contains(&"c.pull".to_string()));
                assert_eq!(calls_of(body), vec!["sink"]);
            }
            s => panic!("expected loop, got {s:?}"),
        }
    }

    #[test]
    fn let_if_and_let_match_initializers() {
        let f = only_fn(
            "fn f() { let x = if cond() { a.go() } else { b.go() }; let y = match m() { _ => c.go(), }; }",
        );
        let names: Vec<String> = calls_of(&f.body);
        assert_eq!(names, vec!["cond", "a.go", "b.go", "m", "c.go"]);
    }
}
