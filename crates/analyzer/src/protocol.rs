//! The phase-protocol checker: forward dataflow over each function's CFG,
//! tracking two machines from the `[protocol]` policy section.
//!
//! **Conveyor exchange state.** A local bound from a conveyor constructor
//! starts `Initial`. The analysis tracks, per receiver base, the *set* of
//! states the conveyor may be in (`Initial`/`Active`/`Complete`); joins
//! union the sets, and a violation is reported only when the bad state is
//! *definite* (the set is a singleton), so merged paths and unknown
//! receivers (fn parameters, fields) can never produce a false positive:
//!
//! - `push`/`push_slice` when definitely `Complete` → the exchange
//!   terminated and was never re-armed (`push-without-rearm`);
//! - `pull`/`pull_batch` when definitely `Initial` or `Complete` → pulls
//!   belong inside the advance/drain loop (`pull-outside-drain`);
//! - `reset` when definitely not `Complete` → collective re-arm before
//!   termination (`rearm-before-terminate`).
//!
//! A bare `advance` statement moves the set to `{Active}`; the branch
//! edges of `while c.advance(..)` (or `if !c.advance(..) { break }`)
//! refine it: the "still active" side stays `{Active}`, the "returned
//! false" side becomes `{Complete}`. `drain_and_park` is `{Complete}`,
//! `reset` re-arms to `{Initial}`.
//!
//! **Nbi-pending facts.** `sym.put_nbi(..)` marks `sym` pending; `quiet`,
//! `barrier_all` and the barrier-synchronized collectives clear every
//! pending mark. `pe.checkpoint()` while any put *may* be pending is
//! `checkpoint-not-quiesced` (the runtime rejects non-quiescent cuts —
//! this catches it before it runs, and the dominator tree names the fix).
//! Reading a maybe-pending symbol (`get`/`local_get`/`read_local*`) is
//! `nbi-read-before-quiet`.
//!
//! **Handler discipline.** Closures passed to the `[protocol]` `handlers`
//! calls (`selector`, `Selector::new`) must not reach a `blocking` call —
//! directly or through free functions defined in the same file
//! (`blocking-in-handler`).
//!
//! Deliberate violations (negative litmus tests) carry an inline waiver:
//! `// analyzer: allow(rule-id): why` on the line or directly above; a
//! waiver without a why is itself a finding (`bad-waiver`).

use std::collections::BTreeMap;

use crate::cfg::{self, Edge, Event};
use crate::lexer::ScannedFile;
use crate::lints::Finding;
use crate::parser::{self, CallSite, Scope, ScopeKind, Stmt};
use crate::policy::{Policy, ProtocolPolicy};

const INIT: u8 = 1;
const ACTIVE: u8 = 2;
const COMPLETE: u8 = 4;
const ALL: u8 = INIT | ACTIVE | COMPLETE;

/// Join-semilattice fact: conveyor state sets + maybe-pending nbi puts.
#[derive(Clone, PartialEq, Debug, Default)]
struct Env {
    /// Receiver base → possible-state bits. Absent = unknown (`ALL`).
    conv: BTreeMap<String, u8>,
    /// Symmetric-array base → line of a put_nbi that may still be pending.
    nbi: BTreeMap<String, usize>,
}

impl Env {
    fn conv_of(&self, base: &str) -> u8 {
        self.conv.get(base).copied().unwrap_or(ALL)
    }
    fn set_conv(&mut self, base: &str, bits: u8) {
        if bits == ALL {
            self.conv.remove(base);
        } else {
            self.conv.insert(base.to_string(), bits);
        }
    }
}

impl cfg::Fact for Env {
    fn join(&self, other: &Self) -> Self {
        let mut conv = BTreeMap::new();
        for key in self.conv.keys().chain(other.conv.keys()) {
            let bits = self.conv_of(key) | other.conv_of(key);
            if bits != ALL {
                conv.insert(key.clone(), bits);
            }
        }
        let mut nbi = self.nbi.clone();
        for (k, &line) in &other.nbi {
            nbi.entry(k.clone())
                .and_modify(|l| *l = (*l).min(line))
                .or_insert(line);
        }
        Env { conv, nbi }
    }
}

fn state_name(bits: u8) -> &'static str {
    match bits {
        INIT => "initial (never advanced)",
        ACTIVE => "active",
        COMPLETE => "terminated",
        _ => "unknown",
    }
}

struct Checker<'p> {
    proto: &'p ProtocolPolicy,
    rel_path: &'p str,
    findings: Vec<Finding>,
}

impl<'p> Checker<'p> {
    fn is(&self, set: &[String], method: &str) -> bool {
        set.iter().any(|m| m == method)
    }

    /// Apply one event to the fact, reporting violations into `sink` when
    /// `report` is set (the final pass, running on fixpoint in-facts).
    fn transfer_event(&self, env: &mut Env, ev: &Event, sink: &mut Vec<Finding>, report: bool) {
        let p = self.proto;
        match ev {
            Event::Bind { name, init_calls } => {
                for c in init_calls {
                    if let Some(q) = &c.qualifier {
                        if p.conveyor_types.iter().any(|t| t == q) {
                            env.set_conv(name, INIT);
                        }
                    }
                    // Binding `advance`'s result hands termination control
                    // to a boolean the dataflow cannot see (`let active =
                    // c.advance(..); .. if !active { break }`), so the
                    // state becomes unknown — never definite, never flags.
                    if let Some(b) = c.base.as_deref().filter(|b| *b != "self") {
                        if p.advance.iter().any(|m| m == &c.method) {
                            env.set_conv(b, ALL);
                        }
                    }
                }
            }
            Event::Call(c) => self.transfer_call(env, c, sink, report),
        }
    }

    fn transfer_call(&self, env: &mut Env, c: &CallSite, sink: &mut Vec<Finding>, report: bool) {
        let p = self.proto;
        let base = c.base.as_deref();
        // `self`-receiver calls are the conveyor/runtime *implementation*;
        // the external protocol does not apply inside it.
        let tracked = base.filter(|b| *b != "self");

        if let Some(b) = tracked {
            let m = c.method.as_str();
            if self.is(&p.push, m) {
                let st = env.conv_of(b);
                if report && st == COMPLETE {
                    self.report(sink,
                        c.line,
                        "push-without-rearm",
                        format!(
                            "`{b}.{m}(..)` after the exchange terminated — every \
                             `advance` returned false and `{b}` was never re-armed"
                        ),
                        format!(
                            "call `{b}.reset(pe)` (collectively, on every PE) \
                             before pushing the next superstep's messages"
                        ),
                    );
                }
                // push does not change the state set.
            } else if self.is(&p.advance, m) {
                env.set_conv(b, ACTIVE);
            } else if self.is(&p.pull, m) {
                let st = env.conv_of(b);
                if report && (st == INIT || st == COMPLETE) {
                    self.report(sink,
                        c.line,
                        "pull-outside-drain",
                        format!(
                            "`{b}.{m}()` while the exchange is {} — pulls are \
                             only meaningful between an `advance` and \
                             termination",
                            state_name(st)
                        ),
                        format!(
                            "move the pull inside the drain loop: \
                             `loop {{ let active = {b}.advance(pe, done); \
                             while let Some(item) = {b}.pull() {{ .. }} \
                             if !active {{ break }} }}`"
                        ),
                    );
                }
            } else if self.is(&p.rearm, m) {
                let st = env.conv_of(b);
                if report && st != ALL && st & COMPLETE == 0 {
                    self.report(sink,
                        c.line,
                        "rearm-before-terminate",
                        format!(
                            "`{b}.{m}(pe)` while the exchange is {} — re-arm \
                             is only legal after every PE's `advance` \
                             returned false",
                            state_name(st)
                        ),
                        format!(
                            "drive the exchange to termination first \
                             (`while {b}.advance(pe, true) {{ .. }}`), then \
                             re-arm"
                        ),
                    );
                }
                env.set_conv(b, INIT);
            } else if self.is(&p.terminate, m) {
                env.set_conv(b, COMPLETE);
            } else if self.is(&p.nbi_put, m) {
                env.nbi.entry(b.to_string()).or_insert(c.line);
            } else if self.is(&p.nbi_consume, m) && report {
                if let Some(&put_line) = env.nbi.get(b) {
                    self.report(
                        sink,
                        c.line,
                        "nbi-read-before-quiet",
                        format!(
                            "`{b}.{m}(..)` may observe stale data: the \
                             `put_nbi` on line {put_line} is not ordered \
                             before this read"
                        ),
                        "insert `pe.quiet()` (or a barrier/collective) \
                         between the non-blocking put and this read"
                            .to_string(),
                    );
                }
            }
        }
        // quiet/barrier/collectives retire every pending nbi put,
        // whatever the receiver is called (`pe`, `ctx.pe`, …).
        if self.is(&p.quiet, c.method.as_str()) {
            env.nbi.clear();
        } else if self.is(&p.checkpoint, c.method.as_str()) && report {
            if let Some((sym, &put_line)) = env.nbi.iter().next() {
                self.report(
                    sink,
                    c.line,
                    "checkpoint-not-quiesced",
                    format!(
                        "`checkpoint()` at a cut where the `put_nbi` to \
                         `{sym}` on line {put_line} may still be in \
                         flight — the runtime will reject this"
                    ),
                    "make a `pe.quiet()` (or barrier) dominate the \
                     checkpoint so every non-blocking put has completed"
                        .to_string(),
                );
            }
        }
    }

    fn report(
        &self,
        sink: &mut Vec<Finding>,
        line: usize,
        lint: &'static str,
        message: String,
        hint: String,
    ) {
        // Dedup: the final pass can visit a block once per in-fact shape.
        if sink.iter().any(|f| f.line == line && f.lint == lint) {
            return;
        }
        sink.push(Finding {
            file: self.rel_path.to_string(),
            line,
            lint,
            message,
            hint,
        });
    }

    /// Refine a fact along a branch edge carrying an `advance` test.
    fn refine(&self, env: &Env, edge: &Edge) -> Env {
        let Some(assume) = &edge.assume else {
            return env.clone();
        };
        let call = &assume.test.call;
        let Some(base) = call.base.as_deref().filter(|b| *b != "self") else {
            return env.clone();
        };
        if !self.is(&self.proto.advance, call.method.as_str()) {
            return env.clone();
        }
        // `while c.advance(..)`: taken edge → still active; fallthrough →
        // returned false → terminated. A leading `!` swaps the sides.
        let still_active = assume.branch != assume.test.negated;
        let mut out = env.clone();
        out.set_conv(base, if still_active { ACTIVE } else { COMPLETE });
        out
    }

    /// Run the conveyor/nbi dataflow over one scope body.
    fn check_scope(&mut self, body: &[Stmt]) {
        let g = cfg::build(body);
        let entry = Env::default();
        let this: &Checker = self;
        let in_facts = cfg::forward(
            &g,
            entry,
            |b, env: &Env| {
                let mut out = env.clone();
                let mut scratch = Vec::new();
                for ev in &g.blocks[b].events {
                    this.transfer_event(&mut out, ev, &mut scratch, false);
                }
                out
            },
            |env, edge| this.refine(env, edge),
        );
        // Reporting pass on the fixpoint.
        let mut sink = std::mem::take(&mut self.findings);
        for (b, fact) in in_facts.iter().enumerate() {
            let Some(fact) = fact else { continue };
            let mut env = fact.clone();
            for ev in &g.blocks[b].events {
                self.transfer_event(&mut env, ev, &mut sink, true);
            }
        }
        self.findings = sink;
    }
}

/// Direct blocking calls per named fn in a file, then closed transitively
/// over same-file free-function calls.
fn blocking_reach(scopes: &[Scope], proto: &ProtocolPolicy) -> BTreeMap<String, (usize, String)> {
    // fn name → (line, blocking method) of one reachable blocking call.
    let mut direct: BTreeMap<String, (usize, String)> = BTreeMap::new();
    let mut calls: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for s in scopes {
        let ScopeKind::Fn { name } = &s.kind else { continue };
        let mut sites = Vec::new();
        collect_calls(&s.body, &mut sites);
        for c in &sites {
            if c.base.is_some() && proto.blocking.iter().any(|b| b == &c.method) {
                direct.entry(name.clone()).or_insert((c.line, c.method.clone()));
            }
            if c.base.is_none() && c.qualifier.is_none() {
                calls.entry(name.clone()).or_default().push(c.method.clone());
            }
        }
    }
    // Fixpoint: a fn that calls a blocking fn is blocking.
    let mut changed = true;
    while changed {
        changed = false;
        let snapshot: Vec<(String, Vec<String>)> =
            calls.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        for (name, callees) in snapshot {
            if direct.contains_key(&name) {
                continue;
            }
            for callee in callees {
                if let Some((line, method)) = direct.get(&callee).cloned() {
                    direct.insert(name.clone(), (line, format!("{method} (via `{callee}`)")));
                    changed = true;
                    break;
                }
            }
        }
    }
    direct
}

fn collect_calls(stmts: &[Stmt], out: &mut Vec<CallSite>) {
    for s in stmts {
        match s {
            Stmt::Call(c) => out.push(c.clone()),
            Stmt::Let { .. } | Stmt::Closure(_) | Stmt::Return | Stmt::Break | Stmt::Continue => {}
            Stmt::If { cond, then_b, else_b, .. } => {
                collect_calls(cond, out);
                collect_calls(then_b, out);
                collect_calls(else_b, out);
            }
            Stmt::Loop { cond, body, .. } => {
                collect_calls(cond, out);
                collect_calls(body, out);
            }
            Stmt::Match { scrutinee, arms } => {
                collect_calls(scrutinee, out);
                for a in arms {
                    collect_calls(a, out);
                }
            }
        }
    }
}

/// Check the blocking discipline of handler closures.
fn check_handlers(
    rel_path: &str,
    scopes: &[Scope],
    proto: &ProtocolPolicy,
    findings: &mut Vec<Finding>,
) {
    let reach = blocking_reach(scopes, proto);
    for s in scopes {
        let ScopeKind::Closure { passed_to: Some(callee), .. } = &s.kind else { continue };
        if !proto.handlers.iter().any(|h| h == callee) {
            continue;
        }
        let mut sites = Vec::new();
        collect_calls(&s.body, &mut sites);
        for c in &sites {
            if c.base.is_some() && proto.blocking.iter().any(|b| b == &c.method) {
                findings.push(Finding {
                    file: rel_path.to_string(),
                    line: c.line,
                    lint: "blocking-in-handler",
                    message: format!(
                        "`.{}()` inside a mailbox handler — handlers run on \
                         the scheduler's poll loop and must never block",
                        c.method
                    ),
                    hint: "buffer the work and do it in superstep code \
                           (`execute`'s closure), or use the non-blocking \
                           primitives"
                        .to_string(),
                });
            }
            if c.base.is_none() && c.qualifier.is_none() {
                if let Some((line, method)) = reach.get(&c.method) {
                    findings.push(Finding {
                        file: rel_path.to_string(),
                        line: c.line,
                        lint: "blocking-in-handler",
                        message: format!(
                            "handler calls `{}`, which reaches blocking \
                             `{}` (line {line})",
                            c.method, method
                        ),
                        hint: "mailbox handlers must stay non-blocking all \
                               the way down; move the blocking call out of \
                               the handler's call graph"
                            .to_string(),
                    });
                }
            }
        }
    }
}

/// Run the protocol passes over one scanned file.
pub fn check_file(rel_path: &str, scanned: &ScannedFile, policy: &Policy) -> Vec<Finding> {
    let scopes = parser::parse_file(&scanned.code);
    let mut checker = Checker {
        proto: &policy.protocol,
        rel_path,
        findings: Vec::new(),
    };
    for s in &scopes {
        checker.check_scope(&s.body);
    }
    let mut findings = checker.findings;
    check_handlers(rel_path, &scopes, &policy.protocol, &mut findings);
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;

    fn check(src: &str) -> Vec<Finding> {
        let scanned = lexer::scan(src);
        check_file("t.rs", &scanned, &Policy::default())
    }

    fn lints(f: &[Finding]) -> Vec<&'static str> {
        f.iter().map(|x| x.lint).collect()
    }

    #[test]
    fn push_after_terminated_loop_is_flagged() {
        let src = "\
fn f(pe: &Pe) {
    let mut c = Conveyor::<u64>::new(pe, opts).unwrap();
    c.push(pe, 1, 0).unwrap();
    while c.advance(pe, true) {
        while let Some(d) = c.pull() { sink(d); }
    }
    c.push(pe, 2, 0).unwrap();
}
";
        let f = check(src);
        assert_eq!(lints(&f), vec!["push-without-rearm"]);
        assert_eq!(f[0].line, 7);
        assert!(f[0].hint.contains("reset"));
    }

    #[test]
    fn rearm_clears_the_violation() {
        let src = "\
fn f(pe: &Pe) {
    let mut c = Conveyor::<u64>::new(pe, opts).unwrap();
    c.push(pe, 1, 0).unwrap();
    while c.advance(pe, true) {}
    c.reset(pe);
    c.push(pe, 2, 0).unwrap();
}
";
        assert!(check(src).is_empty(), "{:?}", check(src));
    }

    #[test]
    fn pull_before_any_advance_is_flagged() {
        let src = "\
fn f(pe: &Pe) {
    let mut c = Conveyor::<u64>::new(pe, opts).unwrap();
    c.push(pe, 1, 0).unwrap();
    let d = c.pull();
}
";
        let f = check(src);
        assert_eq!(lints(&f), vec!["pull-outside-drain"]);
        assert_eq!(f[0].line, 4);
    }

    #[test]
    fn pull_inside_drain_loop_is_clean() {
        let src = "\
fn f(pe: &Pe) {
    let mut c = Conveyor::<u64>::new(pe, opts).unwrap();
    c.push(pe, 1, 0).unwrap();
    loop {
        let active = c.advance(pe, true);
        while let Some(d) = c.pull() { sink(d); }
        if !active { break; }
    }
}
";
        assert!(check(src).is_empty(), "{:?}", check(src));
    }

    #[test]
    fn pull_after_termination_is_flagged() {
        let src = "\
fn f(pe: &Pe) {
    let mut c = Conveyor::<u64>::new(pe, opts).unwrap();
    while c.advance(pe, true) {}
    let d = c.pull();
}
";
        let f = check(src);
        assert_eq!(lints(&f), vec!["pull-outside-drain"]);
        assert!(f[0].message.contains("terminated"));
    }

    #[test]
    fn unknown_receivers_never_flag() {
        // A conveyor received as a parameter has unknown state: no reports.
        let src = "\
fn f(pe: &Pe, c: &mut Conveyor<u64>) {
    c.push(pe, 1, 0).unwrap();
    let d = c.pull();
    c.reset(pe);
}
";
        assert!(check(src).is_empty(), "{:?}", check(src));
    }

    #[test]
    fn vec_push_is_not_a_conveyor() {
        let src = "fn f() { let mut v = Vec::new(); v.push(1); let x = v.get(0); }\n";
        assert!(check(src).is_empty());
    }

    #[test]
    fn checkpoint_without_quiet_is_flagged_and_quiet_clears() {
        let bad = "\
fn f(pe: &Pe) {
    sym.put_nbi(pe, 1, 0, &[41]).unwrap();
    let snap = pe.checkpoint();
}
";
        let f = check(bad);
        assert_eq!(lints(&f), vec!["checkpoint-not-quiesced"]);
        assert_eq!(f[0].line, 3);

        let good = "\
fn f(pe: &Pe) {
    sym.put_nbi(pe, 1, 0, &[41]).unwrap();
    pe.quiet();
    let snap = pe.checkpoint();
}
";
        assert!(check(good).is_empty());
    }

    #[test]
    fn barrier_counts_as_quiet() {
        let src = "\
fn f(pe: &Pe) {
    sym.put_nbi(pe, 1, 0, &[9]).unwrap();
    pe.barrier_all();
    let v = sym.local_get(pe, 0);
}
";
        assert!(check(src).is_empty());
    }

    #[test]
    fn quiet_on_one_branch_only_still_flags() {
        // Maybe-pending at the join: checkpoint must be *dominated* by a
        // quiet, not merely preceded on some path.
        let src = "\
fn f(pe: &Pe) {
    sym.put_nbi(pe, 1, 0, &[1]).unwrap();
    if fast_path() {
        pe.quiet();
    }
    let snap = pe.checkpoint();
}
";
        let f = check(src);
        assert_eq!(lints(&f), vec!["checkpoint-not-quiesced"]);
    }

    #[test]
    fn nbi_read_before_quiet_same_base_only() {
        let src = "\
fn f(pe: &Pe) {
    sym.put_nbi(pe, 1, 0, &[42]).unwrap();
    let v = sym.local_get(pe, 0);
    let w = other.local_get(pe, 0);
}
";
        let f = check(src);
        assert_eq!(lints(&f), vec!["nbi-read-before-quiet"]);
        assert_eq!(f[0].line, 3, "only the pending base flags");
    }

    #[test]
    fn puts_in_disjoint_branches_do_not_cross() {
        // rank 0 puts, rank 1 reads: no path connects them.
        let src = "\
fn f(pe: &Pe) {
    if pe.rank() == 0 {
        sym.put_nbi(pe, 1, 0, &[42]).unwrap();
        pe.quiet();
    } else {
        let v = sym.local_get(pe, 0);
    }
}
";
        assert!(check(src).is_empty(), "{:?}", check(src));
    }

    #[test]
    fn blocking_call_in_handler_closure_is_flagged() {
        let src = "\
fn f(pe: &Pe) {
    prof.selector(1, move |_mb, msg: u64, _from, _ctx| {
        let g = state.lock();
    });
}
";
        let f = check(src);
        assert_eq!(lints(&f), vec!["blocking-in-handler"]);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn blocking_reached_through_local_fn_is_flagged() {
        let src = "\
fn slow_path() {
    bus.lock();
}
fn f(pe: &Pe) {
    let a = Selector::new(pe, 1, cfg, move |_mb, m: u64, _from, _ctx| {
        slow_path();
    });
}
";
        let f = check(src);
        assert_eq!(lints(&f), vec!["blocking-in-handler"]);
        assert!(f[0].message.contains("slow_path"));
    }

    #[test]
    fn non_handler_closures_may_block() {
        let src = "fn f() { run(|| { state.lock(); }); }\n";
        assert!(check(src).is_empty());
    }

    #[test]
    fn let_bound_advance_makes_state_unknown_so_reset_is_clean() {
        // The workspace's superstep-reuse pattern: the drain loop keys
        // off a bound boolean, then re-arms after the loop. The checker
        // cannot see that `!active` gates the break, so it must not claim
        // the conveyor is definitely active at the reset.
        let src = "\
fn f(pe: &Pe) {
    let mut c = Conveyor::<u64>::new(pe, opts).unwrap();
    for round in 0..4u64 {
        loop {
            c.push(pe, round, 0).unwrap();
            let active = c.advance(pe, true);
            while c.pull().is_some() {}
            if !active { break; }
        }
        c.reset(pe);
    }
}
";
        assert!(check(src).is_empty(), "{:?}", check(src));
    }

    #[test]
    fn drain_and_park_terminates_and_negated_advance_break_pattern() {
        let src = "\
fn f(pe: &Pe) {
    let mut c = Conveyor::<u64>::new(pe, opts).unwrap();
    c.push(pe, 1, 0).unwrap();
    c.drain_and_park(pe, &mut sink);
    c.push(pe, 2, 0).unwrap();
}
";
        let f = check(src);
        assert_eq!(lints(&f), vec!["push-without-rearm"]);

        let src2 = "\
fn g(pe: &Pe) {
    let mut c = Conveyor::<u64>::new(pe, opts).unwrap();
    loop {
        if !c.advance(pe, true) { break; }
        while let Some(d) = c.pull() { sink(d); }
    }
    c.push(pe, 9, 0).unwrap();
}
";
        let f2 = check(src2);
        assert_eq!(lints(&f2), vec!["push-without-rearm"], "break-out pattern tracked");
    }
}
