//! Sequential reference triangle counts.
//!
//! §IV-C: "We have validated the experiments by using assertion, which
//! verified the number of triangles obtained by the application with the
//! theoretical answer, also calculated by the application." These two
//! independent sequential algorithms are that theoretical answer; the
//! distributed actor count must match both.

use crate::csr::Csr;

/// Count triangles by wedge checking — the same enumeration Algorithm 1
/// distributes: for each row `i` and each neighbour pair `k < j`, test
/// whether edge `(j, k)` exists.
pub fn count_by_wedges(l: &Csr) -> u64 {
    let mut count = 0u64;
    for i in 0..l.n() {
        let row = l.row(i);
        for (a, &j) in row.iter().enumerate() {
            for &k in &row[..a] {
                // row is sorted ascending, so k < j
                if l.has_edge(j as usize, k) {
                    count += 1;
                }
            }
        }
    }
    count
}

/// Count triangles by sorted-list intersection (an independent method to
/// cross-check [`count_by_wedges`]): for each edge `(i, j)` of `L`,
/// |N(i) ∩ N(j)| over lower neighbours.
pub fn count_by_intersection(l: &Csr) -> u64 {
    let mut count = 0u64;
    for i in 0..l.n() {
        for &j in l.row(i) {
            count += sorted_intersection_size(l.row(i), l.row(j as usize));
        }
    }
    count
}

fn sorted_intersection_size(a: &[u32], b: &[u32]) -> u64 {
    let (mut x, mut y, mut n) = (0usize, 0usize, 0u64);
    while x < a.len() && y < b.len() {
        match a[x].cmp(&b[y]) {
            std::cmp::Ordering::Less => x += 1,
            std::cmp::Ordering::Greater => y += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                x += 1;
                y += 1;
            }
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edgelist::to_lower_triangular;
    use crate::rmat::{generate_edges, RmatParams};

    fn csr_of(edges: &[(u32, u32)], n: usize) -> Csr {
        Csr::from_edges(n, &to_lower_triangular(edges))
    }

    #[test]
    fn single_triangle() {
        let l = csr_of(&[(0, 1), (1, 2), (0, 2)], 3);
        assert_eq!(count_by_wedges(&l), 1);
        assert_eq!(count_by_intersection(&l), 1);
    }

    #[test]
    fn k4_has_four_triangles() {
        let l = csr_of(&[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)], 4);
        assert_eq!(count_by_wedges(&l), 4);
        assert_eq!(count_by_intersection(&l), 4);
    }

    #[test]
    fn path_and_star_have_none() {
        let path = csr_of(&[(0, 1), (1, 2), (2, 3)], 4);
        assert_eq!(count_by_wedges(&path), 0);
        let star = csr_of(&[(0, 1), (0, 2), (0, 3), (0, 4)], 5);
        assert_eq!(count_by_intersection(&star), 0);
    }

    #[test]
    fn methods_agree_on_rmat() {
        let p = RmatParams::graph500(9);
        let edges = to_lower_triangular(&generate_edges(&p));
        let l = Csr::from_edges(p.n_vertices(), &edges);
        let w = count_by_wedges(&l);
        let i = count_by_intersection(&l);
        assert_eq!(w, i);
        assert!(w > 0, "scale-9 R-MAT certainly has triangles");
    }

    #[test]
    fn empty_graph_has_none() {
        let l = Csr::from_edges(8, &[]);
        assert_eq!(count_by_wedges(&l), 0);
        assert_eq!(count_by_intersection(&l), 0);
    }
}
