//! Skewed-key generation — Zipf-distributed samples over a finite key
//! space.
//!
//! The R-MAT generator produces power-law *graphs*; aggregation-style
//! workloads need power-law *key streams* instead: a handful of hot keys
//! receiving most of the traffic. [`ZipfSampler`] draws keys
//! `0..n_keys` with probability proportional to `1/(k+1)^exponent` by
//! inverse-CDF lookup — deterministic given the caller's seeded RNG, so
//! every sampled stream replays exactly (the same property the rest of the
//! workload generators rely on for schedule-independence baselines).
//!
//! At `exponent ≈ 1` the skew is mild; at `exponent ≥ 1.5` the hottest key
//! draws an order of magnitude more traffic than the median, which is what
//! the skewed-aggregation workload uses to break PE load balance on
//! purpose (the Fig-10-style imbalance views need real signal).

use rand::rngs::StdRng;
use rand::Rng;

/// Inverse-CDF sampler for a Zipf distribution over `0..n_keys`.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    /// Cumulative probabilities; `cdf[k]` = P(key <= k). Monotone, ends
    /// at 1.0 (up to rounding).
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Build the sampler for `n_keys` keys with the given exponent.
    ///
    /// # Panics
    /// Panics on an empty key space or a non-finite/negative exponent —
    /// configuration bugs, not data errors.
    pub fn new(n_keys: usize, exponent: f64) -> ZipfSampler {
        assert!(n_keys > 0, "Zipf needs a non-empty key space");
        assert!(
            exponent.is_finite() && exponent >= 0.0,
            "Zipf exponent must be finite and non-negative, got {exponent}"
        );
        let mut cdf = Vec::with_capacity(n_keys);
        let mut acc = 0.0f64;
        for k in 0..n_keys {
            acc += 1.0 / ((k + 1) as f64).powf(exponent);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        ZipfSampler { cdf }
    }

    /// Number of keys in the sampled space.
    pub fn n_keys(&self) -> usize {
        self.cdf.len()
    }

    /// Probability of drawing `key`.
    pub fn probability(&self, key: usize) -> f64 {
        let hi = self.cdf[key];
        let lo = if key == 0 { 0.0 } else { self.cdf[key - 1] };
        hi - lo
    }

    /// Draw one key using the caller's RNG (deterministic given its seed).
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let r: f64 = rng.gen();
        // First key whose cumulative probability covers r.
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&r).expect("cdf is finite"))
        {
            Ok(i) => (i + 1).min(self.cdf.len() - 1),
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Draw `count` keys into a fresh vector.
    pub fn sample_many(&self, rng: &mut StdRng, count: usize) -> Vec<usize> {
        (0..count).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn probabilities_sum_to_one_and_decrease() {
        let z = ZipfSampler::new(64, 1.3);
        let total: f64 = (0..64).map(|k| z.probability(k)).sum();
        assert!((total - 1.0).abs() < 1e-12, "total {total}");
        for k in 1..64 {
            assert!(
                z.probability(k) <= z.probability(k - 1) + 1e-15,
                "mass must decrease with key rank (key {k})"
            );
        }
    }

    #[test]
    fn sampling_is_deterministic_given_seed() {
        let z = ZipfSampler::new(32, 1.5);
        let a = z.sample_many(&mut StdRng::seed_from_u64(7), 500);
        let b = z.sample_many(&mut StdRng::seed_from_u64(7), 500);
        assert_eq!(a, b);
        let c = z.sample_many(&mut StdRng::seed_from_u64(8), 500);
        assert_ne!(a, c, "different seeds draw different streams");
    }

    #[test]
    fn samples_stay_in_range() {
        let z = ZipfSampler::new(10, 2.0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..2000 {
            assert!(z.sample(&mut rng) < 10);
        }
    }

    #[test]
    fn high_exponent_concentrates_mass_on_the_hot_key() {
        // The property the skewed-aggregation workload depends on: the
        // hottest key dominates, so its owning PE becomes the hotspot.
        let z = ZipfSampler::new(64, 1.5);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = vec![0u64; 64];
        let n = 20_000;
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        let uniform = n as u64 / 64;
        assert!(
            counts[0] > uniform * 10,
            "key 0 drew {} of {n}, uniform share is {uniform}",
            counts[0]
        );
        let tail: u64 = counts[32..].iter().sum();
        assert!(
            counts[0] > tail,
            "one hot key outweighs the entire cold half: {} vs {tail}",
            counts[0]
        );
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let z = ZipfSampler::new(16, 0.0);
        for k in 0..16 {
            assert!((z.probability(k) - 1.0 / 16.0).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "non-empty key space")]
    fn empty_key_space_panics() {
        ZipfSampler::new(0, 1.0);
    }
}
