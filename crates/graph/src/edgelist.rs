//! Edge-list preprocessing: the pipeline from raw R-MAT tuples to the
//! lower-triangular input matrix `L` of Algorithm 1.

/// Convert raw (possibly duplicated, self-looped, either-orientation)
/// edge tuples into the strictly lower-triangular edge set:
/// self-loops dropped, endpoints ordered `(row > col)`, duplicates removed.
pub fn to_lower_triangular(edges: &[(u32, u32)]) -> Vec<(u32, u32)> {
    let mut lower: Vec<(u32, u32)> = edges
        .iter()
        .filter(|(u, v)| u != v)
        .map(|&(u, v)| if u > v { (u, v) } else { (v, u) })
        .collect();
    lower.sort_unstable();
    lower.dedup();
    lower
}

/// Summary statistics of an edge list over `n` vertices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeListStats {
    /// Number of edges.
    pub n_edges: usize,
    /// Maximum row degree (lower-triangular out-degree).
    pub max_degree: usize,
    /// Vertex achieving the maximum degree.
    pub argmax_degree: u32,
    /// Number of isolated rows (degree zero).
    pub empty_rows: usize,
}

/// Compute row-degree statistics for a lower-triangular edge list.
pub fn stats(edges: &[(u32, u32)], n: usize) -> EdgeListStats {
    let mut deg = vec![0usize; n];
    for (u, _) in edges {
        deg[*u as usize] += 1;
    }
    let (argmax, &max) = deg
        .iter()
        .enumerate()
        .max_by_key(|(_, d)| **d)
        .unwrap_or((0, &0));
    EdgeListStats {
        n_edges: edges.len(),
        max_degree: max,
        argmax_degree: argmax as u32,
        empty_rows: deg.iter().filter(|d| **d == 0).count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lower_triangular_normalizes_orientation_and_dedups() {
        let raw = vec![(1, 3), (3, 1), (2, 2), (3, 1), (0, 4)];
        let lower = to_lower_triangular(&raw);
        assert_eq!(lower, vec![(3, 1), (4, 0)]);
        for (u, v) in &lower {
            assert!(u > v, "strictly lower triangular");
        }
    }

    #[test]
    fn empty_input_is_fine() {
        assert!(to_lower_triangular(&[]).is_empty());
        let s = stats(&[], 4);
        assert_eq!(s.n_edges, 0);
        assert_eq!(s.empty_rows, 4);
    }

    #[test]
    fn stats_finds_hub() {
        let edges = vec![(5, 0), (5, 1), (5, 2), (3, 0)];
        let s = stats(&edges, 6);
        assert_eq!(s.max_degree, 3);
        assert_eq!(s.argmax_degree, 5);
        assert_eq!(s.empty_rows, 4); // rows 0,1,2,4
    }

    #[test]
    fn rmat_pipeline_produces_strictly_lower_edges() {
        let p = crate::rmat::RmatParams::graph500(8);
        let lower = to_lower_triangular(&crate::rmat::generate_edges(&p));
        assert!(!lower.is_empty());
        assert!(lower.windows(2).all(|w| w[0] < w[1]), "sorted and unique");
        assert!(lower.iter().all(|(u, v)| u > v));
    }
}
