//! Compressed sparse row storage for the lower-triangular matrix `L`.

/// A CSR matrix over `n` rows with sorted column indices per row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    n: usize,
    row_ptr: Vec<usize>,
    cols: Vec<u32>,
}

impl Csr {
    /// Build from a lower-triangular edge list (as produced by
    /// [`crate::edgelist::to_lower_triangular`]). Edges need not be sorted;
    /// duplicates are the caller's responsibility.
    ///
    /// # Panics
    /// Panics if an endpoint is out of range — corrupt input is a bug in
    /// the generation pipeline.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Csr {
        let mut row_counts = vec![0usize; n];
        for (u, v) in edges {
            assert!((*u as usize) < n && (*v as usize) < n, "edge out of range");
            row_counts[*u as usize] += 1;
        }
        let mut row_ptr = Vec::with_capacity(n + 1);
        row_ptr.push(0);
        for c in &row_counts {
            row_ptr.push(row_ptr.last().unwrap() + c);
        }
        let mut cols = vec![0u32; edges.len()];
        let mut cursor = row_ptr.clone();
        for (u, v) in edges {
            let slot = &mut cursor[*u as usize];
            cols[*slot] = *v;
            *slot += 1;
        }
        for r in 0..n {
            cols[row_ptr[r]..row_ptr[r + 1]].sort_unstable();
        }
        Csr { n, row_ptr, cols }
    }

    /// Number of rows (vertices).
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of stored entries (edges).
    #[inline]
    pub fn nnz(&self) -> usize {
        self.cols.len()
    }

    /// The sorted column indices of row `u` (its lower neighbours).
    #[inline]
    pub fn row(&self, u: usize) -> &[u32] {
        &self.cols[self.row_ptr[u]..self.row_ptr[u + 1]]
    }

    /// Degree of row `u`.
    #[inline]
    pub fn degree(&self, u: usize) -> usize {
        self.row_ptr[u + 1] - self.row_ptr[u]
    }

    /// Whether entry `(u, v)` is present (binary search).
    #[inline]
    pub fn has_edge(&self, u: usize, v: u32) -> bool {
        self.row(u).binary_search(&v).is_ok()
    }

    /// Prefix sums of row degrees: `prefix[i]` = entries in rows `0..i`.
    /// Used by the 1D Range distribution to equalize nnz.
    pub fn degree_prefix(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Number of wedges: ordered pairs of distinct neighbours per row —
    /// the message count of the triangle-counting actor (each wedge is one
    /// send in Algorithm 1).
    pub fn wedge_count(&self) -> u64 {
        (0..self.n)
            .map(|u| {
                let d = self.degree(u) as u64;
                d * d.saturating_sub(1) / 2
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        // edges: 2-0, 2-1, 3-1, 3-2, 4-0
        Csr::from_edges(5, &[(4, 0), (2, 0), (3, 1), (2, 1), (3, 2)])
    }

    #[test]
    fn rows_are_sorted_and_complete() {
        let c = sample();
        assert_eq!(c.n(), 5);
        assert_eq!(c.nnz(), 5);
        assert_eq!(c.row(0), &[] as &[u32]);
        assert_eq!(c.row(2), &[0, 1]);
        assert_eq!(c.row(3), &[1, 2]);
        assert_eq!(c.row(4), &[0]);
        assert_eq!(c.degree(2), 2);
    }

    #[test]
    fn has_edge_binary_search() {
        let c = sample();
        assert!(c.has_edge(2, 0));
        assert!(c.has_edge(3, 2));
        assert!(!c.has_edge(3, 0));
        assert!(!c.has_edge(0, 1));
    }

    #[test]
    fn wedge_count_matches_manual() {
        let c = sample();
        // rows with degree 2 contribute 1 wedge each: rows 2 and 3
        assert_eq!(c.wedge_count(), 2);
    }

    #[test]
    fn degree_prefix_is_row_ptr() {
        let c = sample();
        let p = c.degree_prefix();
        assert_eq!(p.len(), 6);
        assert_eq!(p[5], 5);
        assert!(p.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        Csr::from_edges(3, &[(5, 0)]);
    }

    #[test]
    fn empty_graph() {
        let c = Csr::from_edges(4, &[]);
        assert_eq!(c.nnz(), 0);
        assert_eq!(c.wedge_count(), 0);
        for u in 0..4 {
            assert_eq!(c.degree(u), 0);
        }
    }
}
