//! Row distributions: which PE owns which rows of `L` (§IV-B2).
//!
//! - **1D Cyclic** — `owner(row) = row % p`: every PE gets a similar
//!   *vertex* count, but under power-law degrees the hub rows (low ids)
//!   all land on low-ranked PEs, concentrating edges — the imbalance the
//!   paper's heatmaps expose.
//! - **1D Range** — contiguous row blocks cut so every PE holds a similar
//!   *edge* (nnz) count. Because `L` is lower-triangular, PE `q`'s rows
//!   only have columns owned by PEs `0..=q`, which produces the paper's
//!   "(L) observation": the logical-trace heatmap is lower-triangular and
//!   per-PE recv totals decrease monotonically with rank.

use crate::csr::Csr;

/// A 1D row distribution over `p` PEs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Distribution {
    /// `owner(row) = row % p`.
    Cyclic {
        /// Number of PEs.
        n_pes: usize,
    },
    /// `owner(row) = the unique q with bounds[q] <= row < bounds[q+1]`.
    Range {
        /// `p + 1` row boundaries, `bounds[0] = 0`, `bounds[p] = n`.
        bounds: Vec<usize>,
    },
}

impl Distribution {
    /// The 1D Cyclic distribution.
    pub fn cyclic(n_pes: usize) -> Distribution {
        assert!(n_pes > 0, "need at least one PE");
        Distribution::Cyclic { n_pes }
    }

    /// The 1D Range distribution over `csr`, cutting row blocks so each PE
    /// owns approximately `nnz / p` entries.
    pub fn range_by_nnz(csr: &Csr, n_pes: usize) -> Distribution {
        assert!(n_pes > 0, "need at least one PE");
        let prefix = csr.degree_prefix();
        let total = csr.nnz();
        let mut bounds = Vec::with_capacity(n_pes + 1);
        bounds.push(0usize);
        for q in 1..n_pes {
            let target = total * q / n_pes;
            // first row whose prefix reaches the target, at or after the
            // previous boundary (keeps bounds monotone on degenerate input)
            let row = prefix.partition_point(|&s| s < target).max(bounds[q - 1]);
            bounds.push(row.min(csr.n()));
        }
        bounds.push(csr.n());
        Distribution::Range { bounds }
    }

    /// Number of PEs this distribution maps onto.
    pub fn n_pes(&self) -> usize {
        match self {
            Distribution::Cyclic { n_pes } => *n_pes,
            Distribution::Range { bounds } => bounds.len() - 1,
        }
    }

    /// The PE owning `row` (Algorithm 1's `FindOwner`).
    #[inline]
    pub fn owner(&self, row: usize) -> usize {
        match self {
            Distribution::Cyclic { n_pes } => row % n_pes,
            Distribution::Range { bounds } => {
                debug_assert!(row < *bounds.last().unwrap());
                // rightmost q with bounds[q] <= row
                bounds.partition_point(|&b| b <= row) - 1
            }
        }
    }

    /// The rows owned by `pe`, in increasing order.
    pub fn rows_of(&self, pe: usize, n: usize) -> Vec<usize> {
        match self {
            Distribution::Cyclic { n_pes } => (pe..n).step_by(*n_pes).collect(),
            Distribution::Range { bounds } => (bounds[pe]..bounds[pe + 1]).collect(),
        }
    }

    /// Human-readable name as used in figure labels.
    pub fn label(&self) -> &'static str {
        match self {
            Distribution::Cyclic { .. } => "1D Cyclic",
            Distribution::Range { .. } => "1D Range",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edgelist::to_lower_triangular;
    use crate::rmat::{generate_edges, RmatParams};

    fn rmat_csr(scale: u32) -> Csr {
        let p = RmatParams::graph500(scale);
        let edges = to_lower_triangular(&generate_edges(&p));
        Csr::from_edges(p.n_vertices(), &edges)
    }

    #[test]
    fn cyclic_owner_is_modulo() {
        let d = Distribution::cyclic(4);
        assert_eq!(d.owner(0), 0);
        assert_eq!(d.owner(5), 1);
        assert_eq!(d.owner(7), 3);
        assert_eq!(d.rows_of(1, 10), vec![1, 5, 9]);
    }

    #[test]
    fn range_bounds_cover_and_are_monotone() {
        let csr = rmat_csr(8);
        let d = Distribution::range_by_nnz(&csr, 6);
        let Distribution::Range { bounds } = &d else {
            unreachable!()
        };
        assert_eq!(bounds[0], 0);
        assert_eq!(*bounds.last().unwrap(), csr.n());
        assert!(bounds.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn range_owner_is_monotone_in_row() {
        let csr = rmat_csr(8);
        let d = Distribution::range_by_nnz(&csr, 5);
        let mut last = 0;
        for row in 0..csr.n() {
            let o = d.owner(row);
            assert!(o >= last, "ownership must be monotone");
            assert!(o < 5);
            last = o;
        }
    }

    #[test]
    fn range_equalizes_nnz_better_than_cyclic_equalizes_it() {
        let csr = rmat_csr(10);
        let p = 8;
        let nnz_per_pe = |d: &Distribution| -> Vec<usize> {
            let mut v = vec![0usize; p];
            for row in 0..csr.n() {
                v[d.owner(row)] += csr.degree(row);
            }
            v
        };
        let cyc = nnz_per_pe(&Distribution::cyclic(p));
        let rng = nnz_per_pe(&Distribution::range_by_nnz(&csr, p));
        let spread = |v: &[usize]| *v.iter().max().unwrap() - *v.iter().min().unwrap();
        assert!(
            spread(&rng) <= spread(&cyc),
            "range should balance edges at least as well: rng={rng:?} cyc={cyc:?}"
        );
        // range is near-perfect: each PE within 25% of the mean
        let mean = csr.nnz() / p;
        for (pe, nnz) in rng.iter().enumerate() {
            assert!(
                nnz.abs_diff(mean) < mean / 4 + csr.degree(0),
                "PE {pe}: {nnz} vs mean {mean}"
            );
        }
    }

    #[test]
    fn rows_of_partitions_all_rows() {
        let csr = rmat_csr(7);
        for d in [
            Distribution::cyclic(5),
            Distribution::range_by_nnz(&csr, 5),
        ] {
            let mut seen = vec![false; csr.n()];
            for pe in 0..5 {
                for row in d.rows_of(pe, csr.n()) {
                    assert!(!seen[row], "row {row} owned twice");
                    assert_eq!(d.owner(row), pe);
                    seen[row] = true;
                }
            }
            assert!(seen.iter().all(|s| *s), "every row owned");
        }
    }

    #[test]
    fn range_lower_triangular_property() {
        // The (L) observation: each entry (row, col) of L has
        // owner(col) <= owner(row), since col < row and ownership is
        // monotone. This is the structural basis of Fig. 6.
        let csr = rmat_csr(8);
        let d = Distribution::range_by_nnz(&csr, 4);
        for row in 0..csr.n() {
            for &col in csr.row(row) {
                assert!(d.owner(col as usize) <= d.owner(row));
            }
        }
    }

    #[test]
    fn labels() {
        assert_eq!(Distribution::cyclic(2).label(), "1D Cyclic");
        let csr = rmat_csr(6);
        assert_eq!(Distribution::range_by_nnz(&csr, 2).label(), "1D Range");
    }

    #[test]
    fn more_pes_than_rows_is_tolerated() {
        let csr = Csr::from_edges(3, &[(2, 0), (1, 0)]);
        let d = Distribution::range_by_nnz(&csr, 8);
        for row in 0..3 {
            assert!(d.owner(row) < 8);
        }
    }
}
