//! R-MAT (recursive matrix) graph generation, graph500 style.
//!
//! Each edge picks its endpoints by descending `scale` levels of a 2×2
//! probability grid `(a b; c d)`. The paper's parameters (a=0.57,
//! b=c=0.19, d=0.05) skew mass toward the (0,0) quadrant, producing the
//! power-law degree distribution whose hubs cause the case study's load
//! imbalance.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// R-MAT generation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatParams {
    /// log2 of the vertex count.
    pub scale: u32,
    /// Edges generated = `edge_factor << scale`.
    pub edge_factor: usize,
    /// Quadrant probabilities; must sum to 1.
    pub a: f64,
    /// Upper-right quadrant probability.
    pub b: f64,
    /// Lower-left quadrant probability.
    pub c: f64,
    /// Lower-right quadrant probability.
    pub d: f64,
    /// RNG seed — all generation is deterministic given the seed.
    pub seed: u64,
}

impl RmatParams {
    /// The graph500 parameter set used in §IV-C: A=0.57, B=C=0.19, D=0.05,
    /// edge factor 16.
    pub fn graph500(scale: u32) -> RmatParams {
        RmatParams {
            scale,
            edge_factor: 16,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            d: 0.05,
            seed: 0x5EED_6500 + scale as u64,
        }
    }

    /// Number of vertices (`2^scale`).
    pub fn n_vertices(&self) -> usize {
        1usize << self.scale
    }

    /// Number of generated edge tuples (before dedup/self-loop removal).
    pub fn n_edges(&self) -> usize {
        self.edge_factor << self.scale
    }

    /// Override the seed.
    pub fn with_seed(mut self, seed: u64) -> RmatParams {
        self.seed = seed;
        self
    }

    /// Validate that quadrant probabilities form a distribution.
    pub fn is_valid(&self) -> bool {
        let sum = self.a + self.b + self.c + self.d;
        (sum - 1.0).abs() < 1e-9
            && [self.a, self.b, self.c, self.d].iter().all(|p| *p >= 0.0)
            && self.scale > 0
            && self.edge_factor > 0
    }
}

/// Generate the raw directed edge tuples (may contain duplicates and
/// self-loops, like the graph500 edge list).
///
/// # Panics
/// Panics if `params` is invalid (probabilities not summing to 1, zero
/// scale/edge-factor) — a configuration bug, not a data error.
pub fn generate_edges(params: &RmatParams) -> Vec<(u32, u32)> {
    assert!(params.is_valid(), "invalid R-MAT parameters: {params:?}");
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut edges = Vec::with_capacity(params.n_edges());
    let ab = params.a + params.b;
    let abc = ab + params.c;
    for _ in 0..params.n_edges() {
        let mut row = 0u32;
        let mut col = 0u32;
        for _ in 0..params.scale {
            row <<= 1;
            col <<= 1;
            let r: f64 = rng.gen();
            if r < params.a {
                // upper-left: neither bit set
            } else if r < ab {
                col |= 1;
            } else if r < abc {
                row |= 1;
            } else {
                row |= 1;
                col |= 1;
            }
        }
        edges.push((row, col));
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph500_parameters_match_paper() {
        let p = RmatParams::graph500(16);
        assert_eq!(p.scale, 16);
        assert_eq!(p.edge_factor, 16);
        assert!((p.a - 0.57).abs() < 1e-12);
        assert!((p.b - 0.19).abs() < 1e-12);
        assert!((p.c - 0.19).abs() < 1e-12);
        assert!((p.d - 0.05).abs() < 1e-12);
        assert!(p.is_valid());
        assert_eq!(p.n_vertices(), 65536);
        assert_eq!(p.n_edges(), 1_048_576);
    }

    #[test]
    fn generation_is_deterministic() {
        let p = RmatParams::graph500(8);
        assert_eq!(generate_edges(&p), generate_edges(&p));
    }

    #[test]
    fn different_seeds_differ() {
        let p = RmatParams::graph500(8);
        let q = p.with_seed(42);
        assert_ne!(generate_edges(&p), generate_edges(&q));
    }

    #[test]
    fn endpoints_are_in_range() {
        let p = RmatParams::graph500(6);
        let n = p.n_vertices() as u32;
        for (u, v) in generate_edges(&p) {
            assert!(u < n && v < n);
        }
    }

    #[test]
    fn degree_distribution_is_skewed_toward_low_ids() {
        // The essence of the paper's load-imbalance story: without
        // permutation, low vertex ids are hubs.
        let p = RmatParams::graph500(10);
        let edges = generate_edges(&p);
        let n = p.n_vertices();
        let mut deg = vec![0u64; n];
        for (u, v) in &edges {
            deg[*u as usize] += 1;
            deg[*v as usize] += 1;
        }
        let low: u64 = deg[..n / 16].iter().sum();
        let total: u64 = deg.iter().sum();
        // a=0.57 per level: the lowest 1/16th of ids should hold far more
        // than 1/16th of the endpoints.
        assert!(
            low as f64 > total as f64 * 0.25,
            "expected skew: low={low}, total={total}"
        );
        let max_deg = *deg.iter().max().unwrap();
        assert_eq!(
            deg.iter().position(|&d| d == max_deg).unwrap(),
            0,
            "vertex 0 should be the biggest hub"
        );
    }

    #[test]
    #[should_panic(expected = "invalid R-MAT")]
    fn invalid_probabilities_panic() {
        let mut p = RmatParams::graph500(4);
        p.a = 0.9;
        generate_edges(&p);
    }
}
