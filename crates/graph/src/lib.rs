//! # fabsp-graph — graph substrate for the ActorProf case study
//!
//! The paper's evaluation (§IV) profiles distributed triangle counting on
//! an R-MAT graph "generated on a scale of 16 with R-MAT parameters of
//! A = 57.0, B = C = 19.0, D = 5.0, and an edge factor of 16, following
//! graph500 benchmark standards", distributed either **1D Cyclic** (equal
//! vertices per PE) or **1D Range** (equal edges per PE). This crate
//! provides all of that:
//!
//! - [`rmat`] — the recursive-matrix generator with graph500 parameters;
//! - [`edgelist`] — dedup/self-loop/lower-triangular edge processing;
//! - [`csr`] — compressed sparse row storage with O(log d) edge queries;
//! - [`dist`] — the two row distributions and their ownership maps;
//! - [`triangle_ref`] — sequential reference triangle counts used to
//!   validate the distributed runs "by using assertion" as §IV-C does;
//! - [`skew`] — Zipf-distributed key sampling for deliberately
//!   load-imbalanced aggregation workloads.
//!
//! The power-law skew of unpermuted R-MAT concentrates high-degree hubs at
//! low vertex ids (vertex 0 is the biggest); under 1D Cyclic those hubs
//! land on PE 0 — the root cause of every load-imbalance observation in
//! the paper's figures.

// Zero unsafe today; keep it that way by construction.
#![forbid(unsafe_code)]

pub mod csr;
pub mod dist;
pub mod edgelist;
pub mod rmat;
pub mod skew;
pub mod triangle_ref;

pub use csr::Csr;
pub use dist::Distribution;
pub use rmat::RmatParams;
pub use skew::ZipfSampler;
