//! Trace record types, one per ActorProf trace file format (§III), plus
//! the phase-span record backing the Perfetto duration export.

use fabsp_telemetry::Phase;

/// One pre-aggregation point-to-point send, as recorded at the HClib-Actor
/// `send` call. One line of `PEi_send.csv`:
/// `source node, source PE, destination node, destination PE, message size`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogicalRecord {
    /// Node of the sending PE.
    pub src_node: u32,
    /// Sending PE rank.
    pub src_pe: u32,
    /// Node of the destination PE.
    pub dst_node: u32,
    /// Destination PE rank.
    pub dst_pe: u32,
    /// Message payload size in bytes.
    pub msg_size: u32,
}

/// One line of the PAPI-based message trace `PEi_PAPI.csv`:
/// `source node, source PE, dst node, dst PE, pkt size, MAILBOXID,
/// NUM_SENDS, <counter values...>`.
///
/// ActorProf aggregates consecutive sends to the same (destination,
/// mailbox): `num_sends` counts how many sends the line covers, and the
/// counter values are the deltas accumulated over those sends while inside
/// the instrumented user regions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PapiRecord {
    /// Node of the sending PE.
    pub src_node: u32,
    /// Sending PE rank.
    pub src_pe: u32,
    /// Node of the destination PE.
    pub dst_node: u32,
    /// Destination PE rank.
    pub dst_pe: u32,
    /// Total payload bytes covered by this line.
    pub pkt_size: u64,
    /// Selector mailbox the sends targeted.
    pub mailbox_id: u32,
    /// Number of sends this line covers.
    pub num_sends: u64,
    /// Counter deltas, parallel to the configured PAPI event list (≤ 4).
    pub counters: Vec<u64>,
}

/// The Conveyors communication call a physical-trace entry came from
/// (§III-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SendType {
    /// Intra-node buffer delivery: `std::memcpy` through `shmem_ptr`.
    LocalSend,
    /// Inter-node buffer initiation via `shmem_putmem_nbi`.
    NonblockSend,
    /// Inter-node completion: `shmem_quiet` + signalling `shmem_put`.
    NonblockProgress,
}

impl SendType {
    /// Name as written in `physical.txt`.
    pub const fn label(self) -> &'static str {
        match self {
            SendType::LocalSend => "local_send",
            SendType::NonblockSend => "nonblock_send",
            SendType::NonblockProgress => "nonblock_progress",
        }
    }

    /// Parse a `physical.txt` send-type label.
    pub fn from_label(label: &str) -> Option<SendType> {
        match label {
            "local_send" => Some(SendType::LocalSend),
            "nonblock_send" => Some(SendType::NonblockSend),
            "nonblock_progress" => Some(SendType::NonblockProgress),
            _ => None,
        }
    }
}

impl std::fmt::Display for SendType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One post-aggregation send recorded inside Conveyors. One line of
/// `physical.txt`: `send type, buffer size, source PE, destination PE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhysicalRecord {
    /// Which Conveyors call produced this entry.
    pub send_type: SendType,
    /// Network-packet (aggregation buffer) size in bytes.
    pub buffer_size: u64,
    /// Sending PE rank.
    pub src_pe: u32,
    /// Destination PE rank (for `NonblockProgress`, the signalled PE).
    pub dst_pe: u32,
}

/// One completed runtime phase on one PE, in cycles relative to the PE's
/// collector creation. Spans of one PE nest properly by construction
/// (superstep ⊇ advance ⊇ quiet/relay hop), which is what lets the
/// exporter emit them as Perfetto `B`/`E` duration pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Which phase ran.
    pub phase: Phase,
    /// Relative cycle stamp at phase entry.
    pub begin: u64,
    /// Relative cycle stamp at phase exit (`end >= begin`).
    pub end: u64,
}

/// The per-PE overall breakdown (§III-B), in rdtsc cycles. One absolute and
/// one relative line of `overall.txt` per PE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OverallRecord {
    /// PE rank.
    pub pe: u32,
    /// Cycles generating messages + local computation (T_MAIN).
    pub t_main: u64,
    /// Cycles in user message handlers (T_PROC).
    pub t_proc: u64,
    /// Total cycles inside the profiled window (T_TOTAL).
    pub t_total: u64,
}

impl OverallRecord {
    /// Derived communication time: `T_TOTAL − T_MAIN − T_PROC`, saturating —
    /// exactly how the paper derives T_COMM (§III-B).
    pub fn t_comm(&self) -> u64 {
        self.t_total
            .saturating_sub(self.t_main)
            .saturating_sub(self.t_proc)
    }

    /// `(T_MAIN, T_COMM, T_PROC)` as fractions of T_TOTAL (the paper's
    /// "Relative" line). All zero when T_TOTAL is zero.
    pub fn relative(&self) -> (f64, f64, f64) {
        if self.t_total == 0 {
            return (0.0, 0.0, 0.0);
        }
        let t = self.t_total as f64;
        (
            self.t_main as f64 / t,
            self.t_comm() as f64 / t,
            self.t_proc as f64 / t,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_type_label_roundtrip() {
        for t in [
            SendType::LocalSend,
            SendType::NonblockSend,
            SendType::NonblockProgress,
        ] {
            assert_eq!(SendType::from_label(t.label()), Some(t));
        }
        assert_eq!(SendType::from_label("bogus"), None);
    }

    #[test]
    fn t_comm_is_derived_and_saturates() {
        let r = OverallRecord {
            pe: 0,
            t_main: 10,
            t_proc: 20,
            t_total: 100,
        };
        assert_eq!(r.t_comm(), 70);
        let degenerate = OverallRecord {
            pe: 0,
            t_main: 80,
            t_proc: 40,
            t_total: 100,
        };
        assert_eq!(degenerate.t_comm(), 0);
    }

    #[test]
    fn relative_fractions_sum_to_one() {
        let r = OverallRecord {
            pe: 3,
            t_main: 5,
            t_proc: 20,
            t_total: 100,
        };
        let (m, c, p) = r.relative();
        assert!((m + c + p - 1.0).abs() < 1e-12);
        assert!((m - 0.05).abs() < 1e-12);
        assert!((p - 0.20).abs() < 1e-12);
    }

    #[test]
    fn relative_of_zero_total_is_zero() {
        assert_eq!(OverallRecord::default().relative(), (0.0, 0.0, 0.0));
    }
}
