//! Per-PE trace accumulation.
//!
//! Each PE owns one [`PeCollector`]; the selector runtime records logical
//! sends and the overall breakdown into it, and the conveyor records
//! physical sends into the same collector through a [`SharedCollector`]
//! handle (both live on the same PE thread, so sharing is an `Rc<RefCell>`
//! — no locks on the trace fast path).
//!
//! To keep the memory of billion-message runs bounded (the trace-size
//! problem of §IV-E/§VI), logical sends are always folded into a dense
//! per-destination matrix; exact per-send records are kept only when
//! [`TraceConfig::logical_records`] is set.

use std::cell::RefCell;
use std::collections::HashMap;
use std::io::Write as _;
use std::rc::Rc;

use fabsp_hwpc::event::NUM_EVENTS;
use fabsp_hwpc::RegionProfile;

use fabsp_telemetry::Phase;

use crate::config::TraceConfig;
use crate::record::{LogicalRecord, OverallRecord, PapiRecord, PhysicalRecord, SendType, SpanRecord};

/// Thread-local shared handle to a PE's collector (runtime ↔ conveyor).
pub type SharedCollector = Rc<RefCell<PeCollector>>;

/// Aggregate of all logical sends from one PE to one destination.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LogicalCell {
    /// Number of messages sent.
    pub sends: u64,
    /// Total payload bytes sent.
    pub bytes: u64,
}

#[derive(Debug, Clone, Default)]
struct PapiAgg {
    num_sends: u64,
    pkt_size: u64,
    counters: [u64; fabsp_hwpc::MAX_EVENTS],
}

/// Trace accumulation buffer for one PE.
#[derive(Debug)]
pub struct PeCollector {
    pe: u32,
    n_pes: usize,
    pes_per_node: usize,
    config: TraceConfig,
    logical_matrix: Vec<LogicalCell>,
    logical_records: Vec<LogicalRecord>,
    papi_agg: HashMap<(u32, u32), PapiAgg>,
    physical_records: Vec<PhysicalRecord>,
    /// Cycle timestamp of each physical record, relative to collector
    /// creation (feeds the Google-Trace-Events exporter — §VI future work).
    physical_timestamps: Vec<u64>,
    /// Completed phase spans, in completion order, relative to collector
    /// creation (feeds the Perfetto duration export).
    span_records: Vec<SpanRecord>,
    t0_cycles: u64,
    overall: Option<OverallRecord>,
    region_profile: Option<RegionProfile>,
    /// Sends seen so far (drives record sampling).
    send_counter: u64,
    /// Streaming sink for exact logical records (§VI large-trace support).
    stream: Option<std::io::BufWriter<std::fs::File>>,
}

impl PeCollector {
    /// A collector for PE `pe` in a world of `n_pes` PEs grouped
    /// `pes_per_node` to a node.
    pub fn new(pe: usize, n_pes: usize, pes_per_node: usize, config: TraceConfig) -> PeCollector {
        assert!(pe < n_pes, "PE {pe} out of range ({n_pes} PEs)");
        assert!(pes_per_node > 0, "pes_per_node must be positive");
        let matrix_len = if config.logical { n_pes } else { 0 };
        let stream = config.stream_dir.as_ref().map(|dir| {
            std::fs::create_dir_all(dir).expect("create stream directory");
            let file = std::fs::File::create(dir.join(format!("PE{pe}_send.csv")))
                .expect("create stream file");
            std::io::BufWriter::new(file)
        });
        PeCollector {
            pe: pe as u32,
            n_pes,
            pes_per_node,
            config,
            logical_matrix: vec![LogicalCell::default(); matrix_len],
            logical_records: Vec::new(),
            papi_agg: HashMap::new(),
            physical_records: Vec::new(),
            physical_timestamps: Vec::new(),
            span_records: Vec::new(),
            t0_cycles: fabsp_hwpc::cycles_now(),
            overall: None,
            region_profile: None,
            send_counter: 0,
            stream,
        }
    }

    /// Wrap in the thread-local shared handle.
    pub fn into_shared(self) -> SharedCollector {
        Rc::new(RefCell::new(self))
    }

    /// This collector's PE rank.
    pub fn pe(&self) -> u32 {
        self.pe
    }

    /// The node hosting this PE.
    pub fn node(&self) -> u32 {
        (self.pe as usize / self.pes_per_node) as u32
    }

    /// Total PEs in the world.
    pub fn n_pes(&self) -> usize {
        self.n_pes
    }

    /// PEs per node (for deriving destination nodes).
    pub fn pes_per_node(&self) -> usize {
        self.pes_per_node
    }

    /// The active configuration.
    pub fn config(&self) -> &TraceConfig {
        &self.config
    }

    /// Whether the send fast path needs to call
    /// [`record_send`](PeCollector::record_send) at all.
    #[inline]
    pub fn wants_send_events(&self) -> bool {
        self.config.logical || self.config.papi.is_some()
    }

    /// Whether the conveyor should report physical sends.
    #[inline]
    pub fn wants_physical(&self) -> bool {
        self.config.physical
    }

    /// Whether the runtime should report phase spans.
    #[inline]
    pub fn wants_spans(&self) -> bool {
        self.config.spans
    }

    /// Record one logical (pre-aggregation) send of `msg_size` bytes to
    /// `dst_pe` via `mailbox_id`. `papi_deltas`, if PAPI tracing is
    /// configured, carries the counter deltas measured around the send, in
    /// the configured event order.
    pub fn record_send(
        &mut self,
        dst_pe: usize,
        msg_size: u32,
        mailbox_id: u32,
        papi_deltas: Option<&[u64]>,
    ) {
        debug_assert!(dst_pe < self.n_pes);
        if self.config.logical {
            let cell = &mut self.logical_matrix[dst_pe];
            cell.sends += 1;
            cell.bytes += msg_size as u64;
            let sampled = self.config.logical_sample <= 1
                || self.send_counter.is_multiple_of(self.config.logical_sample as u64);
            self.send_counter += 1;
            if sampled && (self.config.logical_records || self.stream.is_some()) {
                let record = LogicalRecord {
                    src_node: self.node(),
                    src_pe: self.pe,
                    dst_node: (dst_pe / self.pes_per_node) as u32,
                    dst_pe: dst_pe as u32,
                    msg_size,
                };
                if let Some(w) = &mut self.stream {
                    // identical line format to writer::write_logical_exact
                    writeln!(
                        w,
                        "{},{},{},{},{}",
                        record.src_node,
                        record.src_pe,
                        record.dst_node,
                        record.dst_pe,
                        record.msg_size
                    )
                    .expect("stream write failed (disk full?)");
                } else {
                    self.logical_records.push(record);
                }
            }
        }
        if let Some(papi) = &self.config.papi {
            let agg = self
                .papi_agg
                .entry((dst_pe as u32, mailbox_id))
                .or_default();
            agg.num_sends += 1;
            agg.pkt_size += msg_size as u64;
            if let Some(deltas) = papi_deltas {
                debug_assert_eq!(deltas.len(), papi.events().len());
                for (acc, d) in agg.counters.iter_mut().zip(deltas) {
                    *acc += d;
                }
            }
        }
    }

    /// Record one physical (post-aggregation) send observed inside the
    /// conveyor. No-op unless physical tracing is enabled.
    pub fn record_physical(&mut self, send_type: SendType, buffer_size: u64, dst_pe: usize) {
        self.record_physical_at(send_type, buffer_size, dst_pe, fabsp_hwpc::cycles_now());
    }

    /// Like [`record_physical`](PeCollector::record_physical), but with the
    /// absolute cycle stamp the event was *observed* at — used when events
    /// are batched in a [`TraceBuffer`](crate::TraceBuffer) and drained
    /// later, so the physical timeline reflects event time, not drain time.
    pub fn record_physical_at(
        &mut self,
        send_type: SendType,
        buffer_size: u64,
        dst_pe: usize,
        at_cycles: u64,
    ) {
        if !self.config.physical {
            return;
        }
        self.physical_records.push(PhysicalRecord {
            send_type,
            buffer_size,
            src_pe: self.pe,
            dst_pe: dst_pe as u32,
        });
        self.physical_timestamps
            .push(at_cycles.saturating_sub(self.t0_cycles));
    }

    /// Record one completed phase span from its absolute begin/end cycle
    /// stamps (taken at event time, so deferred draining does not skew the
    /// span timeline). No-op unless span tracing is enabled.
    pub fn record_span_at(&mut self, phase: Phase, begin_cycles: u64, end_cycles: u64) {
        if !self.config.spans {
            return;
        }
        let begin = begin_cycles.saturating_sub(self.t0_cycles);
        let end = end_cycles.saturating_sub(self.t0_cycles).max(begin);
        self.span_records.push(SpanRecord { phase, begin, end });
    }

    /// Replay a batch of hot-path events captured in a
    /// [`TraceBuffer`](crate::TraceBuffer) and leave the buffer empty (its
    /// storage is retained for reuse). Events are replayed in capture
    /// order, so the drained collector state — matrices, exact records,
    /// PAPI aggregates, physical timeline — is identical to eager
    /// per-event recording.
    pub fn drain(&mut self, buf: &mut crate::TraceBuffer) {
        let n_events = self
            .config
            .papi
            .as_ref()
            .map(|p| p.events().len())
            .unwrap_or(0);
        let (sends, physical, spans) = buf.take_events();
        for ev in &sends {
            self.record_send(
                ev.dst_pe as usize,
                ev.msg_size,
                ev.mailbox_id,
                ev.papi.as_ref().map(|bank| &bank[..n_events]),
            );
        }
        for ev in &physical {
            self.record_physical_at(ev.send_type, ev.buffer_size, ev.dst_pe as usize, ev.cycles);
        }
        for ev in &spans {
            self.record_span_at(ev.phase, ev.begin_cycles, ev.end_cycles);
        }
        buf.put_back_storage(sends, physical, spans);
    }

    /// Store the overall MAIN/PROC/TOTAL cycle measurements. No-op unless
    /// overall profiling is enabled.
    pub fn set_overall(&mut self, t_main: u64, t_proc: u64, t_total: u64) {
        if !self.config.overall {
            return;
        }
        self.overall = Some(OverallRecord {
            pe: self.pe,
            t_main,
            t_proc,
            t_total,
        });
    }

    /// Attach the per-region hardware-counter profile measured by the
    /// runtime (feeds Figs 10–11).
    pub fn set_region_profile(&mut self, profile: RegionProfile) {
        self.region_profile = Some(profile);
    }

    /// Flush the streaming sink, if any. Called automatically on drop;
    /// call explicitly to surface flush timing deterministically.
    pub fn flush_stream(&mut self) {
        if let Some(w) = &mut self.stream {
            w.flush().expect("stream flush failed");
        }
    }

    /// The per-destination aggregate of logical sends (empty when logical
    /// tracing is off). Index = destination PE.
    pub fn logical_matrix(&self) -> &[LogicalCell] {
        &self.logical_matrix
    }

    /// Exact per-send records (only populated with
    /// [`TraceConfig::logical_records`]).
    pub fn logical_records(&self) -> &[LogicalRecord] {
        &self.logical_records
    }

    /// The PAPI message trace lines for this PE, ordered by
    /// (destination, mailbox).
    pub fn papi_records(&self) -> Vec<PapiRecord> {
        let n_events = self
            .config
            .papi
            .as_ref()
            .map(|p| p.events().len())
            .unwrap_or(0);
        let mut keys: Vec<_> = self.papi_agg.keys().copied().collect();
        keys.sort_unstable();
        keys.into_iter()
            .map(|(dst_pe, mailbox_id)| {
                let agg = &self.papi_agg[&(dst_pe, mailbox_id)];
                PapiRecord {
                    src_node: self.node(),
                    src_pe: self.pe,
                    dst_node: (dst_pe as usize / self.pes_per_node) as u32,
                    dst_pe,
                    pkt_size: agg.pkt_size,
                    mailbox_id,
                    num_sends: agg.num_sends,
                    counters: agg.counters[..n_events].to_vec(),
                }
            })
            .collect()
    }

    /// Physical-trace entries recorded by this PE's conveyor.
    pub fn physical_records(&self) -> &[PhysicalRecord] {
        &self.physical_records
    }

    /// Cycle timestamps (relative to collector creation) parallel to
    /// [`physical_records`](PeCollector::physical_records).
    pub fn physical_timestamps(&self) -> &[u64] {
        &self.physical_timestamps
    }

    /// Completed phase spans, in completion order.
    pub fn span_records(&self) -> &[SpanRecord] {
        &self.span_records
    }

    /// The overall breakdown, if overall profiling ran.
    pub fn overall(&self) -> Option<OverallRecord> {
        self.overall
    }

    /// The per-region counter profile, if the runtime attached one.
    pub fn region_profile(&self) -> Option<&RegionProfile> {
        self.region_profile.as_ref()
    }

    /// Total logical sends issued by this PE (all destinations).
    pub fn total_sends(&self) -> u64 {
        self.logical_matrix.iter().map(|c| c.sends).sum()
    }

    /// Rough heap footprint of the recorded traces, in bytes — the
    /// quantity §IV-E worries about.
    pub fn trace_bytes(&self) -> usize {
        self.logical_matrix.len() * std::mem::size_of::<LogicalCell>()
            + self.logical_records.len() * std::mem::size_of::<LogicalRecord>()
            + self.papi_agg.len()
                * (std::mem::size_of::<PapiAgg>() + std::mem::size_of::<(u32, u32)>())
            + self.physical_records.len() * std::mem::size_of::<PhysicalRecord>()
            + self.span_records.len() * std::mem::size_of::<SpanRecord>()
    }
}

impl Drop for PeCollector {
    fn drop(&mut self) {
        // Best-effort flush; explicit flush_stream() reports failures.
        if let Some(w) = &mut self.stream {
            let _ = w.flush();
        }
    }
}

/// Events per counter bank — re-exported for sizing delta buffers.
pub const EVENT_BANK_SIZE: usize = NUM_EVENTS;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PapiConfig;

    fn collector(config: TraceConfig) -> PeCollector {
        PeCollector::new(1, 4, 2, config)
    }

    #[test]
    fn node_derivation() {
        let c = collector(TraceConfig::off());
        assert_eq!(c.node(), 0);
        let c = PeCollector::new(3, 4, 2, TraceConfig::off());
        assert_eq!(c.node(), 1);
    }

    #[test]
    fn logical_matrix_accumulates() {
        let mut c = collector(TraceConfig::off().with_logical());
        c.record_send(0, 16, 0, None);
        c.record_send(0, 16, 0, None);
        c.record_send(3, 8, 0, None);
        assert_eq!(c.logical_matrix()[0], LogicalCell { sends: 2, bytes: 32 });
        assert_eq!(c.logical_matrix()[3], LogicalCell { sends: 1, bytes: 8 });
        assert_eq!(c.total_sends(), 3);
        assert!(c.logical_records().is_empty(), "records off by default");
    }

    #[test]
    fn exact_records_when_enabled() {
        let mut c = collector(TraceConfig::off().with_logical_records());
        c.record_send(3, 24, 1, None);
        let recs = c.logical_records();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].src_pe, 1);
        assert_eq!(recs[0].src_node, 0);
        assert_eq!(recs[0].dst_pe, 3);
        assert_eq!(recs[0].dst_node, 1);
        assert_eq!(recs[0].msg_size, 24);
    }

    #[test]
    fn disabled_logical_records_nothing() {
        let mut c = collector(TraceConfig::off());
        assert!(!c.wants_send_events());
        c.record_send(0, 16, 0, None);
        assert!(c.logical_matrix().is_empty());
        assert_eq!(c.total_sends(), 0);
    }

    #[test]
    fn papi_aggregates_per_destination_and_mailbox() {
        let cfg = TraceConfig::off().with_papi(PapiConfig::case_study());
        let mut c = collector(cfg);
        c.record_send(0, 16, 0, Some(&[100, 40]));
        c.record_send(0, 16, 0, Some(&[50, 20]));
        c.record_send(0, 16, 1, Some(&[10, 5]));
        let recs = c.papi_records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].mailbox_id, 0);
        assert_eq!(recs[0].num_sends, 2);
        assert_eq!(recs[0].pkt_size, 32);
        assert_eq!(recs[0].counters, vec![150, 60]);
        assert_eq!(recs[1].mailbox_id, 1);
        assert_eq!(recs[1].counters, vec![10, 5]);
    }

    #[test]
    fn physical_respects_config() {
        let mut c = collector(TraceConfig::off());
        c.record_physical(SendType::LocalSend, 512, 0);
        assert!(c.physical_records().is_empty());
        let mut c = collector(TraceConfig::off().with_physical());
        assert!(c.wants_physical());
        c.record_physical(SendType::NonblockSend, 1024, 3);
        assert_eq!(c.physical_records().len(), 1);
        assert_eq!(c.physical_records()[0].buffer_size, 1024);
        assert_eq!(c.physical_records()[0].src_pe, 1);
    }

    #[test]
    fn overall_respects_config() {
        let mut c = collector(TraceConfig::off());
        c.set_overall(1, 2, 10);
        assert!(c.overall().is_none());
        let mut c = collector(TraceConfig::off().with_overall());
        c.set_overall(1, 2, 10);
        let o = c.overall().unwrap();
        assert_eq!((o.t_main, o.t_proc, o.t_total), (1, 2, 10));
        assert_eq!(o.t_comm(), 7);
    }

    #[test]
    fn sampling_keeps_every_kth_record() {
        let cfg = TraceConfig::off().with_logical_sampling(3);
        let mut c = collector(cfg);
        for _ in 0..10 {
            c.record_send(0, 8, 0, None);
        }
        // kept: sends 0, 3, 6, 9
        assert_eq!(c.logical_records().len(), 4);
        // the aggregate matrix stays exact
        assert_eq!(c.logical_matrix()[0].sends, 10);
    }

    #[test]
    fn streaming_writes_records_to_disk_not_memory() {
        let dir = std::env::temp_dir().join(format!("actorprof-stream-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = TraceConfig::off().with_streaming(&dir);
        let mut c = PeCollector::new(1, 4, 2, cfg);
        for dst in [0usize, 3, 3] {
            c.record_send(dst, 16, 0, None);
        }
        c.flush_stream();
        assert!(c.logical_records().is_empty(), "records go to disk");
        assert_eq!(c.logical_matrix()[3].sends, 2, "matrix still exact");
        let content = std::fs::read_to_string(dir.join("PE1_send.csv")).unwrap();
        let lines: Vec<&str> = content.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "0,1,0,0,16");
        assert_eq!(lines[1], "0,1,1,3,16");
        drop(c);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn streaming_with_sampling_composes() {
        let dir = std::env::temp_dir().join(format!("actorprof-ss-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = TraceConfig::off().with_logical_sampling(2).with_streaming(&dir);
        let mut c = PeCollector::new(0, 2, 2, cfg);
        for _ in 0..6 {
            c.record_send(1, 8, 0, None);
        }
        c.flush_stream();
        let content = std::fs::read_to_string(dir.join("PE0_send.csv")).unwrap();
        assert_eq!(content.lines().count(), 3, "every 2nd of 6 sends");
        drop(c);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn physical_timestamps_parallel_records_and_increase() {
        let mut c = collector(TraceConfig::off().with_physical());
        c.record_physical(SendType::LocalSend, 64, 0);
        c.record_physical(SendType::NonblockSend, 64, 2);
        assert_eq!(c.physical_timestamps().len(), c.physical_records().len());
        let ts = c.physical_timestamps();
        assert!(ts[1] >= ts[0], "timestamps are monotone per PE");
    }

    #[test]
    fn drained_batch_equals_eager_recording() {
        let cfg = TraceConfig::all().with_logical_records();
        let mut eager = collector(cfg.clone());
        let mut batched = collector(cfg.clone());
        let mut buf = crate::TraceBuffer::for_config(&cfg);

        let mut bank = [0u64; fabsp_hwpc::MAX_EVENTS];
        bank[0] = 100;
        bank[1] = 40;
        for dst in [0usize, 3, 3, 2] {
            eager.record_send(dst, 16, 1, Some(&bank[..2]));
            buf.record_send(dst, 16, 1, Some(bank));
        }
        eager.record_physical(SendType::LocalSend, 64, 0);
        eager.record_physical(SendType::NonblockSend, 128, 2);
        buf.record_physical(SendType::LocalSend, 64, 0);
        buf.record_physical(SendType::NonblockSend, 128, 2);
        batched.drain(&mut buf);

        assert!(buf.is_empty(), "drain leaves the buffer reusable");
        assert_eq!(eager.logical_matrix(), batched.logical_matrix());
        assert_eq!(eager.logical_records(), batched.logical_records());
        assert_eq!(eager.papi_records(), batched.papi_records());
        assert_eq!(eager.physical_records(), batched.physical_records());
        assert_eq!(
            eager.physical_timestamps().len(),
            batched.physical_timestamps().len()
        );
        // a second batch keeps accumulating
        buf.record_send(1, 8, 0, Some(bank));
        batched.drain(&mut buf);
        assert_eq!(batched.logical_matrix()[1].sends, 1);
    }

    #[test]
    fn spans_rebase_to_collector_creation_and_respect_config() {
        let mut c = collector(TraceConfig::off());
        c.record_span_at(Phase::Advance, 100, 200);
        assert!(c.span_records().is_empty(), "spans off by default");

        let mut c = collector(TraceConfig::off().with_spans());
        let t0 = fabsp_hwpc::cycles_now();
        c.record_span_at(Phase::Superstep, t0 + 10, t0 + 50);
        c.record_span_at(Phase::Quiet, t0 + 20, t0 + 30);
        let spans = c.span_records();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].phase, Phase::Superstep);
        assert!(spans[0].end >= spans[0].begin);
        assert!(spans[1].begin >= spans[0].begin, "relative to same t0");
    }

    #[test]
    fn drained_spans_sample_hot_phases_keep_supersteps() {
        let cfg = TraceConfig::off().with_span_sampling(4);
        let mut c = collector(cfg.clone());
        let mut buf = crate::TraceBuffer::for_config(&cfg);
        let t = fabsp_hwpc::cycles_now();
        for i in 0..8u64 {
            buf.record_span(Phase::Advance, t + i, t + i + 1);
        }
        buf.record_span(Phase::Superstep, t, t + 100);
        buf.record_span(Phase::Superstep, t + 100, t + 200);
        c.drain(&mut buf);
        assert!(buf.is_empty());
        let kept_hot = c
            .span_records()
            .iter()
            .filter(|s| s.phase == Phase::Advance)
            .count();
        assert_eq!(kept_hot, 2, "every 4th of 8 advance spans");
        let supersteps = c
            .span_records()
            .iter()
            .filter(|s| s.phase == Phase::Superstep)
            .count();
        assert_eq!(supersteps, 2, "supersteps never sampled away");
    }

    #[test]
    fn trace_bytes_grows_with_records() {
        let mut c = collector(TraceConfig::all().with_logical_records());
        let before = c.trace_bytes();
        for _ in 0..100 {
            c.record_send(0, 16, 0, Some(&[1, 1]));
        }
        assert!(c.trace_bytes() > before);
    }
}
