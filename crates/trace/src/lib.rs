//! # actorprof-trace — the ActorProf trace model
//!
//! This crate defines *what ActorProf records* (§III of the paper) as plain
//! data, decoupled from both the runtime that produces it (`fabsp-actor`,
//! `fabsp-conveyors`) and the profiler that consumes it (`actorprof`):
//!
//! - [`LogicalRecord`] — one point-to-point send **before aggregation**
//!   (`PEi_send.csv`): source node/PE, destination node/PE, message size.
//! - [`PapiRecord`] — the PAPI-based message trace (`PEi_PAPI.csv`):
//!   destination, packet size, mailbox id, number of sends, and up to four
//!   hardware-counter values.
//! - [`PhysicalRecord`] — one Conveyors-level send **after aggregation**
//!   (`physical.txt`): send type (`local_send` / `nonblock_send` /
//!   `nonblock_progress`), buffer size, source PE, destination PE.
//! - [`OverallRecord`] — the per-PE MAIN/COMM/PROC cycle breakdown
//!   (`overall.txt`), with `T_COMM` derived as `T_TOTAL − T_MAIN − T_PROC`.
//! - [`SpanRecord`] — one completed runtime phase (superstep / advance /
//!   quiet / relay hop) as a begin/end cycle pair, exported as Perfetto
//!   duration events.
//!
//! [`TraceConfig`] mirrors the paper's compile flags (`-DENABLE_TRACE`,
//! `-DENABLE_TCOMM_PROFILING`, `-DENABLE_TRACE_PHYSICAL`), and
//! [`PeCollector`] is the per-PE accumulation buffer the runtime layers
//! write into. Because the FA-BSP model sends *billions* of fine-grained
//! messages (§IV-E / §VI discuss trace bloat), the collector always keeps a
//! dense per-destination *aggregate matrix* and keeps exact per-send record
//! lists only when explicitly enabled.

// Zero unsafe today; keep it that way by construction.
#![forbid(unsafe_code)]

pub mod buffer;
pub mod collector;
pub mod config;
pub mod record;

pub use buffer::{PhysicalEvent, SendEvent, SpanEvent, TraceBuffer};
pub use collector::{PeCollector, SharedCollector};
pub use config::{PapiConfig, TraceConfig, TraceConfigError};
pub use fabsp_telemetry::{Phase, SamplingKnob};
pub use record::{LogicalRecord, OverallRecord, PapiRecord, PhysicalRecord, SendType, SpanRecord};
