//! Batched trace write buffers — the contention-free hot path.
//!
//! Recording straight into a [`PeCollector`] from the send/flush fast path
//! means a `RefCell` borrow (and, for the aggregate structures, hash-map and
//! matrix updates) *per message*. §IV-E's premise is that tracing must stay
//! cheap enough to leave on, so the runtime layers instead write fixed-size
//! [`SendEvent`]/[`PhysicalEvent`] values into a thread-local
//! [`TraceBuffer`] — a plain `Vec` push, no locks, no shared borrows — and
//! the collector replays the batch at natural drain boundaries
//! (`Conveyor::advance`, selector progress, termination) via
//! [`PeCollector::drain`].
//!
//! Exactness is preserved: every event carries everything `record_send` /
//! `record_physical` would have been told at event time, including the
//! hardware-counter deltas and the cycle timestamp, so the drained
//! collector state is identical to the eager one — the paper's exact
//! `local_send` / `nonblock_send` / `nonblock_progress` counts and FIFO
//! order survive batching.
//!
//! [`PeCollector`]: crate::PeCollector
//! [`PeCollector::drain`]: crate::PeCollector::drain

use fabsp_hwpc::MAX_EVENTS;
use fabsp_telemetry::Phase;

use crate::config::TraceConfig;
use crate::record::SendType;

/// One logical send, captured on the fast path for deferred replay.
#[derive(Debug, Clone, Copy)]
pub struct SendEvent {
    /// Destination PE.
    pub dst_pe: u32,
    /// Payload bytes.
    pub msg_size: u32,
    /// Mailbox the send went through.
    pub mailbox_id: u32,
    /// Hardware-counter deltas around the send (configured-event order,
    /// prefix of the bank), when PAPI tracing measured them.
    pub papi: Option<[u64; MAX_EVENTS]>,
}

/// One physical (post-aggregation) send, captured on the flush path.
#[derive(Debug, Clone, Copy)]
pub struct PhysicalEvent {
    /// `local_send` / `nonblock_send` / `nonblock_progress`.
    pub send_type: SendType,
    /// Bytes in the delivered buffer.
    pub buffer_size: u64,
    /// Destination PE.
    pub dst_pe: u32,
    /// Absolute cycle stamp taken at event time ([`fabsp_hwpc::cycles_now`]),
    /// so deferred draining does not skew the physical timeline.
    pub cycles: u64,
}

/// One completed phase span, captured on the hot path for deferred replay.
/// Cycle stamps are absolute; the collector rebases them at drain time.
#[derive(Debug, Clone, Copy)]
pub struct SpanEvent {
    /// Which phase ran.
    pub phase: Phase,
    /// Absolute cycle stamp at phase entry.
    pub begin_cycles: u64,
    /// Absolute cycle stamp at phase exit.
    pub end_cycles: u64,
}

/// Thread-local batch of trace events awaiting a drain into the PE's
/// collector. Construct with [`for_config`](TraceBuffer::for_config) so
/// disabled trace dimensions cost a single branch per event.
#[derive(Debug, Default)]
pub struct TraceBuffer {
    wants_sends: bool,
    wants_physical: bool,
    wants_spans: bool,
    /// Keep every k-th hot span (superstep spans always kept).
    span_sample: u32,
    /// Live stride override, ratcheted by the continuous-profiling
    /// governor; read fresh on every hot span.
    span_knob: Option<fabsp_telemetry::SamplingKnob>,
    /// Hot spans seen so far, sampled or not.
    span_seen: u64,
    sends: Vec<SendEvent>,
    physical: Vec<PhysicalEvent>,
    spans: Vec<SpanEvent>,
}

impl TraceBuffer {
    /// A buffer that records only the dimensions `config` enables.
    pub fn for_config(config: &TraceConfig) -> TraceBuffer {
        TraceBuffer {
            wants_sends: config.logical || config.papi.is_some(),
            wants_physical: config.physical,
            wants_spans: config.spans,
            span_sample: config.span_sample.max(1),
            span_knob: config.span_knob.clone(),
            span_seen: 0,
            sends: Vec::new(),
            physical: Vec::new(),
            spans: Vec::new(),
        }
    }

    /// Whether logical/PAPI send events are being captured.
    #[inline]
    pub fn wants_sends(&self) -> bool {
        self.wants_sends
    }

    /// Whether physical events are being captured.
    #[inline]
    pub fn wants_physical(&self) -> bool {
        self.wants_physical
    }

    /// Whether phase spans are being captured.
    #[inline]
    pub fn wants_spans(&self) -> bool {
        self.wants_spans
    }

    /// Capture one logical send. A `Vec` push — nothing shared, no borrow.
    #[inline]
    pub fn record_send(
        &mut self,
        dst_pe: usize,
        msg_size: u32,
        mailbox_id: u32,
        papi: Option<[u64; MAX_EVENTS]>,
    ) {
        if self.wants_sends {
            self.sends.push(SendEvent {
                dst_pe: dst_pe as u32,
                msg_size,
                mailbox_id,
                papi,
            });
        }
    }

    /// Capture one physical send, stamping the cycle counter now so the
    /// timeline reflects event time, not drain time.
    #[inline]
    pub fn record_physical(&mut self, send_type: SendType, buffer_size: u64, dst_pe: usize) {
        if self.wants_physical {
            self.physical.push(PhysicalEvent {
                send_type,
                buffer_size,
                dst_pe: dst_pe as u32,
                cycles: fabsp_hwpc::cycles_now(),
            });
        }
    }

    /// Capture one completed phase span. Superstep spans are always kept;
    /// the hot per-advance phases honor the configured sampling stride so
    /// long runs stay bounded.
    #[inline]
    pub fn record_span(&mut self, phase: Phase, begin_cycles: u64, end_cycles: u64) {
        if !self.wants_spans {
            return;
        }
        if phase != Phase::Superstep {
            let seen = self.span_seen;
            self.span_seen += 1;
            let stride = match &self.span_knob {
                Some(knob) => knob.get(),
                None => self.span_sample,
            };
            if stride > 1 && !seen.is_multiple_of(stride as u64) {
                return;
            }
        }
        self.spans.push(SpanEvent {
            phase,
            begin_cycles,
            end_cycles,
        });
    }

    /// Whether any captured events await draining.
    pub fn is_empty(&self) -> bool {
        self.sends.is_empty() && self.physical.is_empty() && self.spans.is_empty()
    }

    /// Captured-but-undrained logical sends.
    pub fn pending_sends(&self) -> &[SendEvent] {
        &self.sends
    }

    /// Captured-but-undrained physical events.
    pub fn pending_physical(&self) -> &[PhysicalEvent] {
        &self.physical
    }

    /// Captured-but-undrained phase spans.
    pub fn pending_spans(&self) -> &[SpanEvent] {
        &self.spans
    }

    pub(crate) fn take_events(&mut self) -> (Vec<SendEvent>, Vec<PhysicalEvent>, Vec<SpanEvent>) {
        (
            std::mem::take(&mut self.sends),
            std::mem::take(&mut self.physical),
            std::mem::take(&mut self.spans),
        )
    }

    pub(crate) fn put_back_storage(
        &mut self,
        sends: Vec<SendEvent>,
        physical: Vec<PhysicalEvent>,
        spans: Vec<SpanEvent>,
    ) {
        debug_assert!(self.sends.is_empty() && self.physical.is_empty() && self.spans.is_empty());
        self.sends = sends;
        self.physical = physical;
        self.spans = spans;
        self.sends.clear();
        self.physical.clear();
        self.spans.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_dimensions_record_nothing() {
        let mut b = TraceBuffer::for_config(&TraceConfig::off());
        assert!(!b.wants_sends() && !b.wants_physical());
        b.record_send(0, 8, 0, None);
        b.record_physical(SendType::LocalSend, 64, 1);
        assert!(b.is_empty());
    }

    #[test]
    fn enabled_dimensions_capture_in_order() {
        let mut b = TraceBuffer::for_config(&TraceConfig::off().with_logical().with_physical());
        b.record_send(2, 8, 0, None);
        b.record_send(3, 16, 1, None);
        b.record_physical(SendType::NonblockSend, 128, 3);
        assert_eq!(b.pending_sends().len(), 2);
        assert_eq!(b.pending_sends()[0].dst_pe, 2);
        assert_eq!(b.pending_sends()[1].msg_size, 16);
        assert_eq!(b.pending_physical().len(), 1);
        assert_eq!(b.pending_physical()[0].buffer_size, 128);
    }

    #[test]
    fn span_knob_overrides_static_stride_live() {
        let knob = fabsp_telemetry::SamplingKnob::new(1);
        let mut b = TraceBuffer::for_config(&TraceConfig::off().with_span_knob(knob.clone()));
        for i in 0..4 {
            b.record_span(Phase::Advance, i, i + 1);
        }
        assert_eq!(b.pending_spans().len(), 4, "stride 1 keeps everything");
        knob.set(4);
        for i in 4..12 {
            b.record_span(Phase::Advance, i, i + 1);
        }
        // seen counter is at 4 when the stride coarsens: multiples of 4
        // (events 4 and 8) survive out of the next eight.
        assert_eq!(b.pending_spans().len(), 6, "stride 4 keeps every 4th");
        b.record_span(Phase::Superstep, 100, 101);
        assert_eq!(
            b.pending_spans().len(),
            7,
            "supersteps bypass sampling regardless of knob"
        );
    }

    #[test]
    fn physical_stamps_cycles_at_event_time() {
        let mut b = TraceBuffer::for_config(&TraceConfig::off().with_physical());
        b.record_physical(SendType::LocalSend, 1, 0);
        b.record_physical(SendType::LocalSend, 1, 0);
        let p = b.pending_physical();
        assert!(p[0].cycles > 0);
        assert!(p[1].cycles >= p[0].cycles, "monotone per thread");
    }
}
