//! Trace configuration — the runtime equivalent of the paper's compile
//! flags (§III):
//!
//! | Paper flag | Field |
//! |---|---|
//! | `-DENABLE_TRACE` | [`TraceConfig::logical`] (+ optional [`TraceConfig::papi`]) |
//! | `-DENABLE_TCOMM_PROFILING` | [`TraceConfig::overall`] |
//! | `-DENABLE_TRACE_PHYSICAL` | [`TraceConfig::physical`] |
//!
//! In the C++ original these are compile-time so the untraced build carries
//! zero overhead; here they are runtime flags whose disabled paths are a
//! branch on a bool (measured by the `overhead_tracing` bench).

use fabsp_hwpc::{Event, MAX_EVENTS};
use fabsp_telemetry::SamplingKnob;

/// Errors constructing a trace configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceConfigError {
    /// More PAPI events than the hardware (and the paper) allow.
    TooManyPapiEvents { requested: usize },
    /// A PAPI event listed twice.
    DuplicatePapiEvent(Event),
    /// PAPI profiling requested with an empty event list.
    NoPapiEvents,
}

impl std::fmt::Display for TraceConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceConfigError::TooManyPapiEvents { requested } => write!(
                f,
                "at most {MAX_EVENTS} concurrent PAPI events (PAPI limit), {requested} requested"
            ),
            TraceConfigError::DuplicatePapiEvent(e) => write!(f, "PAPI event {e} listed twice"),
            TraceConfigError::NoPapiEvents => write!(f, "PAPI profiling needs at least one event"),
        }
    }
}

impl std::error::Error for TraceConfigError {}

/// Which PAPI events the message-aware profile records (§III-A).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PapiConfig {
    events: Vec<Event>,
}

impl PapiConfig {
    /// The configured events by their stable PAPI preset names — the
    /// on-disk/config-file representation (stable, readable, and avoids
    /// coupling the hwpc crate to an encoding library).
    pub fn papi_names(&self) -> Vec<&'static str> {
        self.events.iter().map(|e| e.papi_name()).collect()
    }

    /// Reconstruct a config from PAPI preset names, the inverse of
    /// [`PapiConfig::papi_names`]. Unknown names are reported verbatim.
    pub fn from_papi_names<S: AsRef<str>>(names: &[S]) -> Result<PapiConfig, String> {
        let events = names
            .iter()
            .map(|n| {
                Event::from_papi_name(n.as_ref())
                    .ok_or_else(|| format!("unknown PAPI event: {}", n.as_ref()))
            })
            .collect::<Result<Vec<_>, _>>()?;
        PapiConfig::new(&events).map_err(|e| e.to_string())
    }

    /// Configure up to [`MAX_EVENTS`] distinct events.
    pub fn new(events: &[Event]) -> Result<PapiConfig, TraceConfigError> {
        if events.is_empty() {
            return Err(TraceConfigError::NoPapiEvents);
        }
        if events.len() > MAX_EVENTS {
            return Err(TraceConfigError::TooManyPapiEvents {
                requested: events.len(),
            });
        }
        for (i, e) in events.iter().enumerate() {
            if events[..i].contains(e) {
                return Err(TraceConfigError::DuplicatePapiEvent(*e));
            }
        }
        Ok(PapiConfig {
            events: events.to_vec(),
        })
    }

    /// The paper's case-study pair: `PAPI_TOT_INS` and `PAPI_LST_INS`.
    pub fn case_study() -> PapiConfig {
        PapiConfig::new(&[Event::TotIns, Event::LstIns]).expect("two distinct events")
    }

    /// The configured events, in order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }
}

/// What to trace during an FA-BSP run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceConfig {
    /// Record the pre-aggregation logical trace (`-DENABLE_TRACE`).
    pub logical: bool,
    /// Additionally keep the exact per-send `PEi_send.csv` record list.
    /// Off by default: the aggregate matrix alone reproduces the heatmaps
    /// and avoids the trace bloat the paper warns about (§IV-E).
    pub logical_records: bool,
    /// Record the PAPI message trace for these events (part of
    /// `-DENABLE_TRACE` + `PAPI_start`/`PAPI_stop` placement).
    pub papi: Option<PapiConfig>,
    /// Record the MAIN/COMM/PROC overall breakdown
    /// (`-DENABLE_TCOMM_PROFILING`).
    pub overall: bool,
    /// Record the post-aggregation physical trace inside Conveyors
    /// (`-DENABLE_TRACE_PHYSICAL`).
    pub physical: bool,
    /// Keep only every k-th exact logical record (1 = all). The aggregate
    /// matrix is always exact; sampling bounds the per-send record volume —
    /// the "intelligent sampling of traces" direction of §VI.
    pub logical_sample: u32,
    /// Stream exact logical records to `dir/PE<i>_send.csv` as they happen
    /// instead of holding them in memory — the §VI answer to traces "of
    /// orders of 100GB" that cannot live in RAM. Implies
    /// [`logical_records`](TraceConfig::logical_records) semantics on disk
    /// while keeping memory O(PE²).
    pub stream_dir: Option<std::path::PathBuf>,
    /// Record phase spans (superstep / advance / quiet / relay-hop
    /// begin+end pairs), exported as Perfetto duration events.
    pub spans: bool,
    /// Keep only every k-th hot phase span (1 = all). Superstep spans are
    /// always kept; `advance`/`quiet`/relay spans are sampled, bounding the
    /// span volume of long runs the same way `logical_sample` bounds the
    /// logical records.
    pub span_sample: u32,
    /// Live span-sampling stride, shared with an
    /// [`OverheadGovernor`](fabsp_telemetry::OverheadGovernor). When set it
    /// overrides [`span_sample`](TraceConfig::span_sample) on every span, so
    /// the continuous-profiling governor can ratchet fidelity mid-run.
    pub span_knob: Option<SamplingKnob>,
}

impl TraceConfig {
    /// Everything disabled — the unprofiled production configuration.
    pub fn off() -> TraceConfig {
        TraceConfig::default()
    }

    /// Every trace enabled, PAPI with the paper's case-study events.
    pub fn all() -> TraceConfig {
        TraceConfig {
            logical: true,
            logical_records: false,
            papi: Some(PapiConfig::case_study()),
            overall: true,
            physical: true,
            logical_sample: 0,
            stream_dir: None,
            spans: true,
            span_sample: 1,
            span_knob: None,
        }
    }

    /// Enable the logical trace (`-DENABLE_TRACE`).
    pub fn with_logical(mut self) -> TraceConfig {
        self.logical = true;
        self
    }

    /// Keep exact per-send records too (implies logical).
    pub fn with_logical_records(mut self) -> TraceConfig {
        self.logical = true;
        self.logical_records = true;
        self
    }

    /// Keep only every `k`-th exact logical record (implies
    /// [`with_logical_records`](TraceConfig::with_logical_records)).
    pub fn with_logical_sampling(mut self, k: u32) -> TraceConfig {
        self.logical = true;
        self.logical_records = true;
        self.logical_sample = k.max(1);
        self
    }

    /// Stream exact logical records to files under `dir` instead of RAM
    /// (implies logical tracing).
    pub fn with_streaming(mut self, dir: impl Into<std::path::PathBuf>) -> TraceConfig {
        self.logical = true;
        self.stream_dir = Some(dir.into());
        self
    }

    /// Enable PAPI message tracing for `events`.
    pub fn with_papi(mut self, papi: PapiConfig) -> TraceConfig {
        self.papi = Some(papi);
        self
    }

    /// Enable the overall breakdown (`-DENABLE_TCOMM_PROFILING`).
    pub fn with_overall(mut self) -> TraceConfig {
        self.overall = true;
        self
    }

    /// Enable the physical trace (`-DENABLE_TRACE_PHYSICAL`).
    pub fn with_physical(mut self) -> TraceConfig {
        self.physical = true;
        self
    }

    /// Enable phase spans (every span kept).
    pub fn with_spans(mut self) -> TraceConfig {
        self.spans = true;
        if self.span_sample == 0 {
            self.span_sample = 1;
        }
        self
    }

    /// Enable phase spans, keeping every `k`-th hot span (supersteps are
    /// always kept; `0` clamps to keep-all).
    pub fn with_span_sampling(mut self, k: u32) -> TraceConfig {
        self.spans = true;
        self.span_sample = k.max(1);
        self
    }

    /// Enable phase spans whose sampling stride is read live from `knob`
    /// (the continuous-profiling governor owns the writes). Supersteps are
    /// still always kept.
    pub fn with_span_knob(mut self, knob: SamplingKnob) -> TraceConfig {
        self.spans = true;
        if self.span_sample == 0 {
            self.span_sample = 1;
        }
        self.span_knob = Some(knob);
        self
    }

    /// Whether any tracing at all is enabled.
    pub fn any_enabled(&self) -> bool {
        self.logical || self.papi.is_some() || self.overall || self.physical || self.spans
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn papi_config_enforces_limit() {
        let err = PapiConfig::new(&[
            Event::TotIns,
            Event::LstIns,
            Event::BrIns,
            Event::BrMsp,
            Event::L1Dcm,
        ])
        .unwrap_err();
        assert_eq!(err, TraceConfigError::TooManyPapiEvents { requested: 5 });
        assert_eq!(
            PapiConfig::new(&[]).unwrap_err(),
            TraceConfigError::NoPapiEvents
        );
        assert_eq!(
            PapiConfig::new(&[Event::TotIns, Event::TotIns]).unwrap_err(),
            TraceConfigError::DuplicatePapiEvent(Event::TotIns)
        );
    }

    #[test]
    fn case_study_events_match_paper() {
        let p = PapiConfig::case_study();
        assert_eq!(p.events(), &[Event::TotIns, Event::LstIns]);
    }

    #[test]
    fn builder_composes_flags() {
        let c = TraceConfig::off()
            .with_logical()
            .with_overall()
            .with_physical();
        assert!(c.logical && c.overall && c.physical);
        assert!(!c.logical_records);
        assert!(c.stream_dir.is_none());
        assert!(c.papi.is_none());
        assert!(c.any_enabled());
        assert!(!TraceConfig::off().any_enabled());
    }

    #[test]
    fn logical_records_implies_logical() {
        let c = TraceConfig::off().with_logical_records();
        assert!(c.logical);
        assert!(c.logical_records);
    }

    #[test]
    fn sampling_clamps_and_implies_records() {
        let c = TraceConfig::off().with_logical_sampling(0);
        assert_eq!(c.logical_sample, 1, "0 clamps to keep-all");
        assert!(c.logical_records);
        let c = TraceConfig::off().with_logical_sampling(10);
        assert_eq!(c.logical_sample, 10);
    }

    #[test]
    fn streaming_implies_logical() {
        let c = TraceConfig::off().with_streaming("/tmp/x");
        assert!(c.logical);
        assert_eq!(c.stream_dir.as_deref(), Some(std::path::Path::new("/tmp/x")));
    }

    #[test]
    fn papi_config_name_roundtrip() {
        let c = PapiConfig::case_study();
        let names = c.papi_names();
        assert!(names.contains(&"PAPI_TOT_INS"), "events named by preset");
        let back = PapiConfig::from_papi_names(&names).unwrap();
        assert_eq!(back, c);
        assert!(PapiConfig::from_papi_names(&["PAPI_NOPE"])
            .unwrap_err()
            .contains("PAPI_NOPE"));
    }

    #[test]
    fn all_enables_everything() {
        let c = TraceConfig::all();
        assert!(c.logical && c.overall && c.physical && c.papi.is_some());
        assert!(c.spans && c.span_sample == 1);
    }

    #[test]
    fn span_sampling_clamps_and_implies_spans() {
        let c = TraceConfig::off().with_spans();
        assert!(c.spans);
        assert_eq!(c.span_sample, 1);
        let c = TraceConfig::off().with_span_sampling(0);
        assert_eq!(c.span_sample, 1, "0 clamps to keep-all");
        let c = TraceConfig::off().with_span_sampling(8);
        assert!(c.spans);
        assert_eq!(c.span_sample, 8);
        assert!(c.any_enabled());
    }

    #[test]
    fn span_knob_implies_spans_and_compares_by_identity() {
        let knob = SamplingKnob::new(4);
        let c = TraceConfig::off().with_span_knob(knob.clone());
        assert!(c.spans);
        assert_eq!(c.span_sample, 1, "static stride stays keep-all");
        assert_eq!(c.clone(), c, "clone shares the same knob");
        let other = TraceConfig::off().with_span_knob(SamplingKnob::new(4));
        assert_ne!(c, other, "distinct knobs are distinct configs");
        assert!(c.any_enabled());
    }
}
