//! The one-stop ActorProf entry point: configure what to profile with a
//! builder, run an SPMD body, get a [`Report`] back.
//!
//! This facade replaces the hand-wired pipeline (build a `TraceConfig`,
//! thread it into every `Selector`, carry `PeCollector`s out of the SPMD
//! closure, assemble a `TraceBundle`) with one fluent call chain:
//!
//! ```
//! use actorprof::{PapiConfig, Profiler};
//! use std::{cell::RefCell, rc::Rc};
//!
//! let report = Profiler::new(fabsp_shmem::Grid::new(1, 2).unwrap())
//!     .logical()
//!     .overall()
//!     .papi(PapiConfig::case_study())
//!     .run(|pe, ctx| {
//!         // one selector per PE; the profiler wires tracing into it
//!         let seen = Rc::new(RefCell::new(0u64));
//!         let s = Rc::clone(&seen);
//!         let mut actor = ctx
//!             .selector(1, move |_mb, _msg: u64, _from, _ctx| *s.borrow_mut() += 1)
//!             .expect("selector");
//!         actor
//!             .execute(pe, |main| {
//!                 for i in 0..10u64 {
//!                     main.send(0, i, (i as usize) % main.n_pes()).expect("send");
//!                 }
//!                 main.done(0).expect("done");
//!             })
//!             .expect("execute");
//!         let got = *seen.borrow();
//!         got
//!     })
//!     .unwrap();
//! assert_eq!(report.results.iter().sum::<u64>(), 20);
//! assert_eq!(report.bundle.logical_matrix().unwrap().total(), 20);
//! ```

use std::path::{Path, PathBuf};
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use actorprof_trace::{PapiConfig, SharedCollector, TraceConfig};
use fabsp_actor::{ActorError, ProcCtx, Selector, SelectorConfig};
use fabsp_conveyors::ConveyorOptions;
use fabsp_shmem::{
    spmd, FaultSpec, Grid, Harness, Pe, RecoveryLog, RecoverySpec, SchedSpec, ShmemError,
    TransportSpec,
};
use fabsp_telemetry::{
    ContinuousReport, Counter, Frame, OverheadBudget, OverheadGovernor, SamplingKnob, Snapshot,
    TelemetryRegistry,
};

use crate::bundle::TraceBundle;
use crate::error::ProfError;

/// A live-telemetry subscriber: called with each [`Frame`] the observer
/// thread produces while the run executes.
pub type ObserveSink = Arc<dyn Fn(&Frame) + Send + Sync>;

/// Default interval between observer frames.
const DEFAULT_OBSERVE_INTERVAL: Duration = Duration::from_millis(25);

/// Anything a profiled run can fail with: the SPMD substrate, the actor
/// runtime, or trace assembly.
#[derive(Debug)]
pub enum RunError {
    /// SPMD / symmetric-memory failure.
    Shmem(ShmemError),
    /// Actor-runtime failure.
    Actor(ActorError),
    /// Trace assembly failure.
    Prof(ProfError),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Shmem(e) => write!(f, "shmem: {e}"),
            RunError::Actor(e) => write!(f, "actor: {e}"),
            RunError::Prof(e) => write!(f, "profiler: {e}"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<ShmemError> for RunError {
    fn from(e: ShmemError) -> Self {
        RunError::Shmem(e)
    }
}

impl From<ActorError> for RunError {
    fn from(e: ActorError) -> Self {
        RunError::Actor(e)
    }
}

impl From<ProfError> for RunError {
    fn from(e: ProfError) -> Self {
        RunError::Prof(e)
    }
}

/// Builder for a profiled FA-BSP run (see the [module docs](self) for the
/// full example).
///
/// Each `logical()`/`physical()`/`papi()`/… call enables one of the trace
/// kinds the paper's compile-time flags enable; `run` executes the body
/// once per PE and assembles everything into a [`Report`].
#[derive(Clone)]
pub struct Profiler {
    grid: Grid,
    trace: TraceConfig,
    conveyor: ConveyorOptions,
    sched: SchedSpec,
    faults: FaultSpec,
    /// What to do when a PE dies mid-run ([`RecoverySpec::Abort`] by
    /// default).
    recovery: RecoverySpec,
    /// Capture a symmetric-state checkpoint every `n` supersteps.
    checkpoint_every: Option<u64>,
    /// Which backend carries cross-node bytes ([`TransportSpec::InProc`]
    /// by default; `Ipc` routes them through a shared-memory segment).
    transport: TransportSpec,
    /// Always-on metrics registry (counters, gauges, histograms, flight
    /// recorder); off only for A/B overhead measurement.
    telemetry_enabled: bool,
    /// Live subscriber: (frame interval, sink).
    observe: Option<(Duration, ObserveSink)>,
    /// Continuous-profiling mode: meter instrumentation self-cost online
    /// and ratchet span sampling + observer cadence to stay in budget.
    continuous: Option<OverheadBudget>,
    /// Write the Perfetto trace-events JSON here after the run.
    trace_events: Option<PathBuf>,
    /// Where flight-recorder dumps land when a PE dies.
    flightrec_dir: Option<PathBuf>,
    /// Pin PE threads to CPUs (rank round-robin); off by default.
    pin_pes: bool,
}

impl std::fmt::Debug for Profiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Profiler")
            .field("grid", &self.grid)
            .field("trace", &self.trace)
            .field("conveyor", &self.conveyor)
            .field("sched", &self.sched)
            .field("faults", &self.faults)
            .field("recovery", &self.recovery)
            .field("checkpoint_every", &self.checkpoint_every)
            .field("transport", &self.transport)
            .field("telemetry_enabled", &self.telemetry_enabled)
            .field("observe_interval", &self.observe.as_ref().map(|(i, _)| *i))
            .field("continuous", &self.continuous)
            .field("trace_events", &self.trace_events)
            .field("flightrec_dir", &self.flightrec_dir)
            .field("pin_pes", &self.pin_pes)
            .finish()
    }
}

impl Profiler {
    /// A profiler on the given grid with all tracing off (telemetry — the
    /// always-on metrics registry — stays on).
    pub fn new(grid: Grid) -> Profiler {
        Profiler {
            grid,
            trace: TraceConfig::off(),
            conveyor: ConveyorOptions::default(),
            sched: SchedSpec::Os,
            faults: FaultSpec::NONE,
            recovery: RecoverySpec::Abort,
            checkpoint_every: None,
            transport: TransportSpec::InProc,
            telemetry_enabled: true,
            observe: None,
            continuous: None,
            trace_events: None,
            flightrec_dir: None,
            pin_pes: false,
        }
    }

    /// Record the pre-aggregation logical send matrix (`-DENABLE_TRACE`).
    pub fn logical(mut self) -> Profiler {
        self.trace = self.trace.with_logical();
        self
    }

    /// Additionally keep the exact per-send record list
    /// (`PEi_send.csv` rows rather than just the matrix).
    pub fn logical_records(mut self) -> Profiler {
        self.trace = self.trace.with_logical_records();
        self
    }

    /// Record the post-aggregation physical trace inside Conveyors
    /// (`-DENABLE_TRACE_PHYSICAL`).
    pub fn physical(mut self) -> Profiler {
        self.trace = self.trace.with_physical();
        self
    }

    /// Record the MAIN/COMM/PROC overall breakdown
    /// (`-DENABLE_TCOMM_PROFILING`).
    pub fn overall(mut self) -> Profiler {
        self.trace = self.trace.with_overall();
        self
    }

    /// Record the PAPI message trace for these hardware events.
    pub fn papi(mut self, papi: PapiConfig) -> Profiler {
        self.trace = self.trace.with_papi(papi);
        self
    }

    /// Enable every trace kind (the paper's full instrumentation).
    pub fn all_traces(mut self) -> Profiler {
        self.trace = TraceConfig::all();
        self
    }

    /// Replace the trace configuration wholesale (escape hatch for
    /// sampling/streaming options the named methods don't cover).
    pub fn trace_config(mut self, trace: TraceConfig) -> Profiler {
        self.trace = trace;
        self
    }

    /// Override conveyor aggregation options for the run's selectors.
    pub fn conveyor(mut self, conveyor: ConveyorOptions) -> Profiler {
        self.conveyor = conveyor;
        self
    }

    /// Let each conveyor adapt its effective slab occupancy target at run
    /// time, growing under push refusals and shrinking when the pull
    /// backlog piles up, instead of using the fixed configured capacity.
    pub fn adaptive_capacity(mut self, adaptive: bool) -> Profiler {
        self.conveyor.adaptive = adaptive;
        self
    }

    /// Pin each PE thread to one CPU (rank round-robin). Off by default;
    /// a performance hint for hot-path measurement, Linux-only.
    pub fn pin_pes(mut self, pin: bool) -> Profiler {
        self.pin_pes = pin;
        self
    }

    /// Select the thread schedule (deterministic random walk for tests).
    pub fn sched(mut self, sched: SchedSpec) -> Profiler {
        self.sched = sched;
        self
    }

    /// Inject substrate faults (testkit).
    pub fn faults(mut self, faults: FaultSpec) -> Profiler {
        self.faults = faults;
        self
    }

    /// What to do when a PE panics mid-run: [`RecoverySpec::Abort`]
    /// (default) fails the run; [`RecoverySpec::RestartFromCheckpoint`]
    /// re-executes the whole SPMD body, up to `max_retries` times.
    pub fn recovery(mut self, recovery: RecoverySpec) -> Profiler {
        self.recovery = recovery;
        self
    }

    /// Capture a checkpoint of the symmetric state every `n` supersteps
    /// (at the superstep boundary, where conveyors are quiescent).
    pub fn checkpoint_every(mut self, n: u64) -> Profiler {
        self.checkpoint_every = Some(n);
        self
    }

    /// Select the transport backend carrying cross-node bytes.
    /// [`TransportSpec::InProc`] (default) keeps the zero-copy memcpy
    /// path; [`TransportSpec::ipc`] mirrors every cross-node transfer
    /// into a shared-memory ring-mailbox segment.
    pub fn transport(mut self, transport: TransportSpec) -> Profiler {
        self.transport = transport;
        self
    }

    /// Record phase spans (superstep / advance / quiet / relay hop), every
    /// span kept; they appear as duration events in the Perfetto export.
    pub fn spans(mut self) -> Profiler {
        self.trace = self.trace.with_spans();
        self
    }

    /// Record phase spans, keeping every `k`-th hot span (supersteps are
    /// always kept).
    pub fn span_sampling(mut self, k: u32) -> Profiler {
        self.trace = self.trace.with_span_sampling(k);
        self
    }

    /// Write the Google Trace Events JSON (for ui.perfetto.dev /
    /// `chrome://tracing`) to `path` after the run — no need to touch the
    /// [`TraceBundle`] for the common export.
    pub fn trace_events_path(mut self, path: impl Into<PathBuf>) -> Profiler {
        self.trace_events = Some(path.into());
        self
    }

    /// Directory for flight-recorder dumps (`flightrec-pe<i>.json`),
    /// written when a PE panics, a testkit fault fires, or the termination
    /// checker trips.
    pub fn flightrec_dir(mut self, dir: impl Into<PathBuf>) -> Profiler {
        self.flightrec_dir = Some(dir.into());
        self
    }

    /// Subscribe a live sink to the run's telemetry at the default frame
    /// interval. The sink runs on a dedicated observer thread and receives
    /// snapshot-diff [`Frame`]s while the PEs execute, plus one final frame
    /// after they finish.
    pub fn observe(self, sink: impl Fn(&Frame) + Send + Sync + 'static) -> Profiler {
        self.observe_every(DEFAULT_OBSERVE_INTERVAL, sink)
    }

    /// Like [`observe`](Profiler::observe) with an explicit frame interval.
    pub fn observe_every(
        mut self,
        interval: Duration,
        sink: impl Fn(&Frame) + Send + Sync + 'static,
    ) -> Profiler {
        self.observe = Some((interval, Arc::new(sink)));
        self
    }

    /// Continuous-profiling mode: phase spans are recorded through a live
    /// [`SamplingKnob`] and an [`OverheadGovernor`] on the observer thread
    /// meters the measured instrumentation cost each window, ratcheting the
    /// sampling stride and observer cadence to keep overhead inside
    /// `budget`. The run starts at the budget's conservative
    /// `initial_stride` and *earns* fidelity while it stays cheap. Every
    /// control decision comes back as [`Report::continuous`].
    ///
    /// Implies span tracing; composes with [`observe`](Profiler::observe)
    /// (the sink then sees [`Frame::governor`] populated) but works
    /// without a sink too.
    pub fn continuous(mut self, budget: OverheadBudget) -> Profiler {
        self.continuous = Some(budget);
        self
    }

    /// Disable the always-on telemetry registry. Only meant for measuring
    /// its own overhead (the `bench_hotpath` A/B comparison).
    pub fn telemetry_off(mut self) -> Profiler {
        self.telemetry_enabled = false;
        self
    }

    /// Run `body` once per PE and assemble the traces.
    ///
    /// The body must create **exactly one** selector through
    /// [`ProfilerCtx::selector`] — that selector's collector becomes the
    /// PE's contribution to [`Report::bundle`]. The per-PE return values
    /// come back in rank order as [`Report::results`].
    pub fn run<R, F>(self, body: F) -> Result<Report<R>, RunError>
    where
        R: Send,
        F: Fn(&Pe, &mut ProfilerCtx<'_>) -> R + Sync,
    {
        let registry = self.telemetry_enabled.then(|| {
            let mut reg = TelemetryRegistry::new(self.grid.n_pes());
            if let Some(dir) = &self.flightrec_dir {
                reg = reg.flight_dump_dir(dir);
            }
            Arc::new(reg)
        });
        let mut harness = Harness::new(self.grid)
            .sched(self.sched)
            .faults(self.faults)
            .recovery(self.recovery)
            .transport(self.transport)
            .pin_pes(self.pin_pes);
        if let Some(n) = self.checkpoint_every {
            harness = harness.checkpoint_every(n);
        }
        harness = match &registry {
            Some(reg) => harness.telemetry(reg.clone()),
            None => harness.telemetry_off(),
        };

        // Continuous mode shares one SamplingKnob between the governor (on
        // the observer thread, sole writer) and every PE's trace buffer.
        let mut trace = self.trace.clone();
        let continuous = self
            .continuous
            .map(|budget| (budget, SamplingKnob::new(budget.initial_stride)));
        if let Some((_, knob)) = &continuous {
            trace = trace.with_span_knob(knob.clone());
        }

        // The observer thread pulls snapshot diffs at the configured
        // interval while PEs run; the stop flag is Relaxed — thread join
        // orders the final accesses, the flag itself is a plain signal.
        // In continuous mode the same thread runs the overhead governor:
        // each tick it charges its own snapshot+diff cost plus the PEs'
        // metered self-cost against the window and ratchets the knob.
        let n_pes = self.grid.n_pes() as u64;
        let spawn_observer = self.observe.is_some() || continuous.is_some();
        let observer = match &registry {
            Some(reg) if spawn_observer => {
                let reg = reg.clone();
                let sink = self.observe.as_ref().map(|(_, s)| Arc::clone(s));
                let interval = self
                    .observe
                    .as_ref()
                    .map_or(DEFAULT_OBSERVE_INTERVAL, |(i, _)| *i);
                let mut governor = continuous
                    .as_ref()
                    .map(|(budget, knob)| OverheadGovernor::new(*budget, knob.clone(), interval));
                let stop = Arc::new(AtomicBool::new(false));
                let stop_flag = stop.clone();
                let handle = std::thread::spawn(move || {
                    let mut prev = reg.snapshot();
                    let mut prev_cycles = fabsp_hwpc::cycles_now();
                    let mut seq = 0u64;
                    loop {
                        // Final frame skips the wait: everything since the
                        // last tick, so short runs still deliver one frame.
                        // Parked, not slept: the runner unparks right after
                        // raising the stop flag, so a finishing run never
                        // waits out a whole cadence (up to 500ms after
                        // governor back-off) to get its final frame.
                        let mut stopped = stop_flag.load(Ordering::Relaxed);
                        if !stopped {
                            let cadence = governor.as_ref().map_or(interval, |g| g.cadence());
                            let deadline = std::time::Instant::now() + cadence;
                            loop {
                                let left = deadline.saturating_duration_since(std::time::Instant::now());
                                if left.is_zero() || stop_flag.load(Ordering::Relaxed) {
                                    break;
                                }
                                std::thread::park_timeout(left);
                            }
                            stopped = stop_flag.load(Ordering::Relaxed);
                        }
                        let obs_begin = fabsp_hwpc::cycles_now();
                        let total = reg.snapshot();
                        let delta = total.diff(&prev);
                        let now = fabsp_hwpc::cycles_now();
                        // The post-stop flush frame is a fractional stub
                        // window — fixed snapshot cost over however little
                        // wall time is left — so steering on it would end
                        // every run with a quantization spike. Feed it only
                        // when it is the run's sole window (a run shorter
                        // than one cadence, where the stub IS the run).
                        let sample = match governor.as_mut() {
                            Some(g) if !stopped || g.decisions().is_empty() => {
                                let window_cycles =
                                    now.saturating_sub(prev_cycles).saturating_mul(n_pes);
                                let instr = delta.counter_total(Counter::TelemetrySelfCycles);
                                Some(g.observe_window(
                                    window_cycles,
                                    instr,
                                    now.saturating_sub(obs_begin),
                                    now,
                                ))
                            }
                            _ => None,
                        };
                        if let Some(sink) = &sink {
                            sink(&Frame {
                                seq,
                                at_cycles: now,
                                total: total.clone(),
                                delta,
                                governor: sample,
                            });
                        }
                        prev = total;
                        prev_cycles = now;
                        seq += 1;
                        if stopped {
                            break;
                        }
                    }
                    governor.map(OverheadGovernor::into_report)
                });
                Some((stop, handle))
            }
            _ => None,
        };

        let trace = &trace;
        let conveyor = self.conveyor;
        let outcomes = spmd::run_recovering(harness, |pe| {
            let mut ctx = ProfilerCtx {
                pe,
                trace: trace.clone(),
                conveyor,
                collectors: Vec::new(),
            };
            let result = body(pe, &mut ctx);
            let n = ctx.collectors.len();
            let collector = (n == 1).then(|| {
                let rc = ctx.collectors.pop().expect("len checked");
                let mut collector = Rc::try_unwrap(rc)
                    .map(std::cell::RefCell::into_inner)
                    .expect("drop the selector before the profiler body returns");
                // Streamed per-send files must be complete on disk before
                // the report hands them to a reader.
                collector.flush_stream();
                collector
            });
            (result, collector, n)
        });

        // Stop the observer on success AND failure paths, so a failed run
        // cannot leak a forever-polling thread.
        let mut continuous_report = None;
        if let Some((stop, handle)) = observer {
            stop.store(true, Ordering::Relaxed);
            handle.thread().unpark();
            if let Ok(report) = handle.join() {
                continuous_report = report;
            }
        }
        let (outcomes, recovery) = outcomes?;

        let mut results = Vec::with_capacity(outcomes.len());
        let mut collectors = Vec::with_capacity(outcomes.len());
        for (rank, (result, collector, n)) in outcomes.into_iter().enumerate() {
            let Some(collector) = collector else {
                return Err(ProfError::BadBundle(format!(
                    "profiler body must create exactly one selector per PE \
                     (PE {rank} created {n})"
                ))
                .into());
            };
            results.push(result);
            collectors.push(collector);
        }
        let bundle = TraceBundle::from_collectors(collectors)?;
        if let Some(path) = &self.trace_events {
            crate::export::write_trace_events_with_governor(
                path,
                &bundle,
                continuous_report.as_ref(),
            )?;
        }
        let telemetry = registry.map(|reg| reg.snapshot());
        Ok(Report {
            results,
            bundle,
            telemetry,
            recovery,
            continuous: continuous_report,
        })
    }
}

/// Per-PE handle the profiler passes to the run body: identity plus the
/// selector factory that wires tracing in.
pub struct ProfilerCtx<'p> {
    pe: &'p Pe,
    trace: TraceConfig,
    conveyor: ConveyorOptions,
    collectors: Vec<SharedCollector>,
}

impl<'p> ProfilerCtx<'p> {
    /// The calling PE.
    pub fn pe(&self) -> &'p Pe {
        self.pe
    }

    /// This PE's rank.
    pub fn rank(&self) -> usize {
        self.pe.rank()
    }

    /// World size.
    pub fn n_pes(&self) -> usize {
        self.pe.n_pes()
    }

    /// The trace configuration this run profiles under.
    pub fn trace(&self) -> &TraceConfig {
        &self.trace
    }

    /// Collectively create a selector wired to the profiler's trace and
    /// conveyor configuration. `handler` is invoked as
    /// `(mailbox, message, sender, ctx)` for every delivered message.
    pub fn selector<'h, T>(
        &mut self,
        n_mailboxes: usize,
        handler: impl FnMut(usize, T, u32, &mut ProcCtx<'_, T>) + 'h,
    ) -> Result<Selector<'h, T>, ActorError>
    where
        T: Copy + Default + Send + 'static,
    {
        let selector = Selector::new(
            self.pe,
            n_mailboxes,
            SelectorConfig {
                conveyor: self.conveyor,
                trace: self.trace.clone(),
            },
            handler,
        )?;
        self.collectors.push(selector.collector());
        Ok(selector)
    }
}

/// What a profiled run produced: per-PE results plus the assembled traces.
#[derive(Debug)]
pub struct Report<R = ()> {
    /// Per-PE body return values, in rank order.
    pub results: Vec<R>,
    /// The assembled traces — ask it for matrices, quartiles, PAPI
    /// totals, the overall breakdown, or feed it to [`crate::writer`].
    pub bundle: TraceBundle,
    /// Final telemetry snapshot (counters, gauges, histograms per PE);
    /// `None` only when the run was built with
    /// [`telemetry_off`](Profiler::telemetry_off).
    pub telemetry: Option<Snapshot>,
    /// What fault tolerance did during the run: checkpoints taken, PE
    /// kills observed, restarts, net retries, wasted supersteps. All-zero
    /// ([`RecoveryLog::is_clean`]) on an undisturbed run.
    pub recovery: RecoveryLog,
    /// What the overhead governor did, window by window; `Some` only when
    /// the run was built with [`Profiler::continuous`].
    pub continuous: Option<ContinuousReport>,
}

impl<R> Report<R> {
    /// Render the plain-text analysis report (load balance, bottlenecks).
    pub fn render(&self, title: &str) -> String {
        crate::report::render(&self.bundle, title)
    }

    /// Write the paper-format trace files into `dir`; returns the file
    /// names written.
    pub fn write_to(&self, dir: impl AsRef<Path>) -> Result<Vec<String>, ProfError> {
        crate::writer::write_all(dir.as_ref(), &self.bundle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn run_histogram(p: Profiler) -> Report<u64> {
        p.run(|pe, ctx| {
            let mass = Rc::new(RefCell::new(0u64));
            let m = Rc::clone(&mass);
            let mut actor = ctx
                .selector(1, move |_mb, _msg: u64, _from, _ctx| *m.borrow_mut() += 1)
                .expect("selector");
            actor
                .execute(pe, |main| {
                    for i in 0..50u64 {
                        main.send(0, i, (i as usize) % main.n_pes()).expect("send");
                    }
                    main.done(0).expect("done");
                })
                .expect("execute");
            let got = *mass.borrow();
            got
        })
        .expect("profiled run")
    }

    #[test]
    fn facade_collects_all_enabled_traces() {
        let report = run_histogram(
            Profiler::new(Grid::new(2, 2).unwrap())
                .logical()
                .overall()
                .physical()
                .papi(PapiConfig::case_study()),
        );
        assert_eq!(report.results.iter().sum::<u64>(), 200);
        let m = report.bundle.logical_matrix().unwrap();
        assert_eq!(m.total(), 200);
        assert!(report.bundle.has_overall());
        assert!(report.bundle.has_physical());
        assert!(!report.render("t").is_empty());
    }

    #[test]
    fn facade_runs_untraced() {
        let report = run_histogram(Profiler::new(Grid::single_node(2).unwrap()));
        assert_eq!(report.results.iter().sum::<u64>(), 100);
        assert!(report.bundle.logical_matrix().is_err());
    }

    #[test]
    fn facade_is_deterministic_under_seeded_schedule() {
        let traced = || {
            run_histogram(
                Profiler::new(Grid::new(2, 2).unwrap())
                    .logical()
                    .sched(SchedSpec::random_walk(11)),
            )
        };
        let (a, b) = (traced(), traced());
        assert_eq!(
            a.bundle.logical_matrix().unwrap(),
            b.bundle.logical_matrix().unwrap()
        );
    }

    #[test]
    fn telemetry_snapshot_counts_runtime_activity() {
        let report = run_histogram(Profiler::new(Grid::new(2, 2).unwrap()));
        let snap = report.telemetry.expect("telemetry on by default");
        // every PE sent 50 messages from MAIN
        assert_eq!(
            snap.counter_total(fabsp_telemetry::Counter::ActorSends),
            200
        );
        assert!(
            snap.hist_count(fabsp_telemetry::Hist::AdvanceCycles) > 0,
            "advance latency histogram populated"
        );
        let per_pe = snap.counter_per_pe(fabsp_telemetry::Counter::ActorSends);
        assert_eq!(per_pe, vec![50, 50, 50, 50]);
    }

    #[test]
    fn telemetry_off_yields_no_snapshot() {
        let report = run_histogram(Profiler::new(Grid::single_node(2).unwrap()).telemetry_off());
        assert!(report.telemetry.is_none());
        assert_eq!(report.results.iter().sum::<u64>(), 100);
    }

    #[test]
    fn observer_sink_receives_frames() {
        let frames = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let sends_seen = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let f = frames.clone();
        let s = sends_seen.clone();
        let report = run_histogram(
            Profiler::new(Grid::single_node(2).unwrap()).observe_every(
                Duration::from_millis(1),
                move |frame: &Frame| {
                    f.fetch_add(1, Ordering::Relaxed);
                    s.store(
                        frame.total.counter_total(fabsp_telemetry::Counter::ActorSends),
                        Ordering::Relaxed,
                    );
                },
            ),
        );
        assert_eq!(report.results.iter().sum::<u64>(), 100);
        assert!(
            frames.load(Ordering::Relaxed) >= 1,
            "the final frame always fires"
        );
        assert_eq!(
            sends_seen.load(Ordering::Relaxed),
            100,
            "last frame carries the complete totals"
        );
    }

    #[test]
    fn continuous_mode_reports_governor_decisions() {
        let report = run_histogram(
            Profiler::new(Grid::single_node(2).unwrap())
                .continuous(OverheadBudget::pct(50.0))
                .observe_every(Duration::from_millis(1), |_| {}),
        );
        assert_eq!(report.results.iter().sum::<u64>(), 100);
        let cont = report.continuous.expect("continuous report present");
        assert!(cont.windows() >= 1, "at least the final window observed");
        assert!(cont.final_stride() >= 1);
        for d in &cont.decisions {
            assert!(d.window_cycles > 0, "windows span real cycles");
            assert!(d.cadence_after >= cont.budget.min_cadence);
            assert!(d.cadence_after <= cont.budget.max_cadence);
        }
        // Spans were enabled implicitly by continuous mode, so the bundle
        // carries phase spans even though .spans() was never called.
        assert!(report.bundle.has_spans(), "knob implies span tracing");
    }

    #[test]
    fn plain_runs_have_no_continuous_report() {
        let report = run_histogram(Profiler::new(Grid::single_node(2).unwrap()));
        assert!(report.continuous.is_none());
    }

    #[test]
    fn trace_events_path_writes_perfetto_json() {
        let dir = std::env::temp_dir().join(format!("actorprof-tep-{}", std::process::id()));
        let path = dir.join("trace.json");
        let report = run_histogram(
            Profiler::new(Grid::single_node(2).unwrap())
                .physical()
                .spans()
                .trace_events_path(&path),
        );
        assert_eq!(report.results.iter().sum::<u64>(), 100);
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\":\"B\""), "duration spans exported");
        assert!(json.contains("\"name\":\"superstep\""));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn adaptive_capacity_and_pinning_run_clean() {
        let report = run_histogram(
            Profiler::new(Grid::new(2, 2).unwrap())
                .logical()
                .adaptive_capacity(true)
                .pin_pes(true),
        );
        assert_eq!(report.results.iter().sum::<u64>(), 200);
        assert_eq!(report.bundle.logical_matrix().unwrap().total(), 200);
    }

    #[test]
    fn undisturbed_run_has_a_clean_recovery_log() {
        let report = run_histogram(Profiler::new(Grid::single_node(2).unwrap()));
        assert!(report.recovery.is_clean(), "{}", report.recovery);
    }

    #[test]
    fn facade_recovers_from_a_killed_pe() {
        let report = run_histogram(
            Profiler::new(Grid::single_node(2).unwrap())
                .logical()
                .faults(FaultSpec::kill_pe(1, 0))
                .checkpoint_every(1)
                .recovery(RecoverySpec::restart(2)),
        );
        // The retried attempt produced the full, undisturbed result.
        assert_eq!(report.results.iter().sum::<u64>(), 100);
        assert_eq!(report.bundle.logical_matrix().unwrap().total(), 100);
        assert_eq!(report.recovery.kills_observed.len(), 1);
        assert_eq!(report.recovery.kills_observed[0].pe, 1);
        assert_eq!(report.recovery.restarts, 1);
        assert!(report.recovery.checkpoints_taken >= 1);
        assert_eq!(report.recovery.wasted_supersteps, 1);
    }

    #[test]
    fn body_without_selector_is_an_error() {
        let err = Profiler::new(Grid::single_node(2).unwrap())
            .run(|_pe, _ctx| 0u64)
            .unwrap_err();
        assert!(matches!(err, RunError::Prof(ProfError::BadBundle(_))));
        assert!(err.to_string().contains("exactly one selector"));
    }
}
