//! Overall-breakdown analysis (§III-B, Figs 12–13).
//!
//! Turns per-PE [`OverallRecord`]s into the series the stacked bar graphs
//! plot (absolute cycles and relative fractions per region) and the
//! aggregate statements the paper draws from them ("COMM regime is the
//! bottleneck", "MAIN constitutes ≤ 5%...").

use actorprof_trace::OverallRecord;

/// One region's share across all PEs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegionShare {
    /// Sum of the region's cycles over all PEs.
    pub cycles: u64,
    /// The region's fraction of summed total cycles.
    pub fraction: f64,
}

/// World-wide summary of an overall profile.
#[derive(Debug, Clone, PartialEq)]
pub struct OverallSummary {
    /// MAIN share.
    pub main: RegionShare,
    /// COMM share (derived).
    pub comm: RegionShare,
    /// PROC share.
    pub proc: RegionShare,
    /// Summed T_TOTAL over PEs.
    pub total_cycles: u64,
    /// Maximum per-PE T_TOTAL (the critical path proxy the paper's
    /// "~600k vs ~300k cycles" comparison uses).
    pub max_total_cycles: u64,
    /// Which region dominates (`"T_MAIN"`, `"T_COMM"`, or `"T_PROC"`).
    pub bottleneck: &'static str,
}

impl OverallSummary {
    /// Summarize per-PE records.
    pub fn of(records: &[OverallRecord]) -> OverallSummary {
        let total: u64 = records.iter().map(|r| r.t_total).sum();
        let main: u64 = records.iter().map(|r| r.t_main).sum();
        let proc: u64 = records.iter().map(|r| r.t_proc).sum();
        let comm: u64 = records.iter().map(|r| r.t_comm()).sum();
        let frac = |c: u64| if total > 0 { c as f64 / total as f64 } else { 0.0 };
        let shares = [("T_MAIN", main), ("T_COMM", comm), ("T_PROC", proc)];
        let bottleneck = shares
            .iter()
            .max_by_key(|(_, c)| *c)
            .map(|(n, _)| *n)
            .unwrap_or("T_COMM");
        OverallSummary {
            main: RegionShare {
                cycles: main,
                fraction: frac(main),
            },
            comm: RegionShare {
                cycles: comm,
                fraction: frac(comm),
            },
            proc: RegionShare {
                cycles: proc,
                fraction: frac(proc),
            },
            total_cycles: total,
            max_total_cycles: records.iter().map(|r| r.t_total).max().unwrap_or(0),
            bottleneck,
        }
    }

    /// Speedup of `self` over `other` in max per-PE total cycles (how the
    /// paper states "1D Range ... performs ~2x better in total time").
    pub fn speedup_over(&self, other: &OverallSummary) -> f64 {
        if self.max_total_cycles == 0 {
            return 1.0;
        }
        other.max_total_cycles as f64 / self.max_total_cycles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(pe: u32, main: u64, proc: u64, total: u64) -> OverallRecord {
        OverallRecord {
            pe,
            t_main: main,
            t_proc: proc,
            t_total: total,
        }
    }

    #[test]
    fn shares_sum_to_one_and_bottleneck_is_comm() {
        let s = OverallSummary::of(&[rec(0, 10, 20, 100), rec(1, 5, 15, 100)]);
        assert_eq!(s.total_cycles, 200);
        assert_eq!(s.main.cycles, 15);
        assert_eq!(s.proc.cycles, 35);
        assert_eq!(s.comm.cycles, 150);
        assert!((s.main.fraction + s.comm.fraction + s.proc.fraction - 1.0).abs() < 1e-12);
        assert_eq!(s.bottleneck, "T_COMM");
        assert_eq!(s.max_total_cycles, 100);
    }

    #[test]
    fn bottleneck_tracks_dominant_region() {
        let s = OverallSummary::of(&[rec(0, 80, 10, 100)]);
        assert_eq!(s.bottleneck, "T_MAIN");
        let s = OverallSummary::of(&[rec(0, 10, 80, 100)]);
        assert_eq!(s.bottleneck, "T_PROC");
    }

    #[test]
    fn speedup_uses_max_total() {
        let fast = OverallSummary::of(&[rec(0, 0, 0, 300)]);
        let slow = OverallSummary::of(&[rec(0, 0, 0, 600)]);
        assert!((fast.speedup_over(&slow) - 2.0).abs() < 1e-12);
        assert!((slow.speedup_over(&fast) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_records_are_safe() {
        let s = OverallSummary::of(&[]);
        assert_eq!(s.total_cycles, 0);
        assert_eq!(s.main.fraction, 0.0);
        assert_eq!(s.speedup_over(&s), 1.0);
    }
}
