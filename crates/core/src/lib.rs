//! # actorprof — FA-BSP-aware profiling for the selector runtime
//!
//! The profiler of the paper: it takes the per-PE traces the runtime
//! collected (an [`actorprof_trace::PeCollector`] per PE) and turns them
//! into the artifacts ActorProf produces:
//!
//! - **Trace files** in the paper's formats (§III): `PEi_send.csv`,
//!   `PEi_PAPI.csv`, `physical.txt`, `overall.txt` — see [`writer`], with
//!   matching parsers in [`reader`].
//! - **Statistics** (§III-D / §IV-D): send/recv matrices with total
//!   rows/columns (the heatmap input), quartile summaries (the violin-plot
//!   input), per-PE PAPI totals (the bar-graph input), and the
//!   MAIN/COMM/PROC breakdown (the stacked-bar input) — see [`stats`],
//!   [`papi`], [`overall`].
//! - A plain-text **report** summarizing load balance and bottlenecks
//!   ([`report`]), and a **Google Trace Events** exporter for
//!   Chrome/Perfetto timelines ([`export`] — the paper's §VI future work).
//!
//! The entry point is [`TraceBundle`]: assemble it from the collectors an
//! SPMD run returns, then ask it for any of the above.
//!
//! ```
//! use actorprof::TraceBundle;
//! use actorprof_trace::{PeCollector, TraceConfig};
//!
//! // Normally the selector runtime fills these during an SPMD run.
//! let mut c0 = PeCollector::new(0, 2, 2, TraceConfig::off().with_logical());
//! c0.record_send(1, 8, 0, None); // PE0 -> PE1, 8 bytes, mailbox 0
//! let c1 = PeCollector::new(1, 2, 2, TraceConfig::off().with_logical());
//!
//! let bundle = TraceBundle::from_collectors(vec![c0, c1]).unwrap();
//! let m = bundle.logical_matrix().unwrap();
//! assert_eq!(m.get(0, 1), 1);
//! assert_eq!(m.row_totals(), vec![1, 0]);
//! ```

// Zero unsafe today; keep it that way by construction.
#![forbid(unsafe_code)]

pub mod bundle;
pub mod compare;
pub mod error;
pub mod export;
pub mod overall;
pub mod papi;
pub mod profiler;
pub mod reader;
pub mod report;
pub mod stats;
pub mod writer;

pub use actorprof_trace::{PapiConfig, TraceConfig};
pub use bundle::TraceBundle;
pub use error::ProfError;
pub use fabsp_shmem::{
    Checkpoint, IpcConfig, KillRecord, RecoveryLog, RecoverySpec, TransportKind, TransportSpec,
    TransportStats,
};
pub use fabsp_telemetry::{
    phase_site, ContinuousReport, Counter, FlightDump, Frame, Gauge, GovernorDecision,
    GovernorSample, Hist, OverheadBudget, OverheadGovernor, Phase, PhaseSite, SamplingKnob,
    Snapshot, TelemetryRegistry,
};
pub use profiler::{ObserveSink, Profiler, ProfilerCtx, Report, RunError};
pub use stats::{Matrix, Quartiles};
