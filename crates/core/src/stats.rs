//! Dense matrices and distribution statistics — the numeric substrate of
//! every ActorProf visualization.

/// A dense `n × n` counter matrix (row = source PE, column = destination
/// PE), the underlying data of the mosaic heatmaps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matrix {
    n: usize,
    data: Vec<u64>,
}

impl Matrix {
    /// An `n × n` zero matrix.
    pub fn zeros(n: usize) -> Matrix {
        Matrix {
            n,
            data: vec![0; n * n],
        }
    }

    /// Build from row-major data.
    ///
    /// # Panics
    /// Panics if `data.len() != n * n`.
    pub fn from_rows(n: usize, data: Vec<u64>) -> Matrix {
        assert_eq!(data.len(), n * n, "matrix data must be n*n");
        Matrix { n, data }
    }

    /// Side length.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Entry at (`src`, `dst`).
    #[inline]
    pub fn get(&self, src: usize, dst: usize) -> u64 {
        self.data[src * self.n + dst]
    }

    /// Set entry (`src`, `dst`).
    #[inline]
    pub fn set(&mut self, src: usize, dst: usize, v: u64) {
        self.data[src * self.n + dst] = v;
    }

    /// Add to entry (`src`, `dst`).
    #[inline]
    pub fn add(&mut self, src: usize, dst: usize, v: u64) {
        self.data[src * self.n + dst] += v;
    }

    /// One source row.
    pub fn row(&self, src: usize) -> &[u64] {
        &self.data[src * self.n..(src + 1) * self.n]
    }

    /// Row sums: total *sends* per source PE (the heatmap's last column).
    pub fn row_totals(&self) -> Vec<u64> {
        (0..self.n).map(|r| self.row(r).iter().sum()).collect()
    }

    /// Column sums: total *recvs* per destination PE (the heatmap's last
    /// row).
    pub fn col_totals(&self) -> Vec<u64> {
        let mut out = vec![0u64; self.n];
        for r in 0..self.n {
            for (c, v) in self.row(r).iter().enumerate() {
                out[c] += v;
            }
        }
        out
    }

    /// Sum of all entries.
    pub fn total(&self) -> u64 {
        self.data.iter().sum()
    }

    /// Largest entry.
    pub fn max(&self) -> u64 {
        self.data.iter().copied().max().unwrap_or(0)
    }

    /// Collapse the PE matrix into a node matrix by summing
    /// `pes_per_node`-sized blocks — "hotspots of 'node' from the network
    /// sends" (§III-D).
    ///
    /// # Panics
    /// Panics if `pes_per_node` is zero or does not divide `n`.
    pub fn aggregate_nodes(&self, pes_per_node: usize) -> Matrix {
        assert!(
            pes_per_node > 0 && self.n.is_multiple_of(pes_per_node),
            "pes_per_node must evenly divide the PE count"
        );
        let nodes = self.n / pes_per_node;
        let mut out = Matrix::zeros(nodes);
        for src in 0..self.n {
            for (dst, v) in self.row(src).iter().enumerate() {
                out.add(src / pes_per_node, dst / pes_per_node, *v);
            }
        }
        out
    }

    /// Whether all mass lies on or below the diagonal (the paper's "(L)
    /// observation" for the 1D Range heatmaps).
    pub fn is_lower_triangular(&self) -> bool {
        (0..self.n).all(|r| self.row(r)[r + 1..].iter().all(|&v| v == 0))
    }

    /// Fraction of the total mass on or below the diagonal (1.0 = exactly
    /// lower triangular; useful as a *degree* of (L)-ness).
    pub fn lower_triangular_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 1.0;
        }
        let lower: u64 = (0..self.n)
            .map(|r| self.row(r)[..=r].iter().sum::<u64>())
            .sum();
        lower as f64 / total as f64
    }
}

/// Five-number summary plus mean — what the violin plots display
/// ("the quartiles for total send/recv traces", §III-D).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quartiles {
    /// Smallest value.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median ("the median in a white dot", §IV-D).
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Largest value ("the maximum outlier ... farthest point on top").
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl Quartiles {
    /// Compute from a sample (unsorted, may be empty → all zeros).
    pub fn of(values: &[u64]) -> Quartiles {
        if values.is_empty() {
            return Quartiles {
                min: 0.0,
                q1: 0.0,
                median: 0.0,
                q3: 0.0,
                max: 0.0,
                mean: 0.0,
            };
        }
        let mut sorted: Vec<u64> = values.to_vec();
        sorted.sort_unstable();
        let q = |p: f64| -> f64 {
            // linear interpolation between closest ranks
            let h = p * (sorted.len() - 1) as f64;
            let lo = h.floor() as usize;
            let hi = h.ceil() as usize;
            let frac = h - lo as f64;
            sorted[lo] as f64 * (1.0 - frac) + sorted[hi] as f64 * frac
        };
        Quartiles {
            min: sorted[0] as f64,
            q1: q(0.25),
            median: q(0.5),
            q3: q(0.75),
            max: *sorted.last().unwrap() as f64,
            mean: sorted.iter().sum::<u64>() as f64 / sorted.len() as f64,
        }
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

/// Load-imbalance summary of a per-PE series: max/mean and max/min ratios
/// (the "~5x imbalance on PE0" style of statement in §IV-D).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Imbalance {
    /// max / mean; 1.0 means perfectly balanced.
    pub max_over_mean: f64,
    /// max / min; infinite when min is 0 and max is not.
    pub max_over_min: f64,
    /// PE achieving the maximum.
    pub argmax: usize,
}

impl Imbalance {
    /// Compute for a per-PE series (empty → balanced, argmax 0).
    pub fn of(values: &[u64]) -> Imbalance {
        if values.is_empty() {
            return Imbalance {
                max_over_mean: 1.0,
                max_over_min: 1.0,
                argmax: 0,
            };
        }
        let max = *values.iter().max().unwrap();
        let min = *values.iter().min().unwrap();
        let mean = values.iter().sum::<u64>() as f64 / values.len() as f64;
        let argmax = values.iter().position(|&v| v == max).unwrap();
        Imbalance {
            max_over_mean: if mean > 0.0 { max as f64 / mean } else { 1.0 },
            max_over_min: if min > 0 {
                max as f64 / min as f64
            } else if max == 0 {
                1.0
            } else {
                f64::INFINITY
            },
            argmax,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_accessors_and_totals() {
        let mut m = Matrix::zeros(3);
        m.set(0, 1, 5);
        m.add(0, 1, 2);
        m.set(2, 0, 3);
        assert_eq!(m.get(0, 1), 7);
        assert_eq!(m.row(0), &[0, 7, 0]);
        assert_eq!(m.row_totals(), vec![7, 0, 3]);
        assert_eq!(m.col_totals(), vec![3, 7, 0]);
        assert_eq!(m.total(), 10);
        assert_eq!(m.max(), 7);
    }

    #[test]
    fn aggregate_nodes_sums_blocks() {
        let mut m = Matrix::zeros(4);
        m.set(0, 1, 1); // node 0 -> node 0
        m.set(0, 2, 2); // node 0 -> node 1
        m.set(3, 1, 4); // node 1 -> node 0
        m.set(2, 3, 8); // node 1 -> node 1
        let nodes = m.aggregate_nodes(2);
        assert_eq!(nodes.n(), 2);
        assert_eq!(nodes.get(0, 0), 1);
        assert_eq!(nodes.get(0, 1), 2);
        assert_eq!(nodes.get(1, 0), 4);
        assert_eq!(nodes.get(1, 1), 8);
        assert_eq!(nodes.total(), m.total());
    }

    #[test]
    #[should_panic(expected = "evenly divide")]
    fn aggregate_nodes_rejects_uneven_split() {
        Matrix::zeros(4).aggregate_nodes(3);
    }

    #[test]
    fn lower_triangular_detection() {
        let mut m = Matrix::zeros(3);
        m.set(1, 0, 4);
        m.set(2, 2, 1);
        assert!(m.is_lower_triangular());
        assert!((m.lower_triangular_fraction() - 1.0).abs() < 1e-12);
        m.set(0, 2, 5);
        assert!(!m.is_lower_triangular());
        assert!((m.lower_triangular_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix_is_trivially_lower() {
        let m = Matrix::zeros(4);
        assert!(m.is_lower_triangular());
        assert_eq!(m.lower_triangular_fraction(), 1.0);
    }

    #[test]
    #[should_panic(expected = "n*n")]
    fn from_rows_checks_shape() {
        Matrix::from_rows(2, vec![1, 2, 3]);
    }

    #[test]
    fn quartiles_of_known_sample() {
        let q = Quartiles::of(&[1, 2, 3, 4, 5]);
        assert_eq!(q.min, 1.0);
        assert_eq!(q.q1, 2.0);
        assert_eq!(q.median, 3.0);
        assert_eq!(q.q3, 4.0);
        assert_eq!(q.max, 5.0);
        assert_eq!(q.mean, 3.0);
        assert_eq!(q.iqr(), 2.0);
    }

    #[test]
    fn quartiles_interpolate() {
        let q = Quartiles::of(&[0, 10]);
        assert_eq!(q.q1, 2.5);
        assert_eq!(q.median, 5.0);
        assert_eq!(q.q3, 7.5);
    }

    #[test]
    fn quartiles_of_empty_and_singleton() {
        let q = Quartiles::of(&[]);
        assert_eq!(q.max, 0.0);
        let q = Quartiles::of(&[7]);
        assert_eq!((q.min, q.median, q.max), (7.0, 7.0, 7.0));
    }

    #[test]
    fn imbalance_ratios() {
        let i = Imbalance::of(&[10, 10, 10, 70]);
        assert_eq!(i.argmax, 3);
        assert!((i.max_over_mean - 2.8).abs() < 1e-12);
        assert!((i.max_over_min - 7.0).abs() < 1e-12);
        let i = Imbalance::of(&[0, 5]);
        assert!(i.max_over_min.is_infinite());
        let i = Imbalance::of(&[0, 0]);
        assert_eq!(i.max_over_min, 1.0);
        let i = Imbalance::of(&[]);
        assert_eq!(i.max_over_mean, 1.0);
    }
}
