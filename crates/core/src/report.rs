//! Plain-text analysis report — the "helps the user infer performance
//! bottlenecks" summary, in prose form.

use fabsp_hwpc::Event;

use crate::bundle::TraceBundle;
use crate::overall::OverallSummary;
use crate::papi::PapiSeries;
use crate::stats::{Imbalance, Quartiles};

/// Render a multi-section text report from whatever the bundle collected.
/// Sections for traces that were not collected are omitted.
pub fn render(bundle: &TraceBundle, title: &str) -> String {
    let mut out = String::new();
    let push = |out: &mut String, s: String| {
        out.push_str(&s);
        out.push('\n');
    };
    push(&mut out, format!("=== ActorProf report: {title} ==="));
    push(&mut out, format!("PEs: {}", bundle.n_pes()));

    if let Ok(m) = bundle.logical_matrix() {
        let sends = m.row_totals();
        let recvs = m.col_totals();
        let si = Imbalance::of(&sends);
        let ri = Imbalance::of(&recvs);
        push(&mut out, "\n-- Logical trace (pre-aggregation sends) --".into());
        push(&mut out, format!("total messages: {}", m.total()));
        push(
            &mut out,
            format!(
                "send imbalance: max/mean {:.2} (PE{}), recv imbalance: max/mean {:.2} (PE{})",
                si.max_over_mean, si.argmax, ri.max_over_mean, ri.argmax
            ),
        );
        let sq = Quartiles::of(&sends);
        let rq = Quartiles::of(&recvs);
        push(
            &mut out,
            format!(
                "sends quartiles: min {:.0} q1 {:.0} med {:.0} q3 {:.0} max {:.0}",
                sq.min, sq.q1, sq.median, sq.q3, sq.max
            ),
        );
        push(
            &mut out,
            format!(
                "recvs quartiles: min {:.0} q1 {:.0} med {:.0} q3 {:.0} max {:.0}",
                rq.min, rq.q1, rq.median, rq.q3, rq.max
            ),
        );
        push(
            &mut out,
            format!(
                "lower-triangular mass: {:.1}% {}",
                m.lower_triangular_fraction() * 100.0,
                if m.is_lower_triangular() {
                    "((L) observation holds)"
                } else {
                    ""
                }
            ),
        );
    }

    if let Ok(m) = bundle.physical_matrix(None) {
        push(&mut out, "\n-- Physical trace (post-aggregation buffers) --".into());
        push(&mut out, format!("buffers sent: {}", m.total()));
        let bi = Imbalance::of(&m.row_totals());
        push(
            &mut out,
            format!(
                "buffer-send imbalance: max/mean {:.2} (PE{})",
                bi.max_over_mean, bi.argmax
            ),
        );
    }

    if let Ok(series) = PapiSeries::from_bundle(bundle, Event::TotIns) {
        push(&mut out, "\n-- PAPI user-region instruction counts --".into());
        push(
            &mut out,
            format!(
                "PAPI_TOT_INS imbalance: max/mean {:.2} on PE{}, dynamic range 10^{:.1}",
                series.imbalance.max_over_mean,
                series.imbalance.argmax,
                series.dynamic_range_log10()
            ),
        );
    }

    if let Ok(records) = bundle.overall_records() {
        let s = OverallSummary::of(&records);
        push(&mut out, "\n-- Overall breakdown (rdtsc cycles) --".into());
        push(
            &mut out,
            format!(
                "MAIN {:.1}% | COMM {:.1}% | PROC {:.1}%  (bottleneck: {})",
                s.main.fraction * 100.0,
                s.comm.fraction * 100.0,
                s.proc.fraction * 100.0,
                s.bottleneck
            ),
        );
        push(
            &mut out,
            format!("max per-PE total: {} cycles", s.max_total_cycles),
        );
        if s.bottleneck == "T_COMM" {
            push(
                &mut out,
                "hint: experiment with data distributions or exploit more \
                 communication/computation overlap"
                    .into(),
            );
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use actorprof_trace::{PeCollector, TraceConfig};
    use crate::bundle::TraceBundle;

    #[test]
    fn report_includes_collected_sections_only() {
        let cfg = TraceConfig::off().with_logical().with_overall();
        let collectors = (0..2)
            .map(|pe| {
                let mut c = PeCollector::new(pe, 2, 2, cfg.clone());
                c.record_send(0, 8, 0, None);
                c.set_overall(10, 5, 100);
                c
            })
            .collect();
        let b = TraceBundle::from_collectors(collectors).unwrap();
        let r = render(&b, "unit");
        assert!(r.contains("Logical trace"));
        assert!(r.contains("Overall breakdown"));
        assert!(r.contains("bottleneck: T_COMM"));
        assert!(!r.contains("Physical trace"), "not collected");
        assert!(!r.contains("PAPI user-region"), "not collected");
    }

    #[test]
    fn report_flags_lower_triangular_pattern() {
        let cfg = TraceConfig::off().with_logical();
        let collectors = (0..3)
            .map(|pe| {
                let mut c = PeCollector::new(pe, 3, 3, cfg.clone());
                for dst in 0..=pe {
                    c.record_send(dst, 8, 0, None);
                }
                c
            })
            .collect();
        let b = TraceBundle::from_collectors(collectors).unwrap();
        let r = render(&b, "L");
        assert!(r.contains("(L) observation holds"));
    }
}
