//! Parsers for the trace-file formats written by [`crate::writer`] — the
//! input side of the visualization scripts (`logical.py`, `physical.py`,
//! `papi.py`, `Overall.py` in the paper's tooling).

use std::path::Path;

use actorprof_trace::{LogicalRecord, OverallRecord, PapiRecord, PhysicalRecord, SendType};

use crate::error::ProfError;
use crate::stats::Matrix;

fn parse_err(file: &Path, line: usize, message: impl Into<String>) -> ProfError {
    ProfError::Parse {
        file: file.display().to_string(),
        line,
        message: message.into(),
    }
}

fn parse_field<T: std::str::FromStr>(
    file: &Path,
    line_no: usize,
    field: Option<&str>,
    what: &str,
) -> Result<T, ProfError> {
    field
        .ok_or_else(|| parse_err(file, line_no, format!("missing {what}")))?
        .trim()
        .parse::<T>()
        .map_err(|_| parse_err(file, line_no, format!("bad {what}")))
}

/// Read one `PE<i>_send.csv` (exact per-send records).
pub fn read_logical_exact(path: &Path) -> Result<Vec<LogicalRecord>, ProfError> {
    let content = std::fs::read_to_string(path)?;
    let mut out = Vec::new();
    for (i, line) in content.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let mut f = line.split(',');
        out.push(LogicalRecord {
            src_node: parse_field(path, i + 1, f.next(), "src_node")?,
            src_pe: parse_field(path, i + 1, f.next(), "src_pe")?,
            dst_node: parse_field(path, i + 1, f.next(), "dst_node")?,
            dst_pe: parse_field(path, i + 1, f.next(), "dst_pe")?,
            msg_size: parse_field(path, i + 1, f.next(), "msg_size")?,
        });
    }
    Ok(out)
}

/// Read every `PE<i>_send_agg.csv` in `dir` into a send-count matrix over
/// `n_pes` PEs (the heatmap input, mirroring `logical.py dir num_PEs`).
pub fn read_logical_matrix(dir: &Path, n_pes: usize) -> Result<Matrix, ProfError> {
    let mut m = Matrix::zeros(n_pes);
    for pe in 0..n_pes {
        let path = dir.join(format!("PE{pe}_send_agg.csv"));
        if !path.exists() {
            continue; // a PE that sent nothing may have an empty file
        }
        let content = std::fs::read_to_string(&path)?;
        for (i, line) in content.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let mut f = line.split(',');
            let _src_node: u32 = parse_field(&path, i + 1, f.next(), "src_node")?;
            let src_pe: usize = parse_field(&path, i + 1, f.next(), "src_pe")?;
            let _dst_node: u32 = parse_field(&path, i + 1, f.next(), "dst_node")?;
            let dst_pe: usize = parse_field(&path, i + 1, f.next(), "dst_pe")?;
            let sends: u64 = parse_field(&path, i + 1, f.next(), "num_sends")?;
            if src_pe >= n_pes || dst_pe >= n_pes {
                return Err(parse_err(&path, i + 1, "PE out of range"));
            }
            m.add(src_pe, dst_pe, sends);
        }
    }
    Ok(m)
}

/// Read one `PE<i>_PAPI.csv`: returns the counter column names and records.
pub fn read_papi(path: &Path) -> Result<(Vec<String>, Vec<PapiRecord>), ProfError> {
    let content = std::fs::read_to_string(path)?;
    let mut lines = content.lines().enumerate();
    let Some((_, header)) = lines.next() else {
        return Ok((Vec::new(), Vec::new()));
    };
    let cols: Vec<&str> = header.split(',').collect();
    if cols.len() < 8 || cols[6] != "NUM_SENDS" {
        return Err(parse_err(path, 1, "unrecognized PAPI header"));
    }
    let event_names: Vec<String> = cols[7..].iter().map(|s| s.to_string()).collect();
    let mut out = Vec::new();
    for (i, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let mut f = line.split(',');
        let src_node = parse_field(path, i + 1, f.next(), "src_node")?;
        let src_pe = parse_field(path, i + 1, f.next(), "src_pe")?;
        let dst_node = parse_field(path, i + 1, f.next(), "dst_node")?;
        let dst_pe = parse_field(path, i + 1, f.next(), "dst_pe")?;
        let pkt_size = parse_field(path, i + 1, f.next(), "pkt_size")?;
        let mailbox_id = parse_field(path, i + 1, f.next(), "MAILBOXID")?;
        let num_sends = parse_field(path, i + 1, f.next(), "NUM_SENDS")?;
        let counters: Vec<u64> = f
            .map(|s| {
                s.trim()
                    .parse::<u64>()
                    .map_err(|_| parse_err(path, i + 1, "bad counter value"))
            })
            .collect::<Result<_, _>>()?;
        if counters.len() != event_names.len() {
            return Err(parse_err(path, i + 1, "counter count != header"));
        }
        out.push(PapiRecord {
            src_node,
            src_pe,
            dst_node,
            dst_pe,
            pkt_size,
            mailbox_id,
            num_sends,
            counters,
        });
    }
    Ok((event_names, out))
}

/// Read `physical.txt`.
pub fn read_physical(path: &Path) -> Result<Vec<PhysicalRecord>, ProfError> {
    let content = std::fs::read_to_string(path)?;
    let mut out = Vec::new();
    for (i, line) in content.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let mut f = line.split(',');
        let type_label = f
            .next()
            .ok_or_else(|| parse_err(path, i + 1, "missing send type"))?;
        let send_type = SendType::from_label(type_label.trim())
            .ok_or_else(|| parse_err(path, i + 1, format!("unknown send type {type_label}")))?;
        out.push(PhysicalRecord {
            send_type,
            buffer_size: parse_field(path, i + 1, f.next(), "buffer_size")?,
            src_pe: parse_field(path, i + 1, f.next(), "src_pe")?,
            dst_pe: parse_field(path, i + 1, f.next(), "dst_pe")?,
        });
    }
    Ok(out)
}

/// Read `overall.txt` (the `Absolute` lines; `Relative` lines are
/// redundant and used only for cross-checking).
pub fn read_overall(path: &Path) -> Result<Vec<OverallRecord>, ProfError> {
    let content = std::fs::read_to_string(path)?;
    let mut out = Vec::new();
    for (i, line) in content.lines().enumerate() {
        let line = line.trim();
        if !line.starts_with("Absolute") {
            continue;
        }
        // Absolute [PE3] TCOMM_PROFILING (main, comm, proc)
        let pe_start = line
            .find("[PE")
            .ok_or_else(|| parse_err(path, i + 1, "missing [PE"))?;
        let pe_end = line[pe_start..]
            .find(']')
            .ok_or_else(|| parse_err(path, i + 1, "missing ]"))?
            + pe_start;
        let pe: u32 = line[pe_start + 3..pe_end]
            .parse()
            .map_err(|_| parse_err(path, i + 1, "bad PE"))?;
        let open = line
            .find('(')
            .ok_or_else(|| parse_err(path, i + 1, "missing ("))?;
        let close = line
            .rfind(')')
            .ok_or_else(|| parse_err(path, i + 1, "missing )"))?;
        let nums: Vec<u64> = line[open + 1..close]
            .split(',')
            .map(|s| {
                s.trim()
                    .parse::<u64>()
                    .map_err(|_| parse_err(path, i + 1, "bad cycle count"))
            })
            .collect::<Result<_, _>>()?;
        if nums.len() != 3 {
            return Err(parse_err(path, i + 1, "expected three cycle counts"));
        }
        let (t_main, t_comm, t_proc) = (nums[0], nums[1], nums[2]);
        out.push(OverallRecord {
            pe,
            t_main,
            t_proc,
            t_total: t_main + t_comm + t_proc,
        });
    }
    out.sort_by_key(|r| r.pe);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::TraceBundle;
    use crate::writer;
    use actorprof_trace::{PapiConfig, PeCollector, TraceConfig};

    fn roundtrip_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("actorprof-r-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn full_bundle() -> TraceBundle {
        let cfg = TraceConfig::off()
            .with_logical_records()
            .with_papi(PapiConfig::case_study())
            .with_overall()
            .with_physical();
        let collectors = (0..2)
            .map(|pe| {
                let mut c = PeCollector::new(pe, 2, 1, cfg.clone());
                for _ in 0..(pe + 1) * 3 {
                    c.record_send(1 - pe, 16, 0, Some(&[60, 24]));
                }
                c.record_physical(SendType::NonblockSend, 96, 1 - pe);
                c.record_physical(SendType::NonblockProgress, 96, 1 - pe);
                c.set_overall(100 + pe as u64, 200, 1000);
                c
            })
            .collect();
        TraceBundle::from_collectors(collectors).unwrap()
    }

    #[test]
    fn logical_roundtrip() {
        let dir = roundtrip_dir("log");
        let bundle = full_bundle();
        writer::write_all(&dir, &bundle).unwrap();
        let m = read_logical_matrix(&dir, 2).unwrap();
        assert_eq!(m.get(0, 1), 3);
        assert_eq!(m.get(1, 0), 6);
        let recs = read_logical_exact(&dir.join("PE1_send.csv")).unwrap();
        assert_eq!(recs.len(), 6);
        assert_eq!(recs[0].dst_pe, 0);
        assert_eq!(recs[0].msg_size, 16);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn papi_roundtrip() {
        let dir = roundtrip_dir("papi");
        let bundle = full_bundle();
        writer::write_all(&dir, &bundle).unwrap();
        let (events, recs) = read_papi(&dir.join("PE0_PAPI.csv")).unwrap();
        assert_eq!(events, vec!["PAPI_TOT_INS", "PAPI_LST_INS"]);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].num_sends, 3);
        assert_eq!(recs[0].counters, vec![180, 72]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn physical_roundtrip() {
        let dir = roundtrip_dir("phys");
        let bundle = full_bundle();
        writer::write_all(&dir, &bundle).unwrap();
        let recs = read_physical(&dir.join("physical.txt")).unwrap();
        assert_eq!(recs.len(), 4);
        assert_eq!(recs[0].send_type, SendType::NonblockSend);
        assert_eq!(recs[1].send_type, SendType::NonblockProgress);
        assert_eq!(recs[0].buffer_size, 96);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn overall_roundtrip() {
        let dir = roundtrip_dir("ovr");
        let bundle = full_bundle();
        writer::write_all(&dir, &bundle).unwrap();
        let recs = read_overall(&dir.join("overall.txt")).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].t_main, 100);
        assert_eq!(recs[0].t_proc, 200);
        assert_eq!(recs[0].t_total, 1000);
        assert_eq!(recs[1].t_main, 101);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn malformed_lines_report_file_and_line() {
        let dir = roundtrip_dir("bad");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("physical.txt"), "teleport,1,0,0\n").unwrap();
        let err = read_physical(&dir.join("physical.txt")).unwrap_err();
        match err {
            ProfError::Parse { line, message, .. } => {
                assert_eq!(line, 1);
                assert!(message.contains("teleport"));
            }
            other => panic!("expected parse error, got {other:?}"),
        }
        std::fs::write(dir.join("overall.txt"), "Absolute [PEx] TCOMM_PROFILING (1, 2, 3)\n")
            .unwrap();
        assert!(read_overall(&dir.join("overall.txt")).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_agg_files_are_tolerated() {
        let dir = roundtrip_dir("sparse");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("PE0_send_agg.csv"), "0,0,0,1,5,40\n").unwrap();
        // PE1's file absent
        let m = read_logical_matrix(&dir, 2).unwrap();
        assert_eq!(m.get(0, 1), 5);
        assert_eq!(m.get(1, 0), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
