//! Google Trace Events export — the trace-format adoption the paper lists
//! as future work (§VI: "the adoption of OTF and Google Trace Events
//! format ... is currently being investigated").
//!
//! Produces a Chrome-/Perfetto-loadable JSON file: one process per node,
//! one thread per PE (labeled `pe<rank>`, matching the cockpit and the
//! flight-recorder dump naming), an instant event per physical send
//! (timestamped with the rdtsc cycles captured at record time, converted
//! to microseconds at the nominal clock), `B`/`E` duration pairs for the
//! recorded phase spans (superstep / advance / quiet / relay hop), per-PE
//! region summaries as counter events, and — for continuous-mode runs — a
//! synthetic `governor` process whose lane renders every overhead-governor
//! window and ratchet decision.

use std::fmt::Write as _;
use std::path::Path;

use actorprof_trace::{PhysicalRecord, SpanRecord};
use fabsp_hwpc::rdtsc::cycles_to_us;
use fabsp_telemetry::ContinuousReport;

use crate::bundle::TraceBundle;
use crate::error::ProfError;

/// One per-thread timeline entry awaiting emission. Sorted so each PE's
/// stream is monotone in `ts` and `B`/`E` pairs nest: at equal timestamps
/// ends come first (innermost end before an adjacent sibling begins),
/// then begins (outermost first), then instants.
enum TimelineEv<'a> {
    Begin(&'a SpanRecord),
    End(&'a SpanRecord),
    Instant(&'a PhysicalRecord, u64),
}

impl TimelineEv<'_> {
    fn sort_key(&self) -> (u64, u8, u64) {
        match self {
            // ties: the span that began later ends first (inner before outer)
            TimelineEv::End(s) => (s.end, 0, u64::MAX - s.begin),
            // ties: the span that ends later begins first (outer before inner)
            TimelineEv::Begin(s) => (s.begin, 1, u64::MAX - s.end),
            TimelineEv::Instant(_, ts) => (*ts, 2, 0),
        }
    }
}

/// Serialize the bundle's physical trace and phase spans (and overall
/// summaries, when collected) as Google Trace Events JSON. Returns the
/// JSON string. Requires at least one of the timeline dimensions
/// (physical trace or phase spans) to have been collected.
pub fn trace_events_json(bundle: &TraceBundle) -> Result<String, ProfError> {
    trace_events_json_with_governor(bundle, None)
}

/// Like [`trace_events_json`], additionally rendering a continuous-mode
/// run's [`ContinuousReport`] as a synthetic `governor` process: one
/// duration event per observation window (with the measured overhead and
/// the stride/cadence in effect as args) and an instant event per ratchet.
pub fn trace_events_json_with_governor(
    bundle: &TraceBundle,
    governor: Option<&ContinuousReport>,
) -> Result<String, ProfError> {
    if !bundle.has_physical() && !bundle.has_spans() {
        return Err(ProfError::NotCollected("physical trace"));
    }
    let ppn = bundle.pes_per_node();
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    let mut first = true;
    let mut push = |out: &mut String, event: String| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&event);
    };

    // metadata: processes = nodes, threads = PEs
    let nodes = bundle.n_pes().div_ceil(ppn);
    for node in 0..nodes {
        push(
            &mut out,
            format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{node},\"tid\":0,\
                 \"args\":{{\"name\":\"node{node}\"}}}}"
            ),
        );
    }
    for c in bundle.collectors() {
        push(
            &mut out,
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{},\"tid\":{},\
                 \"args\":{{\"name\":\"pe{}\"}}}}",
                c.node(),
                c.pe(),
                c.pe()
            ),
        );
    }

    // Per-PE timeline: duration pairs for phase spans merged with an
    // instant event per physical send, in timestamp order per thread.
    for c in bundle.collectors() {
        let mut events: Vec<TimelineEv<'_>> = Vec::with_capacity(
            c.span_records().len() * 2 + c.physical_records().len(),
        );
        for s in c.span_records() {
            events.push(TimelineEv::Begin(s));
            events.push(TimelineEv::End(s));
        }
        for (r, &ts) in c.physical_records().iter().zip(c.physical_timestamps()) {
            events.push(TimelineEv::Instant(r, ts));
        }
        events.sort_by_key(TimelineEv::sort_key);
        for event in &events {
            let mut ev = String::new();
            match event {
                TimelineEv::Begin(s) => {
                    let _ = write!(
                        ev,
                        "{{\"name\":\"{}\",\"ph\":\"B\",\"pid\":{},\"tid\":{},\"ts\":{:.3}}}",
                        s.phase.label(),
                        c.node(),
                        c.pe(),
                        cycles_to_us(s.begin)
                    );
                }
                TimelineEv::End(s) => {
                    let _ = write!(
                        ev,
                        "{{\"name\":\"{}\",\"ph\":\"E\",\"pid\":{},\"tid\":{},\"ts\":{:.3}}}",
                        s.phase.label(),
                        c.node(),
                        c.pe(),
                        cycles_to_us(s.end)
                    );
                }
                TimelineEv::Instant(r, ts) => {
                    let _ = write!(
                        ev,
                        "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{},\"tid\":{},\
                         \"ts\":{:.3},\"args\":{{\"bytes\":{},\"dst_pe\":{}}}}}",
                        r.send_type.label(),
                        c.node(),
                        c.pe(),
                        cycles_to_us(*ts),
                        r.buffer_size,
                        r.dst_pe
                    );
                }
            }
            push(&mut out, ev);
        }
    }

    // counter events: the per-PE overall breakdown (if collected)
    if bundle.has_overall() {
        for r in bundle.overall_records()? {
            push(
                &mut out,
                format!(
                    "{{\"name\":\"region_cycles\",\"ph\":\"C\",\"pid\":{},\"tid\":{},\
                     \"ts\":0,\"args\":{{\"T_MAIN\":{},\"T_COMM\":{},\"T_PROC\":{}}}}}",
                    r.pe as usize / ppn,
                    r.pe,
                    r.t_main,
                    r.t_comm(),
                    r.t_proc
                ),
            );
        }
    }

    // The governor lane: its own process so Perfetto draws it under the
    // node/PE lanes. Window i spans the interval between consecutive
    // decision stamps; the first window (no known start) is an instant.
    if let Some(report) = governor {
        let pid = nodes;
        push(
            &mut out,
            format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":\"governor\"}}}}"
            ),
        );
        push(
            &mut out,
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":\"overhead governor\"}}}}"
            ),
        );
        let mut prev_at: Option<u64> = None;
        for d in &report.decisions {
            let args = format!(
                "{{\"overhead_pct\":{:.4},\"stride\":{},\"cadence_us\":{}}}",
                d.overhead_pct,
                d.stride_after,
                d.cadence_after.as_micros()
            );
            match prev_at {
                Some(prev) if d.at_cycles > prev => {
                    push(
                        &mut out,
                        format!(
                            "{{\"name\":\"window\",\"ph\":\"B\",\"pid\":{pid},\"tid\":0,\
                             \"ts\":{:.3}}}",
                            cycles_to_us(prev)
                        ),
                    );
                    push(
                        &mut out,
                        format!(
                            "{{\"name\":\"window\",\"ph\":\"E\",\"pid\":{pid},\"tid\":0,\
                             \"ts\":{:.3},\"args\":{args}}}",
                            cycles_to_us(d.at_cycles)
                        ),
                    );
                }
                _ => {
                    push(
                        &mut out,
                        format!(
                            "{{\"name\":\"window\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\
                             \"tid\":0,\"ts\":{:.3},\"args\":{args}}}",
                            cycles_to_us(d.at_cycles)
                        ),
                    );
                }
            }
            if d.ratcheted() {
                push(
                    &mut out,
                    format!(
                        "{{\"name\":\"ratchet\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\
                         \"tid\":0,\"ts\":{:.3},\"args\":{{\"stride_from\":{},\
                         \"stride_to\":{}}}}}",
                        cycles_to_us(d.at_cycles),
                        d.stride_before,
                        d.stride_after
                    ),
                );
            }
            prev_at = Some(d.at_cycles);
        }
    }

    out.push_str("\n]}\n");
    Ok(out)
}

/// Write the trace-events JSON to `path`.
pub fn write_trace_events(path: &Path, bundle: &TraceBundle) -> Result<(), ProfError> {
    write_trace_events_with_governor(path, bundle, None)
}

/// Write the trace-events JSON, including the governor lane when the run
/// executed in continuous mode.
pub fn write_trace_events_with_governor(
    path: &Path,
    bundle: &TraceBundle,
    governor: Option<&ContinuousReport>,
) -> Result<(), ProfError> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, trace_events_json_with_governor(bundle, governor)?)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use actorprof_trace::{PeCollector, SendType, TraceConfig};

    fn bundle() -> TraceBundle {
        let cfg = TraceConfig::off().with_physical().with_overall();
        let collectors = (0..2)
            .map(|pe| {
                let mut c = PeCollector::new(pe, 2, 1, cfg.clone());
                c.record_physical(SendType::NonblockSend, 512, 1 - pe);
                c.record_physical(SendType::NonblockProgress, 512, 1 - pe);
                c.set_overall(10, 20, 100);
                c
            })
            .collect();
        TraceBundle::from_collectors(collectors).unwrap()
    }

    #[test]
    fn json_has_metadata_events_and_counters() {
        let json = trace_events_json(&bundle()).unwrap();
        assert!(json.starts_with('{'));
        assert!(json.trim_end().ends_with('}'));
        assert!(json.contains("\"name\":\"node0\""));
        assert!(json.contains("\"name\":\"node1\""));
        assert!(
            json.contains("\"name\":\"pe1\""),
            "PE lanes are labeled pe<rank>"
        );
        assert!(!json.contains("\"name\":\"PE1\""));
        assert!(json.contains("\"name\":\"nonblock_send\""));
        assert!(json.contains("\"name\":\"nonblock_progress\""));
        assert!(json.contains("\"T_COMM\":70"));
        assert_eq!(
            json.matches("\"ph\":\"i\"").count(),
            4,
            "one instant event per physical record"
        );
    }

    #[test]
    fn timestamps_are_monotone_per_pe() {
        let json = trace_events_json(&bundle()).unwrap();
        // crude check: ts fields parse as non-negative numbers
        for piece in json.split("\"ts\":").skip(1) {
            let num: f64 = piece
                .split([',', '}'])
                .next()
                .unwrap()
                .parse()
                .expect("ts parses");
            assert!(num >= 0.0);
        }
    }

    #[test]
    fn spans_export_as_nested_duration_pairs() {
        let cfg = TraceConfig::off().with_spans();
        let mut c = PeCollector::new(0, 1, 1, cfg);
        let t0 = fabsp_hwpc::cycles_now();
        // superstep ⊇ advance ⊇ quiet, plus a disjoint sibling advance
        c.record_span_at(actorprof_trace::Phase::Quiet, t0 + 20, t0 + 30);
        c.record_span_at(actorprof_trace::Phase::Advance, t0 + 10, t0 + 40);
        c.record_span_at(actorprof_trace::Phase::Advance, t0 + 50, t0 + 60);
        c.record_span_at(actorprof_trace::Phase::Superstep, t0, t0 + 100);
        let b = TraceBundle::from_collectors(vec![c]).unwrap();
        let json = trace_events_json(&b).unwrap();
        assert_eq!(json.matches("\"ph\":\"B\"").count(), 4);
        assert_eq!(json.matches("\"ph\":\"E\"").count(), 4);
        // nesting: superstep must open before the first advance and close
        // after everything else
        let first_b = json.find("\"ph\":\"B\"").unwrap();
        let superstep_b = json.find("\"name\":\"superstep\",\"ph\":\"B\"").unwrap();
        assert!(superstep_b <= first_b, "superstep opens the PE's timeline");
        let last_e = json.rfind("\"ph\":\"E\"").unwrap();
        let superstep_e = json.rfind("\"name\":\"superstep\",\"ph\":\"E\"").unwrap();
        assert!(
            superstep_e + "\"name\":\"superstep\",".len() >= last_e,
            "superstep closes the PE's timeline"
        );
        assert!(json.contains("\"name\":\"quiet\""));
    }

    #[test]
    fn governor_lane_renders_windows_and_ratchets() {
        use fabsp_telemetry::{OverheadBudget, OverheadGovernor, SamplingKnob};
        use std::time::Duration;
        let budget = OverheadBudget {
            initial_stride: 8,
            ..OverheadBudget::pct(5.0)
        };
        let mut g = OverheadGovernor::new(budget, SamplingKnob::new(1), Duration::from_millis(4));
        g.observe_window(1_000_000, 10, 10, 2_450_000); // finer: 8 -> 4
        g.observe_window(1_000_000, 40_000, 0, 4_900_000); // hold: 4% dead band
        let report = g.into_report();
        let json = trace_events_json_with_governor(&bundle(), Some(&report)).unwrap();
        assert!(json.contains("\"args\":{\"name\":\"governor\"}"));
        assert!(json.contains("\"name\":\"window\""));
        // first window is an instant, second a B/E pair spanning the gap
        assert!(json.contains("\"name\":\"window\",\"ph\":\"i\""));
        assert!(json.contains("\"name\":\"window\",\"ph\":\"B\""));
        assert!(json.contains("\"overhead_pct\":4.0000"));
        assert!(
            json.contains("\"stride_from\":8,\"stride_to\":4"),
            "ratchet instants carry the transition:\n{json}"
        );
        // the governor process sits after the node processes
        let nodes = bundle().n_pes().div_ceil(bundle().pes_per_node());
        assert!(json.contains(&format!("\"pid\":{nodes},\"tid\":0")));
        // no governor → no lane
        let plain = trace_events_json(&bundle()).unwrap();
        assert!(!plain.contains("governor"));
    }

    #[test]
    fn requires_physical_trace() {
        let c = PeCollector::new(0, 1, 1, TraceConfig::off());
        let b = TraceBundle::from_collectors(vec![c]).unwrap();
        assert!(matches!(
            trace_events_json(&b),
            Err(ProfError::NotCollected(_))
        ));
    }

    #[test]
    fn write_creates_file() {
        let dir = std::env::temp_dir().join(format!("actorprof-te-{}", std::process::id()));
        let path = dir.join("trace_events.json");
        write_trace_events(&path, &bundle()).unwrap();
        assert!(path.exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
