//! Google Trace Events export — the trace-format adoption the paper lists
//! as future work (§VI: "the adoption of OTF and Google Trace Events
//! format ... is currently being investigated").
//!
//! Produces a Chrome-/Perfetto-loadable JSON file: one process per node,
//! one thread per PE, an instant event per physical send (timestamped with
//! the rdtsc cycles captured at record time, converted to microseconds at
//! the nominal clock), and per-PE region summaries as counter events.

use std::fmt::Write as _;
use std::path::Path;

use fabsp_hwpc::rdtsc::NOMINAL_HZ;

use crate::bundle::TraceBundle;
use crate::error::ProfError;

fn cycles_to_us(cycles: u64) -> f64 {
    cycles as f64 / NOMINAL_HZ as f64 * 1e6
}

/// Serialize the bundle's physical trace (and overall summaries, when
/// collected) as Google Trace Events JSON. Returns the JSON string.
pub fn trace_events_json(bundle: &TraceBundle) -> Result<String, ProfError> {
    if !bundle.has_physical() {
        return Err(ProfError::NotCollected("physical trace"));
    }
    let ppn = bundle.pes_per_node();
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    let mut first = true;
    let mut push = |out: &mut String, event: String| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&event);
    };

    // metadata: processes = nodes, threads = PEs
    let nodes = bundle.n_pes().div_ceil(ppn);
    for node in 0..nodes {
        push(
            &mut out,
            format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{node},\"tid\":0,\
                 \"args\":{{\"name\":\"node{node}\"}}}}"
            ),
        );
    }
    for c in bundle.collectors() {
        push(
            &mut out,
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{},\"tid\":{},\
                 \"args\":{{\"name\":\"PE{}\"}}}}",
                c.node(),
                c.pe(),
                c.pe()
            ),
        );
    }

    // instant events: one per physical send
    for c in bundle.collectors() {
        for (r, &ts) in c.physical_records().iter().zip(c.physical_timestamps()) {
            let mut ev = String::new();
            let _ = write!(
                ev,
                "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{},\"tid\":{},\
                 \"ts\":{:.3},\"args\":{{\"bytes\":{},\"dst_pe\":{}}}}}",
                r.send_type.label(),
                c.node(),
                c.pe(),
                cycles_to_us(ts),
                r.buffer_size,
                r.dst_pe
            );
            push(&mut out, ev);
        }
    }

    // counter events: the per-PE overall breakdown (if collected)
    if bundle.has_overall() {
        for r in bundle.overall_records()? {
            push(
                &mut out,
                format!(
                    "{{\"name\":\"region_cycles\",\"ph\":\"C\",\"pid\":{},\"tid\":{},\
                     \"ts\":0,\"args\":{{\"T_MAIN\":{},\"T_COMM\":{},\"T_PROC\":{}}}}}",
                    r.pe as usize / ppn,
                    r.pe,
                    r.t_main,
                    r.t_comm(),
                    r.t_proc
                ),
            );
        }
    }

    out.push_str("\n]}\n");
    Ok(out)
}

/// Write the trace-events JSON to `path`.
pub fn write_trace_events(path: &Path, bundle: &TraceBundle) -> Result<(), ProfError> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, trace_events_json(bundle)?)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use actorprof_trace::{PeCollector, SendType, TraceConfig};

    fn bundle() -> TraceBundle {
        let cfg = TraceConfig::off().with_physical().with_overall();
        let collectors = (0..2)
            .map(|pe| {
                let mut c = PeCollector::new(pe, 2, 1, cfg.clone());
                c.record_physical(SendType::NonblockSend, 512, 1 - pe);
                c.record_physical(SendType::NonblockProgress, 512, 1 - pe);
                c.set_overall(10, 20, 100);
                c
            })
            .collect();
        TraceBundle::from_collectors(collectors).unwrap()
    }

    #[test]
    fn json_has_metadata_events_and_counters() {
        let json = trace_events_json(&bundle()).unwrap();
        assert!(json.starts_with('{'));
        assert!(json.trim_end().ends_with('}'));
        assert!(json.contains("\"name\":\"node0\""));
        assert!(json.contains("\"name\":\"node1\""));
        assert!(json.contains("\"name\":\"PE1\""));
        assert!(json.contains("\"name\":\"nonblock_send\""));
        assert!(json.contains("\"name\":\"nonblock_progress\""));
        assert!(json.contains("\"T_COMM\":70"));
        assert_eq!(
            json.matches("\"ph\":\"i\"").count(),
            4,
            "one instant event per physical record"
        );
    }

    #[test]
    fn timestamps_are_monotone_per_pe() {
        let json = trace_events_json(&bundle()).unwrap();
        // crude check: ts fields parse as non-negative numbers
        for piece in json.split("\"ts\":").skip(1) {
            let num: f64 = piece
                .split([',', '}'])
                .next()
                .unwrap()
                .parse()
                .expect("ts parses");
            assert!(num >= 0.0);
        }
    }

    #[test]
    fn requires_physical_trace() {
        let c = PeCollector::new(0, 1, 1, TraceConfig::off());
        let b = TraceBundle::from_collectors(vec![c]).unwrap();
        assert!(matches!(
            trace_events_json(&b),
            Err(ProfError::NotCollected(_))
        ));
    }

    #[test]
    fn write_creates_file() {
        let dir = std::env::temp_dir().join(format!("actorprof-te-{}", std::process::id()));
        let path = dir.join("trace_events.json");
        write_trace_events(&path, &bundle()).unwrap();
        assert!(path.exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
