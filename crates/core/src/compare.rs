//! Comparing two profiled runs — the workflow §IV-D performs by hand
//! ("Contrasting and comparing 1D Cyclic with 1D Range ..."), as an API:
//! take two [`TraceBundle`]s of the same world and compute the ratio
//! statements the paper derives.

use fabsp_hwpc::Event;

use crate::bundle::TraceBundle;
use crate::error::ProfError;
use crate::overall::OverallSummary;
use crate::stats::Imbalance;

/// Ratios of run A over run B for one per-PE series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesComparison {
    /// max(A) / max(B) — the paper's "~6x sends" style of statement.
    pub max_ratio: f64,
    /// imbalance(A) / imbalance(B) in max-over-mean terms.
    pub imbalance_ratio: f64,
    /// total(A) / total(B).
    pub total_ratio: f64,
}

impl SeriesComparison {
    fn of(a: &[u64], b: &[u64]) -> SeriesComparison {
        let ratio = |x: u64, y: u64| -> f64 {
            if y == 0 {
                if x == 0 {
                    1.0
                } else {
                    f64::INFINITY
                }
            } else {
                x as f64 / y as f64
            }
        };
        let ia = Imbalance::of(a);
        let ib = Imbalance::of(b);
        SeriesComparison {
            max_ratio: ratio(
                a.iter().copied().max().unwrap_or(0),
                b.iter().copied().max().unwrap_or(0),
            ),
            imbalance_ratio: if ib.max_over_mean > 0.0 {
                ia.max_over_mean / ib.max_over_mean
            } else {
                1.0
            },
            total_ratio: ratio(a.iter().sum(), b.iter().sum()),
        }
    }
}

/// A full comparison of two traced runs over the same PE grid.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Label of run A.
    pub label_a: String,
    /// Label of run B.
    pub label_b: String,
    /// Logical per-PE send totals, A/B (if both collected the trace).
    pub logical_sends: Option<SeriesComparison>,
    /// Logical per-PE recv totals, A/B.
    pub logical_recvs: Option<SeriesComparison>,
    /// Physical buffer send totals, A/B.
    pub physical_sends: Option<SeriesComparison>,
    /// User-region `PAPI_TOT_INS` per PE, A/B.
    pub instructions: Option<SeriesComparison>,
    /// max-per-PE T_TOTAL of A over B (wall-clock proxy).
    pub total_cycles_ratio: Option<f64>,
}

impl Comparison {
    /// Compare two bundles; traces missing from either side are skipped.
    ///
    /// Returns an error if the bundles describe different world sizes.
    pub fn between(
        label_a: impl Into<String>,
        a: &TraceBundle,
        label_b: impl Into<String>,
        b: &TraceBundle,
    ) -> Result<Comparison, ProfError> {
        if a.n_pes() != b.n_pes() {
            return Err(ProfError::BadBundle(format!(
                "cannot compare {}-PE and {}-PE runs",
                a.n_pes(),
                b.n_pes()
            )));
        }
        let logical = match (a.logical_matrix(), b.logical_matrix()) {
            (Ok(ma), Ok(mb)) => Some((ma, mb)),
            _ => None,
        };
        let physical = match (a.physical_matrix(None), b.physical_matrix(None)) {
            (Ok(ma), Ok(mb)) => Some((ma, mb)),
            _ => None,
        };
        let instructions = match (
            a.papi_user_region_totals(Event::TotIns),
            b.papi_user_region_totals(Event::TotIns),
        ) {
            (Ok(va), Ok(vb)) => Some(SeriesComparison::of(&va, &vb)),
            _ => None,
        };
        let total_cycles_ratio = match (a.overall_records(), b.overall_records()) {
            (Ok(ra), Ok(rb)) => {
                let sa = OverallSummary::of(&ra);
                let sb = OverallSummary::of(&rb);
                if sb.max_total_cycles > 0 {
                    Some(sa.max_total_cycles as f64 / sb.max_total_cycles as f64)
                } else {
                    None
                }
            }
            _ => None,
        };
        Ok(Comparison {
            label_a: label_a.into(),
            label_b: label_b.into(),
            logical_sends: logical
                .as_ref()
                .map(|(ma, mb)| SeriesComparison::of(&ma.row_totals(), &mb.row_totals())),
            logical_recvs: logical
                .as_ref()
                .map(|(ma, mb)| SeriesComparison::of(&ma.col_totals(), &mb.col_totals())),
            physical_sends: physical
                .as_ref()
                .map(|(ma, mb)| SeriesComparison::of(&ma.row_totals(), &mb.row_totals())),
            instructions,
            total_cycles_ratio,
        })
    }

    /// Render as the paper-style comparison statements.
    pub fn render(&self) -> String {
        let mut out = format!("=== {} vs {} ===\n", self.label_a, self.label_b);
        let mut line = |name: &str, s: &Option<SeriesComparison>| {
            if let Some(s) = s {
                out.push_str(&format!(
                    "{name}: max {:.2}x, imbalance {:.2}x, total {:.2}x\n",
                    s.max_ratio, s.imbalance_ratio, s.total_ratio
                ));
            }
        };
        line("logical sends ", &self.logical_sends);
        line("logical recvs ", &self.logical_recvs);
        line("physical sends", &self.physical_sends);
        line("user-region ins", &self.instructions);
        if let Some(r) = self.total_cycles_ratio {
            out.push_str(&format!("max T_TOTAL: {r:.2}x\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use actorprof_trace::{PeCollector, TraceConfig};

    fn bundle(sends: &[(usize, usize, u64)], n: usize) -> TraceBundle {
        let cfg = TraceConfig::off().with_logical().with_overall();
        let mut collectors: Vec<PeCollector> = (0..n)
            .map(|pe| PeCollector::new(pe, n, n, cfg.clone()))
            .collect();
        for &(src, dst, count) in sends {
            for _ in 0..count {
                collectors[src].record_send(dst, 8, 0, None);
            }
        }
        for (pe, c) in collectors.iter_mut().enumerate() {
            c.set_overall(10, 10, 100 * (pe as u64 + 1));
        }
        TraceBundle::from_collectors(collectors).unwrap()
    }

    #[test]
    fn compares_send_maxima_and_totals() {
        // A: PE0 sends 60 to PE1; B: balanced 10 each way
        let a = bundle(&[(0, 1, 60)], 2);
        let b = bundle(&[(0, 1, 10), (1, 0, 10)], 2);
        let c = Comparison::between("cyclic", &a, "range", &b).unwrap();
        let s = c.logical_sends.unwrap();
        assert!((s.max_ratio - 6.0).abs() < 1e-12);
        assert!((s.total_ratio - 3.0).abs() < 1e-12);
        assert!(s.imbalance_ratio > 1.0, "A is more imbalanced");
        assert_eq!(c.total_cycles_ratio, Some(1.0));
        let text = c.render();
        assert!(text.contains("cyclic vs range"));
        assert!(text.contains("6.00x"));
    }

    #[test]
    fn missing_traces_are_skipped_not_fatal() {
        let a = bundle(&[(0, 1, 5)], 2);
        let plain = TraceBundle::from_collectors(vec![
            PeCollector::new(0, 2, 2, TraceConfig::off()),
            PeCollector::new(1, 2, 2, TraceConfig::off()),
        ])
        .unwrap();
        let c = Comparison::between("a", &a, "b", &plain).unwrap();
        assert!(c.logical_sends.is_none());
        assert!(c.physical_sends.is_none());
        assert!(c.instructions.is_none());
    }

    #[test]
    fn mismatched_worlds_error() {
        let a = bundle(&[], 2);
        let b = bundle(&[], 3);
        assert!(Comparison::between("a", &a, "b", &b).is_err());
    }

    #[test]
    fn zero_denominators_handled() {
        let a = bundle(&[(0, 1, 5)], 2);
        let b = bundle(&[], 2);
        let c = Comparison::between("a", &a, "b", &b).unwrap();
        assert!(c.logical_sends.unwrap().max_ratio.is_infinite());
        let b2 = bundle(&[], 2);
        let c = Comparison::between("x", &b, "y", &b2).unwrap();
        assert_eq!(c.logical_sends.unwrap().max_ratio, 1.0);
    }
}
