//! PAPI bar-graph analysis (§III-A, Figs 10–11).

use fabsp_hwpc::Event;

use crate::bundle::TraceBundle;
use crate::error::ProfError;
use crate::stats::Imbalance;

/// The per-PE series of one PAPI event over the instrumented user regions,
/// plus the paper's imbalance statement about it.
#[derive(Debug, Clone, PartialEq)]
pub struct PapiSeries {
    /// The counted event.
    pub event: Event,
    /// Per-PE totals (MAIN + PROC user regions).
    pub per_pe: Vec<u64>,
    /// Imbalance summary ("PE0 suffers ... up to ~5x").
    pub imbalance: Imbalance,
}

impl PapiSeries {
    /// Extract from a bundle.
    pub fn from_bundle(bundle: &TraceBundle, event: Event) -> Result<PapiSeries, ProfError> {
        let per_pe = bundle.papi_user_region_totals(event)?;
        let imbalance = Imbalance::of(&per_pe);
        Ok(PapiSeries {
            event,
            per_pe,
            imbalance,
        })
    }

    /// Orders of magnitude between the largest and smallest *nonzero*
    /// values — the paper's footnote 1 observes "three to four orders of
    /// magnitude" between the quietest and loudest PE under 1D Cyclic.
    pub fn dynamic_range_log10(&self) -> f64 {
        let max = self.per_pe.iter().copied().max().unwrap_or(0);
        let min_nonzero = self.per_pe.iter().copied().filter(|&v| v > 0).min();
        match (max, min_nonzero) {
            (0, _) | (_, None) => 0.0,
            (max, Some(min)) => (max as f64 / min as f64).log10(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use actorprof_trace::{PeCollector, TraceConfig};

    fn bundle_with_totals(totals: &[u64]) -> TraceBundle {
        let n = totals.len();
        let collectors = totals
            .iter()
            .enumerate()
            .map(|(pe, &t)| {
                let mut c = PeCollector::new(pe, n, n, TraceConfig::off());
                let mut p = fabsp_hwpc::RegionProfile::default();
                p.main.events[Event::TotIns.index()] = t / 2;
                p.proc.events[Event::TotIns.index()] = t - t / 2;
                c.set_region_profile(p);
                c
            })
            .collect();
        TraceBundle::from_collectors(collectors).unwrap()
    }

    #[test]
    fn series_extraction_and_imbalance() {
        let b = bundle_with_totals(&[500, 100, 100, 100]);
        let s = PapiSeries::from_bundle(&b, Event::TotIns).unwrap();
        assert_eq!(s.per_pe, vec![500, 100, 100, 100]);
        assert_eq!(s.imbalance.argmax, 0);
        assert!((s.imbalance.max_over_min - 5.0).abs() < 1e-12);
    }

    #[test]
    fn dynamic_range() {
        let b = bundle_with_totals(&[1_000_000, 100]);
        let s = PapiSeries::from_bundle(&b, Event::TotIns).unwrap();
        assert!((s.dynamic_range_log10() - 4.0).abs() < 0.01);
        let b = bundle_with_totals(&[0, 0]);
        let s = PapiSeries::from_bundle(&b, Event::TotIns).unwrap();
        assert_eq!(s.dynamic_range_log10(), 0.0);
    }
}
