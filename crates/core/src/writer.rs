//! Trace-file writers, one per ActorProf output format (§III).
//!
//! | File | Contents | Paper section |
//! |---|---|---|
//! | `PE<i>_send.csv` | exact per-send logical trace | §III-A |
//! | `PE<i>_send_agg.csv` | per-destination aggregate logical trace | §III-A (bloat-safe form) |
//! | `PE<i>_PAPI.csv` | PAPI message trace | §III-A |
//! | `physical.txt` | post-aggregation sends, all PEs | §III-C |
//! | `overall.txt` | absolute + relative MAIN/COMM/PROC per PE | §III-B |

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

use crate::bundle::TraceBundle;
use crate::error::ProfError;

/// Write every collected trace into `dir` (created if missing). Returns
/// the list of files written.
pub fn write_all(dir: &Path, bundle: &TraceBundle) -> Result<Vec<String>, ProfError> {
    std::fs::create_dir_all(dir)?;
    let mut written = Vec::new();
    if bundle.has_logical() {
        written.extend(write_logical_agg(dir, bundle)?);
        // Exact records live in memory only when not streamed to disk
        // already (TraceConfig::stream_dir wrote them during the run).
        if bundle
            .collectors()
            .iter()
            .all(|c| c.config().logical_records && c.config().stream_dir.is_none())
        {
            written.extend(write_logical_exact(dir, bundle)?);
        }
    }
    if bundle.collectors().iter().any(|c| !c.papi_records().is_empty()) {
        written.extend(write_papi(dir, bundle)?);
    }
    if bundle.has_physical() {
        written.push(write_physical(dir, bundle)?);
    }
    if bundle.has_overall() {
        written.push(write_overall(dir, bundle)?);
    }
    Ok(written)
}

/// Write `PE<i>_send.csv` (exact per-send records) for every PE.
pub fn write_logical_exact(dir: &Path, bundle: &TraceBundle) -> Result<Vec<String>, ProfError> {
    std::fs::create_dir_all(dir)?;
    let mut files = Vec::new();
    for c in bundle.collectors() {
        if !c.config().logical_records {
            return Err(ProfError::NotCollected("per-send logical records"));
        }
        let name = format!("PE{}_send.csv", c.pe());
        let mut w = BufWriter::new(File::create(dir.join(&name))?);
        for r in c.logical_records() {
            writeln!(
                w,
                "{},{},{},{},{}",
                r.src_node, r.src_pe, r.dst_node, r.dst_pe, r.msg_size
            )?;
        }
        w.flush()?;
        files.push(name);
    }
    Ok(files)
}

/// Write `PE<i>_send_agg.csv` (per-destination aggregates) for every PE.
pub fn write_logical_agg(dir: &Path, bundle: &TraceBundle) -> Result<Vec<String>, ProfError> {
    if !bundle.has_logical() {
        return Err(ProfError::NotCollected("logical trace"));
    }
    std::fs::create_dir_all(dir)?;
    let ppn = bundle.pes_per_node();
    let mut files = Vec::new();
    for c in bundle.collectors() {
        let name = format!("PE{}_send_agg.csv", c.pe());
        let mut w = BufWriter::new(File::create(dir.join(&name))?);
        for (dst, cell) in c.logical_matrix().iter().enumerate() {
            if cell.sends == 0 {
                continue;
            }
            writeln!(
                w,
                "{},{},{},{},{},{}",
                c.node(),
                c.pe(),
                dst / ppn,
                dst,
                cell.sends,
                cell.bytes
            )?;
        }
        w.flush()?;
        files.push(name);
    }
    Ok(files)
}

/// Write `PE<i>_PAPI.csv` for every PE that recorded PAPI lines. The first
/// line is a header naming the counter columns.
pub fn write_papi(dir: &Path, bundle: &TraceBundle) -> Result<Vec<String>, ProfError> {
    std::fs::create_dir_all(dir)?;
    let mut files = Vec::new();
    for c in bundle.collectors() {
        let Some(papi) = &c.config().papi else {
            continue;
        };
        let name = format!("PE{}_PAPI.csv", c.pe());
        let mut w = BufWriter::new(File::create(dir.join(&name))?);
        let event_names: Vec<&str> = papi.events().iter().map(|e| e.papi_name()).collect();
        writeln!(
            w,
            "src_node,src_pe,dst_node,dst_pe,pkt_size,MAILBOXID,NUM_SENDS,{}",
            event_names.join(",")
        )?;
        for r in c.papi_records() {
            let counters: Vec<String> = r.counters.iter().map(|v| v.to_string()).collect();
            writeln!(
                w,
                "{},{},{},{},{},{},{},{}",
                r.src_node,
                r.src_pe,
                r.dst_node,
                r.dst_pe,
                r.pkt_size,
                r.mailbox_id,
                r.num_sends,
                counters.join(",")
            )?;
        }
        w.flush()?;
        files.push(name);
    }
    Ok(files)
}

/// Write `physical.txt`: one line per post-aggregation send, all PEs.
pub fn write_physical(dir: &Path, bundle: &TraceBundle) -> Result<String, ProfError> {
    if !bundle.has_physical() {
        return Err(ProfError::NotCollected("physical trace"));
    }
    std::fs::create_dir_all(dir)?;
    let name = "physical.txt".to_string();
    let mut w = BufWriter::new(File::create(dir.join(&name))?);
    for c in bundle.collectors() {
        for r in c.physical_records() {
            writeln!(
                w,
                "{},{},{},{}",
                r.send_type.label(),
                r.buffer_size,
                r.src_pe,
                r.dst_pe
            )?;
        }
    }
    w.flush()?;
    Ok(name)
}

/// Write `overall.txt`: the paper's absolute and relative lines per PE.
pub fn write_overall(dir: &Path, bundle: &TraceBundle) -> Result<String, ProfError> {
    let records = bundle.overall_records()?;
    std::fs::create_dir_all(dir)?;
    let name = "overall.txt".to_string();
    let mut w = BufWriter::new(File::create(dir.join(&name))?);
    for r in &records {
        writeln!(
            w,
            "Absolute [PE{}] TCOMM_PROFILING ({}, {}, {})",
            r.pe,
            r.t_main,
            r.t_comm(),
            r.t_proc
        )?;
    }
    for r in &records {
        let (m, c, p) = r.relative();
        writeln!(
            w,
            "Relative [PE{}] TCOMM_PROFILING ({m:.6}, {c:.6}, {p:.6})",
            r.pe
        )?;
    }
    w.flush()?;
    Ok(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use actorprof_trace::{PapiConfig, PeCollector, SendType, TraceConfig};

    fn full_bundle() -> TraceBundle {
        let cfg = TraceConfig::off()
            .with_logical_records()
            .with_papi(PapiConfig::case_study())
            .with_overall()
            .with_physical();
        let collectors = (0..2)
            .map(|pe| {
                let mut c = PeCollector::new(pe, 2, 2, cfg.clone());
                c.record_send(1 - pe, 16, 0, Some(&[100, 40]));
                c.record_physical(SendType::LocalSend, 128, 1 - pe);
                c.set_overall(10, 20, 100);
                c
            })
            .collect();
        TraceBundle::from_collectors(collectors).unwrap()
    }

    #[test]
    fn write_all_produces_every_format() {
        let dir = std::env::temp_dir().join(format!("actorprof-w-{}", std::process::id()));
        let bundle = full_bundle();
        let files = write_all(&dir, &bundle).unwrap();
        for expected in [
            "PE0_send_agg.csv",
            "PE1_send_agg.csv",
            "PE0_send.csv",
            "PE1_send.csv",
            "PE0_PAPI.csv",
            "PE1_PAPI.csv",
            "physical.txt",
            "overall.txt",
        ] {
            assert!(files.iter().any(|f| f == expected), "missing {expected}");
            assert!(dir.join(expected).exists());
        }
        let overall = std::fs::read_to_string(dir.join("overall.txt")).unwrap();
        assert!(overall.contains("Absolute [PE0] TCOMM_PROFILING (10, 70, 20)"));
        assert!(overall.contains("Relative [PE0] TCOMM_PROFILING (0.100000, 0.700000, 0.200000)"));
        let physical = std::fs::read_to_string(dir.join("physical.txt")).unwrap();
        assert!(physical.contains("local_send,128,0,1"));
        let papi = std::fs::read_to_string(dir.join("PE0_PAPI.csv")).unwrap();
        assert!(papi.starts_with("src_node,src_pe,dst_node,dst_pe,pkt_size,MAILBOXID,NUM_SENDS,PAPI_TOT_INS,PAPI_LST_INS"));
        assert!(papi.contains("0,0,0,1,16,0,1,"));
        let send = std::fs::read_to_string(dir.join("PE0_send.csv")).unwrap();
        assert_eq!(send.trim(), "0,0,0,1,16");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn exact_writer_requires_records() {
        let c = PeCollector::new(0, 1, 1, TraceConfig::off().with_logical());
        let bundle = TraceBundle::from_collectors(vec![c]).unwrap();
        let dir = std::env::temp_dir().join(format!("actorprof-w2-{}", std::process::id()));
        assert!(matches!(
            write_logical_exact(&dir, &bundle),
            Err(ProfError::NotCollected(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn agg_writer_skips_zero_rows() {
        let mut c = PeCollector::new(0, 3, 3, TraceConfig::off().with_logical());
        c.record_send(2, 8, 0, None);
        let mut c1 = PeCollector::new(1, 3, 3, TraceConfig::off().with_logical());
        c1.record_send(0, 8, 0, None);
        let c2 = PeCollector::new(2, 3, 3, TraceConfig::off().with_logical());
        let bundle = TraceBundle::from_collectors(vec![c, c1, c2]).unwrap();
        let dir = std::env::temp_dir().join(format!("actorprof-w3-{}", std::process::id()));
        write_logical_agg(&dir, &bundle).unwrap();
        let s = std::fs::read_to_string(dir.join("PE0_send_agg.csv")).unwrap();
        assert_eq!(s.lines().count(), 1);
        assert_eq!(s.trim(), "0,0,0,2,1,8");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
