//! Profiler error types.

/// Errors from trace assembly, file IO, and parsing.
#[derive(Debug)]
pub enum ProfError {
    /// Collector set inconsistent (wrong count, mixed worlds).
    BadBundle(String),
    /// A requested trace kind was not collected.
    NotCollected(&'static str),
    /// Filesystem failure.
    Io(std::io::Error),
    /// A trace file didn't parse.
    Parse { file: String, line: usize, message: String },
}

impl std::fmt::Display for ProfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProfError::BadBundle(m) => write!(f, "inconsistent trace bundle: {m}"),
            ProfError::NotCollected(what) => {
                write!(f, "{what} was not collected (enable it in TraceConfig)")
            }
            ProfError::Io(e) => write!(f, "I/O error: {e}"),
            ProfError::Parse { file, line, message } => {
                write!(f, "parse error in {file}:{line}: {message}")
            }
        }
    }
}

impl std::error::Error for ProfError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProfError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ProfError {
    fn from(e: std::io::Error) -> Self {
        ProfError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(ProfError::NotCollected("physical trace")
            .to_string()
            .contains("TraceConfig"));
        let e = ProfError::Parse {
            file: "overall.txt".into(),
            line: 3,
            message: "bad field".into(),
        };
        assert!(e.to_string().contains("overall.txt:3"));
    }
}
