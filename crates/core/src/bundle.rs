//! Assembling per-PE collectors into a world-wide trace bundle.

use actorprof_trace::{OverallRecord, PapiRecord, PeCollector, SendType};
use fabsp_hwpc::Event;

use crate::error::ProfError;
use crate::stats::Matrix;

/// The complete trace of one FA-BSP run: one collector per PE, plus
/// derived world-wide views (matrices, per-PE totals).
#[derive(Debug)]
pub struct TraceBundle {
    collectors: Vec<PeCollector>,
}

impl TraceBundle {
    /// Assemble from the per-PE collectors an SPMD run returned
    /// (rank order required — `fabsp_shmem::spmd::run` returns it so).
    pub fn from_collectors(collectors: Vec<PeCollector>) -> Result<TraceBundle, ProfError> {
        if collectors.is_empty() {
            return Err(ProfError::BadBundle("no collectors".into()));
        }
        let n = collectors[0].n_pes();
        if collectors.len() != n {
            return Err(ProfError::BadBundle(format!(
                "{} collectors for a {}-PE world",
                collectors.len(),
                n
            )));
        }
        for (rank, c) in collectors.iter().enumerate() {
            if c.pe() as usize != rank {
                return Err(ProfError::BadBundle(format!(
                    "collector {rank} reports PE {}",
                    c.pe()
                )));
            }
            if c.n_pes() != n {
                return Err(ProfError::BadBundle("mixed world sizes".into()));
            }
        }
        Ok(TraceBundle { collectors })
    }

    /// Number of PEs.
    pub fn n_pes(&self) -> usize {
        self.collectors.len()
    }

    /// PEs per node (for node derivation in file formats).
    pub fn pes_per_node(&self) -> usize {
        self.collectors[0].pes_per_node()
    }

    /// The per-PE collectors, rank-ordered.
    pub fn collectors(&self) -> &[PeCollector] {
        &self.collectors
    }

    /// Whether the logical trace was collected.
    pub fn has_logical(&self) -> bool {
        self.collectors.iter().all(|c| c.config().logical)
    }

    /// Whether the physical trace was collected.
    pub fn has_physical(&self) -> bool {
        self.collectors.iter().all(|c| c.config().physical)
    }

    /// Whether the overall breakdown was collected.
    pub fn has_overall(&self) -> bool {
        self.collectors.iter().all(|c| c.overall().is_some())
    }

    /// Whether phase spans were collected.
    pub fn has_spans(&self) -> bool {
        self.collectors.iter().all(|c| c.config().spans)
    }

    /// The logical send-count matrix (pre-aggregation messages):
    /// entry (src, dst) = number of messages src sent to dst. This is the
    /// data of the Fig 3/4 heatmaps.
    pub fn logical_matrix(&self) -> Result<Matrix, ProfError> {
        if !self.has_logical() {
            return Err(ProfError::NotCollected("logical trace"));
        }
        let n = self.n_pes();
        let mut m = Matrix::zeros(n);
        for (src, c) in self.collectors.iter().enumerate() {
            for (dst, cell) in c.logical_matrix().iter().enumerate() {
                m.add(src, dst, cell.sends);
            }
        }
        Ok(m)
    }

    /// Like [`logical_matrix`](Self::logical_matrix) but counting payload
    /// bytes.
    pub fn logical_bytes_matrix(&self) -> Result<Matrix, ProfError> {
        if !self.has_logical() {
            return Err(ProfError::NotCollected("logical trace"));
        }
        let n = self.n_pes();
        let mut m = Matrix::zeros(n);
        for (src, c) in self.collectors.iter().enumerate() {
            for (dst, cell) in c.logical_matrix().iter().enumerate() {
                m.add(src, dst, cell.bytes);
            }
        }
        Ok(m)
    }

    /// The physical buffer-count matrix (post-aggregation sends), the data
    /// of the Fig 8/9 heatmaps. `kind = None` counts `local_send` +
    /// `nonblock_send` (actual buffer movements, excluding the signalling
    /// `nonblock_progress` entries); `Some(t)` filters one class.
    pub fn physical_matrix(&self, kind: Option<SendType>) -> Result<Matrix, ProfError> {
        if !self.has_physical() {
            return Err(ProfError::NotCollected("physical trace"));
        }
        let n = self.n_pes();
        let mut m = Matrix::zeros(n);
        for c in &self.collectors {
            for r in c.physical_records() {
                let include = match kind {
                    Some(k) => r.send_type == k,
                    None => r.send_type != SendType::NonblockProgress,
                };
                if include {
                    m.add(r.src_pe as usize, r.dst_pe as usize, 1);
                }
            }
        }
        Ok(m)
    }

    /// Per-PE overall breakdowns (Figs 12/13).
    pub fn overall_records(&self) -> Result<Vec<OverallRecord>, ProfError> {
        self.collectors
            .iter()
            .map(|c| c.overall().ok_or(ProfError::NotCollected("overall profile")))
            .collect()
    }

    /// All PAPI message-trace lines of one PE.
    pub fn papi_records(&self, pe: usize) -> Vec<PapiRecord> {
        self.collectors[pe].papi_records()
    }

    /// Per-PE total of `event` over the instrumented user regions
    /// (MAIN + PROC) — the series of Figs 10/11 ("we instrument the regime
    /// of user-provided code and exclude the Conveyors and HClib-Actor
    /// system").
    pub fn papi_user_region_totals(&self, event: Event) -> Result<Vec<u64>, ProfError> {
        self.collectors
            .iter()
            .map(|c| {
                c.region_profile()
                    .map(|p| p.main.events[event.index()] + p.proc.events[event.index()])
                    .ok_or(ProfError::NotCollected("region profile"))
            })
            .collect()
    }

    /// Per-PE MAIN-region totals of `event`.
    pub fn papi_main_totals(&self, event: Event) -> Result<Vec<u64>, ProfError> {
        self.collectors
            .iter()
            .map(|c| {
                c.region_profile()
                    .map(|p| p.main.events[event.index()])
                    .ok_or(ProfError::NotCollected("region profile"))
            })
            .collect()
    }

    /// Per-PE PROC-region totals of `event`.
    pub fn papi_proc_totals(&self, event: Event) -> Result<Vec<u64>, ProfError> {
        self.collectors
            .iter()
            .map(|c| {
                c.region_profile()
                    .map(|p| p.proc.events[event.index()])
                    .ok_or(ProfError::NotCollected("region profile"))
            })
            .collect()
    }

    /// Total recorded trace footprint in bytes (§IV-E's concern).
    pub fn trace_bytes(&self) -> usize {
        self.collectors.iter().map(|c| c.trace_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use actorprof_trace::TraceConfig;

    fn mini_bundle() -> TraceBundle {
        // 2 PEs, 1 node; PE0 sends 3 msgs to PE1 and 1 to itself;
        // PE1 sends 2 to PE0.
        let cfg = TraceConfig::off().with_logical().with_physical();
        let mut c0 = PeCollector::new(0, 2, 2, cfg.clone());
        c0.record_send(1, 8, 0, None);
        c0.record_send(1, 8, 0, None);
        c0.record_send(1, 8, 0, None);
        c0.record_send(0, 8, 0, None);
        c0.record_physical(SendType::LocalSend, 64, 1);
        let mut c1 = PeCollector::new(1, 2, 2, cfg);
        c1.record_send(0, 8, 0, None);
        c1.record_send(0, 8, 0, None);
        c1.record_physical(SendType::LocalSend, 64, 0);
        c1.record_physical(SendType::NonblockProgress, 64, 0);
        TraceBundle::from_collectors(vec![c0, c1]).unwrap()
    }

    #[test]
    fn logical_matrix_from_collectors() {
        let b = mini_bundle();
        let m = b.logical_matrix().unwrap();
        assert_eq!(m.get(0, 1), 3);
        assert_eq!(m.get(0, 0), 1);
        assert_eq!(m.get(1, 0), 2);
        assert_eq!(m.row_totals(), vec![4, 2]);
        assert_eq!(m.col_totals(), vec![3, 3]);
        let bytes = b.logical_bytes_matrix().unwrap();
        assert_eq!(bytes.get(0, 1), 24);
    }

    #[test]
    fn physical_matrix_excludes_progress_by_default() {
        let b = mini_bundle();
        let m = b.physical_matrix(None).unwrap();
        assert_eq!(m.get(0, 1), 1);
        assert_eq!(m.get(1, 0), 1);
        assert_eq!(m.total(), 2);
        let progress = b.physical_matrix(Some(SendType::NonblockProgress)).unwrap();
        assert_eq!(progress.get(1, 0), 1);
    }

    #[test]
    fn bundle_validation() {
        assert!(TraceBundle::from_collectors(vec![]).is_err());
        let c = PeCollector::new(0, 2, 2, TraceConfig::off());
        assert!(TraceBundle::from_collectors(vec![c]).is_err()); // 1 of 2
        let c0 = PeCollector::new(1, 2, 2, TraceConfig::off()); // wrong rank
        let c1 = PeCollector::new(1, 2, 2, TraceConfig::off());
        assert!(TraceBundle::from_collectors(vec![c0, c1]).is_err());
    }

    #[test]
    fn missing_traces_reported() {
        let c0 = PeCollector::new(0, 1, 1, TraceConfig::off());
        let b = TraceBundle::from_collectors(vec![c0]).unwrap();
        assert!(matches!(
            b.logical_matrix(),
            Err(ProfError::NotCollected("logical trace"))
        ));
        assert!(matches!(
            b.physical_matrix(None),
            Err(ProfError::NotCollected("physical trace"))
        ));
        assert!(b.overall_records().is_err());
        assert!(b.papi_user_region_totals(Event::TotIns).is_err());
    }

    #[test]
    fn papi_totals_from_region_profiles() {
        let mut c = PeCollector::new(0, 1, 1, TraceConfig::off());
        let mut profile = fabsp_hwpc::RegionProfile::default();
        profile.main.events[Event::TotIns.index()] = 100;
        profile.proc.events[Event::TotIns.index()] = 40;
        c.set_region_profile(profile);
        let b = TraceBundle::from_collectors(vec![c]).unwrap();
        assert_eq!(b.papi_user_region_totals(Event::TotIns).unwrap(), vec![140]);
        assert_eq!(b.papi_main_totals(Event::TotIns).unwrap(), vec![100]);
        assert_eq!(b.papi_proc_totals(Event::TotIns).unwrap(), vec![40]);
    }
}
