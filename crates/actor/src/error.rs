//! Actor runtime error types.

use fabsp_conveyors::ConveyorError;

/// Errors surfaced by the selector runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ActorError {
    /// A mailbox index out of range.
    InvalidMailbox { mailbox: usize, n_mailboxes: usize },
    /// `send` to a mailbox after `done` was signalled for it.
    SendAfterDone { mailbox: usize },
    /// A selector needs at least one mailbox.
    NoMailboxes,
    /// A done-chain references itself.
    SelfChain { mailbox: usize },
    /// Propagated conveyor failure.
    Conveyor(ConveyorError),
}

impl std::fmt::Display for ActorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ActorError::InvalidMailbox {
                mailbox,
                n_mailboxes,
            } => write!(
                f,
                "mailbox {mailbox} out of range (selector has {n_mailboxes})"
            ),
            ActorError::SendAfterDone { mailbox } => {
                write!(f, "send to mailbox {mailbox} after done({mailbox})")
            }
            ActorError::NoMailboxes => write!(f, "selector needs at least one mailbox"),
            ActorError::SelfChain { mailbox } => {
                write!(f, "mailbox {mailbox} cannot chain done after itself")
            }
            ActorError::Conveyor(e) => write!(f, "conveyor error: {e}"),
        }
    }
}

impl std::error::Error for ActorError {}

impl From<ConveyorError> for ActorError {
    fn from(e: ConveyorError) -> Self {
        ActorError::Conveyor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(ActorError::InvalidMailbox {
            mailbox: 3,
            n_mailboxes: 1
        }
        .to_string()
        .contains("mailbox 3"));
        assert!(ActorError::SendAfterDone { mailbox: 0 }
            .to_string()
            .contains("done(0)"));
        let e: ActorError = ConveyorError::ZeroCapacity.into();
        assert!(matches!(e, ActorError::Conveyor(_)));
    }
}
