//! The Selector: a multi-mailbox actor driving interleaved FA-BSP
//! execution on one PE.
//!
//! ## Execution & region accounting
//!
//! [`Selector::execute`] is the equivalent of `hclib::finish` around an
//! actor: it runs the caller's MAIN body, then drives communication until
//! every mailbox's conveyor terminates. Throughout, a
//! [`fabsp_hwpc::RegionTimer`] attributes cycles and hardware counters to
//! the paper's three regions (Table I):
//!
//! - **MAIN** — inside the user body (message construction + local
//!   computation, including the `push` fast path of `send`);
//! - **PROC** — inside user message handlers;
//! - **COMM** — everything else (aggregation, delivery, progress,
//!   termination), *derived* as `T_TOTAL − T_MAIN − T_PROC` exactly as
//!   §III-B derives it.
//!
//! The interleaving that defines FA-BSP happens in `send`: when
//! aggregation buffers are full, the runtime leaves MAIN, advances the
//! conveyors — running message handlers (PROC) in the middle of the user's
//! send loop — and resumes MAIN once the push succeeds. The user never
//! sees the retry (the "automatic message aggregation without any
//! user-written error handling" of §I).
//!
//! ## Handler sends and done-chains
//!
//! Handlers may send (request/response patterns): such sends are staged in
//! a per-mailbox outbox and pushed by the runtime. After `done(mb)` no one
//! may send to `mb` anymore; for a response mailbox fed only by handlers
//! of another mailbox, declare [`Selector::chain_done`] — its done is
//! signalled automatically once the upstream mailbox terminates, which is
//! HClib-Actor's mailbox-chaining termination pattern.

use actorprof_trace::{PeCollector, SharedCollector, TraceBuffer, TraceConfig};
use fabsp_conveyors::{Conveyor, ConveyorOptions, ConveyorStats, ExchangeMode};
use fabsp_hwpc::cost::model;
use fabsp_hwpc::{counters, Region, RegionTimer, MAX_EVENTS};
use fabsp_shmem::Pe;
use fabsp_telemetry::{Counter, Phase};

use crate::error::ActorError;

/// Configuration for a [`Selector`].
#[derive(Debug, Clone, Default)]
pub struct SelectorConfig {
    /// Aggregation options for each mailbox's conveyor.
    pub conveyor: ConveyorOptions,
    /// What ActorProf should record during execution.
    pub trace: TraceConfig,
}

impl SelectorConfig {
    /// Default conveyors with the given tracing.
    pub fn traced(trace: TraceConfig) -> SelectorConfig {
        SelectorConfig {
            conveyor: ConveyorOptions::default(),
            trace,
        }
    }
}

/// The message handler: `(mailbox, message, sender PE, ctx)`.
type Handler<'h, T> = Box<dyn FnMut(usize, T, u32, &mut ProcCtx<'_, T>) + 'h>;

struct Mailbox<T: Copy + Default + Send + 'static> {
    conveyor: Conveyor<T>,
    user_done: bool,
    done_signaled: bool,
    complete: bool,
    /// Signal done automatically once this other mailbox completes.
    chained_after: Option<usize>,
    /// Sends staged by handlers, pushed by the runtime: `(msg, dst)`.
    outbox: std::collections::VecDeque<(T, usize)>,
}

/// An actor with multiple guarded mailboxes (one conveyor each).
///
/// The `'h` lifetime lets handlers borrow surrounding state (e.g. a shared
/// read-only graph) instead of requiring `'static` captures.
pub struct Selector<'h, T: Copy + Default + Send + 'static> {
    mailboxes: Vec<Mailbox<T>>,
    handler: Option<Handler<'h, T>>,
    timer: RegionTimer,
    collector: SharedCollector,
    /// Batched logical/PAPI send events; the per-send fast path appends
    /// here (a plain `Vec` push — no shared borrow, no mutex) and the batch
    /// drains into the collector at progress boundaries.
    send_buf: TraceBuffer,
    papi_events: Vec<fabsp_hwpc::Event>,
    /// How the runtime drives the conveyors: batched slice submission and
    /// zero-copy batch delivery (default), or the per-item protocol. App
    /// code is identical under both — the conveyor orders items the same
    /// way — so this is a pure runtime-efficiency knob.
    exchange: ExchangeMode,
    /// Reusable staging buffer for batching contiguous same-destination
    /// outbox runs into one `push_slice` (no per-round allocation).
    outbox_scratch: Vec<T>,
    executed: bool,
}

/// Context passed to the MAIN body by [`Selector::execute`].
pub struct MainCtx<'a, 'h, 'p, T: Copy + Default + Send + 'static> {
    selector: &'a mut Selector<'h, T>,
    pe: &'p Pe,
}

/// Context passed to message handlers. Sends are staged in the mailbox
/// outbox and pushed by the runtime between handler invocations.
pub struct ProcCtx<'a, T> {
    outboxes: &'a mut [std::collections::VecDeque<(T, usize)>],
    done_flags: &'a [(bool, bool)], // (user_done, done_signaled) per mailbox
    done_requests: &'a mut [bool],
    rank: usize,
    n_pes: usize,
}

impl<T: Copy> ProcCtx<'_, T> {
    /// Stage a send of `msg` to `dst` via `mailbox`.
    ///
    /// # Panics
    /// Panics if `done` was already signalled for `mailbox` — sending into
    /// a terminated mailbox is a protocol violation in HClib-Actor too.
    pub fn send(&mut self, mailbox: usize, msg: T, dst: usize) {
        assert!(mailbox < self.outboxes.len(), "mailbox {mailbox} invalid");
        assert!(dst < self.n_pes, "destination PE {dst} invalid");
        let (user_done, signaled) = self.done_flags[mailbox];
        assert!(
            !(user_done || signaled) || !self.done_requests[mailbox],
            "handler send to mailbox {mailbox} after done"
        );
        assert!(
            !signaled,
            "handler send to mailbox {mailbox} after its done was signalled"
        );
        self.outboxes[mailbox].push_back((msg, dst));
    }

    /// Request `done(mailbox)` from handler code (e.g. on receipt of a
    /// poison-pill message).
    pub fn done(&mut self, mailbox: usize) {
        assert!(mailbox < self.done_requests.len(), "mailbox {mailbox} invalid");
        self.done_requests[mailbox] = true;
    }

    /// The rank of this PE.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of PEs.
    pub fn n_pes(&self) -> usize {
        self.n_pes
    }
}

impl<'h, T: Copy + Default + Send + 'static> Selector<'h, T> {
    /// Collectively create a selector with `n_mailboxes` mailboxes.
    ///
    /// `handler` is invoked as `(mailbox, message, sender, ctx)` for every
    /// delivered message — the union of the per-mailbox `process` lambdas
    /// of Listing 2.
    pub fn new(
        pe: &Pe,
        n_mailboxes: usize,
        config: SelectorConfig,
        handler: impl FnMut(usize, T, u32, &mut ProcCtx<'_, T>) + 'h,
    ) -> Result<Selector<'h, T>, ActorError> {
        if n_mailboxes == 0 {
            return Err(ActorError::NoMailboxes);
        }
        let papi_events = config
            .trace
            .papi
            .as_ref()
            .map(|p| p.events().to_vec())
            .unwrap_or_default();
        let collector = PeCollector::new(
            pe.rank(),
            pe.n_pes(),
            pe.grid().pes_per_node(),
            config.trace.clone(),
        )
        .into_shared();
        let mut mailboxes = Vec::with_capacity(n_mailboxes);
        for _ in 0..n_mailboxes {
            let mut conveyor = Conveyor::new(pe, config.conveyor)?;
            conveyor.attach_collector(collector.clone());
            mailboxes.push(Mailbox {
                conveyor,
                user_done: false,
                done_signaled: false,
                complete: false,
                chained_after: None,
                outbox: std::collections::VecDeque::new(),
            });
        }
        Ok(Selector {
            mailboxes,
            handler: Some(Box::new(handler)),
            timer: RegionTimer::new(),
            collector,
            send_buf: TraceBuffer::for_config(&config.trace),
            papi_events,
            exchange: config.conveyor.exchange,
            outbox_scratch: Vec::new(),
            executed: false,
        })
    }

    /// Number of mailboxes.
    pub fn n_mailboxes(&self) -> usize {
        self.mailboxes.len()
    }

    /// Declare that `mailbox`'s done should be signalled automatically once
    /// `after` terminates (for response mailboxes fed only by `after`'s
    /// handlers).
    pub fn chain_done(&mut self, mailbox: usize, after: usize) -> Result<(), ActorError> {
        self.check_mailbox(mailbox)?;
        self.check_mailbox(after)?;
        if mailbox == after {
            return Err(ActorError::SelfChain { mailbox });
        }
        self.mailboxes[mailbox].chained_after = Some(after);
        Ok(())
    }

    fn check_mailbox(&self, mailbox: usize) -> Result<(), ActorError> {
        if mailbox < self.mailboxes.len() {
            Ok(())
        } else {
            Err(ActorError::InvalidMailbox {
                mailbox,
                n_mailboxes: self.mailboxes.len(),
            })
        }
    }

    /// Run one FA-BSP superstep: execute `main` (the `finish` body), then
    /// drive communication to termination. Mailboxes not explicitly
    /// `done`-d (and not chained) are done-d when `main` returns.
    ///
    /// This call is collective: every PE must execute it. A selector may
    /// `execute` repeatedly (one call per superstep, as iterative
    /// applications like BFS levels or PageRank rounds do); its conveyors
    /// are collectively re-armed between supersteps and **traces and the
    /// overall breakdown accumulate across all of them**.
    pub fn execute<R>(
        &mut self,
        pe: &Pe,
        main: impl FnOnce(&mut MainCtx<'_, '_, '_, T>) -> R,
    ) -> Result<R, ActorError> {
        if self.executed {
            // re-arm for another superstep
            for m in &mut self.mailboxes {
                debug_assert!(m.outbox.is_empty(), "termination implies drained outbox");
                m.conveyor.reset(pe);
                m.user_done = false;
                m.done_signaled = false;
                m.complete = false;
            }
        }
        self.executed = true;

        // Superstep boundary: conveyors are freshly armed (or reset), so
        // this is a quiescent cut — the only place an automatic checkpoint
        // is sound.
        let ss = pe.begin_superstep();
        if pe.checkpoint_due(ss) {
            debug_assert!(
                self.mailboxes.iter().all(|m| m.conveyor.checkpoint_ready()),
                "checkpoint at a non-quiescent conveyor cut"
            );
            pe.checkpoint()
                .expect("superstep-boundary checkpoint must be quiescent");
        }

        let ss_begin = fabsp_hwpc::cycles_now();
        self.timer.start_total();
        self.timer.enter(Region::Main);
        let result = {
            let mut ctx = MainCtx { selector: self, pe };
            main(&mut ctx)
        };
        self.timer.exit(Region::Main);

        // Implicit done for unchained mailboxes the body didn't close.
        for mb in 0..self.mailboxes.len() {
            if !self.mailboxes[mb].user_done && self.mailboxes[mb].chained_after.is_none() {
                self.mailboxes[mb].user_done = true;
            }
        }

        // COMM-side drive to termination.
        while self.progress_once(pe) {
            if let Some(m) = pe.metrics() {
                m.count(Counter::ActorYields);
            }
            pe.poll_yield();
        }

        // Overall breakdown + region profile into the collector, together
        // with any send events still batched from the endgame.
        self.timer.stop_total();
        let ss_end = fabsp_hwpc::cycles_now();
        self.send_buf.record_span(Phase::Superstep, ss_begin, ss_end);
        if let Some(m) = pe.metrics() {
            m.flight_span(Phase::Superstep, ss_begin, ss_end);
        }
        let total = self.timer.total_cycles();
        let profile = self.timer.profile().clone();
        {
            let mut c = self.collector.borrow_mut();
            c.drain(&mut self.send_buf);
            c.set_overall(profile.main.cycles, profile.proc.cycles, total);
            c.set_region_profile(profile);
        }
        // End of superstep: where an injected `kill_pe` fault fires.
        pe.end_superstep(ss);
        Ok(result)
    }

    /// Send from MAIN: push with automatic retry (the FA-BSP interleave).
    /// Only callable through [`MainCtx`]; see [`Selector::execute`].
    fn send_from_main(
        &mut self,
        pe: &Pe,
        mailbox: usize,
        msg: T,
        dst: usize,
    ) -> Result<(), ActorError> {
        self.check_mailbox(mailbox)?;
        if self.mailboxes[mailbox].user_done || self.mailboxes[mailbox].done_signaled {
            return Err(ActorError::SendAfterDone { mailbox });
        }

        // The push fast path is MAIN work (T_MAIN = "time taken by the
        // application to generate a message and append it to the mailbox").
        // The trace event is batched, not recorded — no shared borrow here.
        let papi_before = self.papi_snapshot();
        model::SEND_PUSH.charge();
        let mut outcome = self.mailboxes[mailbox].conveyor.push(pe, msg, dst)?;
        let deltas = self.papi_deltas(&papi_before);
        self.send_buf
            .record_send(dst, std::mem::size_of::<T>() as u32, mailbox as u32, deltas);
        if let Some(m) = pe.metrics() {
            m.count(Counter::ActorSends);
        }

        // Buffers full: leave MAIN, make progress (handlers run here —
        // the RED interleaved into the BLUE of Fig. 1), retry.
        if !outcome.is_accepted() {
            self.timer.exit(Region::Main);
            loop {
                self.progress_once(pe);
                outcome = self.mailboxes[mailbox].conveyor.push(pe, msg, dst)?;
                if outcome.is_accepted() {
                    break;
                }
                if let Some(m) = pe.metrics() {
                    m.count(Counter::ActorYields);
                }
                pe.poll_yield();
            }
            self.timer.enter(Region::Main);
        }
        Ok(())
    }

    /// Whether the per-item conveyor surface must be used despite batched
    /// mode: per-send PAPI attribution needs one counter delta per message,
    /// which a slice submission cannot provide.
    fn force_per_item(&self) -> bool {
        self.exchange == ExchangeMode::PerItem || !self.papi_events.is_empty()
    }

    /// Batched send from MAIN: submit a whole slice toward one destination
    /// with `push_slice`, interleaving progress (handlers run — the FA-BSP
    /// interleave) whenever only a prefix is accepted.
    fn send_slice_from_main(
        &mut self,
        pe: &Pe,
        mailbox: usize,
        msgs: &[T],
        dst: usize,
    ) -> Result<(), ActorError> {
        self.check_mailbox(mailbox)?;
        if self.mailboxes[mailbox].user_done || self.mailboxes[mailbox].done_signaled {
            return Err(ActorError::SendAfterDone { mailbox });
        }
        if msgs.is_empty() {
            return Ok(());
        }
        if self.force_per_item() {
            for &msg in msgs {
                self.send_from_main(pe, mailbox, msg, dst)?;
            }
            return Ok(());
        }

        let record = |buf: &mut TraceBuffer, accepted: usize| {
            for _ in 0..accepted {
                buf.record_send(dst, std::mem::size_of::<T>() as u32, mailbox as u32, None);
            }
        };

        model::SEND_PUSH.charge();
        let report = self.mailboxes[mailbox].conveyor.push_slice(pe, msgs, dst)?;
        record(&mut self.send_buf, report.accepted);
        if let Some(m) = pe.metrics() {
            m.add(Counter::ActorSends, report.accepted as u64);
        }
        let mut offset = report.accepted;

        if offset < msgs.len() {
            // Buffers full mid-slice: leave MAIN and alternate progress
            // with resubmission of the unaccepted suffix.
            self.timer.exit(Region::Main);
            loop {
                self.progress_once(pe);
                model::SEND_PUSH.charge();
                let report = self.mailboxes[mailbox]
                    .conveyor
                    .push_slice(pe, &msgs[offset..], dst)?;
                record(&mut self.send_buf, report.accepted);
                if let Some(m) = pe.metrics() {
                    m.add(Counter::ActorSends, report.accepted as u64);
                }
                offset += report.accepted;
                if offset == msgs.len() {
                    break;
                }
                if let Some(m) = pe.metrics() {
                    m.count(Counter::ActorYields);
                }
                pe.poll_yield();
            }
            self.timer.enter(Region::Main);
        }
        Ok(())
    }

    fn done_from_main(&mut self, mailbox: usize) -> Result<(), ActorError> {
        self.check_mailbox(mailbox)?;
        self.mailboxes[mailbox].user_done = true;
        Ok(())
    }

    /// Read the configured counters into a fixed bank — no allocation on
    /// the per-send path.
    fn papi_snapshot(&self) -> Option<[u64; MAX_EVENTS]> {
        if self.papi_events.is_empty() {
            return None;
        }
        let mut bank = [0u64; MAX_EVENTS];
        for (slot, e) in bank.iter_mut().zip(&self.papi_events) {
            *slot = counters::read(*e);
        }
        Some(bank)
    }

    fn papi_deltas(&self, before: &Option<[u64; MAX_EVENTS]>) -> Option<[u64; MAX_EVENTS]> {
        let before = before.as_ref()?;
        let mut bank = [0u64; MAX_EVENTS];
        for ((slot, e), b) in bank.iter_mut().zip(&self.papi_events).zip(before) {
            *slot = counters::read(*e).wrapping_sub(*b);
        }
        Some(bank)
    }

    /// Hand the batched send events to the collector in one borrow.
    fn drain_trace(&mut self) {
        if !self.send_buf.is_empty() {
            self.collector.borrow_mut().drain(&mut self.send_buf);
        }
    }

    /// One COMM round: push staged handler sends, advance every conveyor,
    /// deliver incoming messages through the handler. Returns whether any
    /// mailbox is still active.
    fn progress_once(&mut self, pe: &Pe) -> bool {
        // Progress is a drain boundary: batched send events flow to the
        // collector here, once per round instead of once per message.
        self.drain_trace();
        self.drain_outboxes(pe);

        let mut any_active = false;
        for mb in 0..self.mailboxes.len() {
            // Resolve chained dones: fire when the upstream completed.
            if !self.mailboxes[mb].user_done {
                if let Some(after) = self.mailboxes[mb].chained_after {
                    if self.mailboxes[after].complete {
                        self.mailboxes[mb].user_done = true;
                    }
                }
            }
            let m = &mut self.mailboxes[mb];
            let done_eff = m.user_done && m.outbox.is_empty();
            if done_eff {
                m.done_signaled = true;
            }
            let active = m.conveyor.advance(pe, done_eff);
            if !active {
                m.complete = true;
            }
            any_active |= active;
        }

        // Deliver: run handlers (PROC) on everything pulled.
        let mut handler = self.handler.take().expect("handler in use reentrantly");
        let n_pes = pe.n_pes();
        let rank = pe.rank();
        if !self.force_per_item() {
            // Batched drain: each `pull_batch` hands out one origin run as
            // a zero-copy slice; the handler runs over it without the
            // per-item pull round-trip.
            for mb in 0..self.mailboxes.len() {
                while self.mailboxes[mb].conveyor.pending_pulls() > 0 {
                    let done_flags: Vec<(bool, bool)> = self
                        .mailboxes
                        .iter()
                        .map(|m| (m.user_done, m.done_signaled))
                        .collect();
                    let mut done_requests = vec![false; self.mailboxes.len()];
                    // Outboxes move into owned storage before `pull_batch`
                    // borrows the conveyor, so the handler context and the
                    // delivered slice can coexist.
                    let mut outboxes: Vec<_> = self
                        .mailboxes
                        .iter_mut()
                        .map(|m| std::mem::take(&mut m.outbox))
                        .collect();
                    let mut pulled_any = false;
                    if let Some(batch) = self.mailboxes[mb].conveyor.pull_batch() {
                        pulled_any = true;
                        let from = batch.src;
                        let mut ctx = ProcCtx {
                            outboxes: &mut outboxes,
                            done_flags: &done_flags,
                            done_requests: &mut done_requests,
                            rank,
                            n_pes,
                        };
                        self.timer.enter(Region::Proc);
                        for &msg in batch.items {
                            model::PULL.charge();
                            model::HANDLER_DISPATCH.charge();
                            handler(mb, msg, from, &mut ctx);
                        }
                        self.timer.exit(Region::Proc);
                    }
                    for (m, ob) in self.mailboxes.iter_mut().zip(outboxes) {
                        m.outbox = ob;
                    }
                    for (m, req) in self.mailboxes.iter_mut().zip(done_requests) {
                        if req {
                            m.user_done = true;
                        }
                    }
                    if !pulled_any {
                        break;
                    }
                }
            }
            self.handler = Some(handler);
            return any_active;
        }
        for mb in 0..self.mailboxes.len() {
            while let Some(delivery) = self.mailboxes[mb].conveyor.pull() {
                let (from, msg) = (delivery.src, delivery.item);
                model::PULL.charge();
                let done_flags: Vec<(bool, bool)> = self
                    .mailboxes
                    .iter()
                    .map(|m| (m.user_done, m.done_signaled))
                    .collect();
                let mut done_requests = vec![false; self.mailboxes.len()];
                // split borrows: outboxes only
                let mut outboxes: Vec<_> = self
                    .mailboxes
                    .iter_mut()
                    .map(|m| std::mem::take(&mut m.outbox))
                    .collect();
                {
                    let mut ctx = ProcCtx {
                        outboxes: &mut outboxes,
                        done_flags: &done_flags,
                        done_requests: &mut done_requests,
                        rank,
                        n_pes,
                    };
                    model::HANDLER_DISPATCH.charge();
                    self.timer.enter(Region::Proc);
                    handler(mb, msg, from, &mut ctx);
                    self.timer.exit(Region::Proc);
                }
                for (m, ob) in self.mailboxes.iter_mut().zip(outboxes) {
                    m.outbox = ob;
                }
                for (m, req) in self.mailboxes.iter_mut().zip(done_requests) {
                    if req {
                        m.user_done = true;
                    }
                }
            }
        }
        self.handler = Some(handler);
        any_active
    }

    /// Push handler-staged sends into the conveyors (best effort; items
    /// that don't fit stay queued for the next round).
    ///
    /// In batched mode, contiguous same-destination runs at the front of
    /// each outbox are submitted with one `push_slice`; only the accepted
    /// prefix is popped, so refused items stay queued exactly as in the
    /// per-item path.
    fn drain_outboxes(&mut self, pe: &Pe) {
        if !self.force_per_item() {
            let mut scratch = std::mem::take(&mut self.outbox_scratch);
            for mb in 0..self.mailboxes.len() {
                while let Some(&(_, dst)) = self.mailboxes[mb].outbox.front() {
                    assert!(
                        !self.mailboxes[mb].done_signaled,
                        "outbox item for mailbox {mb} after done was signalled"
                    );
                    scratch.clear();
                    for &(msg, d) in self.mailboxes[mb].outbox.iter() {
                        if d != dst {
                            break;
                        }
                        scratch.push(msg);
                    }
                    model::SEND_PUSH.charge();
                    let report = self.mailboxes[mb]
                        .conveyor
                        .push_slice(pe, &scratch, dst)
                        .expect("outbox destinations were validated at staging");
                    for _ in 0..report.accepted {
                        self.mailboxes[mb].outbox.pop_front();
                        self.send_buf.record_send(
                            dst,
                            std::mem::size_of::<T>() as u32,
                            mb as u32,
                            None,
                        );
                    }
                    if let Some(m) = pe.metrics() {
                        m.add(Counter::ActorSends, report.accepted as u64);
                    }
                    if report.accepted < scratch.len() {
                        break; // buffers full; retry next round
                    }
                }
            }
            self.outbox_scratch = scratch;
            return;
        }
        for mb in 0..self.mailboxes.len() {
            while let Some(&(msg, dst)) = self.mailboxes[mb].outbox.front() {
                assert!(
                    !self.mailboxes[mb].done_signaled,
                    "outbox item for mailbox {mb} after done was signalled"
                );
                let papi_before = self.papi_snapshot();
                model::SEND_PUSH.charge();
                let outcome = self.mailboxes[mb]
                    .conveyor
                    .push(pe, msg, dst)
                    .expect("outbox destinations were validated at staging");
                if !outcome.is_accepted() {
                    break;
                }
                let deltas = self.papi_deltas(&papi_before);
                self.mailboxes[mb].outbox.pop_front();
                self.send_buf
                    .record_send(dst, std::mem::size_of::<T>() as u32, mb as u32, deltas);
                if let Some(m) = pe.metrics() {
                    m.count(Counter::ActorSends);
                }
            }
        }
    }

    /// Merged conveyor statistics over all mailboxes.
    pub fn stats(&self) -> ConveyorStats {
        let mut total = ConveyorStats::default();
        for m in &self.mailboxes {
            total.merge(&m.conveyor.stats());
        }
        total
    }

    /// Per-mailbox conveyor statistics.
    pub fn mailbox_stats(&self, mailbox: usize) -> Result<ConveyorStats, ActorError> {
        self.check_mailbox(mailbox)?;
        Ok(self.mailboxes[mailbox].conveyor.stats())
    }

    /// A shared handle to the trace collector (e.g. to inspect mid-run).
    pub fn collector(&self) -> SharedCollector {
        self.collector.clone()
    }

    /// Consume the selector and extract the recorded traces.
    ///
    /// # Panics
    /// Panics if collector handles are still held elsewhere.
    pub fn into_collector(mut self) -> PeCollector {
        self.drain_trace();
        let Selector {
            mailboxes,
            handler,
            collector,
            ..
        } = self;
        drop(mailboxes); // conveyors hold collector clones
        drop(handler);
        let mut collector = std::rc::Rc::try_unwrap(collector)
            .expect("collector still shared; drop other handles first")
            .into_inner();
        collector.flush_stream();
        collector
    }
}

impl<T: Copy + Default + Send + 'static> MainCtx<'_, '_, '_, T> {
    /// Asynchronous send: enqueue `msg` for `dst` via `mailbox`
    /// (Listing 1's `actor_ptr->send(i, dst)`). Aggregation-buffer
    /// overflow is handled internally by interleaving message processing —
    /// the call always succeeds or reports a protocol error.
    pub fn send(&mut self, mailbox: usize, msg: T, dst: usize) -> Result<(), ActorError> {
        self.selector.send_from_main(self.pe, mailbox, msg, dst)
    }

    /// Batched send: enqueue every message in `msgs` for `dst` via
    /// `mailbox` with one slice submission. Semantically identical to
    /// calling [`send`](MainCtx::send) per item — same per-link ordering,
    /// same overflow interleaving — but amortizes the conveyor protocol
    /// over the whole slice.
    pub fn send_slice(&mut self, mailbox: usize, msgs: &[T], dst: usize) -> Result<(), ActorError> {
        self.selector.send_slice_from_main(self.pe, mailbox, msgs, dst)
    }

    /// Declare that this PE will send no more messages via `mailbox`
    /// (Listing 1's `actor_ptr->done(0)`).
    pub fn done(&mut self, mailbox: usize) -> Result<(), ActorError> {
        self.selector.done_from_main(mailbox)
    }

    /// This PE's rank.
    pub fn rank(&self) -> usize {
        self.pe.rank()
    }

    /// Number of PEs.
    pub fn n_pes(&self) -> usize {
        self.pe.n_pes()
    }

    /// The underlying PE handle (for symmetric-memory access in MAIN).
    pub fn pe(&self) -> &Pe {
        self.pe
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use actorprof_trace::TraceConfig;
    use fabsp_shmem::{spmd, Grid};
    use std::cell::RefCell;
    use std::rc::Rc;

    /// The paper's Listing 1/2 program: every PE sends N messages; each
    /// increments a cell of the destination's local array.
    fn histogram_world(grid: Grid, n_msgs: usize, trace: TraceConfig) -> Vec<(u64, PeCollector)> {
        spmd::run(grid, move |pe| {
            let larray = Rc::new(RefCell::new(vec![0u64; 64]));
            let h = Rc::clone(&larray);
            let mut actor = Selector::new(
                pe,
                1,
                SelectorConfig::traced(trace.clone()),
                move |_mb, idx: u64, _from, _ctx| {
                    h.borrow_mut()[idx as usize % 64] += 1;
                },
            )
            .unwrap();
            actor
                .execute(pe, |ctx| {
                    for i in 0..n_msgs {
                        let dst = (ctx.rank() + i) % ctx.n_pes();
                        ctx.send(0, i as u64, dst).unwrap();
                    }
                    ctx.done(0).unwrap();
                })
                .unwrap();
            let total: u64 = larray.borrow().iter().sum();
            (total, actor.into_collector())
        })
        .unwrap()
    }

    #[test]
    fn histogram_delivers_every_message_once() {
        let grid = Grid::new(2, 2).unwrap();
        let results = histogram_world(grid, 100, TraceConfig::off());
        let delivered: u64 = results.iter().map(|(t, _)| t).sum();
        assert_eq!(delivered, 400);
    }

    #[test]
    fn implicit_done_terminates() {
        let grid = Grid::single_node(2).unwrap();
        let results = spmd::run(grid, |pe| {
            let seen = Rc::new(RefCell::new(0u64));
            let s = Rc::clone(&seen);
            let mut actor = Selector::new(
                pe,
                1,
                SelectorConfig::default(),
                move |_mb, _msg: u64, _from, _ctx| {
                    *s.borrow_mut() += 1;
                },
            )
            .unwrap();
            actor
                .execute(pe, |ctx| {
                    ctx.send(0, 1, 0).unwrap();
                    // no explicit done: execute closes the mailbox
                })
                .unwrap();
            let v = *seen.borrow();
            v
        })
        .unwrap();
        assert_eq!(results.iter().sum::<u64>(), 2);
        assert_eq!(results[0], 2, "both messages targeted PE 0");
    }

    #[test]
    fn send_after_done_is_rejected() {
        let grid = Grid::single_node(1).unwrap();
        spmd::run(grid, |pe| {
            let mut actor = Selector::new(
                pe,
                1,
                SelectorConfig::default(),
                |_mb, _m: u64, _f, _ctx| {},
            )
            .unwrap();
            actor
                .execute(pe, |ctx| {
                    ctx.done(0).unwrap();
                    assert!(matches!(
                        ctx.send(0, 1, 0),
                        Err(ActorError::SendAfterDone { mailbox: 0 })
                    ));
                })
                .unwrap();
        })
        .unwrap();
    }

    #[test]
    fn request_response_with_chained_done() {
        // mb0 carries requests; its handler replies on mb1.
        let grid = Grid::new(2, 2).unwrap();
        let n = 50usize;
        let results = spmd::run(grid, move |pe| {
            let replies = Rc::new(RefCell::new(0u64));
            let r = Rc::clone(&replies);
            let mut actor = Selector::new(
                pe,
                2,
                SelectorConfig::default(),
                move |mb, msg: u64, from, ctx| match mb {
                    0 => ctx.send(1, msg * 2, from as usize), // reply
                    1 => *r.borrow_mut() += msg,
                    _ => unreachable!(),
                },
            )
            .unwrap();
            actor.chain_done(1, 0).unwrap();
            actor
                .execute(pe, |ctx| {
                    for i in 0..n {
                        let dst = (ctx.rank() + i) % ctx.n_pes();
                        ctx.send(0, i as u64, dst).unwrap();
                    }
                    ctx.done(0).unwrap();
                })
                .unwrap();
            let v = *replies.borrow();
            v
        })
        .unwrap();
        // every request is answered with msg*2 back to the requester
        let expected_per_pe: u64 = (0..n as u64).map(|i| i * 2).sum();
        for (pe, total) in results.iter().enumerate() {
            assert_eq!(*total, expected_per_pe, "PE {pe}");
        }
    }

    #[test]
    fn logical_trace_counts_sends_per_destination() {
        let grid = Grid::new(2, 2).unwrap();
        let results = histogram_world(grid, 40, TraceConfig::off().with_logical());
        for (pe, (_, collector)) in results.iter().enumerate() {
            let matrix = collector.logical_matrix();
            assert_eq!(collector.total_sends(), 40);
            // sends went to (rank + i) % 4 for i in 0..40: 10 per dst
            for (dst, cell) in matrix.iter().enumerate() {
                assert_eq!(cell.sends, 10, "PE {pe} -> {dst}");
                assert_eq!(cell.bytes, 10 * 8);
            }
        }
    }

    #[test]
    fn overall_breakdown_is_recorded_and_consistent() {
        let grid = Grid::single_node(2).unwrap();
        let results = histogram_world(grid, 200, TraceConfig::off().with_overall());
        for (_, collector) in &results {
            let overall = collector.overall().expect("overall enabled");
            assert!(overall.t_total > 0);
            assert!(overall.t_main > 0, "MAIN body ran");
            assert!(overall.t_proc > 0, "handlers ran");
            assert!(
                overall.t_main + overall.t_proc <= overall.t_total,
                "regions fit in total"
            );
            let (m, c, p) = overall.relative();
            assert!((m + c + p - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn papi_trace_attributes_counters_to_sends() {
        let grid = Grid::single_node(2).unwrap();
        let trace = TraceConfig::off().with_papi(actorprof_trace::PapiConfig::case_study());
        let results = histogram_world(grid, 30, trace);
        for (_, collector) in &results {
            let recs = collector.papi_records();
            assert_eq!(recs.len(), 2, "one line per destination");
            let total_sends: u64 = recs.iter().map(|r| r.num_sends).sum();
            assert_eq!(total_sends, 30);
            for r in recs {
                // every send charges at least SEND_PUSH instructions
                assert!(r.counters[0] >= r.num_sends * model::SEND_PUSH.ins);
                assert!(r.counters[1] > 0, "load/store counter");
            }
        }
    }

    #[test]
    fn physical_trace_flows_through_selector() {
        let grid = Grid::new(2, 2).unwrap();
        let results = histogram_world(grid, 100, TraceConfig::off().with_physical());
        let any_physical = results
            .iter()
            .any(|(_, c)| !c.physical_records().is_empty());
        assert!(any_physical);
    }

    #[test]
    fn invalid_mailbox_and_empty_selector_errors() {
        let grid = Grid::single_node(1).unwrap();
        spmd::run(grid, |pe| {
            assert!(matches!(
                Selector::<u64>::new(pe, 0, SelectorConfig::default(), |_, _, _, _| {}),
                Err(ActorError::NoMailboxes)
            ));
            let mut actor =
                Selector::<u64>::new(pe, 1, SelectorConfig::default(), |_, _, _, _| {}).unwrap();
            assert!(matches!(
                actor.chain_done(0, 0),
                Err(ActorError::SelfChain { mailbox: 0 })
            ));
            assert!(matches!(
                actor.chain_done(3, 0),
                Err(ActorError::InvalidMailbox { mailbox: 3, .. })
            ));
            actor.execute(pe, |_| {}).unwrap();
        })
        .unwrap();
    }

    #[test]
    fn tiny_buffers_interleave_handlers_into_main() {
        // With capacity 2 and many sends, handlers MUST run during the
        // MAIN send loop (the definition of FA-BSP interleaving).
        let grid = Grid::single_node(2).unwrap();
        let results = spmd::run(grid, |pe| {
            let handled_during_main = Rc::new(RefCell::new(0u64));
            let h = Rc::clone(&handled_during_main);
            let in_main = Rc::new(RefCell::new(false));
            let in_main_h = Rc::clone(&in_main);
            let mut actor = Selector::new(
                pe,
                1,
                SelectorConfig {
                    conveyor: ConveyorOptions {
                        capacity: 2,
                        ..Default::default()
                    },
                    trace: TraceConfig::off(),
                },
                move |_mb, _msg: u64, _from, _ctx| {
                    if *in_main_h.borrow() {
                        *h.borrow_mut() += 1;
                    }
                },
            )
            .unwrap();
            actor
                .execute(pe, |ctx| {
                    *in_main.borrow_mut() = true;
                    for i in 0..500 {
                        ctx.send(0, i, (i % 2) as usize).unwrap();
                    }
                    *in_main.borrow_mut() = false;
                    ctx.done(0).unwrap();
                })
                .unwrap();
            let v = *handled_during_main.borrow();
            v
        })
        .unwrap();
        assert!(
            results.iter().sum::<u64>() > 0,
            "no handler ran inside the MAIN send loop — FA-BSP interleaving broken"
        );
    }

    #[test]
    fn repeated_supersteps_accumulate_traces() {
        let grid = Grid::new(2, 2).unwrap();
        let results = spmd::run(grid, |pe| {
            let handled = Rc::new(RefCell::new(0u64));
            let h = Rc::clone(&handled);
            let mut actor = Selector::new(
                pe,
                1,
                SelectorConfig::traced(TraceConfig::off().with_logical().with_overall()),
                move |_mb, _msg: u64, _from, _ctx| {
                    *h.borrow_mut() += 1;
                },
            )
            .unwrap();
            for round in 0..3u64 {
                actor
                    .execute(pe, |ctx| {
                        for dst in 0..ctx.n_pes() {
                            ctx.send(0, round, dst).unwrap();
                        }
                        ctx.done(0).unwrap();
                    })
                    .unwrap();
                pe.barrier_all();
            }
            let total = *handled.borrow();
            (total, actor.into_collector())
        })
        .unwrap();
        let total: u64 = results.iter().map(|(t, _)| t).sum();
        assert_eq!(total, 3 * 16, "every superstep's messages handled");
        for (_, collector) in &results {
            // logical trace spans all three supersteps
            assert_eq!(collector.total_sends(), 12);
            // the overall breakdown covers the full multi-superstep run
            let o = collector.overall().unwrap();
            assert!(o.t_main > 0 && o.t_proc > 0);
            assert!(o.t_total >= o.t_main + o.t_proc);
        }
    }

    /// Destination-bucketed histogram over `send_slice`; returns
    /// per-PE delivered totals for a given exchange mode.
    fn slice_histogram(mode: ExchangeMode, n_msgs: usize) -> Vec<u64> {
        let grid = Grid::new(2, 2).unwrap();
        spmd::run(grid, move |pe| {
            let sum = Rc::new(RefCell::new(0u64));
            let s = Rc::clone(&sum);
            let mut actor = Selector::new(
                pe,
                1,
                SelectorConfig {
                    conveyor: ConveyorOptions {
                        exchange: mode,
                        ..Default::default()
                    },
                    trace: TraceConfig::off(),
                },
                move |_mb, v: u64, _from, _ctx| {
                    *s.borrow_mut() += v;
                },
            )
            .unwrap();
            actor
                .execute(pe, |ctx| {
                    let n_pes = ctx.n_pes();
                    let mut buckets: Vec<Vec<u64>> = vec![Vec::new(); n_pes];
                    for i in 0..n_msgs {
                        buckets[(ctx.rank() + i) % n_pes].push(i as u64);
                    }
                    for (dst, b) in buckets.iter().enumerate() {
                        ctx.send_slice(0, b, dst).unwrap();
                    }
                    ctx.done(0).unwrap();
                })
                .unwrap();
            let v = *sum.borrow();
            v
        })
        .unwrap()
    }

    #[test]
    fn send_slice_delivers_everything_in_both_modes() {
        let batched = slice_histogram(ExchangeMode::Batched, 300);
        let per_item = slice_histogram(ExchangeMode::PerItem, 300);
        let expected: u64 = 4 * (0..300u64).sum::<u64>();
        assert_eq!(batched.iter().sum::<u64>(), expected);
        assert_eq!(batched, per_item, "modes must deliver identically");
    }

    #[test]
    fn send_slice_overflow_interleaves_handlers_into_main() {
        // Slices far larger than capacity force partial acceptance; the
        // runtime must drain handlers mid-slice and still deliver all.
        let grid = Grid::single_node(2).unwrap();
        let results = spmd::run(grid, |pe| {
            let seen = Rc::new(RefCell::new(0u64));
            let s = Rc::clone(&seen);
            let mut actor = Selector::new(
                pe,
                1,
                SelectorConfig {
                    conveyor: ConveyorOptions {
                        capacity: 4,
                        ..Default::default()
                    },
                    trace: TraceConfig::off(),
                },
                move |_mb, _v: u64, _from, _ctx| {
                    *s.borrow_mut() += 1;
                },
            )
            .unwrap();
            actor
                .execute(pe, |ctx| {
                    let msgs: Vec<u64> = (0..800).collect();
                    ctx.send_slice(0, &msgs, 1 - ctx.rank()).unwrap();
                    ctx.done(0).unwrap();
                })
                .unwrap();
            let v = *seen.borrow();
            v
        })
        .unwrap();
        assert_eq!(results, vec![800, 800]);
    }

    #[test]
    fn batched_mode_reports_batched_conveyor_traffic() {
        let grid = Grid::single_node(2).unwrap();
        let stats = spmd::run(grid, |pe| {
            let mut actor =
                Selector::<u64>::new(pe, 1, SelectorConfig::default(), |_, _, _, _| {}).unwrap();
            actor
                .execute(pe, |ctx| {
                    let msgs: Vec<u64> = (0..100).collect();
                    ctx.send_slice(0, &msgs, 1 - ctx.rank()).unwrap();
                })
                .unwrap();
            actor.stats()
        })
        .unwrap();
        for s in &stats {
            assert!(s.batched_pushes > 0, "send_slice must use push_slice");
            assert!(s.batched_pulls > 0, "drain must use pull_batch");
            assert_eq!(s.pushed, 100);
            assert_eq!(s.pulled, 100);
        }
    }

    #[test]
    fn selector_stats_aggregate_mailboxes() {
        let grid = Grid::single_node(1).unwrap();
        spmd::run(grid, |pe| {
            let mut actor =
                Selector::<u64>::new(pe, 2, SelectorConfig::default(), |_, _, _, _| {}).unwrap();
            actor
                .execute(pe, |ctx| {
                    ctx.send(0, 1, 0).unwrap();
                    ctx.send(1, 2, 0).unwrap();
                    ctx.send(1, 3, 0).unwrap();
                })
                .unwrap();
            assert_eq!(actor.mailbox_stats(0).unwrap().pushed, 1);
            assert_eq!(actor.mailbox_stats(1).unwrap().pushed, 2);
            assert_eq!(actor.stats().pushed, 3);
            assert_eq!(actor.stats().pulled, 3);
        })
        .unwrap();
    }
}
