//! # fabsp-actor — the FA-BSP selector runtime (HClib-Actor reproduction)
//!
//! The Fine-grained Asynchronous Bulk Synchronous Parallel model (Paul et
//! al., JoCS 2023; Fig. 1 of the ActorProf paper): within a superstep, each
//! single-threaded PE runs
//!
//! 1. **local computation** (the MAIN region) that issues
//! 2. **fine-grained asynchronous point-to-point sends**, automatically
//!    aggregated by the conveyor layer, while
//! 3. **message handlers** (the PROC region) run interleaved on the same
//!    thread as aggregated buffers arrive.
//!
//! A [`Selector`] is an actor with multiple guarded mailboxes (Imam &
//! Sarkar, AGERE!'14); each mailbox is backed by its own
//! [`fabsp_conveyors::Conveyor`]. Messages to the same PE are processed one
//! at a time, so handlers need no atomics — the property Listing 2 of the
//! paper highlights.
//!
//! ## Shape of a program (Listings 1–2 of the paper)
//!
//! ```
//! use fabsp_shmem::{Grid, spmd};
//! use fabsp_actor::{Selector, SelectorConfig};
//! use std::cell::RefCell;
//! use std::rc::Rc;
//!
//! const N: usize = 64;
//! let grid = Grid::new(1, 2).unwrap();
//! let counts = spmd::run(grid, |pe| {
//!     // larray: the PE-local table updated by message handlers.
//!     let larray = Rc::new(RefCell::new(vec![0u64; N]));
//!     let handler_array = Rc::clone(&larray);
//!     let mut actor = Selector::new(
//!         pe,
//!         1, // one mailbox
//!         SelectorConfig::default(),
//!         move |_mb, idx: u64, _from, _ctx| {
//!             handler_array.borrow_mut()[idx as usize] += 1; // no atomics
//!         },
//!     )
//!     .unwrap();
//!     // The `finish` body: send N messages to arbitrary destinations.
//!     actor
//!         .execute(pe, |ctx| {
//!             for i in 0..N {
//!                 let dst = i % ctx.n_pes();
//!                 ctx.send(0, i as u64, dst).unwrap();
//!             }
//!         })
//!         .unwrap();
//!     let total: u64 = larray.borrow().iter().sum();
//!     total
//! })
//! .unwrap();
//! // every message was handled exactly once, somewhere
//! assert_eq!(counts.iter().sum::<u64>(), 2 * N as u64);
//! ```
//!
//! ## Profiling hooks
//!
//! When constructed with a tracing [`SelectorConfig`], the selector owns a
//! per-PE [`actorprof_trace::PeCollector`] and feeds it the logical trace
//! (each `send`), the PAPI message trace, the MAIN/PROC/COMM overall
//! breakdown, and (through the conveyors) the physical trace — everything
//! ActorProf visualizes.

// Zero unsafe today; keep it that way by construction.
#![forbid(unsafe_code)]

pub mod error;
pub mod selector;

pub use error::ActorError;
pub use selector::{MainCtx, ProcCtx, Selector, SelectorConfig};
