//! Continuous-profiling overhead governor.
//!
//! Always-on telemetry is only trustworthy if its cost is *measured and
//! bounded online*, not asserted once on a quiet machine. This module
//! closes that loop: the runtime charges every instrumentation burst to
//! [`Counter::TelemetrySelfCycles`](crate::Counter::TelemetrySelfCycles)
//! (span capture, gauge/histogram updates, flight-ring writes), the
//! observer thread adds its own snapshot-diff cost, and an
//! [`OverheadGovernor`] compares the sum against total PE cycles per
//! observation window. When the measured fraction exceeds the
//! [`OverheadBudget`] it ratchets the span-sampling stride up (keep fewer
//! hot spans) and the observer cadence down (diff less often); when it
//! falls below half the budget it ratchets both back toward full fidelity.
//! The half-budget dead band is the hysteresis that keeps the controller
//! from oscillating on noise.
//!
//! The stride itself travels through a [`SamplingKnob`] — a shared
//! `AtomicU32` the trace layer's `TraceBuffer` reads on every hot span.
//! Single-writer discipline is preserved: only the governor (one observer
//! thread) ever stores the knob; PE threads only load it, and a stale
//! stride for one window is harmless by construction.
//!
//! Every adjustment is kept as a [`GovernorDecision`] so the trace can
//! explain its own fidelity: the Perfetto export renders the decisions as
//! a `governor` lane and the final [`ContinuousReport`] is the artifact
//! the duty-cycle bench gates on.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Runtime-adjustable span-sampling stride, shared between the governor
/// (sole writer) and the per-PE trace buffers (readers). `1` keeps every
/// hot span; `k` keeps one in `k` (superstep spans are always kept).
#[derive(Debug, Clone)]
pub struct SamplingKnob(Arc<AtomicU32>);

impl SamplingKnob {
    /// A knob starting at stride `k` (clamped to at least 1).
    pub fn new(k: u32) -> SamplingKnob {
        SamplingKnob(Arc::new(AtomicU32::new(k.max(1))))
    }

    /// Current stride. Relaxed: the stride is a tuning parameter with no
    /// ordering role — a reader acting on a stale value for one window is
    /// correct, just momentarily off-budget.
    #[inline]
    pub fn get(&self) -> u32 {
        self.0.load(Ordering::Relaxed)
    }

    /// Set the stride (governor thread only; clamped to at least 1).
    pub fn set(&self, k: u32) {
        self.0.store(k.max(1), Ordering::Relaxed);
    }
}

impl PartialEq for SamplingKnob {
    /// Identity, not value: two configs are "equal" when they share the
    /// same underlying knob (so cloning a `TraceConfig` across PEs keeps
    /// comparing equal while the stride moves).
    fn eq(&self, other: &SamplingKnob) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

/// How much a continuous-mode run may spend on its own observability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadBudget {
    /// Ceiling on measured instrumentation overhead, percent of total PE
    /// cycles per window. Default 5.0 — the paper-era "always-on ≤5%"
    /// claim, now enforced instead of asserted.
    pub pct: f64,
    /// Stride the run starts at. Conservative by default (64): fidelity is
    /// *earned* — the governor ratchets toward keep-all only while the
    /// measured overhead stays under half the budget.
    pub initial_stride: u32,
    /// Largest stride the governor may back off to.
    pub max_stride: u32,
    /// Shortest observer interval the governor may speed up to.
    pub min_cadence: Duration,
    /// Longest observer interval the governor may back off to.
    pub max_cadence: Duration,
}

impl Default for OverheadBudget {
    fn default() -> OverheadBudget {
        OverheadBudget {
            pct: 5.0,
            initial_stride: 64,
            max_stride: 1024,
            min_cadence: Duration::from_millis(1),
            max_cadence: Duration::from_millis(500),
        }
    }
}

impl OverheadBudget {
    /// A budget of `pct` percent with the default ratchet bounds.
    pub fn pct(pct: f64) -> OverheadBudget {
        OverheadBudget {
            pct,
            ..OverheadBudget::default()
        }
    }
}

/// The governor's per-window verdict, attached to the observer [`Frame`]
/// so a live dashboard can show the overhead number next to the data it
/// qualifies.
///
/// [`Frame`]: crate::Frame
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GovernorSample {
    /// Measured instrumentation overhead this window, percent.
    pub overhead_pct: f64,
    /// Span-sampling stride in effect after this window's adjustment.
    pub stride: u32,
    /// Observer cadence in effect after this window's adjustment.
    pub cadence: Duration,
    /// Whether the window landed within the configured budget.
    pub within_budget: bool,
}

/// One governor control decision — the before/after of a window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GovernorDecision {
    /// Window sequence number (same numbering as observer frames).
    pub window: u64,
    /// Absolute cycle stamp at the end of the window.
    pub at_cycles: u64,
    /// Total PE cycles the window spanned (wall cycles × PE count).
    pub window_cycles: u64,
    /// Cycles the PEs spent inside their own instrumentation.
    pub instr_cycles: u64,
    /// Cycles the observer spent snapshotting and diffing.
    pub observer_cycles: u64,
    /// `(instr + observer) / window` as a percentage.
    pub overhead_pct: f64,
    /// Stride before / after the adjustment.
    pub stride_before: u32,
    /// Stride after the adjustment (`!= stride_before` on a ratchet).
    pub stride_after: u32,
    /// Cadence before / after the adjustment.
    pub cadence_before: Duration,
    /// Cadence after the adjustment.
    pub cadence_after: Duration,
}

impl GovernorDecision {
    /// Did this window move the sampling stride?
    pub fn ratcheted(&self) -> bool {
        self.stride_before != self.stride_after
    }
}

/// The control loop. Owned and driven by the observer thread; nothing in
/// here blocks or locks — the only shared state is the [`SamplingKnob`].
#[derive(Debug)]
pub struct OverheadGovernor {
    budget: OverheadBudget,
    knob: SamplingKnob,
    cadence: Duration,
    window: u64,
    decisions: Vec<GovernorDecision>,
}

impl OverheadGovernor {
    /// A governor over `knob`, starting from the budget's initial stride
    /// and `cadence` (clamped into the budget's cadence bounds).
    pub fn new(budget: OverheadBudget, knob: SamplingKnob, cadence: Duration) -> OverheadGovernor {
        knob.set(budget.initial_stride);
        OverheadGovernor {
            cadence: cadence.clamp(budget.min_cadence, budget.max_cadence),
            budget,
            knob,
            window: 0,
            decisions: Vec::new(),
        }
    }

    /// The observer interval currently in effect.
    pub fn cadence(&self) -> Duration {
        self.cadence
    }

    /// The configured budget.
    pub fn budget(&self) -> &OverheadBudget {
        &self.budget
    }

    /// Feed one window's measurements and apply the control law:
    /// over budget → double the stride and the cadence (coarser, cheaper);
    /// under half the budget → halve both (finer, costlier); in between →
    /// hold (hysteresis). Returns the sample to publish with the frame.
    pub fn observe_window(
        &mut self,
        window_cycles: u64,
        instr_cycles: u64,
        observer_cycles: u64,
        at_cycles: u64,
    ) -> GovernorSample {
        let overhead_pct =
            (instr_cycles + observer_cycles) as f64 / window_cycles.max(1) as f64 * 100.0;
        let stride_before = self.knob.get();
        let cadence_before = self.cadence;
        let (stride_after, cadence_after) = if overhead_pct > self.budget.pct {
            (
                stride_before.saturating_mul(2).min(self.budget.max_stride),
                (cadence_before * 2).min(self.budget.max_cadence),
            )
        } else if overhead_pct < self.budget.pct / 2.0 {
            (
                (stride_before / 2).max(1),
                (cadence_before / 2).max(self.budget.min_cadence),
            )
        } else {
            (stride_before, cadence_before)
        };
        self.knob.set(stride_after);
        self.cadence = cadence_after;
        self.decisions.push(GovernorDecision {
            window: self.window,
            at_cycles,
            window_cycles,
            instr_cycles,
            observer_cycles,
            overhead_pct,
            stride_before,
            stride_after,
            cadence_before,
            cadence_after,
        });
        self.window += 1;
        GovernorSample {
            overhead_pct,
            stride: stride_after,
            cadence: cadence_after,
            within_budget: overhead_pct <= self.budget.pct,
        }
    }

    /// Every decision taken so far, in window order.
    pub fn decisions(&self) -> &[GovernorDecision] {
        &self.decisions
    }

    /// Consume the governor into the run's continuous-mode report.
    pub fn into_report(self) -> ContinuousReport {
        ContinuousReport {
            budget: self.budget,
            decisions: self.decisions,
        }
    }
}

/// What continuous mode did over a whole run: the budget it enforced and
/// every control decision, with the summary accessors the bench gate and
/// the cockpit use.
#[derive(Debug, Clone, PartialEq)]
pub struct ContinuousReport {
    /// The enforced budget.
    pub budget: OverheadBudget,
    /// Every per-window decision, in order.
    pub decisions: Vec<GovernorDecision>,
}

impl ContinuousReport {
    /// Number of observation windows the governor saw.
    pub fn windows(&self) -> u64 {
        self.decisions.len() as u64
    }

    /// Measured overhead of the final window (0 when no window completed).
    pub fn final_overhead_pct(&self) -> f64 {
        self.decisions.last().map_or(0.0, |d| d.overhead_pct)
    }

    /// Stride in effect at the end of the run.
    pub fn final_stride(&self) -> u32 {
        self.decisions
            .last()
            .map_or(self.budget.initial_stride, |d| d.stride_after)
    }

    /// Windows that moved the sampling stride.
    pub fn ratchet_transitions(&self) -> usize {
        self.decisions.iter().filter(|d| d.ratcheted()).count()
    }

    /// Whether the final window landed within the budget.
    pub fn within_budget(&self) -> bool {
        self.final_overhead_pct() <= self.budget.pct
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn governor(pct: f64, stride: u32) -> OverheadGovernor {
        let budget = OverheadBudget {
            pct,
            initial_stride: stride,
            ..OverheadBudget::default()
        };
        OverheadGovernor::new(budget, SamplingKnob::new(1), Duration::from_millis(8))
    }

    #[test]
    fn over_budget_ratchets_coarser() {
        let mut g = governor(5.0, 4);
        // 10% of the window in instrumentation: double stride and cadence.
        let s = g.observe_window(1000, 80, 20, 1);
        assert_eq!(s.stride, 8);
        assert_eq!(s.cadence, Duration::from_millis(16));
        assert!(!s.within_budget);
        assert!((s.overhead_pct - 10.0).abs() < 1e-9);
        assert!(g.decisions()[0].ratcheted());
    }

    #[test]
    fn under_half_budget_ratchets_finer() {
        let mut g = governor(5.0, 8);
        let s = g.observe_window(10_000, 10, 10, 1); // 0.2%
        assert_eq!(s.stride, 4);
        assert_eq!(s.cadence, Duration::from_millis(4));
        assert!(s.within_budget);
    }

    #[test]
    fn dead_band_holds_settings() {
        let mut g = governor(5.0, 8);
        let s = g.observe_window(1000, 30, 0, 1); // 3%: in [2.5, 5]
        assert_eq!(s.stride, 8);
        assert_eq!(s.cadence, Duration::from_millis(8));
        assert!(!g.decisions()[0].ratcheted());
    }

    #[test]
    fn clamps_hold_at_the_bounds() {
        let mut g = governor(5.0, 1024);
        let s = g.observe_window(100, 100, 0, 1); // 100% over budget
        assert_eq!(s.stride, 1024, "stride capped at max_stride");
        let mut g = governor(5.0, 1);
        let s = g.observe_window(1_000_000, 0, 0, 1);
        assert_eq!(s.stride, 1, "stride floored at keep-all");
        assert!(s.cadence >= OverheadBudget::default().min_cadence);
    }

    #[test]
    fn knob_is_shared_by_identity() {
        let knob = SamplingKnob::new(3);
        let view = knob.clone();
        assert_eq!(view.get(), 3);
        knob.set(7);
        assert_eq!(view.get(), 7, "clone sees the governor's store");
        assert_eq!(knob, view);
        assert_ne!(knob, SamplingKnob::new(7), "identity, not value");
        knob.set(0);
        assert_eq!(knob.get(), 1, "stride clamps to at least 1");
    }

    #[test]
    fn report_summarizes_transitions_and_budget() {
        let mut g = governor(5.0, 16);
        g.observe_window(10_000, 1, 0, 1); // finer: 16 -> 8
        g.observe_window(10_000, 1, 0, 2); // finer: 8 -> 4
        g.observe_window(1_000, 40, 0, 3); // hold: 4% in dead band
        let report = g.into_report();
        assert_eq!(report.windows(), 3);
        assert_eq!(report.ratchet_transitions(), 2);
        assert_eq!(report.final_stride(), 4);
        assert!(report.within_budget());
        assert!((report.final_overhead_pct() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn empty_report_is_within_budget_at_initial_stride() {
        let g = governor(5.0, 64);
        let report = g.into_report();
        assert_eq!(report.windows(), 0);
        assert_eq!(report.final_stride(), 64);
        assert!(report.within_budget());
    }
}
