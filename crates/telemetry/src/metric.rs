//! The fixed metric vocabulary.
//!
//! Metric identity is an enum, not a string: hot-path instrumentation
//! compiles to an array index, never a hash or an allocation. Names only
//! materialize at snapshot/export time.

/// Number of log₂ buckets per histogram. Bucket 0 counts zero-valued
/// observations; bucket `k ≥ 1` counts values in `[2^(k-1), 2^k)`; the last
/// bucket absorbs everything larger.
pub const HIST_BUCKETS: usize = 32;

/// One histogram's bucket counts.
pub type HistBuckets = [u64; HIST_BUCKETS];

/// Monotonic event counters, one slab per PE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Counter {
    /// Substrate puts (blocking, non-blocking, and intra-node copies).
    ShmemPuts,
    /// `shmem_quiet` completions (including the implicit one in barriers).
    ShmemQuiets,
    /// `shmem_barrier_all` waits.
    ShmemBarrierWaits,
    /// Conveyor pushes refused with `PushOutcome::Retry` (buffer full).
    ConveyorPushRetries,
    /// Relay slots parked by `inject_chaos` fault injection.
    ConveyorForcedParks,
    /// Relay slots parked because the relay out-buffer was full.
    ConveyorRelayParks,
    /// Actor-level sends accepted into a mailbox conveyor.
    ActorSends,
    /// Cooperative yields taken while a selector polled for progress.
    ActorYields,
    /// Network operations re-attempted after an injected transient timeout
    /// (`FaultSpec::net_flaky` exponential-backoff retries).
    NetRetries,
    /// SPMD attempts restarted by the recovery policy after a PE failure.
    Restarts,
    /// Multi-item `Conveyor::push_slice` calls (batched staging).
    BatchedPushes,
    /// `Conveyor::pull_batch` deliveries handed out as zero-copy slices.
    BatchedPulls,
    /// Phase spans recorded through [`crate::PeMetrics::flight_span`].
    TelemetrySpans,
    /// Cycles the runtime spent inside its own instrumentation (span
    /// capture, gauge/histogram updates, flight-ring writes). The
    /// continuous-profiling governor divides this by total PE cycles to
    /// keep measured overhead inside its budget.
    TelemetrySelfCycles,
    /// Frames carried through a non-InProc transport backend's mailboxes
    /// (zero on the default in-process memcpy path, which carries nothing).
    TransportFrames,
    /// Payload bytes inside carried transport frames (pre-padding).
    TransportFrameBytes,
}

impl Counter {
    /// Every counter, in index order.
    pub const ALL: [Counter; 16] = [
        Counter::ShmemPuts,
        Counter::ShmemQuiets,
        Counter::ShmemBarrierWaits,
        Counter::ConveyorPushRetries,
        Counter::ConveyorForcedParks,
        Counter::ConveyorRelayParks,
        Counter::ActorSends,
        Counter::ActorYields,
        Counter::NetRetries,
        Counter::Restarts,
        Counter::BatchedPushes,
        Counter::BatchedPulls,
        Counter::TelemetrySpans,
        Counter::TelemetrySelfCycles,
        Counter::TransportFrames,
        Counter::TransportFrameBytes,
    ];

    /// Number of counters.
    pub const COUNT: usize = Counter::ALL.len();

    /// Stable dotted name, used in dumps and dashboards.
    pub const fn name(self) -> &'static str {
        match self {
            Counter::ShmemPuts => "shmem.puts",
            Counter::ShmemQuiets => "shmem.quiets",
            Counter::ShmemBarrierWaits => "shmem.barrier_waits",
            Counter::ConveyorPushRetries => "conveyor.push_retries",
            Counter::ConveyorForcedParks => "conveyor.forced_parks",
            Counter::ConveyorRelayParks => "conveyor.relay_parks",
            Counter::ActorSends => "actor.sends",
            Counter::ActorYields => "actor.yields",
            Counter::NetRetries => "shmem.net_retries",
            Counter::Restarts => "spmd.restarts",
            Counter::BatchedPushes => "conveyor.batched_pushes",
            Counter::BatchedPulls => "conveyor.batched_pulls",
            Counter::TelemetrySpans => "telemetry.spans",
            Counter::TelemetrySelfCycles => "telemetry.self_cycles",
            Counter::TransportFrames => "transport.frames",
            Counter::TransportFrameBytes => "transport.frame_bytes",
        }
    }

    /// Parse a dotted counter name (inverse of [`name`](Counter::name)).
    pub fn from_name(name: &str) -> Option<Counter> {
        Counter::ALL.into_iter().find(|c| c.name() == name)
    }
}

/// Last-value gauges, one slab per PE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Gauge {
    /// Items staged in this PE's conveyor out-buffers after the last
    /// `advance`.
    ConveyorBufferedItems,
    /// Deliveries sitting in the pull queue after the last `advance`.
    ConveyorPullBacklog,
}

impl Gauge {
    /// Every gauge, in index order.
    pub const ALL: [Gauge; 2] = [Gauge::ConveyorBufferedItems, Gauge::ConveyorPullBacklog];

    /// Number of gauges.
    pub const COUNT: usize = Gauge::ALL.len();

    /// Stable dotted name, used in dumps and dashboards.
    pub const fn name(self) -> &'static str {
        match self {
            Gauge::ConveyorBufferedItems => "conveyor.buffered_items",
            Gauge::ConveyorPullBacklog => "conveyor.pull_backlog",
        }
    }
}

/// Log₂-bucketed histograms, one slab per PE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Hist {
    /// Cycles spent per `Conveyor::advance`.
    AdvanceCycles,
    /// Cycles spent per `shmem_quiet`.
    QuietCycles,
    /// Cycles spent waiting in `shmem_barrier_all`.
    BarrierWaitCycles,
    /// Cycles a relay slot stayed parked before it resumed.
    RelayParkCycles,
    /// Bytes per substrate put.
    PutBytes,
    /// Cycles spent capturing one superstep-boundary checkpoint.
    CheckpointCycles,
    /// Items per `push_slice` call (batch sizes reaching the conveyor).
    BatchLen,
}

impl Hist {
    /// Every histogram, in index order.
    pub const ALL: [Hist; 7] = [
        Hist::AdvanceCycles,
        Hist::QuietCycles,
        Hist::BarrierWaitCycles,
        Hist::RelayParkCycles,
        Hist::PutBytes,
        Hist::CheckpointCycles,
        Hist::BatchLen,
    ];

    /// Number of histograms.
    pub const COUNT: usize = Hist::ALL.len();

    /// Stable dotted name, used in dumps and dashboards.
    pub const fn name(self) -> &'static str {
        match self {
            Hist::AdvanceCycles => "conveyor.advance_cycles",
            Hist::QuietCycles => "shmem.quiet_cycles",
            Hist::BarrierWaitCycles => "shmem.barrier_wait_cycles",
            Hist::RelayParkCycles => "conveyor.relay_park_cycles",
            Hist::PutBytes => "shmem.put_bytes",
            Hist::CheckpointCycles => "shmem.checkpoint_cycles",
            Hist::BatchLen => "conveyor.batch_len",
        }
    }
}

/// The log₂ bucket a value falls in (see [`HIST_BUCKETS`]).
#[inline]
pub const fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        let b = 64 - value.leading_zeros() as usize;
        if b < HIST_BUCKETS {
            b
        } else {
            HIST_BUCKETS - 1
        }
    }
}

/// Inclusive upper bound of histogram bucket `idx` (saturating for the
/// overflow bucket), for rendering bucket labels.
pub const fn bucket_upper_bound(idx: usize) -> u64 {
    if idx == 0 {
        0
    } else if idx >= HIST_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << idx) - 1
    }
}

/// Runtime phases instrumented with begin/end spans. Shared vocabulary
/// between the flight recorder here and the trace layer's span records, so
/// the Perfetto export and the post-mortem dump name phases identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Phase {
    /// One selector `execute` — the FA-BSP superstep body plus its
    /// termination drain.
    Superstep,
    /// One `Conveyor::advance` (buffer exchange + delivery).
    Advance,
    /// One `shmem_quiet` issued from conveyor progress.
    Quiet,
    /// One relay hop: consuming an incoming slot that forwarded envelopes.
    RelayHop,
}

impl Phase {
    /// Every phase, in index order.
    pub const ALL: [Phase; 4] = [
        Phase::Superstep,
        Phase::Advance,
        Phase::Quiet,
        Phase::RelayHop,
    ];

    /// Stable name, used as the Perfetto event name.
    pub const fn label(self) -> &'static str {
        match self {
            Phase::Superstep => "superstep",
            Phase::Advance => "advance",
            Phase::Quiet => "quiet",
            Phase::RelayHop => "relay_hop",
        }
    }

    /// Parse a phase label (inverse of [`label`](Phase::label)).
    pub fn from_label(label: &str) -> Option<Phase> {
        Phase::ALL.into_iter().find(|p| p.label() == label)
    }

    /// Decode an index produced by `as usize` encoding.
    pub fn from_index(idx: usize) -> Option<Phase> {
        Phase::ALL.get(idx).copied()
    }
}

/// Decode a counter index produced by `as usize` encoding.
pub fn counter_from_index(idx: usize) -> Option<Counter> {
    Counter::ALL.get(idx).copied()
}

/// Source location (`file`, `line`) of a phase's instrumentation site.
pub type PhaseSite = (&'static str, u32);

/// First-caller-wins registry of the `file:line` that records each phase,
/// populated by the `#[track_caller]` span entry points so dashboards can
/// attribute hot phases to source without carrying a location per event.
static PHASE_SITES: [std::sync::OnceLock<PhaseSite>; Phase::ALL.len()] = [
    std::sync::OnceLock::new(),
    std::sync::OnceLock::new(),
    std::sync::OnceLock::new(),
    std::sync::OnceLock::new(),
];

/// Remember where `phase` is recorded from. The first site wins (each phase
/// has exactly one runtime record site today); later calls are no-ops, so
/// this is one lock-free initialized-check per span after warmup.
pub fn note_phase_site(phase: Phase, file: &'static str, line: u32) {
    let slot = &PHASE_SITES[phase as usize];
    if slot.get().is_none() {
        let _ = slot.set((file, line));
    }
}

/// The recorded `file:line` attribution for `phase`, if any span of that
/// phase has been captured in this process.
pub fn phase_site(phase: Phase) -> Option<PhaseSite> {
    PHASE_SITES[phase as usize].get().copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enum_indices_match_all_order() {
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i);
        }
        for (i, g) in Gauge::ALL.iter().enumerate() {
            assert_eq!(*g as usize, i);
        }
        for (i, h) in Hist::ALL.iter().enumerate() {
            assert_eq!(*h as usize, i);
        }
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(*p as usize, i);
            assert_eq!(Phase::from_index(i), Some(*p));
        }
    }

    #[test]
    fn buckets_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn bucket_bounds_cover_bucketing() {
        for idx in 1..HIST_BUCKETS - 1 {
            let hi = bucket_upper_bound(idx);
            assert_eq!(bucket_of(hi), idx, "upper bound lands in its bucket");
            assert_eq!(bucket_of(hi + 1), idx + 1, "successor spills over");
        }
        assert_eq!(bucket_upper_bound(HIST_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn phase_label_roundtrip() {
        for p in Phase::ALL {
            assert_eq!(Phase::from_label(p.label()), Some(p));
        }
        assert_eq!(Phase::from_label("bogus"), None);
    }

    #[test]
    fn counter_name_roundtrip() {
        for c in Counter::ALL {
            assert_eq!(Counter::from_name(c.name()), Some(c));
        }
        assert_eq!(Counter::from_name("bogus.metric"), None);
    }

    #[test]
    fn phase_sites_are_first_caller_wins() {
        // Global registry: other tests (and instrumented code) may have
        // registered sites already, so assert the invariants rather than
        // exact values — once set, a site is stable.
        note_phase_site(Phase::RelayHop, "a.rs", 1);
        let first = phase_site(Phase::RelayHop).expect("site recorded");
        note_phase_site(Phase::RelayHop, "b.rs", 2);
        assert_eq!(phase_site(Phase::RelayHop), Some(first));
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Counter::ALL
            .iter()
            .map(|c| c.name())
            .chain(Gauge::ALL.iter().map(|g| g.name()))
            .chain(Hist::ALL.iter().map(|h| h.name()))
            .collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
    }
}
