//! The lock-free per-PE metrics registry and its snapshot-diff model.
//!
//! One [`PeMetrics`] slab per PE; every cell is an `AtomicU64`. The
//! concurrency discipline is *single writer per slab*: only the owning PE's
//! thread mutates its counters/gauges/histograms, so updates are `Relaxed`
//! load+store pairs (no RMW contention, no fences on the hot path). Any
//! other thread may read concurrently: `AtomicU64` loads cannot tear, so a
//! [`Snapshot`] is a consistent-enough point-in-time view — counters are
//! monotonic, and the subscriber model works on snapshot *diffs*, which
//! tolerate the reader racing a few in-flight increments.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::flight::FlightRing;
use crate::metric::{bucket_of, Counter, Gauge, Hist, HistBuckets, Phase, HIST_BUCKETS};

/// Default flight-recorder depth per PE.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 256;

/// One PE's metric slab plus its flight-recorder ring.
#[derive(Debug)]
pub struct PeMetrics {
    counters: [AtomicU64; Counter::COUNT],
    gauges: [AtomicU64; Gauge::COUNT],
    hists: Vec<[AtomicU64; HIST_BUCKETS]>,
    /// Cumulative cycles spent inside each phase, indexed by `Phase`.
    span_cycles: [AtomicU64; Phase::ALL.len()],
    /// Spans recorded per phase, indexed by `Phase`.
    span_counts: [AtomicU64; Phase::ALL.len()],
    flight: FlightRing,
}

impl PeMetrics {
    fn new(flight_capacity: usize) -> PeMetrics {
        PeMetrics {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            gauges: std::array::from_fn(|_| AtomicU64::new(0)),
            hists: (0..Hist::COUNT)
                .map(|_| std::array::from_fn(|_| AtomicU64::new(0)))
                .collect(),
            span_cycles: std::array::from_fn(|_| AtomicU64::new(0)),
            span_counts: std::array::from_fn(|_| AtomicU64::new(0)),
            flight: FlightRing::new(flight_capacity),
        }
    }

    /// Bump `counter` by one. Owning-PE thread only.
    #[inline]
    pub fn count(&self, counter: Counter) {
        self.add(counter, 1);
    }

    /// Bump `counter` by `n`. Owning-PE thread only: a Relaxed load+store
    /// pair is exact because nobody else writes this cell.
    #[inline]
    pub fn add(&self, counter: Counter, n: u64) {
        let cell = &self.counters[counter as usize];
        cell.store(cell.load(Ordering::Relaxed).wrapping_add(n), Ordering::Relaxed);
    }

    /// Set `gauge` to its current value. Owning-PE thread only.
    #[inline]
    pub fn gauge_set(&self, gauge: Gauge, value: u64) {
        self.gauges[gauge as usize].store(value, Ordering::Relaxed);
    }

    /// Record one observation into `hist`'s log₂ bucket. Owning-PE thread
    /// only (same single-writer Relaxed discipline as [`add`](Self::add)).
    #[inline]
    pub fn observe(&self, hist: Hist, value: u64) {
        let cell = &self.hists[hist as usize][bucket_of(value)];
        cell.store(cell.load(Ordering::Relaxed).wrapping_add(1), Ordering::Relaxed);
    }

    /// Current value of `counter` (any thread).
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters[counter as usize].load(Ordering::Relaxed)
    }

    /// Current value of `gauge` (any thread).
    pub fn gauge(&self, gauge: Gauge) -> u64 {
        self.gauges[gauge as usize].load(Ordering::Relaxed)
    }

    /// Bucket counts of `hist` (any thread).
    pub fn hist(&self, hist: Hist) -> HistBuckets {
        std::array::from_fn(|b| self.hists[hist as usize][b].load(Ordering::Relaxed))
    }

    /// This PE's flight-recorder ring.
    #[inline]
    pub fn flight(&self) -> &FlightRing {
        &self.flight
    }

    /// Record a completed phase span: into the flight ring, into the
    /// per-phase hot-span accounting the cockpit's "hottest phases" panel
    /// reads, and — because this call closes every phase's instrumentation
    /// burst (the caller stamps `end_cycles` right after the phase body,
    /// then runs its gauge/histogram updates and ends here) — into the
    /// self-cost ledger the continuous-profiling governor steers on.
    /// `#[track_caller]` registers the call site as the phase's `file:line`
    /// attribution (first caller wins). Owning-PE thread only.
    #[track_caller]
    #[inline]
    pub fn flight_span(&self, phase: Phase, begin_cycles: u64, end_cycles: u64) {
        self.flight.span(phase, begin_cycles, end_cycles);
        let cy = &self.span_cycles[phase as usize];
        cy.store(
            cy.load(Ordering::Relaxed)
                .wrapping_add(end_cycles.saturating_sub(begin_cycles)),
            Ordering::Relaxed,
        );
        let ct = &self.span_counts[phase as usize];
        ct.store(ct.load(Ordering::Relaxed).wrapping_add(1), Ordering::Relaxed);
        let site = std::panic::Location::caller();
        crate::metric::note_phase_site(phase, site.file(), site.line());
        self.add(Counter::TelemetrySpans, 1);
        // Everything since `end_cycles` was stamped — trace-buffer span
        // capture, gauge/histogram stores, the flight-ring write, and this
        // bookkeeping — is instrumentation, not application work.
        let now = fabsp_hwpc::cycles_now();
        self.add(Counter::TelemetrySelfCycles, now.saturating_sub(end_cycles));
    }

    /// Cumulative cycles recorded inside `phase` spans (any thread).
    pub fn span_cycles(&self, phase: Phase) -> u64 {
        self.span_cycles[phase as usize].load(Ordering::Relaxed)
    }

    /// Spans recorded for `phase` (any thread).
    pub fn span_count(&self, phase: Phase) -> u64 {
        self.span_counts[phase as usize].load(Ordering::Relaxed)
    }

    /// Record a notable counter movement into the flight ring (in addition
    /// to the slab increment the caller already made).
    #[inline]
    pub fn flight_note(&self, counter: Counter, value: u64) {
        self.flight.note(counter, value, fabsp_hwpc::cycles_now());
    }
}

/// Point-in-time copy of one PE's slab.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PeSnapshot {
    /// Counter values, indexed by `Counter as usize`.
    pub counters: Vec<u64>,
    /// Gauge values, indexed by `Gauge as usize`.
    pub gauges: Vec<u64>,
    /// Histogram bucket counts, indexed by `Hist as usize`.
    pub hists: Vec<[u64; HIST_BUCKETS]>,
    /// Cumulative in-phase cycles, indexed by `Phase as usize`.
    pub span_cycles: Vec<u64>,
    /// Spans recorded per phase, indexed by `Phase as usize`.
    pub span_counts: Vec<u64>,
}

/// Point-in-time copy of the whole registry.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// Per-PE slabs, indexed by rank.
    pub pes: Vec<PeSnapshot>,
}

impl Snapshot {
    /// `counter` on one PE.
    pub fn counter(&self, pe: usize, counter: Counter) -> u64 {
        self.pes[pe].counters[counter as usize]
    }

    /// `counter` summed over all PEs.
    pub fn counter_total(&self, counter: Counter) -> u64 {
        self.pes
            .iter()
            .map(|p| p.counters[counter as usize])
            .sum()
    }

    /// `counter` per PE, in rank order.
    pub fn counter_per_pe(&self, counter: Counter) -> Vec<u64> {
        self.pes
            .iter()
            .map(|p| p.counters[counter as usize])
            .collect()
    }

    /// `gauge` on one PE.
    pub fn gauge(&self, pe: usize, gauge: Gauge) -> u64 {
        self.pes[pe].gauges[gauge as usize]
    }

    /// `gauge` summed over all PEs (meaningful for occupancy-style gauges).
    pub fn gauge_total(&self, gauge: Gauge) -> u64 {
        self.pes.iter().map(|p| p.gauges[gauge as usize]).sum()
    }

    /// Bucket counts of `hist` merged over all PEs.
    pub fn hist_total(&self, hist: Hist) -> HistBuckets {
        let mut out = [0u64; HIST_BUCKETS];
        for p in &self.pes {
            for (acc, v) in out.iter_mut().zip(p.hists[hist as usize].iter()) {
                *acc += v;
            }
        }
        out
    }

    /// Total observations recorded into `hist` across all PEs.
    pub fn hist_count(&self, hist: Hist) -> u64 {
        self.hist_total(hist).iter().sum()
    }

    /// Cycles spent inside `phase` summed over all PEs.
    pub fn span_cycles_total(&self, phase: Phase) -> u64 {
        self.pes
            .iter()
            .map(|p| p.span_cycles.get(phase as usize).copied().unwrap_or(0))
            .sum()
    }

    /// Spans recorded for `phase` summed over all PEs.
    pub fn span_count_total(&self, phase: Phase) -> u64 {
        self.pes
            .iter()
            .map(|p| p.span_counts.get(phase as usize).copied().unwrap_or(0))
            .sum()
    }

    /// What changed since `prev`: counters and histogram buckets subtract
    /// (wrapping, so a stale `prev` cannot panic); gauges keep this
    /// snapshot's last-value semantics.
    pub fn diff(&self, prev: &Snapshot) -> Snapshot {
        let pes = self
            .pes
            .iter()
            .enumerate()
            .map(|(rank, cur)| {
                let empty = PeSnapshot::default();
                let old = prev.pes.get(rank).unwrap_or(&empty);
                let sub = |cur: &[u64], old: &[u64]| -> Vec<u64> {
                    cur.iter()
                        .enumerate()
                        .map(|(i, v)| v.wrapping_sub(old.get(i).copied().unwrap_or(0)))
                        .collect()
                };
                PeSnapshot {
                    counters: sub(&cur.counters, &old.counters),
                    gauges: cur.gauges.clone(),
                    hists: cur
                        .hists
                        .iter()
                        .enumerate()
                        .map(|(i, buckets)| {
                            let zero = [0u64; HIST_BUCKETS];
                            let old_b = old.hists.get(i).unwrap_or(&zero);
                            std::array::from_fn(|b| buckets[b].wrapping_sub(old_b[b]))
                        })
                        .collect(),
                    span_cycles: sub(&cur.span_cycles, &old.span_cycles),
                    span_counts: sub(&cur.span_counts, &old.span_counts),
                }
            })
            .collect();
        Snapshot { pes }
    }
}

/// One tick of the live subscriber feed: the running totals plus what
/// changed since the previous tick.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Tick number, starting at 0.
    pub seq: u64,
    /// Absolute cycle stamp when the tick's snapshot was taken, so
    /// consumers can turn per-tick deltas into true rates without trusting
    /// the nominal sleep interval.
    pub at_cycles: u64,
    /// Running totals at this tick.
    pub total: Snapshot,
    /// Change since the previous tick (equals `total` on the first).
    pub delta: Snapshot,
    /// The continuous-profiling governor's verdict for the window ending
    /// at this tick; `None` outside continuous mode (and on the final
    /// post-join frame).
    pub governor: Option<crate::overhead::GovernorSample>,
}

/// The always-on registry: one [`PeMetrics`] slab per PE, shared across the
/// world via `Arc`. Construction is the only mutation of the registry's
/// shape; all metric traffic is on the interior atomics.
#[derive(Debug)]
pub struct TelemetryRegistry {
    pes: Vec<PeMetrics>,
    flight_dir: Option<PathBuf>,
}

impl TelemetryRegistry {
    /// A registry for `n_pes` PEs with the default flight-recorder depth.
    pub fn new(n_pes: usize) -> TelemetryRegistry {
        TelemetryRegistry::with_flight_capacity(n_pes, DEFAULT_FLIGHT_CAPACITY)
    }

    /// A registry with `flight_capacity` events retained per PE.
    pub fn with_flight_capacity(n_pes: usize, flight_capacity: usize) -> TelemetryRegistry {
        TelemetryRegistry {
            pes: (0..n_pes).map(|_| PeMetrics::new(flight_capacity)).collect(),
            flight_dir: None,
        }
    }

    /// Enable post-mortem flight-recorder dumps into `dir`
    /// (`dir/flightrec-pe<rank>.json`). Builder-style: call before sharing
    /// the registry.
    pub fn flight_dump_dir(mut self, dir: impl Into<PathBuf>) -> TelemetryRegistry {
        self.flight_dir = Some(dir.into());
        self
    }

    /// The configured dump directory, if any.
    pub fn flight_dir(&self) -> Option<&Path> {
        self.flight_dir.as_deref()
    }

    /// Number of PE slabs.
    pub fn n_pes(&self) -> usize {
        self.pes.len()
    }

    /// The slab for `rank`.
    #[inline]
    pub fn pe(&self, rank: usize) -> &PeMetrics {
        &self.pes[rank]
    }

    /// Copy every slab into a [`Snapshot`] (any thread).
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            pes: self
                .pes
                .iter()
                .map(|p| PeSnapshot {
                    counters: Counter::ALL.iter().map(|c| p.counter(*c)).collect(),
                    gauges: Gauge::ALL.iter().map(|g| p.gauge(*g)).collect(),
                    hists: Hist::ALL.iter().map(|h| p.hist(*h)).collect(),
                    span_cycles: Phase::ALL.iter().map(|ph| p.span_cycles(*ph)).collect(),
                    span_counts: Phase::ALL.iter().map(|ph| p.span_count(*ph)).collect(),
                })
                .collect(),
        }
    }

    /// Dump `rank`'s flight ring to `flightrec-pe<rank>.json` under the
    /// configured directory. Best-effort (runs during unwinding): returns
    /// the path on success, `None` when no directory is configured or the
    /// write fails.
    pub fn dump_flight(&self, rank: usize) -> Option<PathBuf> {
        let dir = self.flight_dir.as_ref()?;
        if std::fs::create_dir_all(dir).is_err() {
            return None;
        }
        let path = dir.join(format!("flightrec-pe{rank}.json"));
        let json = self.pes.get(rank)?.flight.to_json(rank);
        std::fs::write(&path, json).ok()?;
        Some(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let reg = TelemetryRegistry::new(2);
        reg.pe(0).count(Counter::ShmemPuts);
        reg.pe(0).add(Counter::ShmemPuts, 4);
        reg.pe(1).count(Counter::ShmemPuts);
        reg.pe(1).gauge_set(Gauge::ConveyorPullBacklog, 7);
        let snap = reg.snapshot();
        assert_eq!(snap.counter(0, Counter::ShmemPuts), 5);
        assert_eq!(snap.counter_total(Counter::ShmemPuts), 6);
        assert_eq!(snap.counter_per_pe(Counter::ShmemPuts), vec![5, 1]);
        assert_eq!(snap.gauge(1, Gauge::ConveyorPullBacklog), 7);
        assert_eq!(snap.gauge_total(Gauge::ConveyorPullBacklog), 7);
    }

    #[test]
    fn histograms_bucket_observations() {
        let reg = TelemetryRegistry::new(1);
        reg.pe(0).observe(Hist::PutBytes, 0);
        reg.pe(0).observe(Hist::PutBytes, 1);
        reg.pe(0).observe(Hist::PutBytes, 3);
        reg.pe(0).observe(Hist::PutBytes, 1000);
        let snap = reg.snapshot();
        let h = snap.hist_total(Hist::PutBytes);
        assert_eq!(h[0], 1);
        assert_eq!(h[1], 1);
        assert_eq!(h[2], 1);
        assert_eq!(h[10], 1, "1000 lands in [512, 1024)");
        assert_eq!(snap.hist_count(Hist::PutBytes), 4);
    }

    #[test]
    fn diff_subtracts_counters_and_keeps_gauges() {
        let reg = TelemetryRegistry::new(1);
        reg.pe(0).add(Counter::ActorSends, 10);
        reg.pe(0).gauge_set(Gauge::ConveyorBufferedItems, 3);
        reg.pe(0).observe(Hist::AdvanceCycles, 100);
        let first = reg.snapshot();
        reg.pe(0).add(Counter::ActorSends, 5);
        reg.pe(0).gauge_set(Gauge::ConveyorBufferedItems, 9);
        reg.pe(0).observe(Hist::AdvanceCycles, 100);
        let second = reg.snapshot();
        let delta = second.diff(&first);
        assert_eq!(delta.counter(0, Counter::ActorSends), 5);
        assert_eq!(delta.gauge(0, Gauge::ConveyorBufferedItems), 9);
        assert_eq!(delta.hist_count(Hist::AdvanceCycles), 1);
    }

    #[test]
    fn flight_span_feeds_hot_phase_accounting_and_self_cost() {
        let reg = TelemetryRegistry::new(2);
        reg.pe(0).flight_span(Phase::Advance, 100, 350);
        reg.pe(0).flight_span(Phase::Advance, 400, 450);
        reg.pe(1).flight_span(Phase::Quiet, 10, 30);
        assert_eq!(reg.pe(0).span_cycles(Phase::Advance), 300);
        assert_eq!(reg.pe(0).span_count(Phase::Advance), 2);
        let first = reg.snapshot();
        assert_eq!(first.span_cycles_total(Phase::Advance), 300);
        assert_eq!(first.span_count_total(Phase::Quiet), 1);
        assert_eq!(first.counter_total(Counter::TelemetrySpans), 3);
        reg.pe(0).flight_span(Phase::Advance, 500, 600);
        let delta = reg.snapshot().diff(&first);
        assert_eq!(delta.span_cycles_total(Phase::Advance), 100);
        assert_eq!(delta.span_count_total(Phase::Advance), 1);
        assert_eq!(delta.counter_total(Counter::TelemetrySpans), 1);
        // the call sites above registered a file:line attribution
        let (file, _line) = crate::metric::phase_site(Phase::Quiet).expect("site");
        assert!(file.ends_with("registry.rs"), "{file}");
    }

    #[test]
    fn cross_thread_snapshot_sees_published_counts() {
        let reg = std::sync::Arc::new(TelemetryRegistry::new(1));
        let writer = {
            let reg = reg.clone();
            std::thread::spawn(move || {
                for _ in 0..1000 {
                    reg.pe(0).count(Counter::ConveyorPushRetries);
                }
            })
        };
        writer.join().unwrap();
        assert_eq!(
            reg.snapshot().counter_total(Counter::ConveyorPushRetries),
            1000
        );
    }

    #[test]
    fn flight_dump_writes_named_file() {
        let dir = std::env::temp_dir().join(format!("fabsp-flight-{}", std::process::id()));
        let reg = TelemetryRegistry::new(2).flight_dump_dir(&dir);
        reg.pe(1).flight_span(Phase::Advance, 10, 20);
        let path = reg.dump_flight(1).expect("dump succeeds");
        assert!(path.ends_with("flightrec-pe1.json"));
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"phase\":\"advance\""));
        std::fs::remove_dir_all(&dir).unwrap();
        assert!(
            TelemetryRegistry::new(1).dump_flight(0).is_none(),
            "no dir configured → no dump"
        );
    }
}
