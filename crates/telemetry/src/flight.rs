//! Bounded per-PE flight recorder.
//!
//! A ring of the last N span/metric events, written only by the owning PE's
//! thread and read post-mortem — when a PE panics, a testkit fault fires,
//! or the termination checker trips its step budget (both of which surface
//! as PE panics). The writer stores slot words `Relaxed` and then publishes
//! them with a `Release` store of the cursor; a dumper that `Acquire`-loads
//! the cursor therefore sees every event below it fully written. The one
//! slot a concurrent writer may be mid-way through is *above* the acquired
//! cursor and never read. Dumps are best-effort by design: they run during
//! unwinding and must never panic or block.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

use fabsp_hwpc::rdtsc::cycles_to_us;

use crate::metric::{counter_from_index, Counter, Phase};

/// Words per ring slot: tag, timestamp, payload a, payload b.
const WORDS: usize = 4;

const KIND_SPAN: u64 = 1;
const KIND_NOTE: u64 = 2;

/// One decoded flight-recorder event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightEvent {
    /// A completed phase span (absolute rdtsc cycles).
    Span {
        /// Which phase ran.
        phase: Phase,
        /// Cycle stamp at phase entry.
        begin_cycles: u64,
        /// Cycle stamp at phase exit.
        end_cycles: u64,
    },
    /// A notable metric increment (parks, retries, faults — not every
    /// counter bump, only sites that call [`FlightRing::note`]).
    Note {
        /// The counter that moved.
        counter: Counter,
        /// The increment or observed value.
        value: u64,
        /// Cycle stamp when it moved.
        at_cycles: u64,
    },
}

/// The bounded event ring. Single writer (the owning PE), any reader.
#[derive(Debug)]
pub struct FlightRing {
    slots: Vec<AtomicU64>,
    /// Total events ever recorded; `cursor % capacity` is the next slot.
    cursor: AtomicU64,
    capacity: usize,
}

impl FlightRing {
    /// A ring remembering the last `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> FlightRing {
        let capacity = capacity.max(1);
        FlightRing {
            slots: (0..capacity * WORDS).map(|_| AtomicU64::new(0)).collect(),
            cursor: AtomicU64::new(0),
            capacity,
        }
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Record a completed phase span. Owning-PE thread only.
    #[inline]
    pub fn span(&self, phase: Phase, begin_cycles: u64, end_cycles: u64) {
        self.record(
            (KIND_SPAN << 32) | phase as u64,
            end_cycles,
            begin_cycles,
            end_cycles,
        );
    }

    /// Record a notable metric increment. Owning-PE thread only.
    #[inline]
    pub fn note(&self, counter: Counter, value: u64, at_cycles: u64) {
        self.record((KIND_NOTE << 32) | counter as u64, at_cycles, value, 0);
    }

    #[inline]
    fn record(&self, tag: u64, t: u64, a: u64, b: u64) {
        // Single writer: a Relaxed read of our own cursor is exact. Slot
        // words go in Relaxed; the cursor bump is the Release publication
        // that makes them visible to an Acquire-loading dumper.
        let seq = self.cursor.load(Ordering::Relaxed);
        let base = (seq as usize % self.capacity) * WORDS;
        self.slots[base].store(tag, Ordering::Relaxed);
        self.slots[base + 1].store(t, Ordering::Relaxed);
        self.slots[base + 2].store(a, Ordering::Relaxed);
        self.slots[base + 3].store(b, Ordering::Relaxed);
        self.cursor.store(seq + 1, Ordering::Release);
    }

    /// Total events ever recorded (not bounded by capacity).
    pub fn recorded(&self) -> u64 {
        self.cursor.load(Ordering::Acquire)
    }

    /// Decode the retained events, oldest first. Safe from any thread;
    /// events below the acquired cursor are fully published.
    pub fn events(&self) -> Vec<FlightEvent> {
        let seq = self.cursor.load(Ordering::Acquire);
        let kept = (seq as usize).min(self.capacity);
        let mut out = Vec::with_capacity(kept);
        for i in 0..kept {
            let idx = seq - kept as u64 + i as u64;
            let base = (idx as usize % self.capacity) * WORDS;
            let tag = self.slots[base].load(Ordering::Relaxed);
            let t = self.slots[base + 1].load(Ordering::Relaxed);
            let a = self.slots[base + 2].load(Ordering::Relaxed);
            let id = (tag & 0xffff_ffff) as usize;
            match tag >> 32 {
                KIND_SPAN => {
                    let b = self.slots[base + 3].load(Ordering::Relaxed);
                    if let Some(phase) = Phase::from_index(id) {
                        out.push(FlightEvent::Span {
                            phase,
                            begin_cycles: a,
                            end_cycles: b,
                        });
                    }
                }
                KIND_NOTE => {
                    if let Some(counter) = counter_from_index(id) {
                        out.push(FlightEvent::Note {
                            counter,
                            value: a,
                            at_cycles: t,
                        });
                    }
                }
                _ => {}
            }
        }
        out
    }

    /// Serialize the retained events as the `flightrec-pe*.json` payload.
    pub fn to_json(&self, pe: usize) -> String {
        dump_json(pe, self.recorded(), self.capacity, &self.events())
    }
}

/// The one serializer behind every flight-recorder artifact: both a live
/// [`FlightRing`] dump and a re-serialized [`FlightDump`] go through here,
/// so parse → serialize round-trips byte-for-byte by construction.
fn dump_json(pe: usize, recorded: u64, capacity: usize, events: &[FlightEvent]) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"pe\":{pe},\"recorded\":{recorded},\"capacity\":{capacity},\"events\":["
    );
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  ");
        match ev {
            FlightEvent::Span {
                phase,
                begin_cycles,
                end_cycles,
            } => {
                let _ = write!(
                    out,
                    "{{\"kind\":\"span\",\"phase\":\"{}\",\"begin_cycles\":{begin_cycles},\
                     \"end_cycles\":{end_cycles},\"dur_us\":{:.3}}}",
                    phase.label(),
                    cycles_to_us(end_cycles.saturating_sub(*begin_cycles)),
                );
            }
            FlightEvent::Note {
                counter,
                value,
                at_cycles,
            } => {
                let _ = write!(
                    out,
                    "{{\"kind\":\"note\",\"metric\":\"{}\",\"value\":{value},\
                     \"at_cycles\":{at_cycles}}}",
                    counter.name(),
                );
            }
        }
    }
    out.push_str("\n]}\n");
    out
}

/// A parsed `flightrec-pe*.json` artifact — the post-mortem side of the
/// flight recorder. Where [`FlightRing`] is what a live PE writes into,
/// `FlightDump` is what an operator loads *after* a death to step through
/// the retained events (the cockpit's replay view).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightDump {
    /// Rank of the PE that dumped.
    pub pe: usize,
    /// Total events the ring ever recorded (not bounded by capacity).
    pub recorded: u64,
    /// Ring capacity at dump time.
    pub capacity: usize,
    /// The retained events, oldest first — exactly the ring's dump order.
    pub events: Vec<FlightEvent>,
}

/// Extract the integer following `"key":` in `obj`.
fn u64_field(obj: &str, key: &str) -> Result<u64, String> {
    let tag = format!("\"{key}\":");
    let at = obj
        .find(&tag)
        .ok_or_else(|| format!("missing field {key:?} in {obj:.80}"))?;
    let rest = &obj[at + tag.len()..];
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits
        .parse()
        .map_err(|e| format!("field {key:?}: {e} in {obj:.80}"))
}

/// Extract the string following `"key":"` in `obj`.
fn str_field<'a>(obj: &'a str, key: &str) -> Result<&'a str, String> {
    let tag = format!("\"{key}\":\"");
    let at = obj
        .find(&tag)
        .ok_or_else(|| format!("missing field {key:?} in {obj:.80}"))?;
    let rest = &obj[at + tag.len()..];
    rest.split('"')
        .next()
        .ok_or_else(|| format!("unterminated field {key:?}"))
}

impl FlightDump {
    /// Parse a dump previously produced by [`FlightRing::to_json`] /
    /// [`FlightDump::to_json`]. Hand-rolled over our own line-oriented
    /// format (one event per line) — no JSON dependency, and strict enough
    /// that [`to_json`](FlightDump::to_json) reproduces the input
    /// byte-for-byte.
    pub fn parse(json: &str) -> Result<FlightDump, String> {
        let events_at = json
            .find("\"events\":[")
            .ok_or_else(|| "missing events array".to_string())?;
        let header = &json[..events_at];
        let pe = u64_field(header, "pe")? as usize;
        let recorded = u64_field(header, "recorded")?;
        let capacity = u64_field(header, "capacity")? as usize;
        let mut events = Vec::new();
        for line in json[events_at..].lines() {
            let obj = line.trim().trim_end_matches(',');
            if !obj.starts_with('{') {
                continue;
            }
            match str_field(obj, "kind")? {
                "span" => {
                    let label = str_field(obj, "phase")?;
                    let phase = Phase::from_label(label)
                        .ok_or_else(|| format!("unknown phase {label:?}"))?;
                    events.push(FlightEvent::Span {
                        phase,
                        begin_cycles: u64_field(obj, "begin_cycles")?,
                        end_cycles: u64_field(obj, "end_cycles")?,
                    });
                }
                "note" => {
                    let name = str_field(obj, "metric")?;
                    let counter = Counter::from_name(name)
                        .ok_or_else(|| format!("unknown metric {name:?}"))?;
                    events.push(FlightEvent::Note {
                        counter,
                        value: u64_field(obj, "value")?,
                        at_cycles: u64_field(obj, "at_cycles")?,
                    });
                }
                other => return Err(format!("unknown event kind {other:?}")),
            }
        }
        Ok(FlightDump {
            pe,
            recorded,
            capacity,
            events,
        })
    }

    /// Load every `flightrec-pe*.json` under `dir`, sorted by PE rank.
    /// Returns an empty list when the directory does not exist (no PE
    /// died), an error only on unreadable/corrupt dumps.
    pub fn load_dir(dir: &std::path::Path) -> Result<Vec<FlightDump>, String> {
        let entries = match std::fs::read_dir(dir) {
            Ok(e) => e,
            Err(_) => return Ok(Vec::new()),
        };
        let mut dumps = Vec::new();
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if !name.starts_with("flightrec-pe") || !name.ends_with(".json") {
                continue;
            }
            let body = std::fs::read_to_string(entry.path())
                .map_err(|e| format!("read {name}: {e}"))?;
            dumps.push(FlightDump::parse(&body).map_err(|e| format!("{name}: {e}"))?);
        }
        dumps.sort_by_key(|d| d.pe);
        Ok(dumps)
    }

    /// Re-serialize — byte-identical to the artifact this was parsed from.
    pub fn to_json(&self) -> String {
        dump_json(self.pe, self.recorded, self.capacity, &self.events)
    }

    /// Step through the retained events oldest-first, the replay order
    /// (identical to dump order by construction).
    pub fn replay(&self) -> impl Iterator<Item = &FlightEvent> + '_ {
        self.events.iter()
    }

    /// Earliest cycle stamp among the retained events — the replay clock's
    /// zero point.
    pub fn first_cycles(&self) -> Option<u64> {
        self.events
            .iter()
            .map(|ev| match ev {
                FlightEvent::Span { begin_cycles, .. } => *begin_cycles,
                FlightEvent::Note { at_cycles, .. } => *at_cycles,
            })
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remembers_only_the_last_capacity_events() {
        let ring = FlightRing::new(4);
        for i in 0..10u64 {
            ring.note(Counter::ConveyorPushRetries, i, 100 + i);
        }
        assert_eq!(ring.recorded(), 10);
        let events = ring.events();
        assert_eq!(events.len(), 4);
        // Oldest first: values 6..=9 survive.
        for (i, ev) in events.iter().enumerate() {
            match ev {
                FlightEvent::Note { value, .. } => assert_eq!(*value, 6 + i as u64),
                other => panic!("unexpected event {other:?}"),
            }
        }
    }

    #[test]
    fn spans_and_notes_roundtrip() {
        let ring = FlightRing::new(8);
        ring.span(Phase::Advance, 100, 250);
        ring.note(Counter::ConveyorForcedParks, 1, 300);
        ring.span(Phase::Superstep, 50, 500);
        let events = ring.events();
        assert_eq!(
            events[0],
            FlightEvent::Span {
                phase: Phase::Advance,
                begin_cycles: 100,
                end_cycles: 250
            }
        );
        assert_eq!(
            events[1],
            FlightEvent::Note {
                counter: Counter::ConveyorForcedParks,
                value: 1,
                at_cycles: 300
            }
        );
        assert_eq!(
            events[2],
            FlightEvent::Span {
                phase: Phase::Superstep,
                begin_cycles: 50,
                end_cycles: 500
            }
        );
    }

    #[test]
    fn json_names_phases_and_metrics() {
        let ring = FlightRing::new(8);
        ring.span(Phase::Quiet, 10, 20);
        ring.note(Counter::ConveyorForcedParks, 2, 30);
        let json = ring.to_json(3);
        assert!(json.contains("\"pe\":3"));
        assert!(json.contains("\"phase\":\"quiet\""));
        assert!(json.contains("\"metric\":\"conveyor.forced_parks\""));
        assert!(json.contains("\"recorded\":2"));
    }

    #[test]
    fn empty_ring_dumps_empty_event_list() {
        let ring = FlightRing::new(2);
        assert!(ring.events().is_empty());
        assert!(ring.to_json(0).contains("\"events\":[\n]"));
    }

    #[test]
    fn multi_lap_wraparound_keeps_order_and_counts() {
        // More than two full laps of a capacity-4 ring: 11 events, laps at
        // 4 and 8, cursor mid-lap at dump time.
        let ring = FlightRing::new(4);
        for i in 0..11u64 {
            if i.is_multiple_of(3) {
                ring.span(Phase::Advance, i * 100, i * 100 + 10);
            } else {
                ring.note(Counter::ActorSends, i, 1000 + i);
            }
        }
        assert_eq!(ring.recorded(), 11, "recorded counts every lap");
        let events = ring.events();
        assert_eq!(events.len(), 4, "retention bounded by capacity");
        // The survivors are exactly events 7..=10, oldest first.
        let expect = |i: u64| -> FlightEvent {
            if i.is_multiple_of(3) {
                FlightEvent::Span {
                    phase: Phase::Advance,
                    begin_cycles: i * 100,
                    end_cycles: i * 100 + 10,
                }
            } else {
                FlightEvent::Note {
                    counter: Counter::ActorSends,
                    value: i,
                    at_cycles: 1000 + i,
                }
            }
        };
        for (k, ev) in events.iter().enumerate() {
            assert_eq!(*ev, expect(7 + k as u64), "slot {k} after wraparound");
        }
        // Dump ordering matches the decoded order, and the recorded count
        // survives serialization.
        let json = ring.to_json(2);
        assert!(json.contains("\"recorded\":11"));
        assert!(json.contains("\"capacity\":4"));
        let dump = FlightDump::parse(&json).expect("parse own dump");
        assert_eq!(dump.events, events, "replay order == dump order");
    }

    #[test]
    fn dump_parse_roundtrip_is_byte_identical() {
        let ring = FlightRing::new(3);
        ring.span(Phase::Superstep, 5, 500);
        ring.note(Counter::NetRetries, 2, 77);
        ring.span(Phase::RelayHop, 600, 640);
        ring.note(Counter::ConveyorForcedParks, 1, 700); // evicts the superstep
        let json = ring.to_json(1);
        let dump = FlightDump::parse(&json).expect("parse");
        assert_eq!(dump.pe, 1);
        assert_eq!(dump.recorded, 4);
        assert_eq!(dump.capacity, 3);
        assert_eq!(dump.events.len(), 3);
        assert_eq!(
            dump.to_json(),
            json,
            "parse → serialize reproduces the artifact byte-for-byte"
        );
        // Replay iteration matches dump order item by item.
        assert!(dump.replay().eq(dump.events.iter()));
        assert_eq!(dump.first_cycles(), Some(77));
    }

    #[test]
    fn parse_rejects_corrupt_dumps() {
        assert!(FlightDump::parse("not json").is_err());
        assert!(FlightDump::parse("{\"pe\":0}").is_err(), "no events array");
        let bad_phase = "{\"pe\":0,\"recorded\":1,\"capacity\":1,\"events\":[\n  \
             {\"kind\":\"span\",\"phase\":\"warp\",\"begin_cycles\":1,\"end_cycles\":2,\"dur_us\":0.000}\n]}\n";
        assert!(FlightDump::parse(bad_phase).unwrap_err().contains("warp"));
        let bad_kind = "{\"pe\":0,\"recorded\":1,\"capacity\":1,\"events\":[\n  \
             {\"kind\":\"mystery\"}\n]}\n";
        assert!(FlightDump::parse(bad_kind).unwrap_err().contains("mystery"));
    }

    #[test]
    fn load_dir_collects_ranked_dumps() {
        let dir = std::env::temp_dir().join(format!("fabsp-flightload-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for pe in [3usize, 1] {
            let ring = FlightRing::new(2);
            ring.note(Counter::ActorSends, pe as u64, 10);
            std::fs::write(
                dir.join(format!("flightrec-pe{pe}.json")),
                ring.to_json(pe),
            )
            .unwrap();
        }
        std::fs::write(dir.join("unrelated.txt"), "ignore me").unwrap();
        let dumps = FlightDump::load_dir(&dir).expect("load");
        assert_eq!(
            dumps.iter().map(|d| d.pe).collect::<Vec<_>>(),
            vec![1, 3],
            "sorted by rank, non-dump files ignored"
        );
        std::fs::remove_dir_all(&dir).unwrap();
        assert!(
            FlightDump::load_dir(&dir).expect("missing dir ok").is_empty(),
            "no directory → no dumps, not an error"
        );
    }
}
