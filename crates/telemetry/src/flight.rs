//! Bounded per-PE flight recorder.
//!
//! A ring of the last N span/metric events, written only by the owning PE's
//! thread and read post-mortem — when a PE panics, a testkit fault fires,
//! or the termination checker trips its step budget (both of which surface
//! as PE panics). The writer stores slot words `Relaxed` and then publishes
//! them with a `Release` store of the cursor; a dumper that `Acquire`-loads
//! the cursor therefore sees every event below it fully written. The one
//! slot a concurrent writer may be mid-way through is *above* the acquired
//! cursor and never read. Dumps are best-effort by design: they run during
//! unwinding and must never panic or block.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

use fabsp_hwpc::rdtsc::cycles_to_us;

use crate::metric::{counter_from_index, Counter, Phase};

/// Words per ring slot: tag, timestamp, payload a, payload b.
const WORDS: usize = 4;

const KIND_SPAN: u64 = 1;
const KIND_NOTE: u64 = 2;

/// One decoded flight-recorder event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightEvent {
    /// A completed phase span (absolute rdtsc cycles).
    Span {
        /// Which phase ran.
        phase: Phase,
        /// Cycle stamp at phase entry.
        begin_cycles: u64,
        /// Cycle stamp at phase exit.
        end_cycles: u64,
    },
    /// A notable metric increment (parks, retries, faults — not every
    /// counter bump, only sites that call [`FlightRing::note`]).
    Note {
        /// The counter that moved.
        counter: Counter,
        /// The increment or observed value.
        value: u64,
        /// Cycle stamp when it moved.
        at_cycles: u64,
    },
}

/// The bounded event ring. Single writer (the owning PE), any reader.
#[derive(Debug)]
pub struct FlightRing {
    slots: Vec<AtomicU64>,
    /// Total events ever recorded; `cursor % capacity` is the next slot.
    cursor: AtomicU64,
    capacity: usize,
}

impl FlightRing {
    /// A ring remembering the last `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> FlightRing {
        let capacity = capacity.max(1);
        FlightRing {
            slots: (0..capacity * WORDS).map(|_| AtomicU64::new(0)).collect(),
            cursor: AtomicU64::new(0),
            capacity,
        }
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Record a completed phase span. Owning-PE thread only.
    #[inline]
    pub fn span(&self, phase: Phase, begin_cycles: u64, end_cycles: u64) {
        self.record(
            (KIND_SPAN << 32) | phase as u64,
            end_cycles,
            begin_cycles,
            end_cycles,
        );
    }

    /// Record a notable metric increment. Owning-PE thread only.
    #[inline]
    pub fn note(&self, counter: Counter, value: u64, at_cycles: u64) {
        self.record((KIND_NOTE << 32) | counter as u64, at_cycles, value, 0);
    }

    #[inline]
    fn record(&self, tag: u64, t: u64, a: u64, b: u64) {
        // Single writer: a Relaxed read of our own cursor is exact. Slot
        // words go in Relaxed; the cursor bump is the Release publication
        // that makes them visible to an Acquire-loading dumper.
        let seq = self.cursor.load(Ordering::Relaxed);
        let base = (seq as usize % self.capacity) * WORDS;
        self.slots[base].store(tag, Ordering::Relaxed);
        self.slots[base + 1].store(t, Ordering::Relaxed);
        self.slots[base + 2].store(a, Ordering::Relaxed);
        self.slots[base + 3].store(b, Ordering::Relaxed);
        self.cursor.store(seq + 1, Ordering::Release);
    }

    /// Total events ever recorded (not bounded by capacity).
    pub fn recorded(&self) -> u64 {
        self.cursor.load(Ordering::Acquire)
    }

    /// Decode the retained events, oldest first. Safe from any thread;
    /// events below the acquired cursor are fully published.
    pub fn events(&self) -> Vec<FlightEvent> {
        let seq = self.cursor.load(Ordering::Acquire);
        let kept = (seq as usize).min(self.capacity);
        let mut out = Vec::with_capacity(kept);
        for i in 0..kept {
            let idx = seq - kept as u64 + i as u64;
            let base = (idx as usize % self.capacity) * WORDS;
            let tag = self.slots[base].load(Ordering::Relaxed);
            let t = self.slots[base + 1].load(Ordering::Relaxed);
            let a = self.slots[base + 2].load(Ordering::Relaxed);
            let id = (tag & 0xffff_ffff) as usize;
            match tag >> 32 {
                KIND_SPAN => {
                    let b = self.slots[base + 3].load(Ordering::Relaxed);
                    if let Some(phase) = Phase::from_index(id) {
                        out.push(FlightEvent::Span {
                            phase,
                            begin_cycles: a,
                            end_cycles: b,
                        });
                    }
                }
                KIND_NOTE => {
                    if let Some(counter) = counter_from_index(id) {
                        out.push(FlightEvent::Note {
                            counter,
                            value: a,
                            at_cycles: t,
                        });
                    }
                }
                _ => {}
            }
        }
        out
    }

    /// Serialize the retained events as the `flightrec-pe*.json` payload.
    pub fn to_json(&self, pe: usize) -> String {
        let events = self.events();
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"pe\":{pe},\"recorded\":{},\"capacity\":{},\"events\":[",
            self.recorded(),
            self.capacity
        );
        for (i, ev) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n  ");
            match ev {
                FlightEvent::Span {
                    phase,
                    begin_cycles,
                    end_cycles,
                } => {
                    let _ = write!(
                        out,
                        "{{\"kind\":\"span\",\"phase\":\"{}\",\"begin_cycles\":{begin_cycles},\
                         \"end_cycles\":{end_cycles},\"dur_us\":{:.3}}}",
                        phase.label(),
                        cycles_to_us(end_cycles.saturating_sub(*begin_cycles)),
                    );
                }
                FlightEvent::Note {
                    counter,
                    value,
                    at_cycles,
                } => {
                    let _ = write!(
                        out,
                        "{{\"kind\":\"note\",\"metric\":\"{}\",\"value\":{value},\
                         \"at_cycles\":{at_cycles}}}",
                        counter.name(),
                    );
                }
            }
        }
        out.push_str("\n]}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remembers_only_the_last_capacity_events() {
        let ring = FlightRing::new(4);
        for i in 0..10u64 {
            ring.note(Counter::ConveyorPushRetries, i, 100 + i);
        }
        assert_eq!(ring.recorded(), 10);
        let events = ring.events();
        assert_eq!(events.len(), 4);
        // Oldest first: values 6..=9 survive.
        for (i, ev) in events.iter().enumerate() {
            match ev {
                FlightEvent::Note { value, .. } => assert_eq!(*value, 6 + i as u64),
                other => panic!("unexpected event {other:?}"),
            }
        }
    }

    #[test]
    fn spans_and_notes_roundtrip() {
        let ring = FlightRing::new(8);
        ring.span(Phase::Advance, 100, 250);
        ring.note(Counter::ConveyorForcedParks, 1, 300);
        ring.span(Phase::Superstep, 50, 500);
        let events = ring.events();
        assert_eq!(
            events[0],
            FlightEvent::Span {
                phase: Phase::Advance,
                begin_cycles: 100,
                end_cycles: 250
            }
        );
        assert_eq!(
            events[1],
            FlightEvent::Note {
                counter: Counter::ConveyorForcedParks,
                value: 1,
                at_cycles: 300
            }
        );
        assert_eq!(
            events[2],
            FlightEvent::Span {
                phase: Phase::Superstep,
                begin_cycles: 50,
                end_cycles: 500
            }
        );
    }

    #[test]
    fn json_names_phases_and_metrics() {
        let ring = FlightRing::new(8);
        ring.span(Phase::Quiet, 10, 20);
        ring.note(Counter::ConveyorForcedParks, 2, 30);
        let json = ring.to_json(3);
        assert!(json.contains("\"pe\":3"));
        assert!(json.contains("\"phase\":\"quiet\""));
        assert!(json.contains("\"metric\":\"conveyor.forced_parks\""));
        assert!(json.contains("\"recorded\":2"));
    }

    #[test]
    fn empty_ring_dumps_empty_event_list() {
        let ring = FlightRing::new(2);
        assert!(ring.events().is_empty());
        assert!(ring.to_json(0).contains("\"events\":[\n]"));
    }
}
