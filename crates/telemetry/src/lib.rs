//! # fabsp-telemetry — always-on runtime observability
//!
//! The paper's pipeline is post-mortem: traces are collected per PE and
//! rendered after `execute()` returns. A production FA-BSP runtime also
//! needs *always-on, low-overhead* visibility into the runtime itself —
//! phase-level timing of supersteps / `advance` / `quiet` / relay hops,
//! substrate counters, and enough recent history to diagnose a crash.
//! This crate provides the three pieces the rest of the stack embeds:
//!
//! - [`TelemetryRegistry`] — a lock-free per-PE metrics registry of
//!   monotonic [`Counter`]s, [`Gauge`]s, and log₂-bucketed [`Hist`]ograms,
//!   all plain `AtomicU64`s. Each metric cell has a *single writer* (the
//!   owning PE's thread), so writes are `Relaxed` load+store pairs; readers
//!   take torn-free point-in-time [`Snapshot`]s from any thread.
//! - [`FlightRing`] — a bounded per-PE ring of the last N span/metric
//!   events, published with a `Release` cursor so a post-mortem dump (on PE
//!   panic, injected fault, or termination-checker trip) sees every fully
//!   written event. Dumps serialize to `flightrec-pe<rank>.json`.
//! - [`Phase`] — the phase vocabulary shared with the trace layer: span
//!   begin/end pairs for supersteps, `advance`, `quiet`, and relay hops
//!   flow through the existing `TraceBuffer` batching path and export as
//!   Perfetto duration events.
//! - [`overhead`] — the continuous-profiling governor: instrumentation
//!   self-cost is metered into the registry, an [`OverheadGovernor`]
//!   compares it against an [`OverheadBudget`] per observation window, and a
//!   shared [`SamplingKnob`] ratchets the span-sampling stride so measured
//!   overhead stays inside the budget while the trace records why.
//!
//! The registry is deliberately *fixed-vocabulary*: metric identity is an
//! enum, not a string, so the hot path never hashes or allocates.

#![forbid(unsafe_code)]

pub mod flight;
pub mod metric;
pub mod overhead;
pub mod registry;

pub use flight::{FlightDump, FlightEvent, FlightRing};
pub use metric::{phase_site, Counter, Gauge, Hist, HistBuckets, Phase, PhaseSite, HIST_BUCKETS};
pub use overhead::{
    ContinuousReport, GovernorDecision, GovernorSample, OverheadBudget, OverheadGovernor,
    SamplingKnob,
};
pub use registry::{Frame, PeMetrics, PeSnapshot, Snapshot, TelemetryRegistry};
