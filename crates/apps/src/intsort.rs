//! Distributed bucket/integer sort — the canonical FA-BSP stress test
//! (NAS IS-style): every key is exchanged over the conveyors exactly once,
//! so message volume equals data volume and the network is the whole cost.
//!
//! Each PE draws `keys_per_pe` uniform keys from `0..n_pes * bucket_size`,
//! routes every key to its bucket owner (`key / bucket_size`), and the
//! owner sorts its bucket locally after the exchange. The rank-order
//! concatenation of the buckets is then globally sorted. Because each
//! bucket is sorted *after* delivery, the result is independent of
//! delivery order by construction — the property the schedule-fuzz matrix
//! asserts bit-for-bit.

use actorprof::TraceBundle;
use fabsp_shmem::Grid;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;
use std::ops::{Deref, DerefMut};
use std::rc::Rc;

use crate::common::{AppError, DestBuckets, RunConfig};

/// Configuration for an integer-sort run: the shared [`RunConfig`] plus
/// the sort-specific workload knobs. Derefs to [`RunConfig`].
#[derive(Debug, Clone)]
pub struct IntSortConfig {
    /// Shared run configuration. `run.seed` seeds the key streams.
    pub run: RunConfig,
    /// Keys drawn by each PE.
    pub keys_per_pe: usize,
    /// Key range owned by each PE: PE `p` owns `[p*bucket_size,
    /// (p+1)*bucket_size)`.
    pub bucket_size: u64,
}

impl IntSortConfig {
    /// A small default on the given grid.
    pub fn new(grid: Grid) -> IntSortConfig {
        IntSortConfig {
            run: RunConfig::new(grid).with_seed(0x1507),
            keys_per_pe: 2048,
            bucket_size: 512,
        }
    }
}

impl Deref for IntSortConfig {
    type Target = RunConfig;
    fn deref(&self) -> &RunConfig {
        &self.run
    }
}

impl DerefMut for IntSortConfig {
    fn deref_mut(&mut self) -> &mut RunConfig {
        &mut self.run
    }
}

/// Result of an integer-sort run.
#[derive(Debug)]
pub struct IntSortOutcome {
    /// The globally sorted keys (rank-order concatenation of the sorted
    /// buckets).
    pub sorted: Vec<u64>,
    /// Keys each PE's bucket received — uniform keys spread evenly, so
    /// this doubles as a load-balance sanity signal.
    pub received_per_pe: Vec<u64>,
    /// The collected traces.
    pub bundle: TraceBundle,
    /// Fault-tolerance activity (clean on an undisturbed run).
    pub recovery: actorprof::RecoveryLog,
}

/// The per-PE key stream a seed names (shared with the sequential oracle).
fn keys_of_pe(config: &IntSortConfig, rank: usize, n_pes: usize) -> Vec<u64> {
    let space = n_pes as u64 * config.bucket_size;
    let mut rng = StdRng::seed_from_u64(config.seed ^ ((rank as u64) << 32));
    (0..config.keys_per_pe)
        .map(|_| rng.gen_range(0..space))
        .collect()
}

/// Sequential oracle: every PE's key stream, globally sorted.
pub fn sequential_sort(config: &IntSortConfig) -> Vec<u64> {
    let n_pes = config.grid.n_pes();
    let mut all: Vec<u64> = (0..n_pes)
        .flat_map(|rank| keys_of_pe(config, rank, n_pes))
        .collect();
    all.sort_unstable();
    all
}

/// Run the bucket sort. Validates against [`sequential_sort`].
pub fn run(config: &IntSortConfig) -> Result<IntSortOutcome, AppError> {
    let bucket_size = config.bucket_size;
    let report = config.profiler().run(|pe, prof| {
        let bucket = Rc::new(RefCell::new(Vec::<u64>::new()));
        let b = Rc::clone(&bucket);
        let mut actor = prof
            .selector(1, move |_mb, key: u64, _from, _ctx| {
                b.borrow_mut().push(key);
            })
            .expect("selector construction");
        let n_pes = pe.n_pes();
        actor
            .execute(pe, |ctx| {
                let mut scatter = DestBuckets::new(n_pes);
                for key in keys_of_pe(config, ctx.rank(), n_pes) {
                    scatter.stage((key / bucket_size) as usize, key);
                }
                scatter.send_all(ctx, 0).expect("key send");
                ctx.done(0).expect("done(0)");
            })
            .expect("intsort execute");
        // local sort after the exchange: delivery order is irrelevant
        let mut local = std::mem::take(&mut *bucket.borrow_mut());
        local.sort_unstable();
        local
    })?;

    let (per_pe, bundle, recovery) = (report.results, report.bundle, report.recovery);
    let received_per_pe: Vec<u64> = per_pe.iter().map(|b| b.len() as u64).collect();
    // every bucket must hold only its own key range
    for (rank, b) in per_pe.iter().enumerate() {
        let lo = rank as u64 * bucket_size;
        if !b.iter().all(|&k| k >= lo && k < lo + bucket_size) {
            return Err(AppError::Validation(format!(
                "bucket {rank} holds a key outside [{lo}, {})",
                lo + bucket_size
            )));
        }
    }
    let sorted: Vec<u64> = per_pe.into_iter().flatten().collect();
    if sorted != sequential_sort(config) {
        return Err(AppError::Validation(
            "bucket-sorted keys differ from the sequential oracle".into(),
        ));
    }
    Ok(IntSortOutcome {
        sorted,
        received_per_pe,
        bundle,
        recovery,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use actorprof_trace::TraceConfig;

    #[test]
    fn sorts_globally_one_node() {
        let mut cfg = IntSortConfig::new(Grid::single_node(4).unwrap());
        cfg.keys_per_pe = 256;
        cfg.bucket_size = 64;
        let out = run(&cfg).unwrap();
        assert_eq!(out.sorted.len(), 1024);
        assert!(out.sorted.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn sorts_globally_two_nodes_with_trace() {
        let mut cfg = IntSortConfig::new(Grid::new(2, 2).unwrap());
        cfg.keys_per_pe = 200;
        cfg.bucket_size = 32;
        cfg.trace = TraceConfig::off().with_logical();
        let out = run(&cfg).unwrap();
        let m = out.bundle.logical_matrix().unwrap();
        assert_eq!(m.total(), 800, "every key crosses the conveyor once");
        assert_eq!(m.row_totals(), vec![200; 4]);
        // uniform keys: received counts sum to the total and every
        // bucket got something at this scale
        assert_eq!(out.received_per_pe.iter().sum::<u64>(), 800);
        assert!(out.received_per_pe.iter().all(|&c| c > 0));
    }

    #[test]
    fn deterministic_given_seed() {
        let mut cfg = IntSortConfig::new(Grid::single_node(2).unwrap());
        cfg.keys_per_pe = 128;
        cfg.bucket_size = 64;
        let a = run(&cfg).unwrap();
        let b = run(&cfg).unwrap();
        assert_eq!(a.sorted, b.sorted);
        cfg.seed ^= 0xABCD;
        let c = run(&cfg).unwrap();
        assert_ne!(a.sorted, c.sorted, "different seed, different keys");
    }

    #[test]
    fn recovers_from_a_killed_pe() {
        use fabsp_shmem::{FaultSpec, RecoverySpec};
        let mut cfg = IntSortConfig::new(Grid::single_node(2).unwrap());
        cfg.keys_per_pe = 64;
        cfg.bucket_size = 32;
        let base = run(&cfg).unwrap();
        assert!(base.recovery.is_clean(), "{}", base.recovery);
        cfg.run = cfg
            .run
            .clone()
            .with_faults(FaultSpec::kill_pe(1, 0))
            .with_recovery(RecoverySpec::restart(2))
            .with_checkpoint_every(1);
        let out = run(&cfg).unwrap();
        assert_eq!(out.sorted, base.sorted);
        assert_eq!(out.recovery.restarts, 1, "{}", out.recovery);
    }
}
