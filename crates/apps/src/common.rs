//! Shared application plumbing.

use actorprof::{ProfError, TraceBundle};
use actorprof_trace::{PeCollector, TraceConfig};
use fabsp_actor::{ActorError, MainCtx};
use fabsp_conveyors::ConveyorOptions;
use fabsp_shmem::{FaultSpec, Grid, Harness, RecoverySpec, SchedSpec, ShmemError, TransportSpec};

/// Run configuration shared by every bundled application: layout, tracing,
/// aggregation, randomness, and testkit controls in one place.
///
/// Per-app configs ([`HistogramConfig`](crate::histogram::HistogramConfig),
/// [`IndexGatherConfig`](crate::index_gather::IndexGatherConfig),
/// [`TriangleConfig`](crate::triangle::TriangleConfig)) are thin typed
/// wrappers that `Deref` to this, so `cfg.trace = …` / `cfg.sched = …`
/// keep working at every call site while the wiring lives here once.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// PE/node layout.
    pub grid: Grid,
    /// What to trace.
    pub trace: TraceConfig,
    /// Conveyor aggregation options.
    pub conveyor: ConveyorOptions,
    /// RNG seed for workload generation (apps derive per-PE streams from
    /// it; runs are deterministic given the seed).
    pub seed: u64,
    /// Thread schedule: OS-free-running (default) or a seeded
    /// deterministic random walk (testkit).
    pub sched: SchedSpec,
    /// Substrate fault injection (testkit; [`FaultSpec::NONE`] in
    /// production).
    pub faults: FaultSpec,
    /// What to do when a PE dies mid-run ([`RecoverySpec::Abort`] by
    /// default).
    pub recovery: RecoverySpec,
    /// Capture a symmetric-state checkpoint every `n` supersteps.
    pub checkpoint_every: Option<u64>,
    /// Continuous-profiling overhead budget, percent (`None` = off).
    pub continuous: Option<f64>,
    /// Transport backend carrying cross-node bytes (`InProc` by default).
    pub transport: TransportSpec,
}

impl RunConfig {
    /// Defaults on the given grid: no tracing, default conveyor options,
    /// seed 0, OS scheduling, no faults.
    pub fn new(grid: Grid) -> RunConfig {
        RunConfig {
            grid,
            trace: TraceConfig::off(),
            conveyor: ConveyorOptions::default(),
            seed: 0,
            sched: SchedSpec::Os,
            faults: FaultSpec::NONE,
            recovery: RecoverySpec::Abort,
            checkpoint_every: None,
            continuous: None,
            transport: TransportSpec::InProc,
        }
    }

    /// Select what to trace.
    pub fn with_trace(mut self, trace: TraceConfig) -> RunConfig {
        self.trace = trace;
        self
    }

    /// Override conveyor aggregation options.
    pub fn with_conveyor(mut self, conveyor: ConveyorOptions) -> RunConfig {
        self.conveyor = conveyor;
        self
    }

    /// Set the workload RNG seed.
    pub fn with_seed(mut self, seed: u64) -> RunConfig {
        self.seed = seed;
        self
    }

    /// Select the thread schedule.
    pub fn with_sched(mut self, sched: SchedSpec) -> RunConfig {
        self.sched = sched;
        self
    }

    /// Inject substrate faults.
    pub fn with_faults(mut self, faults: FaultSpec) -> RunConfig {
        self.faults = faults;
        self
    }

    /// Select the recovery policy for PE failures.
    pub fn with_recovery(mut self, recovery: RecoverySpec) -> RunConfig {
        self.recovery = recovery;
        self
    }

    /// Checkpoint the symmetric state every `n` supersteps.
    pub fn with_checkpoint_every(mut self, n: u64) -> RunConfig {
        self.checkpoint_every = Some(n);
        self
    }

    /// Run under continuous profiling with a `pct`-percent overhead budget.
    pub fn with_continuous(mut self, pct: f64) -> RunConfig {
        self.continuous = Some(pct);
        self
    }

    /// Select the transport backend.
    pub fn with_transport(mut self, transport: TransportSpec) -> RunConfig {
        self.transport = transport;
        self
    }

    /// The SPMD harness this configuration describes.
    pub fn harness(&self) -> Harness {
        let mut h = Harness::new(self.grid)
            .sched(self.sched)
            .faults(self.faults)
            .recovery(self.recovery)
            .transport(self.transport);
        if let Some(n) = self.checkpoint_every {
            h = h.checkpoint_every(n);
        }
        h
    }

    /// An [`actorprof::Profiler`] carrying this configuration — the apps
    /// delegate their run wiring to the facade through this.
    pub fn profiler(&self) -> actorprof::Profiler {
        let mut p = actorprof::Profiler::new(self.grid)
            .trace_config(self.trace.clone())
            .conveyor(self.conveyor)
            .sched(self.sched)
            .faults(self.faults)
            .recovery(self.recovery)
            .transport(self.transport);
        if let Some(n) = self.checkpoint_every {
            p = p.checkpoint_every(n);
        }
        if let Some(pct) = self.continuous {
            p = p.continuous(actorprof::OverheadBudget::pct(pct));
        }
        p
    }
}

/// Errors surfaced by the bundled applications.
#[derive(Debug)]
pub enum AppError {
    /// SPMD / symmetric-memory failure.
    Shmem(ShmemError),
    /// Actor-runtime failure.
    Actor(ActorError),
    /// Trace assembly failure.
    Prof(ProfError),
    /// The application's self-validation failed (the §IV-C assertion).
    Validation(String),
}

impl std::fmt::Display for AppError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AppError::Shmem(e) => write!(f, "shmem: {e}"),
            AppError::Actor(e) => write!(f, "actor: {e}"),
            AppError::Prof(e) => write!(f, "profiler: {e}"),
            AppError::Validation(m) => write!(f, "validation failed: {m}"),
        }
    }
}

impl std::error::Error for AppError {}

impl From<ShmemError> for AppError {
    fn from(e: ShmemError) -> Self {
        AppError::Shmem(e)
    }
}

impl From<ActorError> for AppError {
    fn from(e: ActorError) -> Self {
        AppError::Actor(e)
    }
}

impl From<ProfError> for AppError {
    fn from(e: ProfError) -> Self {
        AppError::Prof(e)
    }
}

impl From<actorprof::RunError> for AppError {
    fn from(e: actorprof::RunError) -> Self {
        match e {
            actorprof::RunError::Shmem(e) => AppError::Shmem(e),
            actorprof::RunError::Actor(e) => AppError::Actor(e),
            actorprof::RunError::Prof(e) => AppError::Prof(e),
        }
    }
}

/// Per-destination staging for batched submission: an app's MAIN body
/// generates its whole workload into buckets, then
/// [`send_all`](DestBuckets::send_all) submits one
/// [`send_slice`](MainCtx::send_slice) per destination. This replaces the
/// per-item `ctx.send` loop — the conveyor orders items per
/// (source, destination) link either way, so results are unchanged while
/// the protocol cost is amortized over whole slices.
#[derive(Debug)]
pub struct DestBuckets<T> {
    buckets: Vec<Vec<T>>,
}

impl<T: Copy + Default + Send + 'static> DestBuckets<T> {
    /// Empty buckets for `n_pes` destinations.
    pub fn new(n_pes: usize) -> DestBuckets<T> {
        DestBuckets {
            buckets: (0..n_pes).map(|_| Vec::new()).collect(),
        }
    }

    /// Stage `msg` for destination `dst`.
    pub fn stage(&mut self, dst: usize, msg: T) {
        self.buckets[dst].push(msg);
    }

    /// Submit every bucket through `ctx.send_slice` on `mailbox`, clearing
    /// the buckets for reuse (e.g. the next BFS level).
    pub fn send_all(
        &mut self,
        ctx: &mut MainCtx<'_, '_, '_, T>,
        mailbox: usize,
    ) -> Result<(), ActorError> {
        for (dst, bucket) in self.buckets.iter_mut().enumerate() {
            ctx.send_slice(mailbox, bucket, dst)?;
            bucket.clear();
        }
        Ok(())
    }

    /// Total staged items across all destinations.
    pub fn len(&self) -> usize {
        self.buckets.iter().map(Vec::len).sum()
    }

    /// Whether nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.buckets.iter().all(Vec::is_empty)
    }
}

/// Assemble per-PE `(result, collector)` pairs into results + bundle.
pub fn split_outcomes<R>(outcomes: Vec<(R, PeCollector)>) -> Result<(Vec<R>, TraceBundle), AppError> {
    let mut results = Vec::with_capacity(outcomes.len());
    let mut collectors = Vec::with_capacity(outcomes.len());
    for (r, c) in outcomes {
        results.push(r);
        collectors.push(c);
    }
    let bundle = TraceBundle::from_collectors(collectors)?;
    Ok((results, bundle))
}

#[cfg(test)]
mod tests {
    use super::*;
    use actorprof_trace::TraceConfig;

    #[test]
    fn split_outcomes_orders_by_rank() {
        let outcomes = (0..3)
            .map(|pe| (pe * 10, PeCollector::new(pe, 3, 3, TraceConfig::off())))
            .collect();
        let (results, bundle) = split_outcomes::<usize>(outcomes).unwrap();
        assert_eq!(results, vec![0, 10, 20]);
        assert_eq!(bundle.n_pes(), 3);
    }

    #[test]
    fn run_config_builder_sets_fields() {
        let grid = Grid::single_node(2).unwrap();
        let cfg = RunConfig::new(grid)
            .with_trace(TraceConfig::off().with_logical())
            .with_seed(7)
            .with_sched(fabsp_shmem::SchedSpec::random_walk(3))
            .with_faults(FaultSpec::NONE)
            .with_conveyor(ConveyorOptions::default());
        assert_eq!(cfg.seed, 7);
        assert!(cfg.trace.logical);
        assert!(matches!(
            cfg.sched,
            fabsp_shmem::SchedSpec::RandomWalk { seed: 3, .. }
        ));
    }

    #[test]
    fn error_display() {
        let e: AppError = ShmemError::EmptyGrid.into();
        assert!(e.to_string().contains("shmem"));
        let e = AppError::Validation("count mismatch".into());
        assert!(e.to_string().contains("count mismatch"));
    }
}
