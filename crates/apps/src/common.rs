//! Shared application plumbing.

use actorprof::{ProfError, TraceBundle};
use actorprof_trace::PeCollector;
use fabsp_actor::ActorError;
use fabsp_shmem::ShmemError;

/// Errors surfaced by the bundled applications.
#[derive(Debug)]
pub enum AppError {
    /// SPMD / symmetric-memory failure.
    Shmem(ShmemError),
    /// Actor-runtime failure.
    Actor(ActorError),
    /// Trace assembly failure.
    Prof(ProfError),
    /// The application's self-validation failed (the §IV-C assertion).
    Validation(String),
}

impl std::fmt::Display for AppError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AppError::Shmem(e) => write!(f, "shmem: {e}"),
            AppError::Actor(e) => write!(f, "actor: {e}"),
            AppError::Prof(e) => write!(f, "profiler: {e}"),
            AppError::Validation(m) => write!(f, "validation failed: {m}"),
        }
    }
}

impl std::error::Error for AppError {}

impl From<ShmemError> for AppError {
    fn from(e: ShmemError) -> Self {
        AppError::Shmem(e)
    }
}

impl From<ActorError> for AppError {
    fn from(e: ActorError) -> Self {
        AppError::Actor(e)
    }
}

impl From<ProfError> for AppError {
    fn from(e: ProfError) -> Self {
        AppError::Prof(e)
    }
}

/// Assemble per-PE `(result, collector)` pairs into results + bundle.
pub fn split_outcomes<R>(outcomes: Vec<(R, PeCollector)>) -> Result<(Vec<R>, TraceBundle), AppError> {
    let mut results = Vec::with_capacity(outcomes.len());
    let mut collectors = Vec::with_capacity(outcomes.len());
    for (r, c) in outcomes {
        results.push(r);
        collectors.push(c);
    }
    let bundle = TraceBundle::from_collectors(collectors)?;
    Ok((results, bundle))
}

#[cfg(test)]
mod tests {
    use super::*;
    use actorprof_trace::TraceConfig;

    #[test]
    fn split_outcomes_orders_by_rank() {
        let outcomes = (0..3)
            .map(|pe| (pe * 10, PeCollector::new(pe, 3, 3, TraceConfig::off())))
            .collect();
        let (results, bundle) = split_outcomes::<usize>(outcomes).unwrap();
        assert_eq!(results, vec![0, 10, 20]);
        assert_eq!(bundle.n_pes(), 3);
    }

    #[test]
    fn error_display() {
        let e: AppError = ShmemError::EmptyGrid.into();
        assert!(e.to_string().contains("shmem"));
        let e = AppError::Validation("count mismatch".into());
        assert!(e.to_string().contains("count mismatch"));
    }
}
