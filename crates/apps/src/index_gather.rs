//! Index-gather — bale's `ig` kernel as a two-mailbox selector.
//!
//! Each PE owns a slice of a distributed table and issues random reads:
//! a request `(requester-local slot, global index)` goes to the owner on
//! **mailbox 0**; the owner's handler answers with the table value on
//! **mailbox 1**; the requester's handler stores it. Mailbox 1's done is
//! chained after mailbox 0 — the canonical request/response termination
//! pattern of HClib-Actor selectors.

use actorprof::TraceBundle;
use fabsp_shmem::Grid;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;
use std::ops::{Deref, DerefMut};
use std::rc::Rc;

use crate::common::{AppError, DestBuckets, RunConfig};

/// Configuration for an index-gather run: the shared [`RunConfig`] plus
/// the index-gather workload knobs. Derefs to [`RunConfig`].
#[derive(Debug, Clone)]
pub struct IndexGatherConfig {
    /// Shared run configuration (layout, tracing, schedule, faults).
    pub run: RunConfig,
    /// Table entries owned by each PE.
    pub table_size_per_pe: usize,
    /// Reads issued by each PE.
    pub reads_per_pe: usize,
}

impl IndexGatherConfig {
    /// A small default on the given grid.
    pub fn new(grid: Grid) -> IndexGatherConfig {
        IndexGatherConfig {
            run: RunConfig::new(grid).with_seed(0x16A7),
            table_size_per_pe: 512,
            reads_per_pe: 2048,
        }
    }
}

impl Deref for IndexGatherConfig {
    type Target = RunConfig;
    fn deref(&self) -> &RunConfig {
        &self.run
    }
}

impl DerefMut for IndexGatherConfig {
    fn deref_mut(&mut self) -> &mut RunConfig {
        &mut self.run
    }
}

/// Result of an index-gather run.
#[derive(Debug)]
pub struct IndexGatherOutcome {
    /// Number of reads whose gathered value matched the table definition
    /// (validated to equal all of them).
    pub correct_reads: u64,
    /// The collected traces.
    pub bundle: TraceBundle,
    /// Fault-tolerance activity (clean on an undisturbed run).
    pub recovery: actorprof::RecoveryLog,
}

/// The table value at global index `g` (a recomputable definition, so the
/// requester can validate without a second communication round).
#[inline]
fn table_value(g: u64) -> u64 {
    g.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xA5A5
}

/// Message wire format for requests: `(slot << 40) | local_index`; replies
/// carry `(slot << 40) | (value & MASK)` — values are truncated to 40 bits
/// for the test workload (documented limitation of the packed format).
const SLOT_SHIFT: u32 = 40;
const VAL_MASK: u64 = (1 << SLOT_SHIFT) - 1;

/// Run the index-gather kernel.
pub fn run(config: &IndexGatherConfig) -> Result<IndexGatherOutcome, AppError> {
    let table = config.table_size_per_pe;
    let report = config.profiler().run(|pe, prof| {
        // local slice of the distributed table
        let my_base = (pe.rank() * table) as u64;
        let local: Vec<u64> = (0..table as u64)
            .map(|i| table_value(my_base + i) & VAL_MASK)
            .collect();
        let gathered = Rc::new(RefCell::new(vec![0u64; config.reads_per_pe]));
        let g = Rc::clone(&gathered);
        let mut actor = prof
            .selector(2, move |mb, msg: u64, from, ctx| match mb {
                0 => {
                    // request: answer with the table value, same packing
                    let slot = msg >> SLOT_SHIFT;
                    let local_idx = (msg & VAL_MASK) as usize;
                    let value = local[local_idx];
                    ctx.send(1, (slot << SLOT_SHIFT) | value, from as usize);
                }
                1 => {
                    // response: store gathered value at the request slot
                    let slot = (msg >> SLOT_SHIFT) as usize;
                    g.borrow_mut()[slot] = msg & VAL_MASK;
                }
                _ => unreachable!(),
            })
            .expect("selector construction");
        actor.chain_done(1, 0).expect("chain response after request");
        let n_pes = pe.n_pes();
        let indices: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(config.seed ^ ((pe.rank() as u64) << 24));
            (0..config.reads_per_pe)
                .map(|_| rng.gen_range(0..(n_pes * table) as u64))
                .collect()
        };
        actor
            .execute(pe, |ctx| {
                let mut requests = DestBuckets::new(n_pes);
                for (slot, &global) in indices.iter().enumerate() {
                    let owner = (global as usize) / table;
                    let local_idx = (global as usize) % table;
                    requests.stage(owner, ((slot as u64) << SLOT_SHIFT) | local_idx as u64);
                }
                requests.send_all(ctx, 0).expect("request send");
                ctx.done(0).expect("done(0)");
            })
            .expect("index-gather execute");
        let correct = gathered
            .borrow()
            .iter()
            .zip(&indices)
            .filter(|(got, &global)| **got == table_value(global) & VAL_MASK)
            .count() as u64;
        correct
    })?;

    let (per_pe_correct, bundle, recovery) = (report.results, report.bundle, report.recovery);
    let correct_reads: u64 = per_pe_correct.iter().sum();
    let expected = (config.reads_per_pe * config.grid.n_pes()) as u64;
    if correct_reads != expected {
        return Err(AppError::Validation(format!(
            "index-gather: {correct_reads}/{expected} reads correct"
        )));
    }
    Ok(IndexGatherOutcome {
        correct_reads,
        bundle,
        recovery,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use actorprof_trace::TraceConfig;

    #[test]
    fn gathers_correct_values_one_node() {
        let mut cfg = IndexGatherConfig::new(Grid::single_node(3).unwrap());
        cfg.reads_per_pe = 200;
        cfg.table_size_per_pe = 64;
        let out = run(&cfg).unwrap();
        assert_eq!(out.correct_reads, 600);
    }

    #[test]
    fn gathers_correct_values_two_nodes_with_traces() {
        let mut cfg = IndexGatherConfig::new(Grid::new(2, 2).unwrap());
        cfg.reads_per_pe = 150;
        cfg.table_size_per_pe = 32;
        cfg.trace = TraceConfig::off().with_logical().with_overall();
        let out = run(&cfg).unwrap();
        assert_eq!(out.correct_reads, 600);
        let m = out.bundle.logical_matrix().unwrap();
        // requests + responses: each PE sends 150 requests and answers
        // whatever it was asked, so total messages = 2 * 600.
        assert_eq!(m.total(), 1200);
        assert!(out.bundle.has_overall());
    }

    #[test]
    fn value_packing_roundtrips() {
        for g in [0u64, 1, 12345, 99_999] {
            let v = table_value(g) & VAL_MASK;
            assert!(v <= VAL_MASK);
            let packed = (7u64 << SLOT_SHIFT) | v;
            assert_eq!(packed >> SLOT_SHIFT, 7);
            assert_eq!(packed & VAL_MASK, v);
        }
    }
}
