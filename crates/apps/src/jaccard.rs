//! Edge Jaccard similarity — §IV-A: "We are actively using ActorProf in
//! our workloads, to name a few - Influence Maximization, Jaccard
//! Similarity ..." (the latter from Elmougy et al., ISC'24).
//!
//! For every edge `(u, v)` of an undirected graph, the Jaccard coefficient
//! is `|N(u) ∩ N(v)| / |N(u) ∪ N(v)|`. The FA-BSP formulation mirrors
//! triangle counting: the owner of `u` enumerates wedges `(w, v)` with
//! `w ∈ N(u)` and sends an intersection probe to the owner of `w`'s
//! adjacency; each confirmed probe increments the edge's intersection
//! counter at the edge's owner (a second mailbox carries the
//! confirmations).

use actorprof::TraceBundle;
use fabsp_graph::{Csr, Distribution};
use fabsp_shmem::Grid;
use std::cell::RefCell;
use std::collections::HashMap;
use std::ops::{Deref, DerefMut};
use std::rc::Rc;

use crate::common::{AppError, DestBuckets, RunConfig};

/// Configuration for a Jaccard run: just the shared [`RunConfig`] (the
/// graph is the workload knob). Derefs to [`RunConfig`].
#[derive(Debug, Clone)]
pub struct JaccardConfig {
    /// Shared run configuration.
    pub run: RunConfig,
}

impl JaccardConfig {
    /// Defaults with tracing off.
    pub fn new(grid: Grid) -> JaccardConfig {
        JaccardConfig {
            run: RunConfig::new(grid),
        }
    }
}

impl Deref for JaccardConfig {
    type Target = RunConfig;
    fn deref(&self) -> &RunConfig {
        &self.run
    }
}

impl DerefMut for JaccardConfig {
    fn deref_mut(&mut self) -> &mut RunConfig {
        &mut self.run
    }
}

/// Result of a Jaccard run.
#[derive(Debug)]
pub struct JaccardOutcome {
    /// Per-edge coefficients, keyed `(u, v)` with `u < v`.
    pub coefficients: HashMap<(u32, u32), f64>,
    /// Sum of all coefficients (a convenient scalar checksum), folded in
    /// sorted edge order so the bits don't depend on hash iteration.
    pub total: f64,
    /// The collected traces.
    pub bundle: TraceBundle,
    /// Fault-tolerance activity (clean on an undisturbed run).
    pub recovery: actorprof::RecoveryLog,
}

/// Sequential reference: Jaccard per undirected edge.
pub fn sequential_jaccard(adj: &Csr) -> HashMap<(u32, u32), f64> {
    let mut out = HashMap::new();
    for u in 0..adj.n() {
        for &v in adj.row(u) {
            let v = v as usize;
            if u >= v {
                continue;
            }
            let inter = intersection_size(adj.row(u), adj.row(v));
            let union = adj.degree(u) + adj.degree(v) - inter;
            let j = if union == 0 {
                0.0
            } else {
                inter as f64 / union as f64
            };
            out.insert((u as u32, v as u32), j);
        }
    }
    out
}

fn intersection_size(a: &[u32], b: &[u32]) -> usize {
    let (mut x, mut y, mut n) = (0, 0, 0);
    while x < a.len() && y < b.len() {
        match a[x].cmp(&b[y]) {
            std::cmp::Ordering::Less => x += 1,
            std::cmp::Ordering::Greater => y += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                x += 1;
                y += 1;
            }
        }
    }
    n
}

/// Wedge probe: does `w`'s adjacency contain `v`? Packed `(w << 32) | v`
/// on mailbox 0 with the reply routed back to the probing edge on
/// mailbox 1 as `(u << 32) | v` (the edge id).
fn pack(hi: u32, lo: u32) -> u64 {
    ((hi as u64) << 32) | lo as u64
}

fn unpack(msg: u64) -> (u32, u32) {
    ((msg >> 32) as u32, (msg & 0xffff_ffff) as u32)
}

/// Probe message: check edge (w, v) on w's owner; on success credit edge
/// (u, v) owned by the sender. Two u64s won't fit one message, so the
/// probe carries `(w, v)` and the *edge id* rides in a parallel field.
#[derive(Debug, Clone, Copy, Default)]
struct Probe {
    wv: u64,
    edge: u64,
}

/// Run distributed edge-Jaccard over a symmetric adjacency CSR (vertices
/// owned 1D cyclically), validated against [`sequential_jaccard`].
pub fn run(adj: &Csr, config: &JaccardConfig) -> Result<JaccardOutcome, AppError> {
    let n_pes = config.grid.n_pes();
    let dist = Distribution::cyclic(n_pes);

    let report = config.profiler().run(|pe, prof| {
        let me = pe.rank();
        // intersection counters for edges (u, v) with u < v owned by
        // owner(u) = me
        let counts: Rc<RefCell<HashMap<u64, u64>>> = Rc::new(RefCell::new(HashMap::new()));
        let c = Rc::clone(&counts);
        let handler_dist = dist.clone();
        let mut actor = prof
            .selector(2, move |mb, msg: Probe, from, ctx| match mb {
                0 => {
                    // probe: is v in N(w)? (w owned by this PE)
                    let (w, v) = unpack(msg.wv);
                    debug_assert_eq!(handler_dist.owner(w as usize), ctx.rank());
                    if adj.row(w as usize).binary_search(&v).is_ok() {
                        ctx.send(1, msg, from as usize);
                    }
                }
                1 => {
                    // confirmation for our edge
                    *c.borrow_mut().entry(msg.edge).or_insert(0) += 1;
                }
                _ => unreachable!(),
            })
            .expect("selector construction");
        actor.chain_done(1, 0).expect("confirmations follow probes");

        actor
            .execute(pe, |ctx| {
                let mut probes = DestBuckets::new(ctx.n_pes());
                for u in dist.rows_of(me, adj.n()) {
                    for &v in adj.row(u) {
                        let v_usize = v as usize;
                        if u >= v_usize {
                            continue; // each undirected edge probed once
                        }
                        let edge = pack(u as u32, v);
                        // wedge probes: for each w in N(u), ask owner(w)
                        // whether (w, v) is an edge
                        for &w in adj.row(u) {
                            if w == v {
                                continue;
                            }
                            probes.stage(
                                dist.owner(w as usize),
                                Probe {
                                    wv: pack(w, v),
                                    edge,
                                },
                            );
                        }
                    }
                }
                probes.send_all(ctx, 0).expect("probe send");
                ctx.done(0).expect("done(0)");
            })
            .expect("jaccard execute");

        // coefficients for edges owned by this PE
        let counts = counts.borrow();
        let pairs: Vec<((u32, u32), f64)> = dist
            .rows_of(me, adj.n())
            .into_iter()
            .flat_map(|u| {
                adj.row(u)
                    .iter()
                    .filter(move |&&v| u < v as usize)
                    .map(move |&v| (u as u32, v))
            })
            .map(|(u, v)| {
                let inter = counts.get(&pack(u, v)).copied().unwrap_or(0) as usize;
                let union = adj.degree(u as usize) + adj.degree(v as usize) - inter;
                let j = if union == 0 {
                    0.0
                } else {
                    inter as f64 / union as f64
                };
                ((u, v), j)
            })
            .collect();
        pairs
    })?;

    let (per_pe, bundle, recovery) = (report.results, report.bundle, report.recovery);
    let mut sorted: Vec<((u32, u32), f64)> = per_pe.into_iter().flatten().collect();
    sorted.sort_unstable_by_key(|&(edge, _)| edge);
    let total = sorted.iter().map(|&(_, j)| j).sum();
    let coefficients: HashMap<(u32, u32), f64> = sorted.into_iter().collect();

    let reference = sequential_jaccard(adj);
    if coefficients.len() != reference.len() {
        return Err(AppError::Validation(format!(
            "{} edges scored, reference has {}",
            coefficients.len(),
            reference.len()
        )));
    }
    for (edge, j) in &reference {
        let got = coefficients.get(edge).copied().unwrap_or(f64::NAN);
        if (got - j).abs() > 1e-12 {
            return Err(AppError::Validation(format!(
                "edge {edge:?}: distributed {got} != reference {j}"
            )));
        }
    }
    Ok(JaccardOutcome {
        coefficients,
        total,
        bundle,
        recovery,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use actorprof_trace::TraceConfig;
    use crate::bfs::symmetric_adjacency;
    use fabsp_graph::edgelist::to_lower_triangular;
    use fabsp_graph::rmat::{generate_edges, RmatParams};

    #[test]
    fn triangle_edges_share_one_neighbour() {
        // K3 edge (u,v): intersection {w} = 1; union = N(u) ∪ N(v) =
        // {u, v, w} has 3 members (u ∈ N(v), v ∈ N(u)) => J = 1/3.
        let adj = symmetric_adjacency(3, &[(1, 0), (2, 0), (2, 1)]);
        let out = run(&adj, &JaccardConfig::new(Grid::single_node(2).unwrap())).unwrap();
        assert_eq!(out.coefficients.len(), 3);
        for (&edge, &j) in &out.coefficients {
            assert!((j - 1.0 / 3.0).abs() < 1e-12, "{edge:?}: {j}");
        }
        assert!((out.total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn path_edges_share_nothing() {
        let adj = symmetric_adjacency(4, &[(1, 0), (2, 1), (3, 2)]);
        let out = run(&adj, &JaccardConfig::new(Grid::single_node(2).unwrap())).unwrap();
        for (&edge, &j) in &out.coefficients {
            assert_eq!(j, 0.0, "{edge:?}");
        }
    }

    #[test]
    fn matches_reference_on_rmat_two_nodes() {
        let p = RmatParams::graph500(6);
        let lower = to_lower_triangular(&generate_edges(&p));
        let adj = symmetric_adjacency(p.n_vertices(), &lower);
        let cfg = JaccardConfig::new(Grid::new(2, 2).unwrap());
        let out = run(&adj, &cfg).unwrap();
        assert!(!out.coefficients.is_empty());
        assert!(out.total > 0.0, "R-MAT graphs have triangles");
    }

    #[test]
    fn traced_run_produces_two_mailbox_papi_lines() {
        let adj = symmetric_adjacency(4, &[(1, 0), (2, 0), (2, 1), (3, 2)]);
        let mut cfg = JaccardConfig::new(Grid::single_node(2).unwrap());
        cfg.trace = TraceConfig::off()
            .with_logical()
            .with_papi(actorprof_trace::PapiConfig::case_study());
        let out = run(&adj, &cfg).unwrap();
        let has_both_mailboxes = (0..2).any(|pe| {
            let recs = out.bundle.papi_records(pe);
            recs.iter().any(|r| r.mailbox_id == 0) && recs.iter().any(|r| r.mailbox_id == 1)
        });
        assert!(has_both_mailboxes, "probes and confirmations both traced");
    }

    #[test]
    fn recovers_from_a_killed_pe() {
        use fabsp_shmem::{FaultSpec, RecoverySpec};
        let adj = symmetric_adjacency(4, &[(1, 0), (2, 0), (2, 1), (3, 2)]);
        let mut cfg = JaccardConfig::new(Grid::single_node(2).unwrap());
        let base = run(&adj, &cfg).unwrap();
        assert!(base.recovery.is_clean(), "{}", base.recovery);
        cfg.run = cfg
            .run
            .clone()
            .with_faults(FaultSpec::kill_pe(1, 0))
            .with_recovery(RecoverySpec::restart(2))
            .with_checkpoint_every(1);
        let out = run(&adj, &cfg).unwrap();
        assert_eq!(out.total.to_bits(), base.total.to_bits());
        assert_eq!(out.recovery.restarts, 1, "{}", out.recovery);
    }
}
