//! Level-synchronous distributed BFS — one of the irregular applications
//! the paper's introduction motivates FA-BSP with (§I).
//!
//! Each BFS level is one FA-BSP superstep: one selector spans the whole
//! traversal, frontier expansion happens as fine-grained sends to the
//! owner of each neighbour, and a barrier + allreduce separates levels.
//! Distances are validated against a sequential BFS.

use actorprof::TraceBundle;
use fabsp_graph::{Csr, Distribution};
use fabsp_shmem::Grid;
use std::cell::{Cell, RefCell};
use std::ops::{Deref, DerefMut};
use std::rc::Rc;

use crate::common::{AppError, DestBuckets, RunConfig};

/// Unreached marker.
pub const UNREACHED: u32 = u32::MAX;

/// Configuration for a BFS run: the shared [`RunConfig`] plus the BFS
/// source vertex. Derefs to [`RunConfig`].
#[derive(Debug, Clone)]
pub struct BfsConfig {
    /// Shared run configuration (layout, tracing, schedule, faults,
    /// recovery). One selector spans the whole traversal, so the trace
    /// bundle covers every level.
    pub run: RunConfig,
    /// Source vertex.
    pub source: u32,
}

impl BfsConfig {
    /// BFS from vertex 0 with tracing off.
    pub fn new(grid: Grid) -> BfsConfig {
        BfsConfig {
            run: RunConfig::new(grid),
            source: 0,
        }
    }
}

impl Deref for BfsConfig {
    type Target = RunConfig;
    fn deref(&self) -> &RunConfig {
        &self.run
    }
}

impl DerefMut for BfsConfig {
    fn deref_mut(&mut self) -> &mut RunConfig {
        &mut self.run
    }
}

/// Result of a distributed BFS.
#[derive(Debug)]
pub struct BfsOutcome {
    /// Distance per vertex ([`UNREACHED`] where unreachable).
    pub distances: Vec<u32>,
    /// Number of reached vertices.
    pub reached: usize,
    /// Supersteps executed: one per non-empty frontier, including the
    /// final empty-expansion round (= source eccentricity + 1).
    pub levels: u32,
    /// Trace bundle covering the entire traversal (all supersteps).
    pub bundle: TraceBundle,
    /// Fault-tolerance activity (clean on an undisturbed run).
    pub recovery: actorprof::RecoveryLog,
}

/// Sequential reference BFS over a symmetric adjacency CSR.
pub fn sequential_bfs(adj: &Csr, source: u32) -> Vec<u32> {
    let mut dist = vec![UNREACHED; adj.n()];
    let mut frontier = vec![source];
    dist[source as usize] = 0;
    let mut level = 0;
    while !frontier.is_empty() {
        level += 1;
        let mut next = Vec::new();
        for &v in &frontier {
            for &w in adj.row(v as usize) {
                if dist[w as usize] == UNREACHED {
                    dist[w as usize] = level;
                    next.push(w);
                }
            }
        }
        frontier = next;
    }
    dist
}

/// Run distributed BFS over a symmetric adjacency CSR (vertices owned 1D
/// cyclically) and validate against [`sequential_bfs`].
pub fn run(adj: &Csr, config: &BfsConfig) -> Result<BfsOutcome, AppError> {
    let n_pes = config.grid.n_pes();
    let dist_map = Distribution::cyclic(n_pes);
    if (config.source as usize) >= adj.n() {
        return Err(AppError::Validation(format!(
            "source {} out of range ({} vertices)",
            config.source,
            adj.n()
        )));
    }

    let report = config.profiler().run(|pe, prof| {
        let me = pe.rank();
        // distances for owned vertices, indexed by owned-order position
        let my_rows = dist_map.rows_of(me, adj.n());
        let index_of = |v: usize| -> usize { v / n_pes }; // cyclic local index
        let dist = Rc::new(RefCell::new(vec![UNREACHED; my_rows.len()]));
        let next_frontier = Rc::new(RefCell::new(Vec::<u32>::new()));

        let mut frontier: Vec<u32> = Vec::new();
        if dist_map.owner(config.source as usize) == me {
            dist.borrow_mut()[index_of(config.source as usize)] = 0;
            frontier.push(config.source);
        }

        // One selector spans all levels; the current level is shared with
        // the handler through a cell. A vertex joins the next frontier at
        // most once (guarded by the UNREACHED check), so results and
        // logical counts are delivery-order independent.
        let level_cell = Rc::new(Cell::new(0u32));
        let handler_level = Rc::clone(&level_cell);
        let d = Rc::clone(&dist);
        let nf = Rc::clone(&next_frontier);
        let mut actor = prof
            .selector(1, move |_mb, w: u64, _from, _ctx| {
                let w = w as usize;
                let slot = index_of(w);
                let mut d = d.borrow_mut();
                if d[slot] == UNREACHED {
                    d[slot] = handler_level.get();
                    nf.borrow_mut().push(w as u32);
                }
            })
            .expect("selector construction");

        let mut level: u32 = 0;
        loop {
            let global_frontier = pe.allreduce_sum_u64(frontier.len() as u64);
            if global_frontier == 0 {
                break;
            }
            level += 1;
            level_cell.set(level);
            actor
                .execute(pe, |ctx| {
                    let mut expand = DestBuckets::new(n_pes);
                    for &v in &frontier {
                        for &w in adj.row(v as usize) {
                            expand.stage(dist_map.owner(w as usize), w as u64);
                        }
                    }
                    expand.send_all(ctx, 0).expect("frontier send");
                    ctx.done(0).expect("done(0)");
                })
                .expect("bfs superstep");
            frontier = std::mem::take(&mut *next_frontier.borrow_mut());
            pe.barrier_all();
        }

        let pairs: Vec<(u32, u32)> = my_rows
            .iter()
            .map(|&v| (v as u32, dist.borrow()[index_of(v)]))
            .collect();
        (pairs, level)
    })?;

    let (per_pe, bundle, recovery) = (report.results, report.bundle, report.recovery);
    let mut distances = vec![UNREACHED; adj.n()];
    let mut levels = 0;
    for (pairs, level) in per_pe {
        levels = levels.max(level);
        for (v, d) in pairs {
            distances[v as usize] = d;
        }
    }

    let reference = sequential_bfs(adj, config.source);
    if distances != reference {
        return Err(AppError::Validation(
            "distributed BFS distances differ from sequential reference".into(),
        ));
    }
    let reached = distances.iter().filter(|&&d| d != UNREACHED).count();
    Ok(BfsOutcome {
        distances,
        reached,
        levels,
        bundle,
        recovery,
    })
}

/// Build the symmetric adjacency CSR from a lower-triangular edge list.
pub fn symmetric_adjacency(n: usize, lower: &[(u32, u32)]) -> Csr {
    let mut both = Vec::with_capacity(lower.len() * 2);
    for &(u, v) in lower {
        both.push((u, v));
        both.push((v, u));
    }
    Csr::from_edges(n, &both)
}

#[cfg(test)]
mod tests {
    use super::*;
    use actorprof_trace::TraceConfig;
    use fabsp_graph::edgelist::to_lower_triangular;
    use fabsp_graph::rmat::{generate_edges, RmatParams};

    fn rmat_adj(scale: u32) -> Csr {
        let p = RmatParams::graph500(scale);
        let lower = to_lower_triangular(&generate_edges(&p));
        symmetric_adjacency(p.n_vertices(), &lower)
    }

    #[test]
    fn path_graph_distances() {
        let adj = symmetric_adjacency(5, &[(1, 0), (2, 1), (3, 2), (4, 3)]);
        let out = run(&adj, &BfsConfig::new(Grid::single_node(2).unwrap())).unwrap();
        assert_eq!(out.distances, vec![0, 1, 2, 3, 4]);
        assert_eq!(out.levels, 5, "4 expansion levels + 1 empty round");
        assert_eq!(out.reached, 5);
    }

    #[test]
    fn disconnected_vertices_stay_unreached() {
        let adj = symmetric_adjacency(4, &[(1, 0)]);
        let out = run(&adj, &BfsConfig::new(Grid::single_node(2).unwrap())).unwrap();
        assert_eq!(out.distances, vec![0, 1, UNREACHED, UNREACHED]);
        assert_eq!(out.reached, 2);
    }

    #[test]
    fn rmat_bfs_matches_reference_two_nodes() {
        let adj = rmat_adj(7);
        let cfg = BfsConfig::new(Grid::new(2, 2).unwrap());
        let out = run(&adj, &cfg).unwrap();
        // validation happens inside; sanity-check hub reachability
        assert!(out.reached > adj.n() / 2, "R-MAT core is connected");
        assert!(out.levels > 0);
    }

    #[test]
    fn nonzero_source_works() {
        let adj = rmat_adj(6);
        let mut cfg = BfsConfig::new(Grid::single_node(3).unwrap());
        cfg.source = 17;
        let out = run(&adj, &cfg).unwrap();
        assert_eq!(out.distances[17], 0);
    }

    #[test]
    fn invalid_source_errors() {
        let adj = symmetric_adjacency(4, &[(1, 0)]);
        let mut cfg = BfsConfig::new(Grid::single_node(2).unwrap());
        cfg.source = 99;
        assert!(matches!(run(&adj, &cfg), Err(AppError::Validation(_))));
    }

    #[test]
    fn whole_traversal_trace_counts_every_expansion() {
        let adj = rmat_adj(6);
        let mut cfg = BfsConfig::new(Grid::single_node(2).unwrap());
        cfg.trace = TraceConfig::off().with_logical();
        let out = run(&adj, &cfg).unwrap();
        let m = out.bundle.logical_matrix().unwrap();
        // each reached vertex joins the frontier exactly once and then
        // sends one message per neighbour
        let expected: u64 = out
            .distances
            .iter()
            .enumerate()
            .filter(|(_, &d)| d != UNREACHED)
            .map(|(v, _)| adj.degree(v) as u64)
            .sum();
        assert_eq!(m.total(), expected);
    }

    #[test]
    fn recovers_from_a_killed_pe() {
        use fabsp_shmem::{FaultSpec, RecoverySpec};
        let adj = rmat_adj(5);
        let mut cfg = BfsConfig::new(Grid::single_node(2).unwrap());
        let base = run(&adj, &cfg).unwrap();
        assert!(base.recovery.is_clean(), "{}", base.recovery);
        cfg.run = cfg
            .run
            .clone()
            .with_faults(FaultSpec::kill_pe(1, 0))
            .with_recovery(RecoverySpec::restart(2))
            .with_checkpoint_every(1);
        let out = run(&adj, &cfg).unwrap();
        assert_eq!(out.distances, base.distances);
        assert_eq!(out.recovery.restarts, 1, "{}", out.recovery);
    }
}
