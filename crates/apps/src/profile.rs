//! One-call profiling driver: run any single-selector FA-BSP kernel under
//! ActorProf and get results plus the assembled [`TraceBundle`] back.
//!
//! This is the highest-level entry point of the reproduction — the moral
//! equivalent of "compile with the ActorProf flags and run": you provide
//! the handler and the MAIN body, it wires the SPMD world, the selector,
//! the collectors, and the bundle assembly.

use actorprof::TraceBundle;
use actorprof_trace::TraceConfig;
use fabsp_actor::{MainCtx, ProcCtx, Selector, SelectorConfig};
use fabsp_shmem::{spmd, Grid, Pe};

use crate::common::{split_outcomes, AppError};

/// Run a single-mailbox FA-BSP kernel under the profiler.
///
/// `make_handler` is called once per PE to build that PE's message handler
/// (capture per-PE state in the returned closure); `main` is the `finish`
/// body; `finish` extracts each PE's result after termination.
///
/// ```
/// use actorprof_trace::TraceConfig;
/// use fabsp_apps::profile::profile_run;
/// use fabsp_shmem::Grid;
/// use std::{cell::RefCell, rc::Rc};
///
/// // count messages received per PE, profiled
/// let (per_pe, bundle) = profile_run(
///     Grid::new(1, 2).unwrap(),
///     TraceConfig::off().with_logical().with_overall(),
///     |_pe| {
///         let seen = Rc::new(RefCell::new(0u64));
///         let s = Rc::clone(&seen);
///         (move |_msg: u64, _from, _ctx: &mut _| *s.borrow_mut() += 1, seen)
///     },
///     |ctx| {
///         for i in 0..100u64 {
///             ctx.send(0, i, (i as usize) % ctx.n_pes()).unwrap();
///         }
///     },
///     |_pe, seen| *seen.borrow(),
/// )
/// .unwrap();
/// assert_eq!(per_pe.iter().sum::<u64>(), 200);
/// assert!(bundle.logical_matrix().is_ok());
/// ```
pub fn profile_run<T, S, H, R>(
    grid: Grid,
    trace: TraceConfig,
    make_handler: impl Fn(&Pe) -> (H, S) + Sync,
    main: impl Fn(&mut MainCtx<'_, '_, '_, T>) + Sync,
    finish: impl Fn(&Pe, S) -> R + Sync,
) -> Result<(Vec<R>, TraceBundle), AppError>
where
    T: Copy + Default + Send + 'static,
    H: FnMut(T, u32, &mut ProcCtx<'_, T>) + 'static,
    R: Send,
    S: 'static,
{
    let outcomes = spmd::run(grid, |pe| {
        let (mut handler, state) = make_handler(pe);
        let mut actor = Selector::new(
            pe,
            1,
            SelectorConfig::traced(trace.clone()),
            move |_mb, msg: T, from, ctx| handler(msg, from, ctx),
        )
        .expect("selector construction");
        actor.execute(pe, |ctx| main(ctx)).expect("profiled kernel");
        let result = finish(pe, state);
        (result, actor.into_collector())
    })?;
    split_outcomes(outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn profile_run_wires_everything() {
        let (per_pe, bundle) = profile_run(
            Grid::new(2, 2).unwrap(),
            TraceConfig::all(),
            |_pe| {
                let sum = Rc::new(RefCell::new(0u64));
                let s = Rc::clone(&sum);
                (
                    move |msg: u64, _from, _ctx: &mut _| *s.borrow_mut() += msg,
                    sum,
                )
            },
            |ctx| {
                for i in 1..=10u64 {
                    ctx.send(0, i, (i as usize) % ctx.n_pes()).unwrap();
                }
            },
            |_pe, sum| *sum.borrow(),
        )
        .unwrap();
        assert_eq!(per_pe.iter().sum::<u64>(), 4 * 55);
        assert!(bundle.has_logical());
        assert!(bundle.has_overall());
        assert!(bundle.has_physical());
        let m = bundle.logical_matrix().unwrap();
        assert_eq!(m.total(), 40);
    }

    #[test]
    fn profile_run_propagates_world_failures() {
        let result = profile_run(
            Grid::new(1, 2).unwrap(),
            TraceConfig::off(),
            |_pe| ((move |_m: u64, _f, _c: &mut _| {}), ()),
            |ctx| {
                if ctx.rank() == 1 {
                    panic!("kernel bug");
                }
            },
            |_pe, ()| (),
        );
        assert!(matches!(result, Err(AppError::Shmem(_))));
    }
}
