//! Push-style synchronous PageRank — another §I motivating workload, and
//! the only bundled app whose messages are a non-integer struct (rank
//! shares), exercising the conveyor's arbitrary-POD item support.
//!
//! Each iteration is one FA-BSP superstep: every PE pushes
//! `rank[v] * d / outdeg(v)` to the owner of each out-neighbour; handlers
//! accumulate; a barrier ends the iteration. Dangling mass is handled the
//! textbook way (redistributed uniformly) identically in the distributed
//! and sequential versions, which therefore agree to floating-point
//! accumulation order.

use actorprof::TraceBundle;
use actorprof_trace::TraceConfig;
use fabsp_actor::{Selector, SelectorConfig};
use fabsp_graph::{Csr, Distribution};
use fabsp_shmem::{spmd, Grid};
use std::cell::RefCell;
use std::rc::Rc;

use crate::common::{split_outcomes, AppError};

/// The rank-share message: `(destination vertex, share)`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Share {
    /// Target vertex.
    pub v: u32,
    /// Rank mass pushed to it.
    pub share: f64,
}

/// Configuration for a PageRank run.
#[derive(Debug, Clone)]
pub struct PageRankConfig {
    /// PE/node layout.
    pub grid: Grid,
    /// Damping factor (0.85 is the classic choice).
    pub damping: f64,
    /// Number of synchronous iterations.
    pub iterations: usize,
    /// What to trace. One selector spans all iterations, so the returned
    /// bundle covers every one of them.
    pub trace: TraceConfig,
    /// Maximum L1 difference tolerated vs the sequential reference
    /// (floating-point accumulation order differs across PEs).
    pub tolerance: f64,
}

impl PageRankConfig {
    /// Classic parameters: damping 0.85, 10 iterations.
    pub fn new(grid: Grid) -> PageRankConfig {
        PageRankConfig {
            grid,
            damping: 0.85,
            iterations: 10,
            trace: TraceConfig::off(),
            tolerance: 1e-9,
        }
    }
}

/// Result of a PageRank run.
#[derive(Debug)]
pub struct PageRankOutcome {
    /// Final rank per vertex.
    pub ranks: Vec<f64>,
    /// L1 difference against the sequential reference.
    pub l1_vs_reference: f64,
    /// Trace bundle covering all iterations.
    pub bundle: TraceBundle,
}

/// Sequential reference PageRank with identical semantics.
pub fn sequential_pagerank(adj: &Csr, damping: f64, iterations: usize) -> Vec<f64> {
    let n = adj.n();
    let mut rank = vec![1.0 / n as f64; n];
    for _ in 0..iterations {
        let mut next = vec![0.0f64; n];
        let mut dangling = 0.0f64;
        for (v, &r) in rank.iter().enumerate() {
            let deg = adj.degree(v);
            if deg == 0 {
                dangling += r;
            } else {
                let share = r / deg as f64;
                for &w in adj.row(v) {
                    next[w as usize] += share;
                }
            }
        }
        let base = (1.0 - damping) / n as f64 + damping * dangling / n as f64;
        for r in &mut next {
            *r = base + damping * *r;
        }
        rank = next;
    }
    rank
}

/// Run distributed PageRank over a (directed or symmetric) adjacency CSR,
/// vertices owned 1D cyclically; validates against the reference.
pub fn run(adj: &Csr, config: &PageRankConfig) -> Result<PageRankOutcome, AppError> {
    let n = adj.n();
    let n_pes = config.grid.n_pes();
    let dist_map = Distribution::cyclic(n_pes);

    let outcomes = spmd::run(config.grid, |pe| {
        let me = pe.rank();
        let my_rows = dist_map.rows_of(me, n);
        let index_of = |v: usize| -> usize { v / n_pes };
        let mut rank: Vec<f64> = vec![1.0 / n as f64; my_rows.len()];
        let accum = Rc::new(RefCell::new(vec![0.0f64; my_rows.len()]));
        let acc = Rc::clone(&accum);
        let mut actor = Selector::new(
            pe,
            1,
            SelectorConfig::traced(config.trace.clone()),
            move |_mb, msg: Share, _from, _ctx| {
                acc.borrow_mut()[index_of(msg.v as usize)] += msg.share;
            },
        )
        .expect("selector construction");

        for _ in 0..config.iterations {
            let mut local_dangling = 0.0f64;
            actor
                .execute(pe, |ctx| {
                    for (slot, &v) in my_rows.iter().enumerate() {
                        let deg = adj.degree(v);
                        if deg == 0 {
                            local_dangling += rank[slot];
                            continue;
                        }
                        let share = rank[slot] / deg as f64;
                        for &w in adj.row(v) {
                            ctx.send(
                                0,
                                Share { v: w, share },
                                dist_map.owner(w as usize),
                            )
                            .expect("share send");
                        }
                    }
                })
                .expect("pagerank superstep");

            let dangling = pe.allreduce_sum_f64(local_dangling);
            let base = (1.0 - config.damping) / n as f64 + config.damping * dangling / n as f64;
            let mut acc = accum.borrow_mut();
            for (slot, r) in rank.iter_mut().enumerate() {
                *r = base + config.damping * acc[slot];
                acc[slot] = 0.0;
            }
            drop(acc);
            pe.barrier_all();
        }

        let collector = actor.into_collector();
        let pairs: Vec<(u32, f64)> = my_rows
            .iter()
            .enumerate()
            .map(|(slot, &v)| (v as u32, rank[slot]))
            .collect();
        (pairs, collector)
    })?;

    let (per_pe, bundle) = split_outcomes(outcomes)?;
    let mut ranks = vec![0.0f64; n];
    for pairs in per_pe {
        for (v, r) in pairs {
            ranks[v as usize] = r;
        }
    }
    let reference = sequential_pagerank(adj, config.damping, config.iterations);
    let l1: f64 = ranks
        .iter()
        .zip(&reference)
        .map(|(a, b)| (a - b).abs())
        .sum();
    if l1 > config.tolerance {
        return Err(AppError::Validation(format!(
            "PageRank L1 distance {l1:.3e} exceeds tolerance {:.1e}",
            config.tolerance
        )));
    }
    Ok(PageRankOutcome {
        ranks,
        l1_vs_reference: l1,
        bundle,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::symmetric_adjacency;
    use fabsp_graph::edgelist::to_lower_triangular;
    use fabsp_graph::rmat::{generate_edges, RmatParams};

    #[test]
    fn ranks_sum_to_one_on_a_cycle() {
        // directed 4-cycle: uniform stationary distribution
        let adj = Csr::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let cfg = PageRankConfig::new(Grid::single_node(2).unwrap());
        let out = run(&adj, &cfg).unwrap();
        let total: f64 = out.ranks.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "mass conserved: {total}");
        for r in &out.ranks {
            assert!((r - 0.25).abs() < 1e-9, "cycle is uniform: {r}");
        }
    }

    #[test]
    fn star_concentrates_rank_on_the_hub() {
        // all spokes point at vertex 0
        let adj = Csr::from_edges(5, &[(1, 0), (2, 0), (3, 0), (4, 0)]);
        let cfg = PageRankConfig::new(Grid::single_node(2).unwrap());
        let out = run(&adj, &cfg).unwrap();
        assert!(out.ranks[0] > out.ranks[1] * 2.0);
    }

    #[test]
    fn dangling_mass_is_conserved() {
        // vertex 2 dangles
        let adj = Csr::from_edges(3, &[(0, 1), (1, 2)]);
        let cfg = PageRankConfig::new(Grid::single_node(3).unwrap());
        let out = run(&adj, &cfg).unwrap();
        let total: f64 = out.ranks.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "dangling mass kept: {total}");
    }

    #[test]
    fn rmat_pagerank_matches_reference_two_nodes() {
        let p = RmatParams::graph500(7);
        let lower = to_lower_triangular(&generate_edges(&p));
        let adj = symmetric_adjacency(p.n_vertices(), &lower);
        let mut cfg = PageRankConfig::new(Grid::new(2, 2).unwrap());
        cfg.iterations = 5;
        cfg.tolerance = 1e-9;
        let out = run(&adj, &cfg).unwrap();
        assert!(out.l1_vs_reference <= 1e-9);
        // the hub (vertex 0) outranks the median vertex by far
        let mut sorted = out.ranks.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(out.ranks[0] > sorted[sorted.len() / 2] * 3.0, "hub rank {} vs median {}", out.ranks[0], sorted[sorted.len() / 2]);
    }

    #[test]
    fn traced_iteration_counts_edge_messages() {
        let adj = Csr::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let mut cfg = PageRankConfig::new(Grid::single_node(2).unwrap());
        cfg.trace = TraceConfig::off().with_logical();
        cfg.iterations = 3;
        let out = run(&adj, &cfg).unwrap();
        let m = out.bundle.logical_matrix().unwrap();
        assert_eq!(m.total(), 12, "3 iterations x one message per edge");
    }
}
