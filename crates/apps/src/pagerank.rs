//! Push-style synchronous PageRank — another §I motivating workload, and
//! the only bundled app whose messages are a non-integer struct (rank
//! shares), exercising the conveyor's arbitrary-POD item support.
//!
//! Each iteration is one FA-BSP superstep: every PE pushes
//! `rank[v] * d / outdeg(v)` to the owner of each out-neighbour; handlers
//! buffer the shares; a barrier ends the iteration. Dangling mass is
//! handled the textbook way (redistributed uniformly) identically in the
//! distributed and sequential versions.
//!
//! Floating-point addition is not associative, so naive accumulation in
//! delivery order would make the final bits depend on the schedule. The
//! handler therefore only *buffers* `(from, v, share)` tuples; after each
//! superstep the PE sorts them into a canonical order and folds
//! sequentially. Identical tuples sort equal, so the fold is a pure
//! function of the message *set* — bit-identical under every schedule,
//! which is what the schedule-fuzz matrix asserts.

use actorprof::TraceBundle;
use fabsp_graph::{Csr, Distribution};
use fabsp_shmem::Grid;
use std::cell::RefCell;
use std::ops::{Deref, DerefMut};
use std::rc::Rc;

use crate::common::{AppError, DestBuckets, RunConfig};

/// The rank-share message: `(destination vertex, share)`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Share {
    /// Target vertex.
    pub v: u32,
    /// Rank mass pushed to it.
    pub share: f64,
}

/// Configuration for a PageRank run: the shared [`RunConfig`] plus the
/// PageRank knobs. Derefs to [`RunConfig`].
#[derive(Debug, Clone)]
pub struct PageRankConfig {
    /// Shared run configuration. One selector spans all iterations, so
    /// the returned bundle covers every one of them.
    pub run: RunConfig,
    /// Damping factor (0.85 is the classic choice).
    pub damping: f64,
    /// Number of synchronous iterations.
    pub iterations: usize,
    /// Maximum L1 difference tolerated vs the sequential reference (the
    /// canonical fold order differs from the reference's source-vertex
    /// order, so agreement is to rounding, not to the bit).
    pub tolerance: f64,
}

impl PageRankConfig {
    /// Classic parameters: damping 0.85, 10 iterations.
    pub fn new(grid: Grid) -> PageRankConfig {
        PageRankConfig {
            run: RunConfig::new(grid),
            damping: 0.85,
            iterations: 10,
            tolerance: 1e-9,
        }
    }
}

impl Deref for PageRankConfig {
    type Target = RunConfig;
    fn deref(&self) -> &RunConfig {
        &self.run
    }
}

impl DerefMut for PageRankConfig {
    fn deref_mut(&mut self) -> &mut RunConfig {
        &mut self.run
    }
}

/// Result of a PageRank run.
#[derive(Debug)]
pub struct PageRankOutcome {
    /// Final rank per vertex.
    pub ranks: Vec<f64>,
    /// L1 difference against the sequential reference.
    pub l1_vs_reference: f64,
    /// Trace bundle covering all iterations.
    pub bundle: TraceBundle,
    /// Fault-tolerance activity (clean on an undisturbed run).
    pub recovery: actorprof::RecoveryLog,
}

/// Sequential reference PageRank with identical semantics.
pub fn sequential_pagerank(adj: &Csr, damping: f64, iterations: usize) -> Vec<f64> {
    let n = adj.n();
    let mut rank = vec![1.0 / n as f64; n];
    for _ in 0..iterations {
        let mut next = vec![0.0f64; n];
        let mut dangling = 0.0f64;
        for (v, &r) in rank.iter().enumerate() {
            let deg = adj.degree(v);
            if deg == 0 {
                dangling += r;
            } else {
                let share = r / deg as f64;
                for &w in adj.row(v) {
                    next[w as usize] += share;
                }
            }
        }
        let base = (1.0 - damping) / n as f64 + damping * dangling / n as f64;
        for r in &mut next {
            *r = base + damping * *r;
        }
        rank = next;
    }
    rank
}

/// Run distributed PageRank over a (directed or symmetric) adjacency CSR,
/// vertices owned 1D cyclically; validates against the reference.
pub fn run(adj: &Csr, config: &PageRankConfig) -> Result<PageRankOutcome, AppError> {
    let n = adj.n();
    let n_pes = config.grid.n_pes();
    let dist_map = Distribution::cyclic(n_pes);

    let report = config.profiler().run(|pe, prof| {
        let me = pe.rank();
        let my_rows = dist_map.rows_of(me, n);
        let index_of = |v: usize| -> usize { v / n_pes };
        let mut rank: Vec<f64> = vec![1.0 / n as f64; my_rows.len()];
        // (from, v, share bits) — buffered, then folded in sorted order so
        // the accumulated f64s are independent of delivery order.
        let inbox = Rc::new(RefCell::new(Vec::<(u32, u32, u64)>::new()));
        let ib = Rc::clone(&inbox);
        let mut actor = prof
            .selector(1, move |_mb, msg: Share, from, _ctx| {
                ib.borrow_mut()
                    .push((from, msg.v, msg.share.to_bits()));
            })
            .expect("selector construction");

        for _ in 0..config.iterations {
            let mut local_dangling = 0.0f64;
            actor
                .execute(pe, |ctx| {
                    let mut shares = DestBuckets::new(n_pes);
                    for (slot, &v) in my_rows.iter().enumerate() {
                        let deg = adj.degree(v);
                        if deg == 0 {
                            local_dangling += rank[slot];
                            continue;
                        }
                        let share = rank[slot] / deg as f64;
                        for &w in adj.row(v) {
                            shares.stage(dist_map.owner(w as usize), Share { v: w, share });
                        }
                    }
                    shares.send_all(ctx, 0).expect("share send");
                    ctx.done(0).expect("done(0)");
                })
                .expect("pagerank superstep");

            let dangling = pe.allreduce_sum_f64(local_dangling);
            let base = (1.0 - config.damping) / n as f64 + config.damping * dangling / n as f64;
            // canonical fold: sort the buffered shares, then accumulate
            let mut ib = inbox.borrow_mut();
            ib.sort_unstable();
            let mut acc = vec![0.0f64; my_rows.len()];
            for &(_, v, bits) in ib.iter() {
                acc[index_of(v as usize)] += f64::from_bits(bits);
            }
            ib.clear();
            drop(ib);
            for (slot, r) in rank.iter_mut().enumerate() {
                *r = base + config.damping * acc[slot];
            }
            pe.barrier_all();
        }

        let pairs: Vec<(u32, f64)> = my_rows
            .iter()
            .enumerate()
            .map(|(slot, &v)| (v as u32, rank[slot]))
            .collect();
        pairs
    })?;

    let (per_pe, bundle, recovery) = (report.results, report.bundle, report.recovery);
    let mut ranks = vec![0.0f64; n];
    for pairs in per_pe {
        for (v, r) in pairs {
            ranks[v as usize] = r;
        }
    }
    let reference = sequential_pagerank(adj, config.damping, config.iterations);
    let l1: f64 = ranks
        .iter()
        .zip(&reference)
        .map(|(a, b)| (a - b).abs())
        .sum();
    if l1 > config.tolerance {
        return Err(AppError::Validation(format!(
            "PageRank L1 distance {l1:.3e} exceeds tolerance {:.1e}",
            config.tolerance
        )));
    }
    Ok(PageRankOutcome {
        ranks,
        l1_vs_reference: l1,
        bundle,
        recovery,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use actorprof_trace::TraceConfig;
    use crate::bfs::symmetric_adjacency;
    use fabsp_graph::edgelist::to_lower_triangular;
    use fabsp_graph::rmat::{generate_edges, RmatParams};

    #[test]
    fn ranks_sum_to_one_on_a_cycle() {
        // directed 4-cycle: uniform stationary distribution
        let adj = Csr::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let cfg = PageRankConfig::new(Grid::single_node(2).unwrap());
        let out = run(&adj, &cfg).unwrap();
        let total: f64 = out.ranks.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "mass conserved: {total}");
        for r in &out.ranks {
            assert!((r - 0.25).abs() < 1e-9, "cycle is uniform: {r}");
        }
    }

    #[test]
    fn star_concentrates_rank_on_the_hub() {
        // all spokes point at vertex 0
        let adj = Csr::from_edges(5, &[(1, 0), (2, 0), (3, 0), (4, 0)]);
        let cfg = PageRankConfig::new(Grid::single_node(2).unwrap());
        let out = run(&adj, &cfg).unwrap();
        assert!(out.ranks[0] > out.ranks[1] * 2.0);
    }

    #[test]
    fn dangling_mass_is_conserved() {
        // vertex 2 dangles
        let adj = Csr::from_edges(3, &[(0, 1), (1, 2)]);
        let cfg = PageRankConfig::new(Grid::single_node(3).unwrap());
        let out = run(&adj, &cfg).unwrap();
        let total: f64 = out.ranks.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "dangling mass kept: {total}");
    }

    #[test]
    fn rmat_pagerank_matches_reference_two_nodes() {
        let p = RmatParams::graph500(7);
        let lower = to_lower_triangular(&generate_edges(&p));
        let adj = symmetric_adjacency(p.n_vertices(), &lower);
        let mut cfg = PageRankConfig::new(Grid::new(2, 2).unwrap());
        cfg.iterations = 5;
        cfg.tolerance = 1e-9;
        let out = run(&adj, &cfg).unwrap();
        assert!(out.l1_vs_reference <= 1e-9);
        // the hub (vertex 0) outranks the median vertex by far
        let mut sorted = out.ranks.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(out.ranks[0] > sorted[sorted.len() / 2] * 3.0, "hub rank {} vs median {}", out.ranks[0], sorted[sorted.len() / 2]);
    }

    #[test]
    fn traced_iteration_counts_edge_messages() {
        let adj = Csr::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let mut cfg = PageRankConfig::new(Grid::single_node(2).unwrap());
        cfg.trace = TraceConfig::off().with_logical();
        cfg.iterations = 3;
        let out = run(&adj, &cfg).unwrap();
        let m = out.bundle.logical_matrix().unwrap();
        assert_eq!(m.total(), 12, "3 iterations x one message per edge");
    }

    #[test]
    fn schedule_does_not_move_a_single_bit() {
        use fabsp_shmem::SchedSpec;
        let adj = Csr::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (0, 3)]);
        let mut cfg = PageRankConfig::new(Grid::single_node(3).unwrap());
        cfg.iterations = 6;
        let base = run(&adj, &cfg).unwrap();
        for seed in 0..4 {
            let mut c = cfg.clone();
            c.sched = SchedSpec::random_walk(seed);
            let out = run(&adj, &c).unwrap();
            // exact f64 equality: the canonical fold makes ranks a pure
            // function of the message set, not the delivery order
            assert_eq!(out.ranks, base.ranks, "seed {seed}");
        }
    }

    #[test]
    fn recovers_from_a_killed_pe() {
        use fabsp_shmem::{FaultSpec, RecoverySpec};
        let adj = Csr::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let mut cfg = PageRankConfig::new(Grid::single_node(2).unwrap());
        cfg.iterations = 4;
        let base = run(&adj, &cfg).unwrap();
        assert!(base.recovery.is_clean(), "{}", base.recovery);
        cfg.run = cfg
            .run
            .clone()
            .with_faults(FaultSpec::kill_pe(1, 0))
            .with_recovery(RecoverySpec::restart(2))
            .with_checkpoint_every(1);
        let out = run(&adj, &cfg).unwrap();
        assert_eq!(out.ranks, base.ranks, "bit-identical after recovery");
        assert_eq!(out.recovery.restarts, 1, "{}", out.recovery);
    }
}
