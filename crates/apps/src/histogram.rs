//! Histogram — the paper's Listings 1–2 and bale's `histo` kernel.
//!
//! Every PE sends `updates_per_pe` increment messages at (seeded) random
//! global table slots; the owning PE's handler increments its local table
//! *without atomics* (single-threaded PEs process one message at a time).

use actorprof::TraceBundle;
use fabsp_shmem::Grid;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;
use std::ops::{Deref, DerefMut};
use std::rc::Rc;

use crate::common::{AppError, DestBuckets, RunConfig};

/// Configuration for a histogram run: the shared [`RunConfig`] plus the
/// histogram-specific workload knobs. Derefs to [`RunConfig`], so
/// `cfg.trace = …` / `cfg.sched = …` work as before.
#[derive(Debug, Clone)]
pub struct HistogramConfig {
    /// Shared run configuration (layout, tracing, schedule, faults).
    pub run: RunConfig,
    /// Table slots owned by each PE.
    pub table_size_per_pe: usize,
    /// Increment messages issued by each PE.
    pub updates_per_pe: usize,
}

impl HistogramConfig {
    /// A small default on the given grid.
    pub fn new(grid: Grid) -> HistogramConfig {
        HistogramConfig {
            run: RunConfig::new(grid).with_seed(0x4157_0001),
            table_size_per_pe: 1024,
            updates_per_pe: 4096,
        }
    }
}

impl Deref for HistogramConfig {
    type Target = RunConfig;
    fn deref(&self) -> &RunConfig {
        &self.run
    }
}

impl DerefMut for HistogramConfig {
    fn deref_mut(&mut self) -> &mut RunConfig {
        &mut self.run
    }
}

/// Result of a histogram run.
#[derive(Debug)]
pub struct HistogramOutcome {
    /// Sum over the whole distributed table (= total updates issued).
    pub total_updates: u64,
    /// Per-PE sums of their local tables.
    pub per_pe_updates: Vec<u64>,
    /// The collected traces.
    pub bundle: TraceBundle,
    /// Fault-tolerance activity (clean on an undisturbed run).
    pub recovery: actorprof::RecoveryLog,
}

/// Run the histogram kernel. Validates that every update landed exactly
/// once (the total table mass equals the number of sends).
pub fn run(config: &HistogramConfig) -> Result<HistogramOutcome, AppError> {
    let table = config.table_size_per_pe;
    let report = config.profiler().run(|pe, prof| {
        let larray = Rc::new(RefCell::new(vec![0u64; table]));
        let h = Rc::clone(&larray);
        let mut actor = prof
            .selector(1, move |_mb, slot: u64, _from, _ctx| {
                // handler work: one table update
                fabsp_hwpc::Cost::instructions(6).charge();
                h.borrow_mut()[slot as usize] += 1;
            })
            .expect("selector construction");
        let n_pes = pe.n_pes();
        actor
            .execute(pe, |ctx| {
                let mut rng = StdRng::seed_from_u64(config.seed ^ ((ctx.rank() as u64) << 32));
                let mut updates = DestBuckets::new(n_pes);
                for _ in 0..config.updates_per_pe {
                    let global: usize = rng.gen_range(0..n_pes * table);
                    updates.stage(global / table, (global % table) as u64);
                }
                updates.send_all(ctx, 0).expect("histogram send");
                ctx.done(0).expect("done(0)");
            })
            .expect("histogram execute");
        let local_sum: u64 = larray.borrow().iter().sum();
        local_sum
    })?;

    let (per_pe_updates, bundle, recovery) = (report.results, report.bundle, report.recovery);
    let total_updates: u64 = per_pe_updates.iter().sum();
    let expected = (config.updates_per_pe * config.grid.n_pes()) as u64;
    if total_updates != expected {
        return Err(AppError::Validation(format!(
            "histogram mass {total_updates} != sends {expected}"
        )));
    }
    Ok(HistogramOutcome {
        total_updates,
        per_pe_updates,
        bundle,
        recovery,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use actorprof_trace::TraceConfig;

    #[test]
    fn histogram_conserves_updates_one_node() {
        let mut cfg = HistogramConfig::new(Grid::single_node(4).unwrap());
        cfg.updates_per_pe = 500;
        cfg.table_size_per_pe = 64;
        let out = run(&cfg).unwrap();
        assert_eq!(out.total_updates, 2000);
        assert_eq!(out.per_pe_updates.len(), 4);
    }

    #[test]
    fn histogram_conserves_updates_two_nodes() {
        let mut cfg = HistogramConfig::new(Grid::new(2, 2).unwrap());
        cfg.updates_per_pe = 400;
        cfg.table_size_per_pe = 32;
        cfg.trace = TraceConfig::off().with_logical();
        let out = run(&cfg).unwrap();
        assert_eq!(out.total_updates, 1600);
        // logical matrix row totals must equal sends per PE
        let m = out.bundle.logical_matrix().unwrap();
        assert_eq!(m.row_totals(), vec![400; 4]);
        assert_eq!(m.total(), 1600);
    }

    #[test]
    fn histogram_is_deterministic_given_seed() {
        let mut cfg = HistogramConfig::new(Grid::single_node(2).unwrap());
        cfg.updates_per_pe = 300;
        let a = run(&cfg).unwrap();
        let b = run(&cfg).unwrap();
        assert_eq!(a.per_pe_updates, b.per_pe_updates);
        cfg.seed ^= 1;
        let c = run(&cfg).unwrap();
        // same total, (almost certainly) different spread
        assert_eq!(c.total_updates, a.total_updates);
    }
}
