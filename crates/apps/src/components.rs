//! Distributed connected components by min-label propagation — the tenth
//! registry workload, and the second frontier-style graph app (after BFS).
//!
//! Every vertex starts labelled with its own id; each FA-BSP superstep,
//! every vertex whose label improved last round sends that label to all
//! its neighbours, and the owner keeps the minimum it has seen. The
//! traversal quiesces when an allreduce sees an empty global frontier;
//! each vertex then carries the minimum vertex id of its component.
//!
//! Schedule-independence is the interesting bit: a vertex can receive
//! several improving labels in one superstep, in arbitrary delivery
//! order. `min` makes the *final* label order-independent, and the next
//! frontier is dedup'd through a per-vertex membership flag, so the
//! frontier *set* — and with it every later superstep's message count,
//! the logical trace matrix, and the canonical digest — is identical
//! across schedules.

use actorprof::TraceBundle;
use fabsp_graph::{Csr, Distribution};
use fabsp_shmem::Grid;
use std::cell::RefCell;
use std::ops::{Deref, DerefMut};
use std::rc::Rc;

use crate::common::{AppError, DestBuckets, RunConfig};

/// Configuration for a components run. Derefs to [`RunConfig`].
#[derive(Debug, Clone)]
pub struct ComponentsConfig {
    /// Shared run configuration (layout, tracing, schedule, faults,
    /// recovery). One selector spans every propagation round.
    pub run: RunConfig,
}

impl ComponentsConfig {
    /// Components with tracing off.
    pub fn new(grid: Grid) -> ComponentsConfig {
        ComponentsConfig {
            run: RunConfig::new(grid),
        }
    }
}

impl Deref for ComponentsConfig {
    type Target = RunConfig;
    fn deref(&self) -> &RunConfig {
        &self.run
    }
}

impl DerefMut for ComponentsConfig {
    fn deref_mut(&mut self) -> &mut RunConfig {
        &mut self.run
    }
}

/// Result of a distributed components run.
#[derive(Debug)]
pub struct ComponentsOutcome {
    /// Per-vertex component label: the minimum vertex id in its component.
    pub labels: Vec<u32>,
    /// Number of connected components.
    pub n_components: usize,
    /// Propagation rounds executed, including the final empty round.
    pub rounds: u32,
    /// Trace bundle covering every round.
    pub bundle: TraceBundle,
    /// Fault-tolerance activity (clean on an undisturbed run).
    pub recovery: actorprof::RecoveryLog,
}

/// Sequential reference: min-label propagation run to a fixpoint. Same
/// result as union-find, and doubles as the round-structure oracle for
/// the logical-trace tests ([`sequential_rounds`] exposes the per-round
/// message counts).
pub fn sequential_components(adj: &Csr) -> Vec<u32> {
    sequential_rounds(adj).0
}

/// Sequential min-label propagation, also returning each round's message
/// count (Σ degree over that round's frontier) — the schedule-independent
/// traffic the distributed run must reproduce exactly.
pub fn sequential_rounds(adj: &Csr) -> (Vec<u32>, Vec<u64>) {
    let n = adj.n();
    let mut labels: Vec<u32> = (0..n as u32).collect();
    let mut frontier: Vec<usize> = (0..n).collect();
    let mut traffic = Vec::new();
    while !frontier.is_empty() {
        traffic.push(frontier.iter().map(|&v| adj.degree(v) as u64).sum());
        // Jacobi semantics, like the distributed run: every frontier
        // vertex sends its label *as of the round start* (the superstep
        // snapshots sends before executing), receivers fold with min.
        let start = labels.clone();
        for &v in &frontier {
            let lv = start[v];
            for &w in adj.row(v) {
                let w = w as usize;
                if lv < labels[w] {
                    labels[w] = lv;
                }
            }
        }
        frontier = (0..n).filter(|&w| labels[w] < start[w]).collect();
    }
    (labels, traffic)
}

/// Run distributed connected components over a symmetric adjacency CSR
/// (vertices owned 1D cyclically) and validate against
/// [`sequential_components`].
pub fn run(adj: &Csr, config: &ComponentsConfig) -> Result<ComponentsOutcome, AppError> {
    let n_pes = config.grid.n_pes();
    let dist_map = Distribution::cyclic(n_pes);
    let n = adj.n();

    let report = config.profiler().run(|pe, prof| {
        let me = pe.rank();
        let my_rows = dist_map.rows_of(me, n);
        let index_of = |v: usize| -> usize { v / n_pes }; // cyclic local index
        // Owned labels start as the vertex's own id.
        let labels = Rc::new(RefCell::new(
            my_rows.iter().map(|&v| v as u32).collect::<Vec<u32>>(),
        ));
        // Dedup'd next frontier: membership flag + insertion list. The
        // list is sorted before use so iteration order (and the bucket
        // fill order of the next superstep's sends) is schedule-free.
        let next = Rc::new(RefCell::new((
            vec![false; my_rows.len()],
            Vec::<u32>::new(),
        )));

        let l = Rc::clone(&labels);
        let nf = Rc::clone(&next);
        let mut actor = prof
            .selector(1, move |_mb, msg: u64, _from, _ctx| {
                let w = (msg >> 32) as usize;
                let incoming = msg as u32;
                let slot = index_of(w);
                let mut l = l.borrow_mut();
                if incoming < l[slot] {
                    l[slot] = incoming;
                    let (in_next, list) = &mut *nf.borrow_mut();
                    if !in_next[slot] {
                        in_next[slot] = true;
                        list.push(w as u32);
                    }
                }
            })
            .expect("selector construction");

        // Round zero: every owned vertex announces its own label.
        let mut frontier: Vec<u32> = my_rows.iter().map(|&v| v as u32).collect();
        let mut rounds: u32 = 0;
        loop {
            let global_frontier = pe.allreduce_sum_u64(frontier.len() as u64);
            if global_frontier == 0 {
                break;
            }
            rounds += 1;
            // Snapshot the sends before executing: deliveries interleave
            // with the superstep body, and the message content must be the
            // label at round start, not whatever an earlier delivery just
            // improved it to — otherwise later frontier sets (and message
            // counts) would depend on the schedule.
            let sends: Vec<(usize, u64)> = {
                let l = labels.borrow();
                let mut staged = Vec::new();
                for &v in &frontier {
                    let lv = l[index_of(v as usize)];
                    for &w in adj.row(v as usize) {
                        let msg = ((w as u64) << 32) | lv as u64;
                        staged.push((dist_map.owner(w as usize), msg));
                    }
                }
                staged
            };
            actor
                .execute(pe, |ctx| {
                    let mut expand = DestBuckets::new(n_pes);
                    for &(owner, msg) in &sends {
                        expand.stage(owner, msg);
                    }
                    expand.send_all(ctx, 0).expect("label send");
                    ctx.done(0).expect("done(0)");
                })
                .expect("components superstep");
            let (in_next, list) = &mut *next.borrow_mut();
            in_next.iter_mut().for_each(|f| *f = false);
            frontier = std::mem::take(list);
            frontier.sort_unstable();
            pe.barrier_all();
        }

        let pairs: Vec<(u32, u32)> = my_rows
            .iter()
            .map(|&v| (v as u32, labels.borrow()[index_of(v)]))
            .collect();
        (pairs, rounds)
    })?;

    let (per_pe, bundle, recovery) = (report.results, report.bundle, report.recovery);
    let mut labels = vec![u32::MAX; n];
    let mut rounds = 0;
    for (pairs, r) in per_pe {
        rounds = rounds.max(r);
        for (v, l) in pairs {
            labels[v as usize] = l;
        }
    }

    let reference = sequential_components(adj);
    if labels != reference {
        return Err(AppError::Validation(
            "distributed component labels differ from sequential reference".into(),
        ));
    }
    let n_components = labels
        .iter()
        .enumerate()
        .filter(|&(v, &l)| v as u32 == l)
        .count();
    Ok(ComponentsOutcome {
        labels,
        n_components,
        rounds,
        bundle,
        recovery,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::symmetric_adjacency;
    use actorprof_trace::TraceConfig;
    use fabsp_graph::edgelist::to_lower_triangular;
    use fabsp_graph::rmat::{generate_edges, RmatParams};

    fn rmat_adj(scale: u32) -> Csr {
        let p = RmatParams::graph500(scale);
        let lower = to_lower_triangular(&generate_edges(&p));
        symmetric_adjacency(p.n_vertices(), &lower)
    }

    #[test]
    fn two_components_get_their_min_labels() {
        // 0-1-2 and 3-4, plus isolated 5.
        let adj = symmetric_adjacency(6, &[(1, 0), (2, 1), (4, 3)]);
        let out = run(&adj, &ComponentsConfig::new(Grid::single_node(2).unwrap())).unwrap();
        assert_eq!(out.labels, vec![0, 0, 0, 3, 3, 5]);
        assert_eq!(out.n_components, 3);
    }

    #[test]
    fn path_graph_propagates_to_one_component() {
        let adj = symmetric_adjacency(5, &[(1, 0), (2, 1), (3, 2), (4, 3)]);
        let out = run(&adj, &ComponentsConfig::new(Grid::single_node(3).unwrap())).unwrap();
        assert_eq!(out.labels, vec![0; 5]);
        assert_eq!(out.n_components, 1);
        // label 0 walks one hop per round down the path, then one empty
        // frontier round closes the traversal
        assert_eq!(out.rounds, 5);
    }

    #[test]
    fn rmat_components_match_reference_two_nodes() {
        let adj = rmat_adj(7);
        let cfg = ComponentsConfig::new(Grid::new(2, 2).unwrap());
        let out = run(&adj, &cfg).unwrap(); // validated inside run()
        assert!(out.n_components >= 1);
        let biggest = out
            .labels
            .iter()
            .filter(|&&l| l == out.labels[0])
            .count();
        assert!(biggest > 1, "R-MAT core is connected");
    }

    #[test]
    fn logical_trace_matches_sequential_round_traffic() {
        let adj = rmat_adj(6);
        let mut cfg = ComponentsConfig::new(Grid::single_node(2).unwrap());
        cfg.trace = TraceConfig::off().with_logical();
        let out = run(&adj, &cfg).unwrap();
        let m = out.bundle.logical_matrix().unwrap();
        let (_, traffic) = sequential_rounds(&adj);
        let expected: u64 = traffic.iter().sum();
        assert_eq!(
            m.total(),
            expected,
            "dedup'd frontier makes message counts schedule-independent"
        );
        assert_eq!(out.rounds as usize, traffic.len());
    }

    #[test]
    fn recovers_from_a_killed_pe() {
        use fabsp_shmem::{FaultSpec, RecoverySpec};
        let adj = rmat_adj(5);
        let mut cfg = ComponentsConfig::new(Grid::single_node(2).unwrap());
        let base = run(&adj, &cfg).unwrap();
        assert!(base.recovery.is_clean(), "{}", base.recovery);
        cfg.run = cfg
            .run
            .clone()
            .with_faults(FaultSpec::kill_pe(1, 0))
            .with_recovery(RecoverySpec::restart(2))
            .with_checkpoint_every(1);
        let out = run(&adj, &cfg).unwrap();
        assert_eq!(out.labels, base.labels);
        assert_eq!(out.recovery.restarts, 1, "{}", out.recovery);
    }
}
