//! Skewed-key aggregation — a deliberately load-imbalanced workload.
//!
//! Every PE draws `updates_per_pe` keys from a Zipf distribution
//! ([`fabsp_graph::ZipfSampler`]) and sends `(key, value)` updates to the
//! key's owner (`key % n_pes`). With the default exponent the hottest key
//! draws an order of magnitude more traffic than the median, and since
//! key 0 lands on PE 0, that PE becomes a hotspot — by design. The
//! Fig-10-style imbalance views (per-PE handler counts, logical-matrix
//! column skew) get real signal from this app, unlike the uniform
//! workloads where imbalance only appears at tiny scales by chance.
//!
//! Aggregation is integer-exact (count + sum in `u64`), so the result is
//! independent of delivery order with no canonicalization step.

use actorprof::TraceBundle;
use fabsp_graph::ZipfSampler;
use fabsp_shmem::Grid;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;
use std::ops::{Deref, DerefMut};
use std::rc::Rc;

use crate::common::{AppError, DestBuckets, RunConfig};

/// The aggregation update message.
#[derive(Debug, Clone, Copy, Default)]
pub struct Update {
    /// Aggregation key (Zipf-distributed; key 0 is the hottest).
    pub key: u32,
    /// Value folded into the key's running sum.
    pub val: u64,
}

/// Configuration for a skewed-aggregation run: the shared [`RunConfig`]
/// plus the skew knobs. Derefs to [`RunConfig`].
#[derive(Debug, Clone)]
pub struct SkewedAggConfig {
    /// Shared run configuration. `run.seed` seeds the key/value streams.
    pub run: RunConfig,
    /// Updates issued by each PE.
    pub updates_per_pe: usize,
    /// Size of the key space.
    pub n_keys: usize,
    /// Zipf exponent: 0 = uniform, ≥1.5 = strongly skewed (default).
    pub exponent: f64,
}

impl SkewedAggConfig {
    /// A small, strongly skewed default on the given grid.
    pub fn new(grid: Grid) -> SkewedAggConfig {
        SkewedAggConfig {
            run: RunConfig::new(grid).with_seed(0x51CE),
            updates_per_pe: 2048,
            n_keys: 64,
            exponent: 1.5,
        }
    }
}

impl Deref for SkewedAggConfig {
    type Target = RunConfig;
    fn deref(&self) -> &RunConfig {
        &self.run
    }
}

impl DerefMut for SkewedAggConfig {
    fn deref_mut(&mut self) -> &mut RunConfig {
        &mut self.run
    }
}

/// Result of a skewed-aggregation run.
#[derive(Debug)]
pub struct SkewedAggOutcome {
    /// Per-key `(count, sum)`, indexed by key. Counts total
    /// `updates_per_pe * n_pes`.
    pub per_key: Vec<(u64, u64)>,
    /// Updates each PE's handler received — the load-imbalance signal.
    pub received_per_pe: Vec<u64>,
    /// `max(received) / mean(received)`: 1.0 is perfect balance; the
    /// default exponent drives this well above 1.
    pub imbalance: f64,
    /// The collected traces.
    pub bundle: TraceBundle,
    /// Fault-tolerance activity (clean on an undisturbed run).
    pub recovery: actorprof::RecoveryLog,
}

/// The update stream a `(seed, rank)` pair names (shared with the
/// sequential oracle). Values are derived from the same RNG draw stream.
fn updates_of_pe(config: &SkewedAggConfig, rank: usize) -> Vec<Update> {
    let zipf = ZipfSampler::new(config.n_keys, config.exponent);
    let mut rng = StdRng::seed_from_u64(config.seed ^ ((rank as u64) << 32));
    (0..config.updates_per_pe)
        .map(|_| {
            let key = zipf.sample(&mut rng) as u32;
            let val = rng.gen_range(1..1001u64);
            Update { key, val }
        })
        .collect()
}

/// Sequential oracle: per-key `(count, sum)` over every PE's stream.
pub fn sequential_aggregate(config: &SkewedAggConfig) -> Vec<(u64, u64)> {
    let mut per_key = vec![(0u64, 0u64); config.n_keys];
    for rank in 0..config.grid.n_pes() {
        for u in updates_of_pe(config, rank) {
            let e = &mut per_key[u.key as usize];
            e.0 += 1;
            e.1 += u.val;
        }
    }
    per_key
}

/// Run the skewed aggregation. Validates against
/// [`sequential_aggregate`].
pub fn run(config: &SkewedAggConfig) -> Result<SkewedAggOutcome, AppError> {
    let n_pes = config.grid.n_pes();
    let n_keys = config.n_keys;
    // local key index for key k owned by k % n_pes
    let local_slots = n_keys.div_ceil(n_pes);

    let report = config.profiler().run(|pe, prof| {
        let agg = Rc::new(RefCell::new(vec![(0u64, 0u64); local_slots]));
        let a = Rc::clone(&agg);
        let mut actor = prof
            .selector(1, move |_mb, u: Update, _from, _ctx| {
                let mut a = a.borrow_mut();
                let e = &mut a[u.key as usize / n_pes];
                e.0 += 1;
                e.1 += u.val;
            })
            .expect("selector construction");
        actor
            .execute(pe, |ctx| {
                let mut scatter = DestBuckets::new(n_pes);
                for u in updates_of_pe(config, ctx.rank()) {
                    scatter.stage(u.key as usize % n_pes, u);
                }
                scatter.send_all(ctx, 0).expect("update send");
                ctx.done(0).expect("done(0)");
            })
            .expect("skewed-agg execute");
        let local = agg.borrow().clone();
        local
    })?;

    let (per_pe, bundle, recovery) = (report.results, report.bundle, report.recovery);
    let received_per_pe: Vec<u64> = per_pe
        .iter()
        .map(|slots| slots.iter().map(|&(c, _)| c).sum())
        .collect();
    let mut per_key = vec![(0u64, 0u64); n_keys];
    for (rank, slots) in per_pe.into_iter().enumerate() {
        for (local, cs) in slots.into_iter().enumerate() {
            let key = local * n_pes + rank;
            if key < n_keys {
                per_key[key] = cs;
            }
        }
    }

    if per_key != sequential_aggregate(config) {
        return Err(AppError::Validation(
            "aggregated (count, sum) table differs from the sequential oracle".into(),
        ));
    }
    let total: u64 = received_per_pe.iter().sum();
    let mean = total as f64 / n_pes as f64;
    let max = received_per_pe.iter().copied().max().unwrap_or(0) as f64;
    let imbalance = if mean > 0.0 { max / mean } else { 1.0 };
    Ok(SkewedAggOutcome {
        per_key,
        received_per_pe,
        imbalance,
        bundle,
        recovery,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use actorprof_trace::TraceConfig;

    #[test]
    fn conserves_updates_and_matches_oracle() {
        let mut cfg = SkewedAggConfig::new(Grid::single_node(4).unwrap());
        cfg.updates_per_pe = 500;
        let out = run(&cfg).unwrap();
        let total: u64 = out.per_key.iter().map(|&(c, _)| c).sum();
        assert_eq!(total, 2000, "every update aggregated exactly once");
    }

    #[test]
    fn skew_breaks_load_balance_on_purpose() {
        let mut cfg = SkewedAggConfig::new(Grid::new(2, 2).unwrap());
        cfg.updates_per_pe = 2000;
        cfg.trace = TraceConfig::off().with_logical();
        let out = run(&cfg).unwrap();
        // PE 0 owns key 0, the hottest key: it must be the hotspot
        let max_pe = out
            .received_per_pe
            .iter()
            .enumerate()
            .max_by_key(|&(_, &c)| c)
            .map(|(pe, _)| pe)
            .unwrap();
        assert_eq!(max_pe, 0, "hot key 0 lands on PE 0: {:?}", out.received_per_pe);
        assert!(
            out.imbalance > 1.5,
            "default exponent must visibly skew the load: {}",
            out.imbalance
        );
        // the logical matrix sees the same skew in its column totals
        let m = out.bundle.logical_matrix().unwrap();
        let cols = m.col_totals();
        assert!(cols[0] > cols[2] * 2, "column skew: {cols:?}");
    }

    #[test]
    fn zero_exponent_is_balanced() {
        let mut cfg = SkewedAggConfig::new(Grid::single_node(4).unwrap());
        cfg.updates_per_pe = 2000;
        cfg.exponent = 0.0;
        let out = run(&cfg).unwrap();
        assert!(
            out.imbalance < 1.2,
            "uniform keys spread evenly: {}",
            out.imbalance
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let mut cfg = SkewedAggConfig::new(Grid::single_node(2).unwrap());
        cfg.updates_per_pe = 300;
        let a = run(&cfg).unwrap();
        let b = run(&cfg).unwrap();
        assert_eq!(a.per_key, b.per_key);
        assert_eq!(a.received_per_pe, b.received_per_pe);
    }

    #[test]
    fn recovers_from_a_killed_pe() {
        use fabsp_shmem::{FaultSpec, RecoverySpec};
        let mut cfg = SkewedAggConfig::new(Grid::single_node(2).unwrap());
        cfg.updates_per_pe = 200;
        let base = run(&cfg).unwrap();
        assert!(base.recovery.is_clean(), "{}", base.recovery);
        cfg.run = cfg
            .run
            .clone()
            .with_faults(FaultSpec::kill_pe(1, 0))
            .with_recovery(RecoverySpec::restart(2))
            .with_checkpoint_every(1);
        let out = run(&cfg).unwrap();
        assert_eq!(out.per_key, base.per_key);
        assert_eq!(out.recovery.restarts, 1, "{}", out.recovery);
    }
}
