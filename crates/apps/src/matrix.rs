//! The ten-app conformance registry — `fabsp_testkit::matrix` made
//! concrete.
//!
//! One [`AppSpec`] per bundled workload, each mapping the generic
//! [`MatrixParams`] (grid, scale, schedule, faults, recovery, conveyor
//! options) to that app's config, running it through the
//! [`actorprof::Profiler`] facade, and reducing the outcome to a
//! [`MatrixRun`]: a canonical FNV digest of the full deterministic result,
//! an independently computed digest of the sequential golden oracle, the
//! flattened logical trace matrix, and the `RecoveryLog`. The
//! schedule-fuzz, crash-recovery, and race-detect suites iterate
//! [`registry`] instead of hand-writing one test per app.
//!
//! ## Adding an eleventh app
//!
//! Three pieces, ~40 lines total, all in this file:
//! 1. a `*_config(params)` builder mapping [`MatrixParams`] to your
//!    app's config (apply [`apply_params`], derive sizes from
//!    `params.scale`);
//! 2. a `run_*` fn running the app and digesting (a) the canonical
//!    result and (b) the sequential oracle over the same projection;
//! 3. one [`AppSpec`] entry in [`registry`] with a seed budget.
//!
//! Nothing in the test suites changes: they pick the new entry up on the
//! next run.

use actorprof::TraceBundle;
use actorprof_trace::TraceConfig;
use fabsp_graph::edgelist::to_lower_triangular;
use fabsp_graph::rmat::{generate_edges, RmatParams};
use fabsp_graph::Csr;
use fabsp_testkit::matrix::{fnv1a, AppSpec, Digest, MatrixParams, MatrixRun};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::bfs::{self, symmetric_adjacency, BfsConfig};
use crate::common::RunConfig;
use crate::components::{self, ComponentsConfig};
use crate::histogram::{self, HistogramConfig};
use crate::index_gather::{self, IndexGatherConfig};
use crate::intsort::{self, IntSortConfig};
use crate::jaccard::{self, JaccardConfig};
use crate::pagerank::{self, PageRankConfig};
use crate::permute::{self, PermuteConfig};
use crate::skewed_agg::{self, SkewedAggConfig};
use crate::triangle::{count_triangles, DistKind, TriangleConfig};

/// Copy the substrate knobs of [`MatrixParams`] onto a [`RunConfig`].
pub fn apply_params(run: &mut RunConfig, p: &MatrixParams) {
    run.trace = if p.logical {
        TraceConfig::off().with_logical()
    } else {
        TraceConfig::off()
    };
    run.conveyor = p.conveyor;
    run.sched = p.sched;
    run.faults = p.faults;
    run.recovery = p.recovery;
    run.checkpoint_every = p.checkpoint_every;
    run.continuous = p.continuous;
    run.transport = p.transport;
}

/// Flatten the bundle's logical matrix row-major, when requested.
fn flatten_logical(bundle: &TraceBundle, p: &MatrixParams) -> Option<Vec<u64>> {
    if !p.logical {
        return None;
    }
    let m = bundle
        .logical_matrix()
        .expect("logical trace requested but not collected");
    Some((0..m.n()).flat_map(|r| m.row(r).to_vec()).collect())
}

/// The deterministic R-MAT adjacency the graph apps share, sized off the
/// global scale (tiny: scheduled replays run hundreds of times in CI).
fn graph_scale(p: &MatrixParams) -> u32 {
    p.scale.saturating_sub(2).clamp(3, 6)
}

fn lower_csr(p: &MatrixParams) -> (usize, Vec<(u32, u32)>) {
    let rp = RmatParams::graph500(graph_scale(p));
    (rp.n_vertices(), to_lower_triangular(&generate_edges(&rp)))
}

fn adjacency(p: &MatrixParams) -> Csr {
    let (n, lower) = lower_csr(p);
    symmetric_adjacency(n, &lower)
}

// ---------------------------------------------------------------- histogram

fn run_histogram(p: &MatrixParams) -> Result<MatrixRun, String> {
    let mut cfg = HistogramConfig::new(p.grid);
    apply_params(&mut cfg.run, p);
    cfg.table_size_per_pe = 4 * p.scale as usize;
    cfg.updates_per_pe = 8 * p.scale as usize;
    let out = histogram::run(&cfg).map_err(|e| format!("histogram: {e}"))?;

    // oracle: replay every PE's seeded stream, count landings per PE
    let n_pes = p.grid.n_pes();
    let table = cfg.table_size_per_pe;
    let mut landings = vec![0u64; n_pes];
    for rank in 0..n_pes {
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ ((rank as u64) << 32));
        for _ in 0..cfg.updates_per_pe {
            let global: usize = rng.gen_range(0..n_pes * table);
            landings[global / table] += 1;
        }
    }
    Ok(MatrixRun {
        result_digest: fnv1a(out.per_pe_updates.iter().copied()),
        golden_digest: fnv1a(landings),
        logical: flatten_logical(&out.bundle, p),
        n_pes,
        recovery: out.recovery,
    })
}

// ------------------------------------------------------------- index-gather

fn run_index_gather(p: &MatrixParams) -> Result<MatrixRun, String> {
    let mut cfg = IndexGatherConfig::new(p.grid);
    apply_params(&mut cfg.run, p);
    cfg.table_size_per_pe = 4 * p.scale as usize;
    cfg.reads_per_pe = 8 * p.scale as usize;
    let out = index_gather::run(&cfg).map_err(|e| format!("index_gather: {e}"))?;
    // run() validates every gathered value; the countable golden
    // projection is "every issued read came back correct"
    let expected = (cfg.reads_per_pe * p.grid.n_pes()) as u64;
    Ok(MatrixRun {
        result_digest: fnv1a([out.correct_reads]),
        golden_digest: fnv1a([expected]),
        logical: flatten_logical(&out.bundle, p),
        n_pes: p.grid.n_pes(),
        recovery: out.recovery,
    })
}

// ----------------------------------------------------------------- triangle

fn run_triangle(p: &MatrixParams) -> Result<MatrixRun, String> {
    let (n, lower) = lower_csr(p);
    let l = Csr::from_edges(n, &lower);
    let mut cfg = TriangleConfig::new(p.grid).with_dist(DistKind::Cyclic);
    apply_params(&mut cfg.run, p);
    let out = count_triangles(&l, &cfg).map_err(|e| format!("triangle: {e}"))?;

    // oracle: replay Algorithm 1's wedge checks sequentially, crediting
    // the PE that owns row j — per-PE golden counts, not just the total
    let n_pes = p.grid.n_pes();
    let dist = DistKind::Cyclic.resolve(&l, n_pes);
    let mut per_pe = vec![0u64; n_pes];
    for i in 0..l.n() {
        let row = l.row(i);
        for (a, &k) in row.iter().enumerate() {
            for &j in &row[a + 1..] {
                if l.row(j as usize).binary_search(&k).is_ok() {
                    per_pe[dist.owner(j as usize)] += 1;
                }
            }
        }
    }
    let golden_total: u64 = per_pe.iter().sum();
    Ok(MatrixRun {
        result_digest: fnv1a(
            std::iter::once(out.triangles).chain(out.per_pe_triangles.iter().copied()),
        ),
        golden_digest: fnv1a(std::iter::once(golden_total).chain(per_pe)),
        logical: flatten_logical(&out.bundle, p),
        n_pes,
        recovery: out.recovery,
    })
}

// ---------------------------------------------------------------------- bfs

fn run_bfs(p: &MatrixParams) -> Result<MatrixRun, String> {
    let adj = adjacency(p);
    let mut cfg = BfsConfig::new(p.grid);
    apply_params(&mut cfg.run, p);
    let out = bfs::run(&adj, &cfg).map_err(|e| format!("bfs: {e}"))?;
    let golden = bfs::sequential_bfs(&adj, cfg.source);
    Ok(MatrixRun {
        result_digest: fnv1a(out.distances.iter().map(|&d| d as u64)),
        golden_digest: fnv1a(golden.iter().map(|&d| d as u64)),
        logical: flatten_logical(&out.bundle, p),
        n_pes: p.grid.n_pes(),
        recovery: out.recovery,
    })
}

// --------------------------------------------------------------- components

fn run_components(p: &MatrixParams) -> Result<MatrixRun, String> {
    let adj = adjacency(p);
    let mut cfg = ComponentsConfig::new(p.grid);
    apply_params(&mut cfg.run, p);
    let out = components::run(&adj, &cfg).map_err(|e| format!("components: {e}"))?;
    let golden = components::sequential_components(&adj);
    Ok(MatrixRun {
        result_digest: fnv1a(out.labels.iter().map(|&l| l as u64)),
        golden_digest: fnv1a(golden.iter().map(|&l| l as u64)),
        logical: flatten_logical(&out.bundle, p),
        n_pes: p.grid.n_pes(),
        recovery: out.recovery,
    })
}

// ----------------------------------------------------------------- pagerank

/// Quantize a rank to a 1e-6 grid: the distributed canonical fold and the
/// sequential reference agree to ~1e-12, so both land in the same cell
/// (deterministically — same seeds, same graph, every run).
fn quantize(r: f64) -> u64 {
    (r * 1e6).round() as u64
}

fn run_pagerank(p: &MatrixParams) -> Result<MatrixRun, String> {
    let adj = adjacency(p);
    let mut cfg = PageRankConfig::new(p.grid);
    apply_params(&mut cfg.run, p);
    cfg.iterations = 4;
    let out = pagerank::run(&adj, &cfg).map_err(|e| format!("pagerank: {e}"))?;
    let golden = pagerank::sequential_pagerank(&adj, cfg.damping, cfg.iterations);
    Ok(MatrixRun {
        result_digest: fnv1a(out.ranks.iter().map(|&r| quantize(r))),
        golden_digest: fnv1a(golden.iter().map(|&r| quantize(r))),
        logical: flatten_logical(&out.bundle, p),
        n_pes: p.grid.n_pes(),
        recovery: out.recovery,
    })
}

// ------------------------------------------------------------------ permute

fn run_permute(p: &MatrixParams) -> Result<MatrixRun, String> {
    let mut cfg = PermuteConfig::new(p.grid);
    apply_params(&mut cfg.run, p);
    cfg.run = cfg.run.with_seed(0x9E12); // workload seed, post-apply
    cfg.slots_per_pe = 8 * p.scale as usize;
    let out = permute::run(&cfg).map_err(|e| format!("permute: {e}"))?;
    // oracle: apply the named permutation directly
    let n_total = p.grid.n_pes() * cfg.slots_per_pe;
    let perm = permute::permutation(n_total, cfg.seed);
    let mut golden = vec![0u32; n_total];
    for (i, &target) in perm.iter().enumerate() {
        golden[target as usize] = i as u32;
    }
    Ok(MatrixRun {
        result_digest: fnv1a(out.permuted.iter().map(|&v| v as u64)),
        golden_digest: fnv1a(golden.iter().map(|&v| v as u64)),
        logical: flatten_logical(&out.bundle, p),
        n_pes: p.grid.n_pes(),
        recovery: out.recovery,
    })
}

// ------------------------------------------------------------------ jaccard

fn run_jaccard(p: &MatrixParams) -> Result<MatrixRun, String> {
    let adj = adjacency(p);
    let mut cfg = JaccardConfig::new(p.grid);
    apply_params(&mut cfg.run, p);
    let out = jaccard::run(&adj, &cfg).map_err(|e| format!("jaccard: {e}"))?;
    // both sides divide the same exact integers, so coefficients match
    // bit-for-bit; digest sorted (edge, bits) streams
    let digest_coeffs = |m: &std::collections::HashMap<(u32, u32), f64>| {
        let mut edges: Vec<((u32, u32), f64)> = m.iter().map(|(&e, &j)| (e, j)).collect();
        edges.sort_unstable_by_key(|&(e, _)| e);
        let mut d = Digest::new();
        for ((u, v), j) in edges {
            d.word(((u as u64) << 32) | v as u64).word(j.to_bits());
        }
        d.finish()
    };
    Ok(MatrixRun {
        result_digest: digest_coeffs(&out.coefficients),
        golden_digest: digest_coeffs(&jaccard::sequential_jaccard(&adj)),
        logical: flatten_logical(&out.bundle, p),
        n_pes: p.grid.n_pes(),
        recovery: out.recovery,
    })
}

// ------------------------------------------------------------------ intsort

fn run_intsort(p: &MatrixParams) -> Result<MatrixRun, String> {
    let mut cfg = IntSortConfig::new(p.grid);
    apply_params(&mut cfg.run, p);
    cfg.run = cfg.run.with_seed(0x1507);
    cfg.keys_per_pe = 8 * p.scale as usize;
    cfg.bucket_size = 8 * p.scale as u64;
    let out = intsort::run(&cfg).map_err(|e| format!("intsort: {e}"))?;
    Ok(MatrixRun {
        result_digest: fnv1a(out.sorted.iter().copied()),
        golden_digest: fnv1a(intsort::sequential_sort(&cfg)),
        logical: flatten_logical(&out.bundle, p),
        n_pes: p.grid.n_pes(),
        recovery: out.recovery,
    })
}

// --------------------------------------------------------------- skewed-agg

fn run_skewed_agg(p: &MatrixParams) -> Result<MatrixRun, String> {
    let mut cfg = SkewedAggConfig::new(p.grid);
    apply_params(&mut cfg.run, p);
    cfg.run = cfg.run.with_seed(0x51CE);
    cfg.updates_per_pe = 16 * p.scale as usize;
    cfg.n_keys = 8 * p.scale as usize;
    let out = skewed_agg::run(&cfg).map_err(|e| format!("skewed_agg: {e}"))?;
    let digest_table = |t: &[(u64, u64)]| fnv1a(t.iter().flat_map(|&(c, s)| [c, s]));
    Ok(MatrixRun {
        result_digest: digest_table(&out.per_key),
        golden_digest: digest_table(&skewed_agg::sequential_aggregate(&cfg)),
        logical: flatten_logical(&out.bundle, p),
        n_pes: p.grid.n_pes(),
        recovery: out.recovery,
    })
}

/// Every bundled workload, one [`AppSpec`] each. Seed budgets are tuned
/// so the full fuzz sweep (Σ budgets × 3 fault modes = 132 schedules)
/// clears the 100-schedule floor while the slow graph apps run fewer
/// replays than the cheap kernels.
pub fn registry() -> Vec<AppSpec> {
    vec![
        AppSpec {
            name: "histogram",
            fuzz_seed_budget: 6,
            runner: run_histogram,
        },
        AppSpec {
            name: "index_gather",
            fuzz_seed_budget: 5,
            runner: run_index_gather,
        },
        AppSpec {
            name: "triangle",
            fuzz_seed_budget: 4,
            runner: run_triangle,
        },
        AppSpec {
            name: "bfs",
            fuzz_seed_budget: 4,
            runner: run_bfs,
        },
        AppSpec {
            name: "components",
            fuzz_seed_budget: 3,
            runner: run_components,
        },
        AppSpec {
            name: "pagerank",
            fuzz_seed_budget: 3,
            runner: run_pagerank,
        },
        AppSpec {
            name: "permute",
            fuzz_seed_budget: 5,
            runner: run_permute,
        },
        AppSpec {
            name: "jaccard",
            fuzz_seed_budget: 3,
            runner: run_jaccard,
        },
        AppSpec {
            name: "intsort",
            fuzz_seed_budget: 6,
            runner: run_intsort,
        },
        AppSpec {
            name: "skewed_agg",
            fuzz_seed_budget: 5,
            runner: run_skewed_agg,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabsp_shmem::Grid;

    #[test]
    fn registry_names_are_unique_and_budgets_clear_the_floor() {
        let apps = registry();
        assert_eq!(apps.len(), 10, "ten apps in the matrix");
        let mut names: Vec<&str> = apps.iter().map(|a| a.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 10, "names are unique");
        let total: u64 = apps.iter().map(|a| a.fuzz_seed_budget).sum();
        assert!(
            total * 3 >= 100,
            "Σ budgets × 3 fault modes = {} must clear the 100-schedule floor",
            total * 3
        );
    }

    #[test]
    fn every_app_reproduces_its_golden_oracle() {
        let mut params = MatrixParams::new(Grid::single_node(4).unwrap());
        params.scale = 5;
        for app in registry() {
            let run = app
                .run(&params)
                .unwrap_or_else(|e| panic!("{}: {e}", app.name));
            run.assert_golden(&app.name);
            assert!(run.recovery.is_clean(), "{}: {}", app.name, run.recovery);
            let logical = run.logical.as_ref().expect("logical requested");
            assert_eq!(logical.len(), 16, "4x4 flattened matrix");
            assert!(
                logical.iter().sum::<u64>() > 0,
                "{}: every app sends messages",
                app.name
            );
        }
    }

    #[test]
    fn matrix_runs_are_reproducible() {
        let mut params = MatrixParams::new(Grid::single_node(2).unwrap());
        params.scale = 4;
        for app in registry() {
            let a = app.run(&params).unwrap();
            let b = app.run(&params).unwrap();
            a.assert_matches(&b, &app.name);
        }
    }
}
