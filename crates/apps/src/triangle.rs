//! Distributed triangle counting — the ActorProf case study (§IV,
//! Algorithm 1).
//!
//! Each actor iterates the rows of `L` it owns; for every wedge — a pair
//! of neighbours `k < j` of a local row `i` — it sends an active message
//! `(j, k)` to the PE owning row `j`, whose handler increments its local
//! counter if edge `(j, k)` exists. `WAIT()` is the selector's `execute`
//! termination; `AllReduce` sums the per-PE counters.
//!
//! The row-ownership map is pluggable ([`DistKind`]): **1D Cyclic**
//! (`j % p` — Algorithm 1's `FindOwner`) or **1D Range** (equal-nnz
//! contiguous blocks). Comparing the two under ActorProf is the entire
//! §IV-D evaluation.
//!
//! In-process substitution: the CSR is shared read-only by all PE threads
//! (`&Csr`), standing in for each PE's local rows + remote row storage;
//! every PE only *iterates* rows it owns and only *answers* for rows it
//! owns, so the communication pattern is exactly the distributed one.

use actorprof::TraceBundle;
use actorprof_trace::TraceConfig;
use fabsp_graph::{triangle_ref, Csr, Distribution};
use fabsp_hwpc::Cost;
use fabsp_shmem::Grid;
use std::cell::RefCell;
use std::ops::{Deref, DerefMut};
use std::rc::Rc;

use crate::common::{AppError, DestBuckets, RunConfig};

/// Which row distribution to run under (§IV-B2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistKind {
    /// 1D Cyclic: `owner(row) = row % p` (similar vertex counts).
    Cyclic,
    /// 1D Range: contiguous blocks with similar edge (nnz) counts.
    RangeByNnz,
}

impl DistKind {
    /// Resolve against a concrete matrix and PE count.
    pub fn resolve(self, csr: &Csr, n_pes: usize) -> Distribution {
        match self {
            DistKind::Cyclic => Distribution::cyclic(n_pes),
            DistKind::RangeByNnz => Distribution::range_by_nnz(csr, n_pes),
        }
    }

    /// Figure label.
    pub fn label(self) -> &'static str {
        match self {
            DistKind::Cyclic => "1D Cyclic",
            DistKind::RangeByNnz => "1D Range",
        }
    }
}

/// Configuration for a triangle-counting run: the shared [`RunConfig`]
/// plus the case-study knobs. Derefs to [`RunConfig`], so `cfg.trace`,
/// `cfg.conveyor`, `cfg.sched`, … keep working at every call site.
#[derive(Debug, Clone)]
pub struct TriangleConfig {
    /// Shared run configuration (layout, tracing, aggregation, schedule,
    /// faults). The paper uses 1×16 and 2×16 grids and profiles only the
    /// counting kernel; graph construction and validation are outside the
    /// trace window, as here.
    pub run: RunConfig,
    /// Row distribution.
    pub dist: DistKind,
    /// Validate against the sequential reference count (§IV-C's
    /// assertion). Skippable for large benchmark sweeps.
    pub validate: bool,
}

impl TriangleConfig {
    /// Defaults: cyclic distribution, no tracing, validation on.
    pub fn new(grid: Grid) -> TriangleConfig {
        TriangleConfig {
            run: RunConfig::new(grid),
            dist: DistKind::Cyclic,
            validate: true,
        }
    }

    /// Select the distribution.
    pub fn with_dist(mut self, dist: DistKind) -> TriangleConfig {
        self.dist = dist;
        self
    }

    /// Enable tracing.
    pub fn with_trace(mut self, trace: TraceConfig) -> TriangleConfig {
        self.run.trace = trace;
        self
    }
}

impl Deref for TriangleConfig {
    type Target = RunConfig;
    fn deref(&self) -> &RunConfig {
        &self.run
    }
}

impl DerefMut for TriangleConfig {
    fn deref_mut(&mut self) -> &mut RunConfig {
        &mut self.run
    }
}

/// Result of a distributed triangle count.
#[derive(Debug)]
pub struct TriangleOutcome {
    /// The distributed count (validated against the reference when
    /// configured).
    pub triangles: u64,
    /// Total wedge messages sent (= `csr.wedge_count()`).
    pub wedges: u64,
    /// Per-PE local triangle counters.
    pub per_pe_triangles: Vec<u64>,
    /// The collected traces.
    pub bundle: TraceBundle,
    /// Fault-tolerance activity (clean on an undisturbed run).
    pub recovery: actorprof::RecoveryLog,
}

/// Pack a wedge `(j, k)` into the 8-byte message of Algorithm 1.
#[inline]
fn pack(j: u32, k: u32) -> u64 {
    ((j as u64) << 32) | k as u64
}

/// Count triangles of the lower-triangular matrix `l` with one actor per
/// PE (Algorithm 1 under the given distribution).
pub fn count_triangles(l: &Csr, config: &TriangleConfig) -> Result<TriangleOutcome, AppError> {
    let n_pes = config.grid.n_pes();
    let dist = config.dist.resolve(l, n_pes);

    let report = config.profiler().run(|pe, prof| {
        let counter = Rc::new(RefCell::new(0u64));
        let c = Rc::clone(&counter);
        let handler_dist = dist.clone();
        let mut actor = prof
            .selector(1, move |_mb, msg: u64, _from, _ctx| {
                // ActorProcess(j, k): if l_jk exists, count a triangle.
                let j = (msg >> 32) as usize;
                let k = (msg & 0xffff_ffff) as u32;
                debug_assert_eq!(handler_dist.owner(j), _ctx.rank(), "wedge misrouted");
                // handler work: one binary search over row j
                let probes = (l.degree(j).max(1) as u64).ilog2() as u64 + 1;
                Cost::instructions(10 + 6 * probes).charge();
                if l.has_edge(j, k) {
                    *c.borrow_mut() += 1;
                }
            })
            .expect("selector construction");

        actor
            .execute(pe, |ctx| {
                let me = ctx.rank();
                let mut wedges = DestBuckets::new(ctx.n_pes());
                for i in dist.rows_of(me, l.n()) {
                    let row = l.row(i);
                    // find two distinct neighbours l_ij, l_ik with k < j
                    for (a, &j) in row.iter().enumerate() {
                        let owner = dist.owner(j as usize);
                        for &k in &row[..a] {
                            wedges.stage(owner, pack(j, k));
                        }
                    }
                }
                wedges.send_all(ctx, 0).expect("wedge send");
                ctx.done(0).expect("done(0)");
            })
            .expect("triangle execute");

        let local = *counter.borrow();
        local
    })?;

    let (per_pe_triangles, bundle, recovery) = (report.results, report.bundle, report.recovery);
    let triangles: u64 = per_pe_triangles.iter().sum();
    let wedges = l.wedge_count();

    if config.validate {
        let reference = triangle_ref::count_by_wedges(l);
        if triangles != reference {
            return Err(AppError::Validation(format!(
                "distributed count {triangles} != reference {reference}"
            )));
        }
    }

    Ok(TriangleOutcome {
        triangles,
        wedges,
        per_pe_triangles,
        bundle,
        recovery,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabsp_graph::edgelist::to_lower_triangular;
    use fabsp_graph::rmat::{generate_edges, RmatParams};

    fn rmat_csr(scale: u32) -> Csr {
        let p = RmatParams::graph500(scale);
        let edges = to_lower_triangular(&generate_edges(&p));
        Csr::from_edges(p.n_vertices(), &edges)
    }

    #[test]
    fn counts_k4_under_both_distributions() {
        let l = Csr::from_edges(4, &[(1, 0), (2, 0), (3, 0), (2, 1), (3, 1), (3, 2)]);
        for dist in [DistKind::Cyclic, DistKind::RangeByNnz] {
            let cfg = TriangleConfig::new(Grid::single_node(2).unwrap()).with_dist(dist);
            let out = count_triangles(&l, &cfg).unwrap();
            assert_eq!(out.triangles, 4, "{}", dist.label());
        }
    }

    #[test]
    fn matches_reference_on_rmat_one_node() {
        let l = rmat_csr(7);
        let cfg = TriangleConfig::new(Grid::single_node(4).unwrap());
        let out = count_triangles(&l, &cfg).unwrap();
        assert_eq!(out.triangles, triangle_ref::count_by_wedges(&l));
        assert_eq!(out.wedges, l.wedge_count());
    }

    #[test]
    fn matches_reference_on_rmat_two_nodes_range() {
        let l = rmat_csr(7);
        let cfg = TriangleConfig::new(Grid::new(2, 2).unwrap()).with_dist(DistKind::RangeByNnz);
        let out = count_triangles(&l, &cfg).unwrap();
        assert_eq!(out.triangles, triangle_ref::count_by_intersection(&l));
    }

    #[test]
    fn logical_trace_counts_every_wedge() {
        let l = rmat_csr(6);
        let cfg = TriangleConfig::new(Grid::single_node(4).unwrap())
            .with_trace(TraceConfig::off().with_logical());
        let out = count_triangles(&l, &cfg).unwrap();
        let m = out.bundle.logical_matrix().unwrap();
        assert_eq!(m.total(), out.wedges, "one message per wedge");
    }

    #[test]
    fn range_trace_is_lower_triangular() {
        // The (L) observation of §IV-D: under 1D Range the PE-level send
        // matrix has no mass above the diagonal.
        let l = rmat_csr(8);
        let cfg = TriangleConfig::new(Grid::single_node(4).unwrap())
            .with_dist(DistKind::RangeByNnz)
            .with_trace(TraceConfig::off().with_logical());
        let out = count_triangles(&l, &cfg).unwrap();
        let m = out.bundle.logical_matrix().unwrap();
        assert!(
            m.is_lower_triangular(),
            "1D Range send matrix must be lower triangular"
        );
    }

    #[test]
    fn cyclic_concentrates_recvs_on_low_pes() {
        let l = rmat_csr(8);
        let cfg = TriangleConfig::new(Grid::single_node(4).unwrap())
            .with_trace(TraceConfig::off().with_logical());
        let out = count_triangles(&l, &cfg).unwrap();
        let m = out.bundle.logical_matrix().unwrap();
        let recvs = m.col_totals();
        // hub rows live at low ids; cyclic maps them to PE0
        let max = *recvs.iter().max().unwrap();
        assert_eq!(recvs[0], max, "PE0 should receive the most: {recvs:?}");
    }
}
