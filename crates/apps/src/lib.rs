//! # fabsp-apps — FA-BSP applications on the selector runtime
//!
//! The workloads of the ActorProf paper and of the bale benchmark family
//! it builds on, each written against [`fabsp_actor::Selector`] and each
//! returning a full [`actorprof::TraceBundle`] when tracing is enabled:
//!
//! - [`histogram`] — the paper's Listings 1–2: fine-grained remote
//!   increments into per-PE tables (the canonical bale `histo` kernel).
//! - [`index_gather`] — bale's `ig`: random remote reads implemented as a
//!   request mailbox whose handlers answer on a response mailbox.
//! - [`permute`] — bale's random permutation: scatter values to the owner
//!   of each target slot.
//! - [`triangle`] — the §IV case study: distributed triangle counting
//!   (Algorithm 1) over a lower-triangular R-MAT matrix under 1D Cyclic or
//!   1D Range distribution, validated against the sequential reference
//!   counts exactly as §IV-C validates ("by using assertion").
//! - [`bfs`] — level-synchronous distributed BFS (one selector per level),
//!   validated against a sequential BFS.
//! - [`pagerank`] — push-style synchronous PageRank with struct-typed
//!   messages, validated against a sequential reference.
//! - [`jaccard`] — per-edge Jaccard similarity via wedge probes and a
//!   confirmation mailbox (a workload §IV-A names).
//!
//! [`profile::profile_run`] is the one-call driver: handler + MAIN body in,
//! per-PE results + [`actorprof::TraceBundle`] out.

// Zero unsafe today; keep it that way by construction.
#![forbid(unsafe_code)]

pub mod bfs;
pub mod common;
pub mod histogram;
pub mod jaccard;
pub mod pagerank;
pub mod profile;
pub mod index_gather;
pub mod permute;
pub mod triangle;

pub use common::{AppError, RunConfig};
pub use triangle::{count_triangles, DistKind, TriangleConfig, TriangleOutcome};
