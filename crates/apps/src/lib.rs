//! # fabsp-apps — FA-BSP applications on the selector runtime
//!
//! The workloads of the ActorProf paper and of the bale benchmark family
//! it builds on, each written against [`fabsp_actor::Selector`] and each
//! returning a full [`actorprof::TraceBundle`] when tracing is enabled:
//!
//! - [`histogram`] — the paper's Listings 1–2: fine-grained remote
//!   increments into per-PE tables (the canonical bale `histo` kernel).
//! - [`index_gather`] — bale's `ig`: random remote reads implemented as a
//!   request mailbox whose handlers answer on a response mailbox.
//! - [`permute`] — bale's random permutation: scatter values to the owner
//!   of each target slot.
//! - [`triangle`] — the §IV case study: distributed triangle counting
//!   (Algorithm 1) over a lower-triangular R-MAT matrix under 1D Cyclic or
//!   1D Range distribution, validated against the sequential reference
//!   counts exactly as §IV-C validates ("by using assertion").
//! - [`bfs`] — level-synchronous distributed BFS (one selector spans all
//!   levels), validated against a sequential BFS.
//! - [`components`] — connected components by min-label propagation with
//!   a dedup'd frontier (schedule-independent traffic), validated against
//!   a sequential fixpoint.
//! - [`pagerank`] — push-style synchronous PageRank with struct-typed
//!   messages and a canonical-order fold for bit-stable results,
//!   validated against a sequential reference.
//! - [`jaccard`] — per-edge Jaccard similarity via wedge probes and a
//!   confirmation mailbox (a workload §IV-A names).
//! - [`intsort`] — distributed bucket/integer sort: every key crosses the
//!   conveyor exactly once (the canonical FA-BSP stress test).
//! - [`skewed_agg`] — Zipf-keyed aggregation that deliberately breaks
//!   load balance so imbalance views have real signal.
//!
//! Every app runs through the [`actorprof::Profiler`] facade via
//! [`common::RunConfig`] and returns a typed outcome carrying its result,
//! the [`actorprof::TraceBundle`], and the [`actorprof::RecoveryLog`].
//! The [`matrix`] module registers all ten as [`fabsp_testkit::matrix`]
//! entries so the conformance suites iterate over one registry.
//!
//! [`profile::profile_run`] is the one-call driver: handler + MAIN body in,
//! per-PE results + [`actorprof::TraceBundle`] out.

// Zero unsafe today; keep it that way by construction.
#![forbid(unsafe_code)]

pub mod bfs;
pub mod common;
pub mod components;
pub mod histogram;
pub mod intsort;
pub mod jaccard;
pub mod matrix;
pub mod pagerank;
pub mod profile;
pub mod index_gather;
pub mod permute;
pub mod skewed_agg;
pub mod triangle;

pub use common::{AppError, RunConfig};
pub use matrix::registry;
pub use triangle::{count_triangles, DistKind, TriangleConfig, TriangleOutcome};
