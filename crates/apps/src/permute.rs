//! Random permutation — bale's `randperm`-style scatter kernel.
//!
//! A distributed array of `n_pes * slots_per_pe` values is permuted: each
//! PE scatters its local values to the owner of the permuted position.
//! Validation checks that the permuted array is exactly a rearrangement.

use actorprof::TraceBundle;
use fabsp_shmem::Grid;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::cell::RefCell;
use std::ops::{Deref, DerefMut};
use std::rc::Rc;

use crate::common::{AppError, DestBuckets, RunConfig};

/// Configuration for a permutation run: the shared [`RunConfig`] plus the
/// permute-specific workload knob. Derefs to [`RunConfig`], so
/// `cfg.trace = …` / `cfg.sched = …` work like every other app. The
/// permutation itself is seeded by `cfg.seed`.
#[derive(Debug, Clone)]
pub struct PermuteConfig {
    /// Shared run configuration (layout, tracing, schedule, faults,
    /// recovery). `run.seed` seeds the global permutation.
    pub run: RunConfig,
    /// Array slots owned by each PE.
    pub slots_per_pe: usize,
}

impl PermuteConfig {
    /// A small default on the given grid.
    pub fn new(grid: Grid) -> PermuteConfig {
        PermuteConfig {
            run: RunConfig::new(grid).with_seed(0x9E12),
            slots_per_pe: 1024,
        }
    }
}

impl Deref for PermuteConfig {
    type Target = RunConfig;
    fn deref(&self) -> &RunConfig {
        &self.run
    }
}

impl DerefMut for PermuteConfig {
    fn deref_mut(&mut self) -> &mut RunConfig {
        &mut self.run
    }
}

/// Result of a permutation run.
#[derive(Debug)]
pub struct PermuteOutcome {
    /// The permuted array, rank-order concatenation of every PE's slots:
    /// `permuted[perm[i]] == i` for the global permutation `perm`.
    pub permuted: Vec<u32>,
    /// Checksum (sum) of the permuted array — equals the source checksum.
    pub checksum: u64,
    /// The collected traces.
    pub bundle: TraceBundle,
    /// Fault-tolerance activity (clean on an undisturbed run).
    pub recovery: actorprof::RecoveryLog,
}

/// The global permutation a seed names (shared with the sequential
/// oracle used by the test matrices).
pub fn permutation(n_total: usize, seed: u64) -> Vec<u32> {
    let mut p: Vec<u32> = (0..n_total as u32).collect();
    p.shuffle(&mut StdRng::seed_from_u64(seed));
    p
}

/// Wire format: `(local_slot << 32) | value`. Values are the global source
/// index, which fits 32 bits for every test/bench scale used here.
fn pack(slot: usize, value: u32) -> u64 {
    ((slot as u64) << 32) | value as u64
}

/// Run the permutation kernel.
pub fn run(config: &PermuteConfig) -> Result<PermuteOutcome, AppError> {
    let slots = config.slots_per_pe;
    let n_total = config.grid.n_pes() * slots;
    assert!(n_total < u32::MAX as usize, "packed format limit");
    // The global permutation (same on every PE; deterministic).
    let perm = permutation(n_total, config.seed);

    let report = config.profiler().run(|pe, prof| {
        let dest = Rc::new(RefCell::new(vec![u32::MAX; slots]));
        let d = Rc::clone(&dest);
        let mut actor = prof
            .selector(1, move |_mb, msg: u64, _from, _ctx| {
                let slot = (msg >> 32) as usize;
                let value = (msg & 0xffff_ffff) as u32;
                let prev = std::mem::replace(&mut d.borrow_mut()[slot], value);
                assert_eq!(prev, u32::MAX, "slot written twice: not a permutation");
            })
            .expect("selector construction");
        actor
            .execute(pe, |ctx| {
                let base = ctx.rank() * slots;
                let mut scatter = DestBuckets::new(ctx.n_pes());
                for i in 0..slots {
                    let src_global = (base + i) as u32;
                    let target = perm[base + i] as usize;
                    let (owner, slot) = (target / slots, target % slots);
                    // the "value" scattered is the source index itself
                    scatter.stage(owner, pack(slot, src_global));
                }
                scatter.send_all(ctx, 0).expect("scatter");
                ctx.done(0).expect("done(0)");
            })
            .expect("permute execute");
        let local = dest.borrow();
        assert!(
            local.iter().all(|&v| v != u32::MAX),
            "every slot must be filled by a permutation"
        );
        local.clone()
    })?;

    let (per_pe, bundle, recovery) = (report.results, report.bundle, report.recovery);
    let permuted: Vec<u32> = per_pe.into_iter().flatten().collect();
    let checksum: u64 = permuted.iter().map(|&v| v as u64).sum();
    let expected: u64 = (0..n_total as u64).sum();
    if checksum != expected {
        return Err(AppError::Validation(format!(
            "permute checksum {checksum} != {expected}"
        )));
    }
    Ok(PermuteOutcome {
        permuted,
        checksum,
        bundle,
        recovery,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use actorprof_trace::TraceConfig;

    #[test]
    fn permutation_rearranges_exactly_one_node() {
        let mut cfg = PermuteConfig::new(Grid::single_node(4).unwrap());
        cfg.slots_per_pe = 128;
        let out = run(&cfg).unwrap();
        assert_eq!(out.checksum, (0..512u64).sum());
        // scattered value at perm[i] is the source index i
        let perm = permutation(512, cfg.seed);
        for (i, &target) in perm.iter().enumerate() {
            assert_eq!(out.permuted[target as usize], i as u32);
        }
    }

    #[test]
    fn permutation_rearranges_exactly_two_nodes() {
        let mut cfg = PermuteConfig::new(Grid::new(2, 2).unwrap());
        cfg.slots_per_pe = 64;
        cfg.trace = TraceConfig::off().with_logical();
        let out = run(&cfg).unwrap();
        assert_eq!(out.checksum, (0..256u64).sum());
        let m = out.bundle.logical_matrix().unwrap();
        assert_eq!(m.total(), 256, "one message per element");
        assert_eq!(m.row_totals(), vec![64; 4]);
    }

    #[test]
    fn different_seeds_change_traffic_not_checksum() {
        let mut cfg = PermuteConfig::new(Grid::single_node(2).unwrap());
        cfg.slots_per_pe = 64;
        cfg.trace = TraceConfig::off().with_logical();
        let a = run(&cfg).unwrap();
        cfg.seed ^= 0xFF;
        let b = run(&cfg).unwrap();
        assert_eq!(a.checksum, b.checksum);
        assert_ne!(a.permuted, b.permuted, "the permutation itself changed");
        let (ma, mb) = (
            a.bundle.logical_matrix().unwrap(),
            b.bundle.logical_matrix().unwrap(),
        );
        assert_eq!(ma.total(), mb.total());
    }

    #[test]
    fn recovers_from_a_killed_pe() {
        use fabsp_shmem::{FaultSpec, RecoverySpec};
        let mut cfg = PermuteConfig::new(Grid::single_node(2).unwrap());
        cfg.slots_per_pe = 32;
        let base = run(&cfg).unwrap();
        assert!(base.recovery.is_clean(), "{}", base.recovery);
        cfg.run = cfg
            .run
            .clone()
            .with_faults(FaultSpec::kill_pe(1, 0))
            .with_recovery(RecoverySpec::restart(2))
            .with_checkpoint_every(1);
        let out = run(&cfg).unwrap();
        assert_eq!(out.permuted, base.permuted);
        assert_eq!(out.recovery.restarts, 1, "{}", out.recovery);
    }
}
