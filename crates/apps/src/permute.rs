//! Random permutation — bale's `randperm`-style scatter kernel.
//!
//! A distributed array of `n_pes * slots_per_pe` values is permuted: each
//! PE scatters its local values to the owner of the permuted position.
//! Validation checks that the permuted array is exactly a rearrangement.

use actorprof::TraceBundle;
use actorprof_trace::TraceConfig;
use fabsp_actor::{Selector, SelectorConfig};
use fabsp_shmem::{spmd, Grid};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::cell::RefCell;
use std::rc::Rc;

use crate::common::{split_outcomes, AppError};

/// Configuration for a permutation run.
#[derive(Debug, Clone)]
pub struct PermuteConfig {
    /// PE/node layout.
    pub grid: Grid,
    /// Array slots owned by each PE.
    pub slots_per_pe: usize,
    /// What to trace.
    pub trace: TraceConfig,
    /// Seed for the global permutation.
    pub seed: u64,
}

impl PermuteConfig {
    /// A small default on the given grid.
    pub fn new(grid: Grid) -> PermuteConfig {
        PermuteConfig {
            grid,
            slots_per_pe: 1024,
            trace: TraceConfig::off(),
            seed: 0x9E12,
        }
    }
}

/// Result of a permutation run.
#[derive(Debug)]
pub struct PermuteOutcome {
    /// Checksum (sum) of the permuted array — equals the source checksum.
    pub checksum: u64,
    /// The collected traces.
    pub bundle: TraceBundle,
}

/// Wire format: `(local_slot << 32) | value`. Values are the global source
/// index, which fits 32 bits for every test/bench scale used here.
fn pack(slot: usize, value: u32) -> u64 {
    ((slot as u64) << 32) | value as u64
}

/// Run the permutation kernel.
pub fn run(config: &PermuteConfig) -> Result<PermuteOutcome, AppError> {
    let slots = config.slots_per_pe;
    let n_total = config.grid.n_pes() * slots;
    assert!(n_total < u32::MAX as usize, "packed format limit");
    // The global permutation (same on every PE; deterministic).
    let perm: Vec<u32> = {
        let mut p: Vec<u32> = (0..n_total as u32).collect();
        p.shuffle(&mut StdRng::seed_from_u64(config.seed));
        p
    };

    let outcomes = spmd::run(config.grid, |pe| {
        let dest = Rc::new(RefCell::new(vec![u32::MAX; slots]));
        let d = Rc::clone(&dest);
        let mut actor = Selector::new(
            pe,
            1,
            SelectorConfig::traced(config.trace.clone()),
            move |_mb, msg: u64, _from, _ctx| {
                let slot = (msg >> 32) as usize;
                let value = (msg & 0xffff_ffff) as u32;
                let prev = std::mem::replace(&mut d.borrow_mut()[slot], value);
                assert_eq!(prev, u32::MAX, "slot written twice: not a permutation");
            },
        )
        .expect("selector construction");
        actor
            .execute(pe, |ctx| {
                let base = ctx.rank() * slots;
                for i in 0..slots {
                    let src_global = (base + i) as u32;
                    let target = perm[base + i] as usize;
                    let (owner, slot) = (target / slots, target % slots);
                    // the "value" scattered is the source index itself
                    ctx.send(0, pack(slot, src_global), owner).expect("scatter");
                }
            })
            .expect("permute execute");
        let local = dest.borrow();
        assert!(
            local.iter().all(|&v| v != u32::MAX),
            "every slot must be filled by a permutation"
        );
        let checksum: u64 = local.iter().map(|&v| v as u64).sum();
        (checksum, actor.into_collector())
    })?;

    let (per_pe, bundle) = split_outcomes(outcomes)?;
    let checksum: u64 = per_pe.iter().sum();
    let expected: u64 = (0..n_total as u64).sum();
    if checksum != expected {
        return Err(AppError::Validation(format!(
            "permute checksum {checksum} != {expected}"
        )));
    }
    Ok(PermuteOutcome { checksum, bundle })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_rearranges_exactly_one_node() {
        let mut cfg = PermuteConfig::new(Grid::single_node(4).unwrap());
        cfg.slots_per_pe = 128;
        let out = run(&cfg).unwrap();
        assert_eq!(out.checksum, (0..512u64).sum());
    }

    #[test]
    fn permutation_rearranges_exactly_two_nodes() {
        let mut cfg = PermuteConfig::new(Grid::new(2, 2).unwrap());
        cfg.slots_per_pe = 64;
        cfg.trace = TraceConfig::off().with_logical();
        let out = run(&cfg).unwrap();
        assert_eq!(out.checksum, (0..256u64).sum());
        let m = out.bundle.logical_matrix().unwrap();
        assert_eq!(m.total(), 256, "one message per element");
        assert_eq!(m.row_totals(), vec![64; 4]);
    }

    #[test]
    fn different_seeds_change_traffic_not_checksum() {
        let mut cfg = PermuteConfig::new(Grid::single_node(2).unwrap());
        cfg.slots_per_pe = 64;
        cfg.trace = TraceConfig::off().with_logical();
        let a = run(&cfg).unwrap();
        cfg.seed ^= 0xFF;
        let b = run(&cfg).unwrap();
        assert_eq!(a.checksum, b.checksum);
        let (ma, mb) = (
            a.bundle.logical_matrix().unwrap(),
            b.bundle.logical_matrix().unwrap(),
        );
        assert_eq!(ma.total(), mb.total());
    }
}
