//! PAPI-style event identifiers.
//!
//! The subset mirrors the preset events the paper names or alludes to in
//! §III-A: total/retired instructions, load-store instructions, cache and
//! TLB behaviour, branch prediction, prefetch, and vector/SIMD activity.

/// A hardware event that can be counted.
///
/// Numeric discriminants index into the per-thread counter bank, so they
/// must stay dense and start at zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(usize)]
pub enum Event {
    /// `PAPI_TOT_INS` — total retired instructions.
    TotIns = 0,
    /// `PAPI_LST_INS` — retired load/store instructions.
    LstIns = 1,
    /// `PAPI_LD_INS` — retired load instructions.
    LdIns = 2,
    /// `PAPI_SR_INS` — retired store instructions.
    SrIns = 3,
    /// `PAPI_BR_INS` — retired branch instructions.
    BrIns = 4,
    /// `PAPI_BR_MSP` — mispredicted branches.
    BrMsp = 5,
    /// `PAPI_L1_DCM` — level-1 data-cache misses.
    L1Dcm = 6,
    /// `PAPI_L2_DCM` — level-2 data-cache misses.
    L2Dcm = 7,
    /// `PAPI_TLB_DM` — data TLB misses.
    TlbDm = 8,
    /// `PAPI_PRF_DM` — data prefetch cache misses.
    PrfDm = 9,
    /// `PAPI_VEC_INS` — vector/SIMD instructions.
    VecIns = 10,
    /// `PAPI_FP_OPS` — floating-point operations.
    FpOps = 11,
    /// `PAPI_TOT_CYC` — total cycles (fed by the [`crate::rdtsc`] source
    /// when charged explicitly; the region timer uses rdtsc directly).
    TotCyc = 12,
}

/// Number of distinct events (size of the per-thread counter bank).
pub const NUM_EVENTS: usize = 13;

/// All events, in discriminant order.
pub const ALL_EVENTS: [Event; NUM_EVENTS] = [
    Event::TotIns,
    Event::LstIns,
    Event::LdIns,
    Event::SrIns,
    Event::BrIns,
    Event::BrMsp,
    Event::L1Dcm,
    Event::L2Dcm,
    Event::TlbDm,
    Event::PrfDm,
    Event::VecIns,
    Event::FpOps,
    Event::TotCyc,
];

impl Event {
    /// Dense index of this event in the counter bank.
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// The PAPI preset name for this event (as it would appear in
    /// `PEi_PAPI.csv` headers and PAPI documentation).
    pub const fn papi_name(self) -> &'static str {
        match self {
            Event::TotIns => "PAPI_TOT_INS",
            Event::LstIns => "PAPI_LST_INS",
            Event::LdIns => "PAPI_LD_INS",
            Event::SrIns => "PAPI_SR_INS",
            Event::BrIns => "PAPI_BR_INS",
            Event::BrMsp => "PAPI_BR_MSP",
            Event::L1Dcm => "PAPI_L1_DCM",
            Event::L2Dcm => "PAPI_L2_DCM",
            Event::TlbDm => "PAPI_TLB_DM",
            Event::PrfDm => "PAPI_PRF_DM",
            Event::VecIns => "PAPI_VEC_INS",
            Event::FpOps => "PAPI_FP_OPS",
            Event::TotCyc => "PAPI_TOT_CYC",
        }
    }

    /// Parse a PAPI preset name (e.g. `"PAPI_TOT_INS"`).
    pub fn from_papi_name(name: &str) -> Option<Event> {
        ALL_EVENTS.iter().copied().find(|e| e.papi_name() == name)
    }
}

impl std::fmt::Display for Event {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.papi_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_in_order() {
        for (i, e) in ALL_EVENTS.iter().enumerate() {
            assert_eq!(e.index(), i);
        }
    }

    #[test]
    fn papi_name_roundtrip() {
        for e in ALL_EVENTS {
            assert_eq!(Event::from_papi_name(e.papi_name()), Some(e));
        }
        assert_eq!(Event::from_papi_name("PAPI_NOPE"), None);
    }

    #[test]
    fn display_matches_papi_name() {
        assert_eq!(Event::TotIns.to_string(), "PAPI_TOT_INS");
        assert_eq!(Event::LstIns.to_string(), "PAPI_LST_INS");
    }
}
