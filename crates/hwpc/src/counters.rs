//! Per-thread monotonic counter bank.
//!
//! Each FA-BSP PE is a single thread, so per-thread counters are per-PE
//! counters. Counters only ever increase (like real hardware counters);
//! [`EventSet`](crate::eventset::EventSet) reads are snapshot deltas.

use std::cell::Cell;

use crate::event::{Event, NUM_EVENTS};

thread_local! {
    static BANK: [Cell<u64>; NUM_EVENTS] = const { [const { Cell::new(0) }; NUM_EVENTS] };
}

/// Charge `n` occurrences of `event` to the calling thread's counter bank.
///
/// This is the primitive every cost-model helper bottoms out in.
#[inline]
pub fn retire(event: Event, n: u64) {
    BANK.with(|b| {
        let c = &b[event.index()];
        c.set(c.get().wrapping_add(n));
    });
}

/// Read the calling thread's monotonic count for `event`.
#[inline]
pub fn read(event: Event) -> u64 {
    BANK.with(|b| b[event.index()].get())
}

/// Snapshot all counters of the calling thread.
pub fn snapshot() -> [u64; NUM_EVENTS] {
    BANK.with(|b| {
        let mut out = [0u64; NUM_EVENTS];
        for (o, c) in out.iter_mut().zip(b.iter()) {
            *o = c.get();
        }
        out
    })
}

/// Reset all counters of the calling thread to zero.
///
/// Real hardware counters cannot be reset per-user, but tests and
/// benchmark harnesses need a clean slate per run.
pub fn reset_all() {
    BANK.with(|b| {
        for c in b {
            c.set(0);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retire_accumulates() {
        reset_all();
        retire(Event::TotIns, 5);
        retire(Event::TotIns, 7);
        assert_eq!(read(Event::TotIns), 12);
        assert_eq!(read(Event::LstIns), 0);
    }

    #[test]
    fn counters_are_thread_local() {
        reset_all();
        retire(Event::TotIns, 42);
        let other = std::thread::spawn(|| {
            retire(Event::TotIns, 1);
            read(Event::TotIns)
        })
        .join()
        .unwrap();
        assert_eq!(other, 1);
        assert_eq!(read(Event::TotIns), 42);
    }

    #[test]
    fn snapshot_reflects_all_events() {
        reset_all();
        retire(Event::LstIns, 3);
        retire(Event::BrMsp, 2);
        let s = snapshot();
        assert_eq!(s[Event::LstIns.index()], 3);
        assert_eq!(s[Event::BrMsp.index()], 2);
        assert_eq!(s[Event::TotIns.index()], 0);
    }

    #[test]
    fn reset_clears_everything() {
        retire(Event::FpOps, 9);
        reset_all();
        assert_eq!(snapshot(), [0; NUM_EVENTS]);
    }

    #[test]
    fn retire_wraps_instead_of_panicking() {
        reset_all();
        retire(Event::VecIns, u64::MAX);
        retire(Event::VecIns, 2);
        assert_eq!(read(Event::VecIns), 1);
        reset_all();
    }
}
