//! # fabsp-hwpc — deterministic hardware-performance-counter simulation
//!
//! The ActorProf paper profiles FA-BSP regions with PAPI hardware counters
//! (`PAPI_TOT_INS`, `PAPI_LST_INS`, …) and times the overall breakdown with
//! the x86 `rdtsc` instruction. This crate is the reproduction's substitute
//! for PAPI: a **deterministic software event-counting layer** with a
//! PAPI-shaped region API, plus a real `rdtsc` cycle source on x86_64.
//!
//! ## Why simulated counters?
//!
//! Real PAPI needs privileged perf-counter access and produces
//! machine-specific numbers. The figures the paper builds from PAPI data
//! (Figs 10–11) are about *relative per-PE instruction counts* — the load
//! imbalance between PEs — which is a function of how much work each PE
//! performs. This crate therefore counts *retired work* through an explicit
//! cost model: runtime layers and applications charge instruction/load-store
//! costs as they execute (see [`cost`]). The result is deterministic,
//! portable, and unit-testable, while preserving exactly the property the
//! paper's figures display.
//!
//! ## PAPI-shaped API
//!
//! Like PAPI, an [`eventset::EventSet`] holds at most
//! [`eventset::MAX_EVENTS`] (= 4) events, and counting is
//! per-thread (each FA-BSP PE is single-threaded, so per-thread == per-PE):
//!
//! ```
//! use fabsp_hwpc::{Event, EventSet, counters};
//!
//! let mut es = EventSet::new(&[Event::TotIns, Event::LstIns]).unwrap();
//! es.start().unwrap();
//! counters::retire(Event::TotIns, 120); // work happens; layers charge costs
//! counters::retire(Event::LstIns, 40);
//! let counts = es.stop().unwrap();
//! assert_eq!(counts[0], 120);
//! assert_eq!(counts[1], 40);
//! ```

// Every unsafe operation must sit in an explicit, commented block.
#![deny(unsafe_op_in_unsafe_fn)]

pub mod cost;
pub mod counters;
pub mod event;
pub mod eventset;
pub mod rdtsc;
pub mod region;

pub use cost::Cost;
pub use counters::{read, reset_all, retire};
pub use event::Event;
pub use eventset::{EventSet, HwpcError, MAX_EVENTS};
pub use rdtsc::{cycles_now, cycles_to_secs, cycles_to_us, Stopwatch, NOMINAL_HZ};
pub use region::{Region, RegionProfile, RegionTimer};
