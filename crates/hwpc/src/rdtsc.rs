//! Cycle-count time source.
//!
//! The paper deliberately times the overall breakdown with the x86 `rdtsc`
//! instruction (not `rdtscp`, to avoid flushing the pipeline; not OS timers,
//! to minimize overhead — §IV-E). On x86_64 this module executes the real
//! instruction. On other architectures it synthesizes a cycle count from the
//! monotonic clock at a nominal frequency so downstream arithmetic
//! (absolute + relative breakdowns) is unchanged.

/// Nominal TSC frequency used to synthesize cycles on non-x86_64 targets
/// and to convert cycles to seconds in reports (2.45 GHz — the boost-range
/// clock of the AMD EPYC 7763 used in the paper's testbed).
pub const NOMINAL_HZ: u64 = 2_450_000_000;

/// Read the cycle counter.
#[inline]
pub fn cycles_now() -> u64 {
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: `_rdtsc` is baseline x86_64 (no target-feature gate
        // needed), reads only the time-stamp counter register, touches no
        // memory, and has no alignment or initialization preconditions.
        unsafe { core::arch::x86_64::_rdtsc() }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        use std::time::Instant;
        static START: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();
        let start = *START.get_or_init(Instant::now);
        let ns = start.elapsed().as_nanos() as u64;
        ns.saturating_mul(NOMINAL_HZ / 1_000_000) / 1_000
    }
}

/// Convert a cycle delta to seconds at the nominal frequency.
#[inline]
pub fn cycles_to_secs(cycles: u64) -> f64 {
    cycles as f64 / NOMINAL_HZ as f64
}

/// Convert a cycle delta to microseconds at the nominal frequency — the
/// trace-events timestamp unit. All reporting paths share this helper so
/// every export agrees on the cycles→µs mapping.
#[inline]
pub fn cycles_to_us(cycles: u64) -> f64 {
    cycles_to_secs(cycles) * 1e6
}

/// A resumable cycle stopwatch, used to accumulate time spent in a region
/// across many entries/exits (MAIN segments, PROC handler bursts).
#[derive(Debug, Clone, Copy, Default)]
pub struct Stopwatch {
    accumulated: u64,
    started_at: Option<u64>,
}

impl Stopwatch {
    /// A stopped stopwatch with zero accumulated cycles.
    pub fn new() -> Stopwatch {
        Stopwatch::default()
    }

    /// Begin (or resume) timing. Starting a running stopwatch is a no-op.
    #[inline]
    pub fn start(&mut self) {
        if self.started_at.is_none() {
            self.started_at = Some(cycles_now());
        }
    }

    /// Stop timing, folding the elapsed cycles into the accumulator.
    /// Stopping a stopped stopwatch is a no-op.
    #[inline]
    pub fn stop(&mut self) {
        if let Some(t0) = self.started_at.take() {
            self.accumulated += cycles_now().saturating_sub(t0);
        }
    }

    /// Whether the stopwatch is currently running.
    pub fn is_running(&self) -> bool {
        self.started_at.is_some()
    }

    /// Accumulated cycles over all completed start/stop intervals.
    /// If running, includes cycles elapsed since the last `start`.
    pub fn elapsed_cycles(&self) -> u64 {
        match self.started_at {
            Some(t0) => self.accumulated + cycles_now().saturating_sub(t0),
            None => self.accumulated,
        }
    }

    /// Reset to zero accumulated cycles, stopped.
    pub fn reset(&mut self) {
        *self = Stopwatch::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_are_monotone() {
        let a = cycles_now();
        let b = cycles_now();
        assert!(b >= a);
    }

    #[test]
    fn stopwatch_accumulates_across_intervals() {
        let mut sw = Stopwatch::new();
        sw.start();
        let _ = (0..1000).sum::<u64>();
        sw.stop();
        let first = sw.elapsed_cycles();
        assert!(first > 0);
        sw.start();
        let _ = (0..1000).sum::<u64>();
        sw.stop();
        assert!(sw.elapsed_cycles() >= first);
    }

    #[test]
    fn double_start_and_double_stop_are_noops() {
        let mut sw = Stopwatch::new();
        sw.start();
        sw.start();
        assert!(sw.is_running());
        sw.stop();
        let c = sw.elapsed_cycles();
        sw.stop();
        assert_eq!(sw.elapsed_cycles(), c);
    }

    #[test]
    fn elapsed_while_running_includes_partial_interval() {
        let mut sw = Stopwatch::new();
        sw.start();
        let _ = (0..10000).sum::<u64>();
        assert!(sw.elapsed_cycles() > 0);
        sw.stop();
    }

    #[test]
    fn reset_zeroes_and_stops() {
        let mut sw = Stopwatch::new();
        sw.start();
        sw.stop();
        sw.reset();
        assert_eq!(sw.elapsed_cycles(), 0);
        assert!(!sw.is_running());
    }

    #[test]
    fn cycles_to_secs_uses_nominal_frequency() {
        assert!((cycles_to_secs(NOMINAL_HZ) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cycles_to_us_matches_secs_scale() {
        assert!((cycles_to_us(NOMINAL_HZ) - 1e6).abs() < 1e-6);
        assert!((cycles_to_us(NOMINAL_HZ / 1_000_000) - 1.0).abs() < 1e-9);
    }
}
