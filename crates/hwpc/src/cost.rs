//! The cost model: bundles of event counts charged together.
//!
//! Runtime layers (the selector runtime, the conveyor, applications) describe
//! the work of one operation as a [`Cost`] and charge it once per operation.
//! The constants below are the documented model used throughout the
//! reproduction; their absolute values are nominal (derived from typical
//! x86-64 instruction mixes for the corresponding C++ code paths), but the
//! figures built from them only depend on *ratios across PEs*, which are
//! determined by per-PE operation counts, not by the constants.

use crate::counters;
use crate::event::Event;

/// A bundle of event counts representing the cost of one logical operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Cost {
    /// Total instructions retired (`PAPI_TOT_INS`).
    pub ins: u64,
    /// Load instructions (`PAPI_LD_INS`).
    pub loads: u64,
    /// Store instructions (`PAPI_SR_INS`).
    pub stores: u64,
    /// Branch instructions (`PAPI_BR_INS`).
    pub branches: u64,
    /// Mispredicted branches (`PAPI_BR_MSP`).
    pub br_misses: u64,
    /// L1 data-cache misses (`PAPI_L1_DCM`).
    pub l1_misses: u64,
    /// Vector/SIMD instructions (`PAPI_VEC_INS`).
    pub vec_ins: u64,
    /// Floating-point operations (`PAPI_FP_OPS`).
    pub fp_ops: u64,
}

impl Cost {
    /// A cost of `ins` plain instructions with a typical ~40% load/store mix.
    pub const fn instructions(ins: u64) -> Cost {
        Cost {
            ins,
            loads: ins / 4,
            stores: ins / 8,
            branches: ins / 6,
            br_misses: 0,
            l1_misses: 0,
            vec_ins: 0,
            fp_ops: 0,
        }
    }

    /// Charge this cost to the calling thread's counters.
    ///
    /// `PAPI_LST_INS` is derived as loads + stores, matching the PAPI preset
    /// definition.
    #[inline]
    pub fn charge(&self) {
        if self.ins != 0 {
            counters::retire(Event::TotIns, self.ins);
        }
        let lst = self.loads + self.stores;
        if lst != 0 {
            counters::retire(Event::LstIns, lst);
            counters::retire(Event::LdIns, self.loads);
            counters::retire(Event::SrIns, self.stores);
        }
        if self.branches != 0 {
            counters::retire(Event::BrIns, self.branches);
        }
        if self.br_misses != 0 {
            counters::retire(Event::BrMsp, self.br_misses);
        }
        if self.l1_misses != 0 {
            counters::retire(Event::L1Dcm, self.l1_misses);
        }
        if self.vec_ins != 0 {
            counters::retire(Event::VecIns, self.vec_ins);
        }
        if self.fp_ops != 0 {
            counters::retire(Event::FpOps, self.fp_ops);
        }
    }

    /// Scale every component by `n` (cost of `n` identical operations).
    pub const fn times(&self, n: u64) -> Cost {
        Cost {
            ins: self.ins * n,
            loads: self.loads * n,
            stores: self.stores * n,
            branches: self.branches * n,
            br_misses: self.br_misses * n,
            l1_misses: self.l1_misses * n,
            vec_ins: self.vec_ins * n,
            fp_ops: self.fp_ops * n,
        }
    }
}

/// Nominal costs for the runtime operations instrumented by ActorProf.
///
/// One module-level constant per operation keeps the model auditable: the
/// entire instruction accounting of the reproduction is defined on this page.
pub mod model {
    use super::Cost;

    /// Constructing a message and appending it to a conveyor buffer
    /// (the user-visible `send` fast path in HClib-Actor).
    pub const SEND_PUSH: Cost = Cost {
        ins: 60,
        loads: 18,
        stores: 14,
        branches: 9,
        br_misses: 1,
        l1_misses: 1,
        vec_ins: 0,
        fp_ops: 0,
    };

    /// Pulling one message out of a conveyor buffer (runtime side of PROC).
    pub const PULL: Cost = Cost {
        ins: 40,
        loads: 14,
        stores: 6,
        branches: 7,
        br_misses: 1,
        l1_misses: 1,
        vec_ins: 0,
        fp_ops: 0,
    };

    /// Invoking a user message handler (dispatch overhead, not the body).
    pub const HANDLER_DISPATCH: Cost = Cost {
        ins: 25,
        loads: 8,
        stores: 4,
        branches: 5,
        br_misses: 1,
        l1_misses: 0,
        vec_ins: 0,
        fp_ops: 0,
    };

    /// Per-byte cost of a buffer memcpy (vectorized copy, ~1 vec-ins / 16 B).
    pub const MEMCPY_PER_BYTE: Cost = Cost {
        ins: 1,
        loads: 1,
        stores: 1,
        branches: 0,
        br_misses: 0,
        l1_misses: 0,
        vec_ins: 1,
        fp_ops: 0,
    };

    /// Fixed cost of initiating one non-blocking put (`shmem_putmem_nbi`).
    pub const PUTMEM_NBI: Cost = Cost {
        ins: 180,
        loads: 50,
        stores: 40,
        branches: 25,
        br_misses: 2,
        l1_misses: 3,
        vec_ins: 0,
        fp_ops: 0,
    };

    /// Fixed cost of a `shmem_quiet` completion fence.
    pub const QUIET: Cost = Cost {
        ins: 350,
        loads: 90,
        stores: 30,
        branches: 60,
        br_misses: 6,
        l1_misses: 8,
        vec_ins: 0,
        fp_ops: 0,
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::{read, reset_all};

    #[test]
    fn charge_updates_expected_events() {
        reset_all();
        let c = Cost {
            ins: 100,
            loads: 30,
            stores: 10,
            branches: 20,
            br_misses: 2,
            l1_misses: 5,
            vec_ins: 4,
            fp_ops: 3,
        };
        c.charge();
        assert_eq!(read(Event::TotIns), 100);
        assert_eq!(read(Event::LstIns), 40);
        assert_eq!(read(Event::LdIns), 30);
        assert_eq!(read(Event::SrIns), 10);
        assert_eq!(read(Event::BrIns), 20);
        assert_eq!(read(Event::BrMsp), 2);
        assert_eq!(read(Event::L1Dcm), 5);
        assert_eq!(read(Event::VecIns), 4);
        assert_eq!(read(Event::FpOps), 3);
        reset_all();
    }

    #[test]
    fn times_scales_linearly() {
        let c = model::SEND_PUSH.times(10);
        assert_eq!(c.ins, model::SEND_PUSH.ins * 10);
        assert_eq!(c.l1_misses, model::SEND_PUSH.l1_misses * 10);
    }

    #[test]
    fn instructions_constructor_derives_mix() {
        let c = Cost::instructions(80);
        assert_eq!(c.ins, 80);
        assert_eq!(c.loads, 20);
        assert_eq!(c.stores, 10);
        assert_eq!(c.branches, 13);
    }

    #[test]
    fn zero_cost_charges_nothing() {
        reset_all();
        Cost::default().charge();
        assert_eq!(read(Event::TotIns), 0);
        assert_eq!(read(Event::LstIns), 0);
    }
}
