//! FA-BSP region profiling: MAIN / PROC / COMM.
//!
//! ActorProf's region-specific profiling (§III-A) measures hardware counters
//! separately for the two user-visible regions of an HClib-Actor program —
//! **MAIN** (message construction + local computation) and **PROC** (message
//! handling) — so "the user \[can\] separate the measurement of the counters
//! during the context switch between the send and the recv task". The third
//! region, **COMM**, is everything else and is *derived* in the overall
//! breakdown (§III-B) as `T_TOTAL - T_MAIN - T_PROC`.
//!
//! [`RegionTimer`] is the mechanism the selector runtime drives as it
//! interleaves MAIN code and PROC handlers on one PE thread.

use crate::counters;
use crate::event::NUM_EVENTS;
use crate::rdtsc::Stopwatch;

/// One of the paper's three execution regions (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// Message construction and local computation (the body of `finish`
    /// minus `send` — the BLUE part of Fig. 1).
    Main,
    /// User message handlers (the RED part of Fig. 1).
    Proc,
    /// Everything outside MAIN and PROC: aggregation, network progress,
    /// termination. Derived, never entered explicitly.
    Comm,
}

impl Region {
    /// Region name as printed in `overall.txt` (`T_MAIN`, `T_PROC`, `T_COMM`).
    pub const fn label(self) -> &'static str {
        match self {
            Region::Main => "T_MAIN",
            Region::Proc => "T_PROC",
            Region::Comm => "T_COMM",
        }
    }
}

/// Accumulated measurements for one region: cycles plus per-event counts.
#[derive(Debug, Clone, Default)]
pub struct RegionSlot {
    /// Accumulated rdtsc cycles spent inside the region.
    pub cycles: u64,
    /// Accumulated counter deltas, indexed by [`crate::Event::index`].
    pub events: [u64; NUM_EVENTS],
    /// Number of times the region was entered.
    pub entries: u64,
}

/// Per-PE profile over the measured regions (MAIN and PROC; COMM derived).
#[derive(Debug, Clone, Default)]
pub struct RegionProfile {
    /// MAIN measurements.
    pub main: RegionSlot,
    /// PROC measurements.
    pub proc: RegionSlot,
}

impl RegionProfile {
    /// The slot for a measured region. COMM has no slot (it is derived),
    /// so this returns `None` for [`Region::Comm`].
    pub fn slot(&self, region: Region) -> Option<&RegionSlot> {
        match region {
            Region::Main => Some(&self.main),
            Region::Proc => Some(&self.proc),
            Region::Comm => None,
        }
    }

    /// Derive COMM cycles from a total: `total - main - proc`, saturating
    /// (the paper derives T_COMM the same way, §III-B).
    pub fn comm_cycles(&self, total_cycles: u64) -> u64 {
        total_cycles
            .saturating_sub(self.main.cycles)
            .saturating_sub(self.proc.cycles)
    }
}

/// Drives region accounting on one PE thread.
///
/// The runtime calls [`enter`](RegionTimer::enter) / [`exit`](RegionTimer::exit)
/// as execution crosses MAIN/PROC boundaries. Regions do not nest in the
/// FA-BSP model (each PE is single-threaded and the runtime processes one
/// message at a time), and the timer enforces that.
#[derive(Debug, Default)]
pub struct RegionTimer {
    profile: RegionProfile,
    active: Option<(Region, Stopwatch, [u64; NUM_EVENTS])>,
    total: Stopwatch,
}

impl RegionTimer {
    /// A fresh timer with no accumulated measurements.
    pub fn new() -> RegionTimer {
        RegionTimer::default()
    }

    /// Start the whole-program stopwatch (T_TOTAL in the paper).
    pub fn start_total(&mut self) {
        self.total.start();
    }

    /// Stop the whole-program stopwatch.
    pub fn stop_total(&mut self) {
        self.total.stop();
    }

    /// Total cycles measured so far.
    pub fn total_cycles(&self) -> u64 {
        self.total.elapsed_cycles()
    }

    /// Enter a measured region (MAIN or PROC).
    ///
    /// # Panics
    /// If a region is already active or `region` is COMM — both indicate a
    /// runtime bug, not a user error, so they are programming-contract
    /// panics rather than recoverable results.
    pub fn enter(&mut self, region: Region) {
        assert!(
            !matches!(region, Region::Comm),
            "COMM is derived and cannot be entered"
        );
        assert!(
            self.active.is_none(),
            "FA-BSP regions do not nest: {:?} entered while {:?} active",
            region,
            self.active.as_ref().map(|a| a.0)
        );
        let mut sw = Stopwatch::new();
        sw.start();
        self.active = Some((region, sw, counters::snapshot()));
    }

    /// Exit the active region, folding cycles and counter deltas into the
    /// profile.
    ///
    /// # Panics
    /// If no region is active or a different region is active.
    pub fn exit(&mut self, region: Region) {
        let (active, mut sw, baseline) = self
            .active
            .take()
            .expect("exit called with no active region");
        assert_eq!(active, region, "region enter/exit mismatch");
        sw.stop();
        let now = counters::snapshot();
        let slot = match region {
            Region::Main => &mut self.profile.main,
            Region::Proc => &mut self.profile.proc,
            Region::Comm => unreachable!(),
        };
        slot.cycles += sw.elapsed_cycles();
        slot.entries += 1;
        for (acc, (n, b)) in slot.events.iter_mut().zip(now.iter().zip(&baseline)) {
            *acc += n.wrapping_sub(*b);
        }
    }

    /// The region currently being measured, if any.
    pub fn active_region(&self) -> Option<Region> {
        self.active.as_ref().map(|a| a.0)
    }

    /// Finish and take the accumulated profile.
    ///
    /// # Panics
    /// If a region is still active.
    pub fn finish(mut self) -> (RegionProfile, u64) {
        assert!(
            self.active.is_none(),
            "finish called while a region is active"
        );
        self.total.stop();
        let total = self.total.elapsed_cycles();
        (self.profile, total)
    }

    /// Borrow the profile accumulated so far.
    pub fn profile(&self) -> &RegionProfile {
        &self.profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::{reset_all, retire};
    use crate::event::Event;

    #[test]
    fn enter_exit_accumulates_cycles_and_events() {
        reset_all();
        let mut t = RegionTimer::new();
        t.start_total();
        t.enter(Region::Main);
        retire(Event::TotIns, 50);
        t.exit(Region::Main);
        t.enter(Region::Proc);
        retire(Event::TotIns, 20);
        t.exit(Region::Proc);
        t.stop_total();
        let (p, total) = t.finish();
        assert_eq!(p.main.events[Event::TotIns.index()], 50);
        assert_eq!(p.proc.events[Event::TotIns.index()], 20);
        assert_eq!(p.main.entries, 1);
        assert!(total >= p.main.cycles + p.proc.cycles);
        reset_all();
    }

    #[test]
    fn events_outside_regions_are_not_attributed() {
        reset_all();
        let mut t = RegionTimer::new();
        retire(Event::TotIns, 999); // COMM-side work
        t.enter(Region::Main);
        retire(Event::TotIns, 1);
        t.exit(Region::Main);
        assert_eq!(t.profile().main.events[Event::TotIns.index()], 1);
        reset_all();
    }

    #[test]
    fn comm_is_derived_from_total() {
        let mut p = RegionProfile::default();
        p.main.cycles = 30;
        p.proc.cycles = 20;
        assert_eq!(p.comm_cycles(100), 50);
        assert_eq!(p.comm_cycles(40), 0); // saturates
    }

    #[test]
    #[should_panic(expected = "do not nest")]
    fn nesting_panics() {
        let mut t = RegionTimer::new();
        t.enter(Region::Main);
        t.enter(Region::Proc);
    }

    #[test]
    #[should_panic(expected = "COMM is derived")]
    fn entering_comm_panics() {
        let mut t = RegionTimer::new();
        t.enter(Region::Comm);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn mismatched_exit_panics() {
        let mut t = RegionTimer::new();
        t.enter(Region::Main);
        t.exit(Region::Proc);
    }

    #[test]
    fn repeated_entries_accumulate() {
        reset_all();
        let mut t = RegionTimer::new();
        for _ in 0..5 {
            t.enter(Region::Proc);
            retire(Event::LstIns, 2);
            t.exit(Region::Proc);
        }
        assert_eq!(t.profile().proc.entries, 5);
        assert_eq!(t.profile().proc.events[Event::LstIns.index()], 10);
        reset_all();
    }

    #[test]
    fn region_labels_match_overall_txt() {
        assert_eq!(Region::Main.label(), "T_MAIN");
        assert_eq!(Region::Comm.label(), "T_COMM");
        assert_eq!(Region::Proc.label(), "T_PROC");
    }
}
