//! PAPI-style event sets: at most four concurrently counted events.
//!
//! The paper: "ActorProf only allows up to four concurrent recording events
//! with the limitation from PAPI" (§III-A). The same limit is enforced here.

use crate::counters;
use crate::event::Event;

/// Maximum number of events that one [`EventSet`] may count concurrently
/// (the PAPI hardware-counter limit the paper inherits).
pub const MAX_EVENTS: usize = 4;

/// Errors from event-set operations, mirroring PAPI return codes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HwpcError {
    /// More than [`MAX_EVENTS`] events requested (`PAPI_ECNFLCT`).
    TooManyEvents { requested: usize },
    /// The same event was added twice (`PAPI_ECNFLCT`).
    DuplicateEvent(Event),
    /// `start` called while already counting (`PAPI_EISRUN`).
    AlreadyRunning,
    /// `stop`/`read` called while not counting (`PAPI_ENOTRUN`).
    NotRunning,
    /// An event set must contain at least one event.
    Empty,
}

impl std::fmt::Display for HwpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HwpcError::TooManyEvents { requested } => write!(
                f,
                "event set holds at most {MAX_EVENTS} events, {requested} requested"
            ),
            HwpcError::DuplicateEvent(e) => write!(f, "event {e} added twice"),
            HwpcError::AlreadyRunning => write!(f, "event set is already counting"),
            HwpcError::NotRunning => write!(f, "event set is not counting"),
            HwpcError::Empty => write!(f, "event set must contain at least one event"),
        }
    }
}

impl std::error::Error for HwpcError {}

/// A set of up to [`MAX_EVENTS`] events counted over start/stop windows on
/// the calling thread, in the style of `PAPI_start`/`PAPI_stop`.
#[derive(Debug, Clone)]
pub struct EventSet {
    events: Vec<Event>,
    baseline: Vec<u64>,
    running: bool,
}

impl EventSet {
    /// Create an event set counting `events`.
    ///
    /// Fails if `events` is empty, has duplicates, or exceeds
    /// [`MAX_EVENTS`] — the PAPI constraint the paper calls out.
    pub fn new(events: &[Event]) -> Result<EventSet, HwpcError> {
        if events.is_empty() {
            return Err(HwpcError::Empty);
        }
        if events.len() > MAX_EVENTS {
            return Err(HwpcError::TooManyEvents {
                requested: events.len(),
            });
        }
        for (i, e) in events.iter().enumerate() {
            if events[..i].contains(e) {
                return Err(HwpcError::DuplicateEvent(*e));
            }
        }
        Ok(EventSet {
            events: events.to_vec(),
            baseline: vec![0; events.len()],
            running: false,
        })
    }

    /// The events this set counts, in construction order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Begin counting (snapshot baselines), like `PAPI_start`.
    pub fn start(&mut self) -> Result<(), HwpcError> {
        if self.running {
            return Err(HwpcError::AlreadyRunning);
        }
        for (b, e) in self.baseline.iter_mut().zip(&self.events) {
            *b = counters::read(*e);
        }
        self.running = true;
        Ok(())
    }

    /// Read current deltas without stopping, like `PAPI_read`.
    pub fn read(&self) -> Result<Vec<u64>, HwpcError> {
        if !self.running {
            return Err(HwpcError::NotRunning);
        }
        Ok(self
            .events
            .iter()
            .zip(&self.baseline)
            .map(|(e, b)| counters::read(*e).wrapping_sub(*b))
            .collect())
    }

    /// Stop counting and return the deltas, like `PAPI_stop`.
    pub fn stop(&mut self) -> Result<Vec<u64>, HwpcError> {
        let counts = self.read()?;
        self.running = false;
        Ok(counts)
    }

    /// Whether the set is currently counting.
    pub fn is_running(&self) -> bool {
        self.running
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::{reset_all, retire};

    #[test]
    fn rejects_more_than_four_events() {
        let err = EventSet::new(&[
            Event::TotIns,
            Event::LstIns,
            Event::BrIns,
            Event::BrMsp,
            Event::L1Dcm,
        ])
        .unwrap_err();
        assert_eq!(err, HwpcError::TooManyEvents { requested: 5 });
    }

    #[test]
    fn rejects_duplicates_and_empty() {
        assert_eq!(
            EventSet::new(&[Event::TotIns, Event::TotIns]).unwrap_err(),
            HwpcError::DuplicateEvent(Event::TotIns)
        );
        assert_eq!(EventSet::new(&[]).unwrap_err(), HwpcError::Empty);
    }

    #[test]
    fn start_stop_returns_window_deltas_only() {
        reset_all();
        retire(Event::TotIns, 1000); // outside window
        let mut es = EventSet::new(&[Event::TotIns, Event::LstIns]).unwrap();
        es.start().unwrap();
        retire(Event::TotIns, 25);
        retire(Event::LstIns, 10);
        let counts = es.stop().unwrap();
        assert_eq!(counts, vec![25, 10]);
        reset_all();
    }

    #[test]
    fn read_without_stop_keeps_counting() {
        reset_all();
        let mut es = EventSet::new(&[Event::TotIns]).unwrap();
        es.start().unwrap();
        retire(Event::TotIns, 5);
        assert_eq!(es.read().unwrap(), vec![5]);
        retire(Event::TotIns, 5);
        assert_eq!(es.stop().unwrap(), vec![10]);
        reset_all();
    }

    #[test]
    fn state_machine_errors() {
        let mut es = EventSet::new(&[Event::TotIns]).unwrap();
        assert_eq!(es.read().unwrap_err(), HwpcError::NotRunning);
        assert_eq!(es.stop().unwrap_err(), HwpcError::NotRunning);
        es.start().unwrap();
        assert_eq!(es.start().unwrap_err(), HwpcError::AlreadyRunning);
        es.stop().unwrap();
        // restartable after stop
        es.start().unwrap();
        assert!(es.is_running());
    }

    #[test]
    fn restart_resets_baseline() {
        reset_all();
        let mut es = EventSet::new(&[Event::TotIns]).unwrap();
        es.start().unwrap();
        retire(Event::TotIns, 7);
        es.stop().unwrap();
        es.start().unwrap();
        retire(Event::TotIns, 3);
        assert_eq!(es.stop().unwrap(), vec![3]);
        reset_all();
    }
}
