//! Conveyor communication topologies and routing.
//!
//! Conveyors restricts which PE pairs exchange buffers directly and routes
//! the rest through intermediate PEs ("multi-hop routing"). The paper's
//! evaluation exercises two (§IV-D):
//!
//! - **1D linear** — every PE links directly to every PE. Used on a single
//!   node, where all buffer deliveries are `local_send` memcpys.
//! - **2D mesh** — a PE is the grid point *(node, local index)*. Direct
//!   links exist along the **row** (the PEs of its node — `local_send`)
//!   and the **column** (the equally-indexed PE of every node —
//!   `nonblock_send`). Anything else routes in two hops: row first (to the
//!   on-node PE in the destination's column), then column.

use fabsp_shmem::Grid;

/// How the user selects a topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TopologySpec {
    /// Pick what Conveyors picks: 1D linear on one node, 2D mesh otherwise.
    #[default]
    Auto,
    /// Force 1D linear (direct links to every PE).
    OneD,
    /// Force the 2D mesh (requires `grid.nodes() >= 1`; degenerates to a
    /// single row on one node).
    Mesh2D,
    /// Force the 3D cube: the node-local index is itself factored into an
    /// (a, b) plane, giving up to three hops (b-axis, a-axis, node-axis)
    /// and `a + b + nodes` links instead of `pes_per_node + nodes` — the
    /// memory-frugal shape Conveyors uses at very large PE counts
    /// (§III-C mentions the 1D/2D/3D family).
    Cube3D,
}

/// A resolved topology for a concrete grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// Direct links to all PEs.
    OneD,
    /// Row/column links with two-hop routing.
    Mesh2D,
    /// (b-axis, a-axis, node-axis) links with up to three-hop routing.
    /// `a_dim * b_dim == pes_per_node`.
    Cube3D {
        /// First intra-node factor.
        a_dim: usize,
        /// Second intra-node factor (hopped first).
        b_dim: usize,
    },
}

/// Factor `ppn` as `a * b` with `a <= b` and `a` as large as possible
/// (near-square). A prime `ppn` degenerates to `1 x ppn` (= the 2D mesh).
fn near_square_factors(ppn: usize) -> (usize, usize) {
    let mut a = (ppn as f64).sqrt().floor() as usize;
    while a > 1 && !ppn.is_multiple_of(a) {
        a -= 1;
    }
    (a.max(1), ppn / a.max(1))
}

/// Whether a link crosses a node boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkKind {
    /// Same-node link: buffers delivered by `local_send` (memcpy).
    Local,
    /// Cross-node link: buffers delivered by `nonblock_send` +
    /// `nonblock_progress`.
    Remote,
}

/// The first hop chosen for a destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Route {
    /// Outgoing link index (see [`Topology::link_peer`]).
    pub link: usize,
    /// Whether the item terminates at the link peer (`false`) or must be
    /// relayed onward by the peer (`true`).
    pub relayed: bool,
}

impl Topology {
    /// Resolve a [`TopologySpec`] against a grid.
    pub fn resolve(spec: TopologySpec, grid: Grid) -> Topology {
        match spec {
            TopologySpec::OneD => Topology::OneD,
            TopologySpec::Mesh2D => Topology::Mesh2D,
            TopologySpec::Cube3D => {
                let (a_dim, b_dim) = near_square_factors(grid.pes_per_node());
                Topology::Cube3D { a_dim, b_dim }
            }
            TopologySpec::Auto => {
                if grid.nodes() == 1 {
                    Topology::OneD
                } else {
                    Topology::Mesh2D
                }
            }
        }
    }

    /// Number of outgoing (= incoming) links per PE.
    pub fn n_links(&self, grid: Grid) -> usize {
        match self {
            Topology::OneD => grid.n_pes(),
            Topology::Mesh2D => grid.pes_per_node() + grid.nodes(),
            Topology::Cube3D { a_dim, b_dim } => a_dim + b_dim + grid.nodes(),
        }
    }

    /// Cube coordinates of a PE's node-local index: `(a, b)`.
    fn cube_coords(local: usize, b_dim: usize) -> (usize, usize) {
        (local / b_dim, local % b_dim)
    }

    /// The PE at the far end of `me`'s outgoing link `link`.
    pub fn link_peer(&self, grid: Grid, me: usize, link: usize) -> usize {
        match self {
            Topology::OneD => link,
            Topology::Mesh2D => {
                let p = grid.pes_per_node();
                if link < p {
                    // row link: same node, local index = link
                    grid.pe_at(grid.node_of(me), link)
                } else {
                    // column link: same local index, node = link - p
                    grid.pe_at(link - p, grid.local_index(me))
                }
            }
            Topology::Cube3D { a_dim, b_dim } => {
                let (a, b) = Self::cube_coords(grid.local_index(me), *b_dim);
                if link < *b_dim {
                    // b-axis: same node, same a, b = link
                    grid.pe_at(grid.node_of(me), a * b_dim + link)
                } else if link < b_dim + a_dim {
                    // a-axis: same node, same b, a = link - b_dim
                    grid.pe_at(grid.node_of(me), (link - b_dim) * b_dim + b)
                } else {
                    // node-axis: same (a, b), node = link - b_dim - a_dim
                    grid.pe_at(link - b_dim - a_dim, grid.local_index(me))
                }
            }
        }
    }

    /// Whether `me`'s link `link` stays on-node or crosses nodes.
    pub fn link_kind(&self, grid: Grid, me: usize, link: usize) -> LinkKind {
        if grid.same_node(me, self.link_peer(grid, me, link)) {
            LinkKind::Local
        } else {
            LinkKind::Remote
        }
    }

    /// The next-hop link for an item at `me` travelling to `dst`
    /// (greedy dimension-order routing: fix the innermost differing
    /// coordinate first, always intra-node before inter-node).
    pub fn next_link(&self, grid: Grid, me: usize, dst: usize) -> usize {
        debug_assert_ne!(me, dst, "an item at its destination needs no link");
        match self {
            Topology::OneD => dst,
            Topology::Mesh2D => {
                if grid.local_index(me) != grid.local_index(dst) {
                    grid.local_index(dst) // row hop
                } else {
                    grid.pes_per_node() + grid.node_of(dst) // column hop
                }
            }
            Topology::Cube3D { a_dim, b_dim } => {
                let (ma, mb) = Self::cube_coords(grid.local_index(me), *b_dim);
                let (da, db) = Self::cube_coords(grid.local_index(dst), *b_dim);
                if mb != db {
                    db // b-axis hop
                } else if ma != da {
                    b_dim + da // a-axis hop
                } else {
                    b_dim + a_dim + grid.node_of(dst) // node-axis hop
                }
            }
        }
    }

    /// First-hop routing decision for an item travelling `me` → `dst`.
    /// For self-sends (`me == dst`) the self link of the innermost
    /// dimension is used, keeping self-traffic on the full buffer path.
    pub fn route(&self, grid: Grid, me: usize, dst: usize) -> Route {
        if me == dst {
            // self link: 1D = own slot; mesh = own row slot; cube = own
            // b-axis slot. All are "local" and terminate immediately.
            let link = match self {
                Topology::OneD => me,
                Topology::Mesh2D => grid.local_index(me),
                Topology::Cube3D { b_dim, .. } => {
                    Self::cube_coords(grid.local_index(me), *b_dim).1
                }
            };
            return Route {
                link,
                relayed: false,
            };
        }
        let link = self.next_link(grid, me, dst);
        let relayed = self.link_peer(grid, me, link) != dst;
        Route { link, relayed }
    }

    /// The incoming link index at `me` identifying traffic from `src`.
    ///
    /// The mesh wires links symmetrically: the row link from `src` lands on
    /// `me`'s row link indexed by `src`'s local index, and the column link
    /// lands on `me`'s column link indexed by `src`'s node.
    pub fn reverse_link(&self, grid: Grid, me: usize, src: usize) -> usize {
        match self {
            Topology::OneD => src,
            Topology::Mesh2D => {
                if grid.same_node(me, src) {
                    grid.local_index(src)
                } else {
                    debug_assert_eq!(
                        grid.local_index(me),
                        grid.local_index(src),
                        "mesh cross-node traffic must stay within a column"
                    );
                    grid.pes_per_node() + grid.node_of(src)
                }
            }
            Topology::Cube3D { a_dim, b_dim } => {
                if grid.same_node(me, src) {
                    let (ma, mb) = Self::cube_coords(grid.local_index(me), *b_dim);
                    let (sa, sb) = Self::cube_coords(grid.local_index(src), *b_dim);
                    if sa == ma {
                        sb // arrived along the b-axis
                    } else {
                        debug_assert_eq!(sb, mb, "cube intra-node hop changes one axis");
                        b_dim + sa // arrived along the a-axis
                    }
                } else {
                    debug_assert_eq!(
                        grid.local_index(me),
                        grid.local_index(src),
                        "cube cross-node traffic must stay within a node-axis line"
                    );
                    b_dim + a_dim + grid.node_of(src)
                }
            }
        }
    }

    /// The next-hop link for a relayed item (the item is in transit at
    /// `me`, destined elsewhere).
    pub fn relay_link(&self, grid: Grid, me: usize, final_dst: usize) -> usize {
        debug_assert_ne!(me, final_dst, "relayed item already at destination");
        debug_assert!(
            !matches!(self, Topology::OneD),
            "1D topology never relays"
        );
        self.next_link(grid, me, final_dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh_grid() -> Grid {
        Grid::new(2, 4).unwrap() // 2 nodes x 4 PEs = 8 PEs
    }

    #[test]
    fn auto_resolution_matches_paper() {
        let one = Grid::single_node(16).unwrap();
        let two = Grid::new(2, 16).unwrap();
        assert_eq!(Topology::resolve(TopologySpec::Auto, one), Topology::OneD);
        assert_eq!(Topology::resolve(TopologySpec::Auto, two), Topology::Mesh2D);
    }

    #[test]
    fn oned_links_are_direct() {
        let g = Grid::single_node(4).unwrap();
        let t = Topology::OneD;
        assert_eq!(t.n_links(g), 4);
        for dst in 0..4 {
            let r = t.route(g, 1, dst);
            assert_eq!(r.link, dst);
            assert!(!r.relayed);
            assert_eq!(t.link_peer(g, 1, r.link), dst);
            assert_eq!(t.link_kind(g, 1, r.link), LinkKind::Local);
        }
    }

    #[test]
    fn oned_across_nodes_is_remote() {
        let g = mesh_grid();
        let t = Topology::OneD;
        assert_eq!(t.link_kind(g, 0, 5), LinkKind::Remote);
        assert_eq!(t.link_kind(g, 0, 3), LinkKind::Local);
    }

    #[test]
    fn mesh_row_is_local_column_is_remote() {
        let g = mesh_grid();
        let t = Topology::Mesh2D;
        assert_eq!(t.n_links(g), 4 + 2);
        // PE 1 = (node 0, local 1). Row link 3 -> PE 3, local.
        assert_eq!(t.link_peer(g, 1, 3), 3);
        assert_eq!(t.link_kind(g, 1, 3), LinkKind::Local);
        // Column link to node 1 -> PE 5 = (node 1, local 1), remote.
        assert_eq!(t.link_peer(g, 1, 4 + 1), 5);
        assert_eq!(t.link_kind(g, 1, 4 + 1), LinkKind::Remote);
    }

    #[test]
    fn mesh_routing_cases() {
        let g = mesh_grid();
        let t = Topology::Mesh2D;
        // same node: direct row
        let r = t.route(g, 1, 3);
        assert_eq!((r.link, r.relayed), (3, false));
        // same column: direct column
        let r = t.route(g, 1, 5);
        assert_eq!((r.link, r.relayed), (4 + 1, false));
        // off-row off-column: row hop to (node 0, local 2), relayed
        let r = t.route(g, 1, 6); // 6 = (node 1, local 2)
        assert_eq!((r.link, r.relayed), (2, true));
        assert_eq!(t.link_peer(g, 1, r.link), 2);
        // relay at PE 2 forwards along its column to node 1
        assert_eq!(t.relay_link(g, 2, 6), 4 + 1);
        assert_eq!(t.link_peer(g, 2, 4 + 1), 6);
    }

    #[test]
    fn self_send_routes_to_self_without_relay() {
        let g = mesh_grid();
        for t in [Topology::OneD, Topology::Mesh2D] {
            for me in 0..g.n_pes() {
                let r = t.route(g, me, me);
                assert!(!r.relayed);
                assert_eq!(t.link_peer(g, me, r.link), me);
                assert_eq!(t.link_kind(g, me, r.link), LinkKind::Local);
            }
        }
    }

    #[test]
    fn reverse_link_inverts_forward_link() {
        let g = mesh_grid();
        let t = Topology::Mesh2D;
        for me in 0..g.n_pes() {
            for link in 0..t.n_links(g) {
                let peer = t.link_peer(g, me, link);
                // A send on `link` from me lands at peer's reverse link
                // identifying me; peer's outgoing link at that index must
                // point back at me.
                if g.same_node(me, peer) || g.local_index(me) == g.local_index(peer) {
                    let rev = t.reverse_link(g, peer, me);
                    assert_eq!(t.link_peer(g, peer, rev), me);
                }
            }
        }
    }

    #[test]
    fn every_pair_reaches_destination_in_at_most_two_hops() {
        let g = Grid::new(3, 4).unwrap();
        let t = Topology::Mesh2D;
        for src in 0..g.n_pes() {
            for dst in 0..g.n_pes() {
                let r = t.route(g, src, dst);
                let first = t.link_peer(g, src, r.link);
                if r.relayed {
                    let second = t.link_peer(g, first, t.relay_link(g, first, dst));
                    assert_eq!(second, dst, "{src}->{dst} via {first}");
                } else {
                    assert_eq!(first, dst, "{src}->{dst}");
                }
            }
        }
    }

    /// Walk an item from `src` to `dst` using `next_link` until it
    /// arrives; returns the hop count.
    fn walk(t: Topology, g: Grid, src: usize, dst: usize) -> usize {
        let mut at = src;
        let mut hops = 0;
        while at != dst {
            at = t.link_peer(g, at, t.next_link(g, at, dst));
            hops += 1;
            assert!(hops <= 3, "{src}->{dst} looped");
        }
        hops
    }

    #[test]
    fn cube_factors_are_near_square() {
        assert_eq!(near_square_factors(16), (4, 4));
        assert_eq!(near_square_factors(12), (3, 4));
        assert_eq!(near_square_factors(7), (1, 7)); // prime: degenerates
        assert_eq!(near_square_factors(1), (1, 1));
    }

    #[test]
    fn cube_reaches_everything_in_at_most_three_hops() {
        let g = Grid::new(2, 4).unwrap(); // cube: a=2, b=2, nodes=2
        let t = Topology::resolve(TopologySpec::Cube3D, g);
        assert_eq!(t, Topology::Cube3D { a_dim: 2, b_dim: 2 });
        assert_eq!(t.n_links(g), 2 + 2 + 2);
        let mut max_hops = 0;
        for src in 0..g.n_pes() {
            for dst in 0..g.n_pes() {
                if src != dst {
                    max_hops = max_hops.max(walk(t, g, src, dst));
                }
            }
        }
        assert_eq!(max_hops, 3, "the worst cube route uses all three axes");
    }

    #[test]
    fn cube_has_fewer_links_than_mesh_when_node_is_wide() {
        let g = Grid::new(2, 16).unwrap();
        let mesh = Topology::Mesh2D;
        let cube = Topology::resolve(TopologySpec::Cube3D, g);
        assert_eq!(mesh.n_links(g), 18);
        assert_eq!(cube.n_links(g), 4 + 4 + 2, "the cube's memory saving");
    }

    #[test]
    fn cube_intra_node_hops_are_local_node_hops_are_remote() {
        let g = Grid::new(2, 4).unwrap();
        let t = Topology::resolve(TopologySpec::Cube3D, g);
        for me in 0..g.n_pes() {
            for link in 0..t.n_links(g) {
                let peer = t.link_peer(g, me, link);
                let kind = t.link_kind(g, me, link);
                if link < 4 {
                    assert_eq!(kind, LinkKind::Local, "intra-node axes");
                    assert!(g.same_node(me, peer));
                } else {
                    assert_eq!(g.local_index(me), g.local_index(peer));
                }
            }
        }
    }

    #[test]
    fn cube_reverse_link_identifies_single_hop_senders() {
        let g = Grid::new(2, 4).unwrap();
        let t = Topology::resolve(TopologySpec::Cube3D, g);
        for me in 0..g.n_pes() {
            for link in 0..t.n_links(g) {
                let peer = t.link_peer(g, me, link);
                if peer == me {
                    continue;
                }
                // peer sends to me over its link toward me; that traffic
                // lands on my reverse link, whose peer must be the sender.
                let rev = t.reverse_link(g, me, peer);
                assert_eq!(t.link_peer(g, me, rev), peer);
            }
        }
    }
}
