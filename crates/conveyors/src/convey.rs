//! The conveyor engine: aggregation buffers, double-buffered delivery,
//! two-hop relaying, and quiescence-based termination.
//!
//! ## Delivery protocol
//!
//! Each directed link owns **two landing cells** at the receiver — lock-free
//! SPSC ring cells ([`SpscRing`]) whose state word doubles as ready signal
//! and free-list entry (`0` = free for the sender, non-zero = published).
//! The sender stages items in a pooled per-link buffer; a flush claims a
//! free cell and delivers:
//!
//! - **local_send** (same node): a blocking [`SpscRing::write`] (the
//!   `shmem_ptr` memcpy) immediately followed by the *ready* publication.
//! - **nonblock_send** (cross node): a [`SpscRing::write_nbi`]
//!   (`shmem_putmem_nbi`) whose data is *not yet visible* — the cell stays
//!   unpublished and the slot is marked in-flight. A later
//!   **nonblock_progress** issues one [`Pe::quiet`] and then publishes each
//!   in-flight cell — the exact `quiet`-then-signal sequence §III-C traces.
//!
//! Ready words carry a per-link flush sequence number; the receiver
//! consumes cells strictly in sequence, so message order between any PE
//! pair is preserved (the "ordering guarantees... restricted for a pair of
//! PEs" of §IV-E) even when double-buffered flushes complete out of order.
//! Consumption ends with a [`SpscRing::release`] — the ack that returns the
//! cell to the sender — so no separate ack counters exist and the
//! per-message path (`push`, `pull`, flush, consume) acquires **no mutex**;
//! debug builds assert this against the lock-acquisition counter.
//!
//! Trace events are likewise batched: physical sends land in a thread-local
//! [`TraceBuffer`] and drain into the attached collector once per
//! [`advance`](Conveyor::advance), not per event.
//!
//! ## Termination
//!
//! `advance(done)` implements Conveyors' collective endgame: a shared
//! ledger counts PEs that signalled done, items pushed, and items pulled;
//! the conveyor is complete when every PE is done and every pushed item has
//! been pulled. (The C library detects this with split-phase reductions;
//! the in-process ledger is the same protocol with the network edges
//! collapsed.)

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use actorprof_trace::{SendType, SharedCollector, TraceBuffer};
use fabsp_shmem::{Pe, SpscRing};
use fabsp_telemetry::{Counter, Gauge, Hist, Phase};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::ConveyorError;
use crate::exchange::{BatchDelivery, Delivery, Envelope, ExchangeMode, PushOutcome, PushReport};
use crate::stats::ConveyorStats;
use crate::topology::{LinkKind, Topology, TopologySpec};

/// Physical slab capacity when the adaptive controller is on: the
/// controller moves the *effective* occupancy target inside this envelope,
/// so landing cells never need reallocation.
const ADAPTIVE_SLAB_CAP: usize = 512;

/// Floor the adaptive controller never shrinks the occupancy target below.
const ADAPTIVE_MIN_TARGET: usize = 8;

/// Advances between adaptive controller decisions.
const ADAPT_PERIOD: u64 = 32;

/// Construction options for a [`Conveyor`].
#[derive(Debug, Clone, Copy)]
pub struct ConveyorOptions {
    /// Items per aggregation buffer (and per landing cell). Default 64 —
    /// with 8–32-byte items this yields the 0.5–2 KiB network packets
    /// aggregation libraries target. With `adaptive` set this is the
    /// *initial* occupancy target; the physical slab is pre-sized to
    /// `ADAPTIVE_SLAB_CAP` (512) so the controller has headroom.
    pub capacity: usize,
    /// Topology selection (default: what Conveyors picks for the grid).
    pub topology: TopologySpec,
    /// Which exchange surface the actor runtime drives (batched
    /// `push_slice`/`pull_batch` vs. legacy per-item `push`/`pull`). The
    /// conveyor itself always supports both; see [`ExchangeMode`].
    pub exchange: ExchangeMode,
    /// Enable the occupancy feedback controller: the effective slab
    /// occupancy target tracks the telemetry registry's
    /// `BufferedItems`/`PullBacklog` gauges instead of staying pinned at
    /// `capacity`. Off by default (fixed capacity, bit-stable behavior).
    pub adaptive: bool,
}

impl Default for ConveyorOptions {
    fn default() -> Self {
        ConveyorOptions {
            capacity: 64,
            topology: TopologySpec::Auto,
            exchange: ExchangeMode::Batched,
            adaptive: false,
        }
    }
}

/// Shared termination ledger (the in-process stand-in for Conveyors'
/// endgame reductions).
struct SharedState {
    pushed: AtomicU64,
    pulled: AtomicU64,
    done: AtomicU64,
    /// The ledger's identity for the race detector: its SeqCst posts and
    /// the termination check are real synchronization, so they are modeled
    /// as edges on this object.
    #[cfg(feature = "race-detect")]
    hb: fabsp_shmem::race::HbObject,
}

/// Free-list of staging/scratch buffers. All `Vec<Envelope<T>>` the
/// conveyor ever uses come from here, so steady-state supersteps allocate
/// nothing: buffers cycle take → use → give. [`ConveyorStats::buffer_allocs`]
/// exposes the (construction-time) allocation count.
struct BufferPool<T> {
    free: Vec<Vec<Envelope<T>>>,
    capacity: usize,
    allocs: u64,
}

impl<T> BufferPool<T> {
    fn new(capacity: usize) -> BufferPool<T> {
        BufferPool {
            free: Vec::new(),
            capacity,
            allocs: 0,
        }
    }

    fn take(&mut self) -> Vec<Envelope<T>> {
        self.free.pop().unwrap_or_else(|| {
            self.allocs += 1;
            Vec::with_capacity(self.capacity)
        })
    }

    fn give(&mut self, mut buf: Vec<Envelope<T>>) {
        buf.clear();
        self.free.push(buf);
    }
}

struct OutLink<T> {
    peer: usize,
    kind: LinkKind,
    buf: Vec<Envelope<T>>,
    /// Remote cells written but not yet published: (seq, item_count).
    in_flight: [Option<(u64, usize)>; 2],
    /// Per-link flush sequence (1-based).
    flush_seq: u64,
}

/// One run of delivered items from a single origin, stored stripped of
/// envelopes so [`Conveyor::pull_batch`] can hand the payloads out as a
/// zero-copy `&[T]`. `cursor` tracks how far per-item [`Conveyor::pull`]
/// has nibbled into the front batch; backing `Vec`s recycle through a
/// free list like the staging buffers.
struct Batch<T> {
    src: u32,
    items: Vec<T>,
    cursor: usize,
}

/// A fixed-item-size aggregating communication object (one per Selector
/// mailbox in the FA-BSP stack).
pub struct Conveyor<T> {
    me: usize,
    grid: fabsp_shmem::Grid,
    topology: Topology,
    /// Configured capacity (what [`capacity`](Conveyor::capacity) reports).
    capacity: usize,
    /// Effective occupancy target: flush/refusal threshold. Equals
    /// `capacity` unless the adaptive controller moves it.
    target: usize,
    /// Physical items per landing cell / staging buffer (`>= target`).
    slab_cap: usize,
    /// Occupancy feedback controller enabled?
    adaptive: bool,
    /// `push_refusals` value at the controller's last decision point.
    adapt_refusal_mark: u64,
    links: Vec<OutLink<T>>,
    /// Landing cells, one SPSC cell per (incoming link, slot); the cell
    /// state word is ready signal and free-list entry in one.
    cells: SpscRing<Envelope<T>>,
    /// Receiver-side consumption cursor per (link, slot).
    cursors: Vec<usize>,
    /// Cycle stamp of the first blocked consumption per (link, slot),
    /// cleared when the cell is finally released — measures how long a
    /// relay park actually stalled the link (telemetry only).
    park_since: Vec<Option<u64>>,
    /// Next flush sequence expected per incoming link.
    expect_seq: Vec<u64>,
    /// Delivered-but-unpulled items, grouped into per-origin runs so
    /// `pull_batch` hands out whole slices. Arrival order is preserved:
    /// a delivery either extends the tail batch (same origin) or starts a
    /// new one.
    batches: VecDeque<Batch<T>>,
    /// The batch most recently lent out by `pull_batch`; its items are
    /// already counted as pulled, and its backing `Vec` is recycled on the
    /// next pull/pull_batch/advance.
    live: Option<Batch<T>>,
    /// Total unpulled items across `batches` (the true pull backlog).
    queued_items: usize,
    /// Free list of batch backing `Vec`s.
    batch_pool: Vec<Vec<T>>,
    batch_allocs: u64,
    pool: BufferPool<T>,
    shared: Arc<SharedState>,
    /// Pushes/pulls not yet posted to the shared termination ledger. The
    /// ledger is contended by every PE, so the hot path only bumps these
    /// locals; `advance` posts the deltas once per call, which is all the
    /// endgame check needs (a PE with unposted deltas cannot be terminal —
    /// it will call `advance` again).
    pending_pushed: u64,
    pending_pulled: u64,
    /// `pull_batch` calls not yet posted to the telemetry registry
    /// (`pull_batch` takes no `Pe`, so the counter is batched like the
    /// ledger deltas and flushed once per `advance`).
    pending_batched_pulls: u64,
    done_signaled: bool,
    complete: bool,
    need_progress: bool,
    stats: ConveyorStats,
    collector: Option<SharedCollector>,
    /// Batched physical-trace events; drained into `collector` once per
    /// `advance`, never on the per-message path.
    trace_buf: TraceBuffer,
    chaos: Option<Chaos>,
}

/// Chaos-injection state: seeded backpressure on the relay path.
struct Chaos {
    rng: StdRng,
    park_probability: f64,
}

impl<T: Copy + Default + Send + 'static> Conveyor<T> {
    /// Collectively create a conveyor across all PEs. Every PE must call
    /// this with identical options.
    pub fn new(pe: &Pe, options: ConveyorOptions) -> Result<Conveyor<T>, ConveyorError> {
        if options.capacity == 0 {
            return Err(ConveyorError::ZeroCapacity);
        }
        let grid = pe.grid();
        let topology = Topology::resolve(options.topology, grid);
        let n_links = topology.n_links(grid);
        // Adaptive mode over-provisions the physical slabs so the
        // controller can move the occupancy target without reallocating
        // landing cells mid-run.
        let slab_cap = if options.adaptive {
            options.capacity.max(ADAPTIVE_SLAB_CAP)
        } else {
            options.capacity
        };
        let cells = SpscRing::new(pe, n_links * 2, slab_cap)?;
        let shared = pe.allreduce((), |_| {
            Arc::new(SharedState {
                pushed: AtomicU64::new(0),
                pulled: AtomicU64::new(0),
                done: AtomicU64::new(0),
                #[cfg(feature = "race-detect")]
                hb: fabsp_shmem::race::HbObject::new(),
            })
        });
        let me = pe.rank();
        let mut pool = BufferPool::new(slab_cap);
        let links = (0..n_links)
            .map(|link| OutLink {
                peer: topology.link_peer(grid, me, link),
                kind: topology.link_kind(grid, me, link),
                buf: pool.take(),
                in_flight: [None, None],
                flush_seq: 1,
            })
            .collect();
        Ok(Conveyor {
            me,
            grid,
            topology,
            capacity: options.capacity,
            target: options.capacity,
            slab_cap,
            adaptive: options.adaptive,
            adapt_refusal_mark: 0,
            links,
            cells,
            cursors: vec![0; n_links * 2],
            park_since: vec![None; n_links * 2],
            expect_seq: vec![1; n_links],
            batches: VecDeque::new(),
            live: None,
            queued_items: 0,
            batch_pool: Vec::new(),
            batch_allocs: 0,
            pending_pushed: 0,
            pending_pulled: 0,
            pending_batched_pulls: 0,
            pool,
            shared,
            done_signaled: false,
            complete: false,
            need_progress: false,
            stats: ConveyorStats::default(),
            collector: None,
            trace_buf: TraceBuffer::default(),
            chaos: None,
        })
    }

    /// Inject relay-buffer backpressure: with probability
    /// `park_probability`, relay re-staging in `consume_slot` pretends
    /// the relay buffer is full even when it is not, forcing the
    /// parked-link path (saved cursor, link resumed on a later advance)
    /// that real runs only hit under heavy congestion.
    ///
    /// The decision stream is seeded per PE, so a given `(seed, schedule)`
    /// pair replays exactly. Parks are refusals, not drops — every item is
    /// still delivered — and each retry re-rolls, so forward progress is
    /// preserved for any probability below 1 (clamped to 0.95). Testing
    /// hook; leave uncalled in production.
    pub fn inject_chaos(&mut self, seed: u64, park_probability: f64) {
        self.chaos = Some(Chaos {
            rng: StdRng::seed_from_u64(
                seed ^ (self.me as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            ),
            park_probability: park_probability.clamp(0.0, 0.95),
        });
    }

    /// Attach an ActorProf collector; subsequent `local_send` /
    /// `nonblock_send` / `nonblock_progress` events are batched and drained
    /// into its physical trace (§III-C) at `advance` boundaries.
    pub fn attach_collector(&mut self, collector: SharedCollector) {
        let config = collector.borrow().config().clone();
        self.trace_buf = TraceBuffer::for_config(&config);
        self.collector = Some(collector);
    }

    /// The resolved topology.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// Items per aggregation buffer, as configured.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The effective occupancy target the flush/refusal thresholds use
    /// right now. Equals [`capacity`](Conveyor::capacity) unless the
    /// adaptive controller has moved it.
    pub fn effective_capacity(&self) -> usize {
        self.target
    }

    /// This PE's operation counters.
    pub fn stats(&self) -> ConveyorStats {
        ConveyorStats {
            buffer_allocs: self.pool.allocs,
            batch_allocs: self.batch_allocs,
            ..self.stats
        }
    }

    /// Whether this PE already signalled done.
    pub fn is_done_signaled(&self) -> bool {
        self.done_signaled
    }

    /// Whether the conveyor has terminated (a prior
    /// [`advance`](Conveyor::advance) returned `false`).
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// Collectively re-arm a terminated conveyor for another superstep
    /// (Conveyors' `convey_reset`/`convey_begin` reuse pattern). Buffers,
    /// landing cells, and sequence numbers carry over — termination left
    /// them empty and consistent — and the endgame ledger is zeroed in
    /// place during the collective rendezvous, so `reset` allocates
    /// nothing.
    ///
    /// All PEs must call `reset` together, and only after every PE's
    /// `advance` returned `false`.
    ///
    /// # Panics
    /// Panics if the conveyor has not terminated on this PE.
    pub fn reset(&mut self, pe: &Pe) {
        assert!(
            self.complete,
            "reset called before the conveyor terminated"
        );
        debug_assert!(
            self.batches.is_empty() && self.live.is_none() && self.queued_items == 0,
            "termination implies drained"
        );
        debug_assert!(!self.has_in_flight(), "termination implies progressed");
        debug_assert!(
            self.links.iter().all(|l| l.buf.is_empty()),
            "termination implies flushed"
        );
        debug_assert!(
            self.trace_buf.is_empty(),
            "the final advance drains the trace batch"
        );
        debug_assert!(
            self.pending_pushed == 0 && self.pending_pulled == 0,
            "the final advance posts all ledger deltas"
        );
        // The combine closure runs exactly once, inside the rendezvous all
        // PEs are parked at, so zeroing in place is race-free and the Arc
        // is reused across supersteps.
        let shared = Arc::clone(&self.shared);
        pe.allreduce((), move |_| {
            shared.pushed.store(0, Ordering::SeqCst);
            shared.pulled.store(0, Ordering::SeqCst);
            shared.done.store(0, Ordering::SeqCst);
        });
        self.done_signaled = false;
        self.complete = false;
        self.need_progress = false;
    }

    /// Whether this PE's side of the conveyor is a valid checkpoint cut:
    /// nothing staged, nothing in flight, nothing delivered-but-unpulled,
    /// no unposted ledger deltas, no undrained trace batch. Holds for a
    /// fresh conveyor, after termination, and after a
    /// [`reset`](Conveyor::reset) — i.e. exactly at superstep boundaries.
    /// This is the precondition the actor layer asserts before a
    /// [`Pe::checkpoint`]: checkpointing mid-superstep would freeze
    /// half-delivered buffers into the cut.
    pub fn checkpoint_ready(&self) -> bool {
        self.batches.is_empty()
            && self.live.is_none()
            && self.queued_items == 0
            && !self.has_in_flight()
            && self.links.iter().all(|l| l.buf.is_empty())
            && self.pending_pushed == 0
            && self.pending_pulled == 0
            && self.trace_buf.is_empty()
    }

    /// Drive the conveyor to quiescence so the superstep can be cleanly
    /// checkpointed or replayed: signals done, keeps advancing, and hands
    /// every remaining delivery to `sink` until termination. On return the
    /// conveyor [`is_complete`](Conveyor::is_complete) and
    /// [`checkpoint_ready`](Conveyor::checkpoint_ready) (asserted in debug
    /// builds). Collective in effect: all PEs must drain together, like the
    /// endgame itself. Cold path — runs at superstep boundaries only.
    pub fn drain_and_park(&mut self, pe: &Pe, mut sink: impl FnMut(Delivery<T>)) {
        loop {
            let active = self.advance(pe, true);
            while let Some(d) = self.pull() {
                sink(d);
            }
            if !active {
                break;
            }
            pe.poll_yield();
        }
        debug_assert!(
            self.checkpoint_ready(),
            "a parked conveyor must be checkpoint-ready"
        );
    }

    /// Try to enqueue `item` for `dst`. [`PushOutcome::Retry`] — item *not*
    /// accepted — means aggregation buffers are full; the caller must
    /// [`advance`](Conveyor::advance) and retry (HClib-Actor's send loop
    /// does this on the user's behalf).
    ///
    /// A thin one-item wrapper over the [`push_slice`](Conveyor::push_slice)
    /// staging path; still the per-message hot path, and still mutex-free
    /// (debug builds assert a zero lock-acquisition delta in free-running
    /// worlds).
    pub fn push(&mut self, pe: &Pe, item: T, dst: usize) -> Result<PushOutcome, ConveyorError> {
        #[cfg(debug_assertions)]
        let lock_probe = (!pe.is_scheduled()).then(fabsp_shmem::debug_lock_acquisitions);
        let outcome = self.push_slice_impl(pe, &[item], dst, false).map(|r| {
            if r.accepted == 1 {
                PushOutcome::Accepted
            } else {
                PushOutcome::Retry
            }
        });
        #[cfg(debug_assertions)]
        if let Some(before) = lock_probe {
            assert_eq!(
                fabsp_shmem::debug_lock_acquisitions(),
                before,
                "Conveyor::push acquired a mutex on the hot path"
            );
        }
        outcome
    }

    /// Enqueue a slice of items for `dst`, amortizing routing and the SPSC
    /// state-word protocol over whole-slab publishes: staging fills the
    /// pooled link buffer in bulk `extend`s and flushes full slabs inline,
    /// instead of paying a threshold check and branch per item.
    ///
    /// Returns how far the slice got: [`PushReport::accepted`] is always a
    /// prefix length, so a partial push resubmits `&items[accepted..]`
    /// after an [`advance`](Conveyor::advance). Refusal is the same
    /// backpressure `push` reports as [`PushOutcome::Retry`] — folded here
    /// into the report instead of a per-item verdict. Mutex-free like
    /// `push`.
    pub fn push_slice(
        &mut self,
        pe: &Pe,
        items: &[T],
        dst: usize,
    ) -> Result<PushReport, ConveyorError> {
        #[cfg(debug_assertions)]
        let lock_probe = (!pe.is_scheduled()).then(fabsp_shmem::debug_lock_acquisitions);
        let report = self.push_slice_impl(pe, items, dst, true);
        #[cfg(debug_assertions)]
        if let Some(before) = lock_probe {
            assert_eq!(
                fabsp_shmem::debug_lock_acquisitions(),
                before,
                "Conveyor::push_slice acquired a mutex on the hot path"
            );
        }
        report
    }

    fn push_slice_impl(
        &mut self,
        pe: &Pe,
        items: &[T],
        dst: usize,
        batched: bool,
    ) -> Result<PushReport, ConveyorError> {
        #[cfg(feature = "race-detect")]
        pe.race_note("Conveyor::push");
        if dst >= self.grid.n_pes() {
            return Err(ConveyorError::InvalidDestination {
                dst,
                n_pes: self.grid.n_pes(),
            });
        }
        if self.done_signaled {
            return Err(ConveyorError::PushAfterDone);
        }
        if items.is_empty() {
            return Ok(PushReport::default());
        }
        if batched {
            self.stats.batched_pushes += 1;
            if let Some(m) = pe.metrics() {
                m.count(Counter::BatchedPushes);
                m.observe(Hist::BatchLen, items.len() as u64);
            }
        }
        let link = self.topology.route(self.grid, self.me, dst).link;
        let origin = self.me as u32;
        let mut accepted = 0usize;
        let mut retried = 0u64;
        while accepted < items.len() {
            if self.links[link].buf.len() >= self.target {
                self.flush_link(pe, link);
                if self.links[link].buf.len() >= self.target {
                    self.stats.push_refusals += 1;
                    retried += 1;
                    if let Some(m) = pe.metrics() {
                        m.count(Counter::ConveyorPushRetries);
                    }
                    break;
                }
            }
            let room = self.target - self.links[link].buf.len();
            let take = room.min(items.len() - accepted);
            self.links[link].buf.extend(items[accepted..accepted + take].iter().map(
                |&item| Envelope {
                    final_dst: dst as u32,
                    origin,
                    item,
                },
            ));
            accepted += take;
        }
        self.stats.pushed += accepted as u64;
        self.stats.item_copies += accepted as u64;
        self.pending_pushed += accepted as u64;
        Ok(PushReport { accepted, retried })
    }

    /// Take one delivered item, if any. Mutex-free like `push`; a thin
    /// one-item view over the batch queue [`pull_batch`](Conveyor::pull_batch)
    /// drains whole.
    pub fn pull(&mut self) -> Option<Delivery<T>> {
        #[cfg(debug_assertions)]
        let before = fabsp_shmem::debug_lock_acquisitions();
        if let Some(prev) = self.live.take() {
            self.recycle_batch(prev);
        }
        let out = match self.batches.front_mut() {
            Some(b) => {
                let src = b.src;
                let item = b.items[b.cursor];
                b.cursor += 1;
                if b.cursor == b.items.len() {
                    let done = self.batches.pop_front().expect("front exists");
                    self.recycle_batch(done);
                }
                self.stats.pulled += 1;
                self.stats.item_copies += 1;
                self.pending_pulled += 1;
                self.queued_items -= 1;
                Some(Delivery { src, item })
            }
            None => None,
        };
        #[cfg(debug_assertions)]
        assert_eq!(
            fabsp_shmem::debug_lock_acquisitions(),
            before,
            "Conveyor::pull acquired a mutex on the hot path"
        );
        out
    }

    /// Take the next delivered batch, if any: every queued item from one
    /// origin run, as a zero-copy slice borrowed from the delivery queue
    /// (valid until the next `pull`/`pull_batch`/`advance`). Items appear
    /// in push order, so pairwise FIFO holds exactly as with per-item
    /// [`pull`](Conveyor::pull). Mutex-free like `push`.
    pub fn pull_batch(&mut self) -> Option<BatchDelivery<'_, T>> {
        #[cfg(debug_assertions)]
        let before = fabsp_shmem::debug_lock_acquisitions();
        if let Some(prev) = self.live.take() {
            self.recycle_batch(prev);
        }
        let out = self.batches.pop_front();
        #[cfg(debug_assertions)]
        assert_eq!(
            fabsp_shmem::debug_lock_acquisitions(),
            before,
            "Conveyor::pull_batch acquired a mutex on the hot path"
        );
        let batch = out?;
        let n = batch.items.len() - batch.cursor;
        debug_assert!(n > 0, "queued batches are never empty");
        self.stats.pulled += n as u64;
        self.stats.batched_pulls += 1;
        self.pending_pulled += n as u64;
        self.pending_batched_pulls += 1;
        self.queued_items -= n;
        let live = self.live.insert(batch);
        Some(BatchDelivery {
            src: live.src,
            items: &live.items[live.cursor..],
        })
    }

    /// Number of delivered-but-unpulled items.
    pub fn pending_pulls(&self) -> usize {
        self.queued_items
    }

    /// Queue one incoming item, extending the tail batch when the origin
    /// matches (arrival order is preserved either way).
    fn deliver(&mut self, origin: u32, item: T) {
        self.queued_items += 1;
        if let Some(back) = self.batches.back_mut() {
            if back.src == origin {
                back.items.push(item);
                return;
            }
        }
        let mut items = self.batch_pool.pop().unwrap_or_else(|| {
            self.batch_allocs += 1;
            Vec::with_capacity(self.slab_cap)
        });
        items.push(item);
        self.batches.push_back(Batch {
            src: origin,
            items,
            cursor: 0,
        });
    }

    fn recycle_batch(&mut self, mut batch: Batch<T>) {
        batch.items.clear();
        self.batch_pool.push(batch.items);
    }

    /// Make communication progress. `done = true` declares that this PE
    /// will push no more items (idempotent; pushes afterwards error).
    ///
    /// Returns `true` while the conveyor is active; once it returns
    /// `false`, every pushed item (on all PEs) has been pulled and the
    /// conveyor may be discarded.
    pub fn advance(&mut self, pe: &Pe, done: bool) -> bool {
        if self.complete {
            return false;
        }
        let begin = fabsp_hwpc::cycles_now();
        let active = self.advance_impl(pe, done);
        let end = fabsp_hwpc::cycles_now();
        self.trace_buf.record_span(Phase::Advance, begin, end);
        if let Some(m) = pe.metrics() {
            m.observe(Hist::AdvanceCycles, end.saturating_sub(begin));
            let buffered: usize = self.links.iter().map(|l| l.buf.len()).sum();
            m.gauge_set(Gauge::ConveyorBufferedItems, buffered as u64);
            // True occupancy: items, not slabs — pull_batch drains whole
            // batches, so counting queue entries would under-report the
            // backlog the adaptive controller steers on.
            m.gauge_set(Gauge::ConveyorPullBacklog, self.queued_items as u64);
            m.flight_span(Phase::Advance, begin, end);
            if self.pending_batched_pulls != 0 {
                m.add(Counter::BatchedPulls, self.pending_batched_pulls);
            }
        }
        self.pending_batched_pulls = 0;
        // Drain boundary: hand the batched physical events to the
        // collector in one borrow, covering push-triggered flushes since
        // the previous advance as well.
        if let Some(c) = &self.collector {
            if !self.trace_buf.is_empty() {
                c.borrow_mut().drain(&mut self.trace_buf);
            }
        }
        active
    }

    fn advance_impl(&mut self, pe: &Pe, done: bool) -> bool {
        self.stats.advances += 1;
        // A batch lent out by pull_batch is dead once the caller advances;
        // reclaim its backing Vec for the free list.
        if let Some(prev) = self.live.take() {
            self.recycle_batch(prev);
        }
        if self.adaptive && self.stats.advances.is_multiple_of(ADAPT_PERIOD) {
            self.adapt_tick(pe);
        }
        // Post the hot path's batched ledger deltas before anything that
        // could observe termination, `done` signalling included.
        if self.pending_pushed != 0 {
            self.shared
                .pushed
                .fetch_add(self.pending_pushed, Ordering::SeqCst);
            self.pending_pushed = 0;
        }
        if self.pending_pulled != 0 {
            self.shared
                .pulled
                .fetch_add(self.pending_pulled, Ordering::SeqCst);
            self.pending_pulled = 0;
        }
        if done && !self.done_signaled {
            self.done_signaled = true;
            self.shared.done.fetch_add(1, Ordering::SeqCst);
        }
        // The SeqCst posts above are release-and-acquire on the shared
        // ledger; one modeled RMW edge covers them.
        #[cfg(feature = "race-detect")]
        pe.hb_rmw(&self.shared.hb);

        self.consume_incoming(pe);

        // Flush full buffers; in the endgame flush anything non-empty.
        for link in 0..self.links.len() {
            let len = self.links[link].buf.len();
            if len >= self.target || (self.done_signaled && len > 0) {
                self.flush_link(pe, link);
            }
        }

        // Complete non-blocking sends when a slot was needed or when the
        // endgame demands all data on the wire become visible.
        if self.need_progress || (self.done_signaled && self.has_in_flight()) {
            self.progress(pe);
        }

        // Data signalled by our own progress (self-column) or arriving
        // meanwhile can often be consumed immediately.
        self.consume_incoming(pe);

        // Termination: all PEs done (monotonic; pushes are finished), and
        // every pushed item has been pulled by a user somewhere.
        #[cfg(feature = "race-detect")]
        pe.hb_acquire(&self.shared.hb);
        if self.shared.done.load(Ordering::SeqCst) == self.grid.n_pes() as u64 {
            let pushed = self.shared.pushed.load(Ordering::SeqCst);
            let pulled = self.shared.pulled.load(Ordering::SeqCst);
            if pushed == pulled {
                self.complete = true;
                return false;
            }
        }
        true
    }

    /// The occupancy feedback controller: every [`ADAPT_PERIOD`] advances,
    /// steer the effective slab occupancy target from this PE's telemetry
    /// gauges. Refusals with a manageable pull backlog mean the fixed
    /// target is the bottleneck — grow it (bigger slabs amortize the
    /// state-word protocol further); a backlog far above the target means
    /// the consumer is the bottleneck — shrink, so flushes deliver smaller,
    /// smoother slabs instead of piling onto the queue. Inputs are this
    /// PE's own single-writer gauge slab (set by the previous `advance`),
    /// so the decision stream is deterministic per schedule.
    fn adapt_tick(&mut self, pe: &Pe) {
        let backlog = pe
            .metrics()
            .map(|m| m.gauge(Gauge::ConveyorPullBacklog))
            .unwrap_or(self.queued_items as u64);
        let refusals = self.stats.push_refusals - self.adapt_refusal_mark;
        self.adapt_refusal_mark = self.stats.push_refusals;
        // A consumer that keeps up holds the backlog near 3x the target (two
        // drained cells plus an inline flush per advance), so the stable
        // band is [0, 4x]: refusals inside it grow, a backlog beyond 8x —
        // the consumer genuinely falling behind — shrinks.
        let target = self.target as u64;
        if refusals > 0 && backlog <= 4 * target {
            let grown = (self.target * 2).min(self.slab_cap);
            if grown != self.target {
                self.target = grown;
                self.stats.capacity_grows += 1;
            }
        } else if backlog > 8 * target {
            let shrunk = (self.target / 2).max(ADAPTIVE_MIN_TARGET.min(self.slab_cap));
            if shrunk != self.target {
                self.target = shrunk;
                self.stats.capacity_shrinks += 1;
            }
        }
    }

    fn has_in_flight(&self) -> bool {
        self.links
            .iter()
            .any(|l| l.in_flight.iter().any(|s| s.is_some()))
    }

    fn slot_index(link: usize, slot: usize) -> usize {
        link * 2 + slot
    }

    /// Deliver `link`'s staged buffer into a free landing cell at the peer,
    /// if one is available.
    fn flush_link(&mut self, pe: &Pe, link: usize) {
        if self.links[link].buf.is_empty() {
            return;
        }
        let peer = self.links[link].peer;
        let rev = self.topology.reverse_link(self.grid, peer, self.me);
        // A cell is free when its state word is 0 (the receiver released
        // it) and no unpublished delivery of ours occupies it.
        let slot = {
            let l = &self.links[link];
            (0..2).find(|&s| {
                l.in_flight[s].is_none() && self.cells.state(pe, peer, Self::slot_index(rev, s)) == 0
            })
        };
        let Some(slot) = slot else {
            // Both cells busy. If any are merely unpublished, a progress
            // call will free the pipeline — the paper's "quiet when the
            // second buffer is full for a particular destination" trigger.
            if self.links[link].in_flight.iter().any(|s| s.is_some()) {
                self.need_progress = true;
            }
            return;
        };

        let kind = self.links[link].kind;
        let count = self.links[link].buf.len();
        let bytes = (count * std::mem::size_of::<Envelope<T>>()) as u64;
        let seq = self.links[link].flush_seq;
        let cell = Self::slot_index(rev, slot);
        let ready_word = (seq << 32) | (count as u64 + 1);

        match kind {
            LinkKind::Local => {
                // local_send: shmem_ptr + memcpy, immediately visible,
                // then the ready publication.
                self.cells
                    .write(pe, peer, cell, &self.links[link].buf)
                    .expect("landing cell bounds are static");
                self.cells
                    .publish(pe, peer, cell, ready_word)
                    .expect("landing cell bounds are static");
                self.stats.local_sends += 1;
                self.stats.item_copies += count as u64;
                self.trace_buf.record_physical(SendType::LocalSend, bytes, peer);
            }
            LinkKind::Remote => {
                // nonblock_send: shmem_putmem_nbi; the cell stays
                // unpublished (invisible) until a later quiet. The copy
                // count models the nbi capture + apply pair of the real
                // transport, though the SPSC cell needs no capture copy.
                self.cells
                    .write_nbi(pe, peer, cell, &self.links[link].buf)
                    .expect("landing cell bounds are static");
                self.links[link].in_flight[slot] = Some((seq, count));
                self.stats.nonblock_sends += 1;
                self.stats.item_copies += 2 * count as u64;
                self.trace_buf
                    .record_physical(SendType::NonblockSend, bytes, peer);
            }
        }
        self.links[link].flush_seq += 1;
        self.links[link].buf.clear();
    }

    /// nonblock_progress: one `shmem_quiet`, then a publishing put per
    /// in-flight delivery.
    fn progress(&mut self, pe: &Pe) {
        if !self.has_in_flight() {
            self.need_progress = false;
            return;
        }
        let q_begin = fabsp_hwpc::cycles_now();
        pe.quiet();
        let q_end = fabsp_hwpc::cycles_now();
        self.trace_buf.record_span(Phase::Quiet, q_begin, q_end);
        if let Some(m) = pe.metrics() {
            m.flight_span(Phase::Quiet, q_begin, q_end);
        }
        self.stats.quiets += 1;
        for link in 0..self.links.len() {
            for slot in 0..2 {
                if let Some((seq, count)) = self.links[link].in_flight[slot].take() {
                    let peer = self.links[link].peer;
                    let rev = self.topology.reverse_link(self.grid, peer, self.me);
                    let ready_word = (seq << 32) | (count as u64 + 1);
                    self.cells
                        .publish(pe, peer, Self::slot_index(rev, slot), ready_word)
                        .expect("landing cell bounds are static");
                    let bytes = (count * std::mem::size_of::<Envelope<T>>()) as u64;
                    self.stats.nonblock_progress += 1;
                    self.trace_buf
                        .record_physical(SendType::NonblockProgress, bytes, peer);
                }
            }
        }
        self.need_progress = false;
    }

    /// Drain published landing cells, in per-link flush order: deliver
    /// items addressed to this PE to the pull queue, re-stage relayed items
    /// on their column link.
    fn consume_incoming(&mut self, pe: &Pe) {
        let n_links = self.links.len();
        for link in 0..n_links {
            // Consume strictly in sequence so pairwise ordering holds even
            // when double-buffered flushes are published out of order.
            loop {
                let expected = self.expect_seq[link];
                let Some(slot) = (0..2).find(|&s| {
                    let word = self.cells.state(pe, self.me, Self::slot_index(link, s));
                    word != 0 && (word >> 32) == expected
                }) else {
                    break;
                };
                if !self.consume_slot(pe, link, slot) {
                    // Relay buffer blocked: park THIS link (cursor saved)
                    // but keep draining the others — final-destination
                    // consumption elsewhere is what frees the relay's
                    // column cells, so returning here could deadlock a
                    // cycle of relays.
                    break;
                }
                self.expect_seq[link] += 1;
            }
        }
    }

    /// Consume one published cell. Returns `false` if consumption blocked
    /// on a full relay buffer (cursor saved for resumption).
    fn consume_slot(&mut self, pe: &Pe, link: usize, slot: usize) -> bool {
        let idx = Self::slot_index(link, slot);
        let word = self.cells.state(pe, self.me, idx);
        let count = ((word & 0xffff_ffff) - 1) as usize;
        let start = self.cursors[idx];
        let hop_begin = fabsp_hwpc::cycles_now();

        // Copy the unconsumed remainder out of the landing cell (the
        // receive-side memcpy), then process from a pooled scratch buffer.
        let mut scratch = self.pool.take();
        self.cells.read_local(pe, idx, |cell| {
            scratch.extend_from_slice(&cell[start..count]);
        });

        let mut processed = 0;
        let mut relayed_here = 0u64;
        let mut blocked = false;
        let mut forced = false;
        for env in &scratch {
            if env.final_dst as usize == self.me {
                self.deliver(env.origin, env.item);
                self.stats.item_copies += 1;
                processed += 1;
            } else {
                let rl = self.topology.relay_link(self.grid, self.me, env.final_dst as usize);
                if let Some(chaos) = &mut self.chaos {
                    if chaos.rng.gen_bool(chaos.park_probability) {
                        self.stats.forced_parks += 1;
                        forced = true;
                        blocked = true;
                        break;
                    }
                }
                if self.links[rl].buf.len() >= self.target {
                    self.flush_link(pe, rl);
                }
                if self.links[rl].buf.len() >= self.target {
                    blocked = true;
                    break;
                }
                self.links[rl].buf.push(*env);
                self.stats.relayed += 1;
                self.stats.item_copies += 1;
                processed += 1;
                relayed_here += 1;
            }
        }
        self.pool.give(scratch);
        self.cursors[idx] = start + processed;

        if relayed_here > 0 {
            let hop_end = fabsp_hwpc::cycles_now();
            self.trace_buf.record_span(Phase::RelayHop, hop_begin, hop_end);
            if let Some(m) = pe.metrics() {
                m.flight_span(Phase::RelayHop, hop_begin, hop_end);
            }
        }

        if blocked {
            // A park — chaos-forced or a genuinely full relay buffer —
            // stalls this link until a later advance resumes the cursor.
            if let Some(m) = pe.metrics() {
                let which = if forced {
                    Counter::ConveyorForcedParks
                } else {
                    Counter::ConveyorRelayParks
                };
                m.count(which);
                m.flight_note(which, 1);
            }
            if self.park_since[idx].is_none() {
                self.park_since[idx] = Some(fabsp_hwpc::cycles_now());
            }
            return false;
        }

        // Fully consumed: release the cell, which is also the ack that
        // hands the buffer back to the sender's free list.
        debug_assert_eq!(self.cursors[idx], count);
        self.cursors[idx] = 0;
        if let Some(since) = self.park_since[idx].take() {
            if let Some(m) = pe.metrics() {
                m.observe(
                    Hist::RelayParkCycles,
                    fabsp_hwpc::cycles_now().saturating_sub(since),
                );
            }
        }
        let src = self.topology.link_peer(self.grid, self.me, link);
        self.cells
            .release(pe, idx, src)
            .expect("own landing cell bounds are static");
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use actorprof_trace::{PeCollector, TraceConfig};
    use fabsp_shmem::{spmd, Grid};

    /// Drive an all-to-all: every PE sends `per_pair` items to every PE,
    /// then drains. Returns (received items per source, stats).
    fn all_to_all(
        grid: Grid,
        options: ConveyorOptions,
        per_pair: usize,
    ) -> Vec<(Vec<Vec<u64>>, ConveyorStats)> {
        spmd::run(grid, |pe| {
            let mut c = Conveyor::<u64>::new(pe, options).unwrap();
            let n = pe.n_pes();
            let mut received: Vec<Vec<u64>> = vec![Vec::new(); n];
            let mut outbox: Vec<(u64, usize)> = Vec::new();
            for k in 0..per_pair {
                for dst in 0..n {
                    outbox.push(((pe.rank() * 1_000_000 + dst * 1_000 + k) as u64, dst));
                }
            }
            let mut next = 0;
            let mut done = false;
            loop {
                while next < outbox.len() {
                    let (item, dst) = outbox[next];
                    if c.push(pe, item, dst).unwrap().is_accepted() {
                        next += 1;
                    } else {
                        break;
                    }
                }
                if next == outbox.len() {
                    done = true;
                }
                let active = c.advance(pe, done);
                while let Some(d) = c.pull() {
                    received[d.src as usize].push(d.item);
                }
                if !active {
                    break;
                }
                pe.poll_yield();
            }
            (received, c.stats())
        })
        .unwrap()
    }

    fn check_all_to_all(grid: Grid, options: ConveyorOptions, per_pair: usize) {
        let results = all_to_all(grid, options, per_pair);
        let n = grid.n_pes();
        for (me, (received, stats)) in results.iter().enumerate() {
            assert_eq!(stats.pushed, (n * per_pair) as u64);
            assert_eq!(stats.pulled, (n * per_pair) as u64);
            for (src, items) in received.iter().enumerate() {
                assert_eq!(items.len(), per_pair, "PE {me} from {src}");
                // pairwise FIFO: items arrive in push order
                for (k, item) in items.iter().enumerate() {
                    assert_eq!(
                        *item,
                        (src * 1_000_000 + me * 1_000 + k) as u64,
                        "PE {me} from {src} item {k}"
                    );
                }
            }
        }
    }

    #[test]
    fn single_pe_self_send_roundtrip() {
        check_all_to_all(
            Grid::single_node(1).unwrap(),
            ConveyorOptions::default(),
            10,
        );
    }

    #[test]
    fn one_node_all_to_all_oned() {
        check_all_to_all(
            Grid::single_node(4).unwrap(),
            ConveyorOptions::default(),
            25,
        );
    }

    #[test]
    fn two_node_all_to_all_mesh() {
        check_all_to_all(Grid::new(2, 3).unwrap(), ConveyorOptions::default(), 20);
    }

    #[test]
    fn three_node_mesh_with_relays() {
        check_all_to_all(Grid::new(3, 2).unwrap(), ConveyorOptions::default(), 15);
    }

    #[test]
    fn cube3d_all_to_all_delivers_in_order() {
        // 2 nodes x 4 PEs: cube factors (2, 2); worst routes take 3 hops.
        check_all_to_all(
            Grid::new(2, 4).unwrap(),
            ConveyorOptions {
                capacity: 8,
                topology: TopologySpec::Cube3D,
                ..ConveyorOptions::default()
            },
            12,
        );
    }

    #[test]
    fn cube3d_uses_double_relays() {
        let grid = Grid::new(2, 4).unwrap();
        let options = ConveyorOptions {
            capacity: 8,
            topology: TopologySpec::Cube3D,
            ..ConveyorOptions::default()
        };
        let results = all_to_all(grid, options, 6);
        let total_relayed: u64 = results.iter().map(|(_, s)| s.relayed).sum();
        // Pairs differing in two or three coordinates relay once or twice;
        // with 8 PEs all-to-all there are many such pairs.
        assert!(total_relayed > 0, "cube must relay multi-axis traffic");
        // but delivery still balances
        for (_, s) in &results {
            assert_eq!(s.pushed, 48);
            assert_eq!(s.pulled, 48);
        }
    }

    #[test]
    fn cube3d_on_one_wide_node_stays_local() {
        let grid = Grid::new(1, 9).unwrap(); // cube (3, 3) within one node
        let options = ConveyorOptions {
            capacity: 4,
            topology: TopologySpec::Cube3D,
            ..ConveyorOptions::default()
        };
        let results = all_to_all(grid, options, 5);
        for (_, s) in &results {
            assert_eq!(s.nonblock_sends, 0, "no cross-node traffic exists");
            assert!(s.local_sends > 0);
        }
        check_all_to_all(grid, options, 5);
    }

    #[test]
    fn tiny_capacity_forces_refusals_but_delivers() {
        let grid = Grid::new(2, 2).unwrap();
        let options = ConveyorOptions {
            capacity: 2,
            topology: TopologySpec::Auto,
            ..ConveyorOptions::default()
        };
        let results = all_to_all(grid, options, 30);
        assert!(
            results.iter().any(|(_, s)| s.push_refusals > 0),
            "capacity 2 with 120 pushes should refuse at least once"
        );
        // correctness still holds
        check_all_to_all(grid, options, 30);
    }

    #[test]
    fn forced_oned_on_two_nodes_uses_nonblocking_path() {
        let grid = Grid::new(2, 2).unwrap();
        let options = ConveyorOptions {
            capacity: 8,
            topology: TopologySpec::OneD,
            ..ConveyorOptions::default()
        };
        let results = all_to_all(grid, options, 10);
        for (_, stats) in &results {
            assert!(stats.nonblock_sends > 0);
            assert!(stats.relayed == 0, "1D never relays");
        }
    }

    #[test]
    fn mesh_relays_off_row_off_column_traffic() {
        let grid = Grid::new(2, 2).unwrap();
        let results = all_to_all(grid, ConveyorOptions::default(), 10);
        let total_relayed: u64 = results.iter().map(|(_, s)| s.relayed).sum();
        // 0<->3 and 1<->2 pairs are off-row/off-column: 4 directed pairs
        // x 10 items must relay.
        assert_eq!(total_relayed, 40);
    }

    #[test]
    fn push_after_done_errors() {
        let grid = Grid::single_node(1).unwrap();
        spmd::run(grid, |pe| {
            let mut c = Conveyor::<u64>::new(pe, ConveyorOptions::default()).unwrap();
            let _ = c.push(pe, 1, 0).unwrap();
            while c.advance(pe, true) {
                while c.pull().is_some() {}
            }
            assert!(matches!(
                // analyzer: allow(push-without-rearm): deliberate negative litmus — asserts the runtime rejects exactly this
                c.push(pe, 2, 0),
                Err(ConveyorError::PushAfterDone)
            ));
        })
        .unwrap();
    }

    #[test]
    fn invalid_destination_errors() {
        let grid = Grid::single_node(2).unwrap();
        spmd::run(grid, |pe| {
            let mut c = Conveyor::<u8>::new(pe, ConveyorOptions::default()).unwrap();
            assert!(matches!(
                c.push(pe, 0, 5),
                Err(ConveyorError::InvalidDestination { dst: 5, .. })
            ));
            while c.advance(pe, true) {}
        })
        .unwrap();
    }

    #[test]
    fn zero_capacity_rejected() {
        let grid = Grid::single_node(1).unwrap();
        spmd::run(grid, |pe| {
            let r = Conveyor::<u8>::new(
                pe,
                ConveyorOptions {
                    capacity: 0,
                    topology: TopologySpec::Auto,
                    ..ConveyorOptions::default()
                },
            );
            assert!(matches!(r, Err(ConveyorError::ZeroCapacity)));
        })
        .unwrap();
    }

    #[test]
    fn physical_trace_matches_topology() {
        let grid = Grid::new(2, 2).unwrap();
        let traces = spmd::run(grid, |pe| {
            let collector = PeCollector::new(
                pe.rank(),
                pe.n_pes(),
                pe.grid().pes_per_node(),
                TraceConfig::off().with_physical(),
            )
            .into_shared();
            let mut c = Conveyor::<u64>::new(pe, ConveyorOptions::default()).unwrap();
            c.attach_collector(collector.clone());
            let n = pe.n_pes();
            let mut pending: Vec<usize> = (0..n).flat_map(|d| std::iter::repeat_n(d, 5)).collect();
            let mut i = 0;
            loop {
                while i < pending.len() && c.push(pe, 7, pending[i]).unwrap().is_accepted() {
                    i += 1;
                }
                let active = c.advance(pe, i == pending.len());
                while c.pull().is_some() {}
                if !active {
                    break;
                }
                pe.poll_yield();
            }
            pending.clear();
            let recs = collector.borrow().physical_records().to_vec();
            recs
        })
        .unwrap();
        let grid = Grid::new(2, 2).unwrap();
        let mut saw_local = false;
        let mut saw_nonblock = false;
        let mut saw_progress = false;
        for (src, recs) in traces.iter().enumerate() {
            for r in recs {
                assert_eq!(r.src_pe as usize, src);
                match r.send_type {
                    SendType::LocalSend => {
                        saw_local = true;
                        assert!(
                            grid.same_node(src, r.dst_pe as usize),
                            "local_send crossed nodes: {src}->{}",
                            r.dst_pe
                        );
                    }
                    SendType::NonblockSend | SendType::NonblockProgress => {
                        if r.send_type == SendType::NonblockSend {
                            saw_nonblock = true;
                        } else {
                            saw_progress = true;
                        }
                        assert!(
                            !grid.same_node(src, r.dst_pe as usize),
                            "nonblocking send within a node: {src}->{}",
                            r.dst_pe
                        );
                        // mesh columns: same local index
                        assert_eq!(
                            grid.local_index(src),
                            grid.local_index(r.dst_pe as usize),
                            "mesh column violated"
                        );
                    }
                }
            }
        }
        assert!(saw_local && saw_nonblock && saw_progress);
    }

    #[test]
    fn every_nonblock_send_is_progressed() {
        let grid = Grid::new(2, 2).unwrap();
        let results = all_to_all(grid, ConveyorOptions::default(), 12);
        for (_, stats) in &results {
            assert_eq!(
                stats.nonblock_sends, stats.nonblock_progress,
                "all in-flight buffers must be signalled by termination"
            );
        }
    }

    #[test]
    fn reset_supports_repeated_supersteps() {
        let grid = Grid::new(2, 2).unwrap();
        let results = spmd::run(grid, |pe| {
            let mut c = Conveyor::<u64>::new(pe, ConveyorOptions::default()).unwrap();
            let n = pe.n_pes();
            let mut received = 0u64;
            for round in 0..3u64 {
                let mut sent = 0usize;
                loop {
                    while sent < n && c.push(pe, round, sent).unwrap().is_accepted() {
                        sent += 1;
                    }
                    let active = c.advance(pe, sent == n);
                    while let Some(d) = c.pull() {
                        assert_eq!(d.item, round, "stale message crossed supersteps");
                        received += 1;
                    }
                    if !active {
                        break;
                    }
                    pe.poll_yield();
                }
                assert!(c.is_complete());
                pe.barrier_all();
                c.reset(pe);
                assert!(!c.is_complete());
            }
            received
        })
        .unwrap();
        assert_eq!(results.iter().sum::<u64>(), 3 * 16);
    }

    #[test]
    fn supersteps_reuse_pooled_buffers_without_allocating() {
        // The free-list claim: buffer allocations settle at construction
        // and stay flat across arbitrarily many reset supersteps.
        let grid = Grid::new(2, 2).unwrap();
        let allocs = spmd::run(grid, |pe| {
            let mut c = Conveyor::<u64>::new(pe, ConveyorOptions::default()).unwrap();
            let n = pe.n_pes();
            let mut per_round = Vec::new();
            for round in 0..4u64 {
                let mut sent = 0usize;
                loop {
                    while sent < n && c.push(pe, round, sent).unwrap().is_accepted() {
                        sent += 1;
                    }
                    let active = c.advance(pe, sent == n);
                    while c.pull().is_some() {}
                    if !active {
                        break;
                    }
                    pe.poll_yield();
                }
                per_round.push(c.stats().buffer_allocs);
                pe.barrier_all();
                c.reset(pe);
            }
            per_round
        })
        .unwrap();
        for per_round in &allocs {
            assert!(per_round[0] > 0, "construction takes buffers from the pool");
            for later in &per_round[1..] {
                assert_eq!(
                    *later, per_round[0],
                    "steady-state supersteps must not allocate"
                );
            }
        }
    }

    #[test]
    fn reset_before_termination_panics_world() {
        let grid = Grid::single_node(1).unwrap();
        let err = spmd::run(grid, |pe| {
            let mut c = Conveyor::<u64>::new(pe, ConveyorOptions::default()).unwrap();
            let _ = c.push(pe, 1, 0).unwrap();
            // analyzer: allow(rearm-before-terminate): deliberate negative litmus — the world must panic here
            c.reset(pe); // not terminated: must panic
        })
        .unwrap_err();
        assert!(err.to_string().contains("before the conveyor terminated"));
    }

    #[test]
    fn drain_and_park_reaches_checkpoint_ready() {
        let grid = Grid::new(2, 2).unwrap();
        spmd::run(grid, |pe| {
            let mut c = Conveyor::<u64>::new(pe, ConveyorOptions::default()).unwrap();
            assert!(c.checkpoint_ready(), "a fresh conveyor is a valid cut");
            let n = pe.n_pes();
            for dst in 0..n {
                while !c.push(pe, dst as u64, dst).unwrap().is_accepted() {
                    c.advance(pe, false);
                }
            }
            assert!(!c.checkpoint_ready(), "staged items poison the cut");
            let mut got = 0u64;
            c.drain_and_park(pe, |_| got += 1);
            assert!(c.is_complete());
            assert!(c.checkpoint_ready(), "parked conveyor is a valid cut");
            assert_eq!(got, n as u64, "every delivery reached the sink");
            pe.barrier_all();
        })
        .unwrap();
    }

    #[test]
    fn self_send_takes_full_buffer_path() {
        // §IV-D "Note for self-sends": no bypass; a self-send still incurs
        // the push / deliver / consume / pull copies.
        let grid = Grid::single_node(1).unwrap();
        let results = all_to_all(grid, ConveyorOptions::default(), 1);
        let (_, stats) = &results[0];
        assert_eq!(stats.local_sends, 1, "self-send delivered a real buffer");
        assert!(
            stats.item_copies >= 4,
            "self-send must pay the full copy chain, got {}",
            stats.item_copies
        );
    }

    #[test]
    fn physical_events_drain_at_advance_not_per_event() {
        // Batching contract: push-triggered flushes buffer their physical
        // events; the collector sees them only after the next advance.
        let grid = Grid::single_node(2).unwrap();
        spmd::run(grid, |pe| {
            let collector = PeCollector::new(
                pe.rank(),
                pe.n_pes(),
                pe.grid().pes_per_node(),
                TraceConfig::off().with_physical(),
            )
            .into_shared();
            let mut c = Conveyor::<u64>::new(
                pe,
                ConveyorOptions {
                    capacity: 1,
                    topology: TopologySpec::OneD,
                    ..ConveyorOptions::default()
                },
            )
            .unwrap();
            c.attach_collector(collector.clone());
            if pe.rank() == 0 {
                // capacity 1: the second push flushes the first buffer
                assert!(c.push(pe, 1, 1).unwrap().is_accepted());
                assert!(c.push(pe, 2, 1).unwrap().is_accepted());
                assert!(
                    collector.borrow().physical_records().is_empty(),
                    "flush events stay batched until an advance"
                );
            }
            let mut done = pe.rank() != 0;
            loop {
                let active = c.advance(pe, done);
                while c.pull().is_some() {}
                done = true;
                if !active {
                    break;
                }
                pe.poll_yield();
            }
            if pe.rank() == 0 {
                assert!(
                    !collector.borrow().physical_records().is_empty(),
                    "advance drained the batch"
                );
            }
        })
        .unwrap();
    }

    #[test]
    fn batched_all_to_all_preserves_pairwise_fifo() {
        // The batched surface (push_slice + pull_batch) must deliver the
        // exact per-source streams the per-item surface guarantees.
        for grid in [Grid::single_node(4).unwrap(), Grid::new(2, 2).unwrap()] {
            let per_pair = 150usize;
            let results = spmd::run(grid, |pe| {
                let mut c = Conveyor::<u64>::new(pe, ConveyorOptions::default()).unwrap();
                let n = pe.n_pes();
                let outboxes: Vec<Vec<u64>> = (0..n)
                    .map(|dst| {
                        (0..per_pair)
                            .map(|k| (pe.rank() * 1_000_000 + dst * 1_000 + k) as u64)
                            .collect()
                    })
                    .collect();
                let mut sent = vec![0usize; n];
                let mut received: Vec<Vec<u64>> = vec![Vec::new(); n];
                loop {
                    let mut done = true;
                    for dst in 0..n {
                        if sent[dst] < per_pair {
                            let r = c.push_slice(pe, &outboxes[dst][sent[dst]..], dst).unwrap();
                            sent[dst] += r.accepted;
                            done &= sent[dst] == per_pair;
                        }
                    }
                    let active = c.advance(pe, done);
                    while let Some(batch) = c.pull_batch() {
                        received[batch.src as usize].extend_from_slice(batch.items);
                    }
                    if !active {
                        break;
                    }
                    pe.poll_yield();
                }
                (received, c.stats())
            })
            .unwrap();
            for (me, (received, stats)) in results.iter().enumerate() {
                assert!(stats.batched_pushes > 0, "push_slice path must be counted");
                assert!(stats.batched_pulls > 0, "pull_batch path must be counted");
                assert_eq!(stats.pushed, (grid.n_pes() * per_pair) as u64);
                assert_eq!(stats.pulled, (grid.n_pes() * per_pair) as u64);
                for (src, items) in received.iter().enumerate() {
                    assert_eq!(items.len(), per_pair, "PE {me} from {src}");
                    for (k, item) in items.iter().enumerate() {
                        assert_eq!(
                            *item,
                            (src * 1_000_000 + me * 1_000 + k) as u64,
                            "PE {me} from {src} item {k}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn push_slice_accepts_a_prefix_under_backpressure() {
        // Single PE, capacity 4: two landing cells plus one staged buffer
        // hold exactly 12 items, so a 64-item slice accepts a 12-prefix and
        // reports the refusal; resubmitting the remainder after advances
        // delivers everything in order.
        let grid = Grid::single_node(1).unwrap();
        spmd::run(grid, |pe| {
            let mut c = Conveyor::<u64>::new(
                pe,
                ConveyorOptions {
                    capacity: 4,
                    ..ConveyorOptions::default()
                },
            )
            .unwrap();
            let items: Vec<u64> = (0..64).collect();
            let first = c.push_slice(pe, &items, 0).unwrap();
            assert_eq!(first.accepted, 12, "2 cells + 1 staging buffer of 4");
            assert!(first.retried >= 1, "the 13th item must report backpressure");
            let mut sent = first.accepted;
            let mut got: Vec<u64> = Vec::new();
            loop {
                let active = c.advance(pe, sent == items.len());
                while let Some(b) = c.pull_batch() {
                    got.extend_from_slice(b.items);
                }
                if !active {
                    break;
                }
                if sent < items.len() {
                    sent += c.push_slice(pe, &items[sent..], 0).unwrap().accepted;
                }
                pe.poll_yield();
            }
            assert_eq!(got, items, "batched delivery preserves push order");
        })
        .unwrap();
    }

    #[test]
    fn adaptive_capacity_grows_under_refusals() {
        // Sustained oversized pushes refuse at the initial target; the
        // controller must raise the effective target (toward the physical
        // slab cap) while delivery stays complete and correct.
        let grid = Grid::single_node(1).unwrap();
        spmd::run(grid, |pe| {
            let mut c = Conveyor::<u64>::new(
                pe,
                ConveyorOptions {
                    capacity: 16,
                    adaptive: true,
                    ..ConveyorOptions::default()
                },
            )
            .unwrap();
            assert_eq!(c.capacity(), 16, "configured capacity is reported as-is");
            assert_eq!(c.effective_capacity(), 16);
            let total = 20_000usize;
            let items: Vec<u64> = (0..total as u64).collect();
            let mut sent = 0usize;
            let mut got = 0usize;
            loop {
                if sent < total {
                    sent += c.push_slice(pe, &items[sent..], 0).unwrap().accepted;
                }
                let active = c.advance(pe, sent == total);
                while let Some(b) = c.pull_batch() {
                    got += b.items.len();
                }
                if !active {
                    break;
                }
            }
            assert_eq!(got, total);
            let s = c.stats();
            assert!(s.capacity_grows > 0, "refusals must grow the target: {s:?}");
            assert!(
                c.effective_capacity() > 16,
                "target stuck at {}",
                c.effective_capacity()
            );
        })
        .unwrap();
    }

    #[test]
    fn adaptive_capacity_shrinks_when_the_backlog_piles_up() {
        // Deliver without pulling: the pull backlog blows past 4x the
        // target and the controller backs off toward the floor.
        let grid = Grid::single_node(1).unwrap();
        spmd::run(grid, |pe| {
            let mut c = Conveyor::<u64>::new(
                pe,
                ConveyorOptions {
                    capacity: 64,
                    adaptive: true,
                    ..ConveyorOptions::default()
                },
            )
            .unwrap();
            let items: Vec<u64> = (0..4096).collect();
            let mut sent = 0usize;
            for _ in 0..320 {
                if sent < items.len() {
                    sent += c.push_slice(pe, &items[sent..], 0).unwrap().accepted;
                }
                c.advance(pe, false);
                if c.stats().capacity_shrinks > 0 {
                    break;
                }
            }
            let s = c.stats();
            assert!(s.capacity_shrinks > 0, "backlog must shrink the target: {s:?}");
            assert!(c.effective_capacity() < 64);
            let mut got = 0usize;
            loop {
                let active = c.advance(pe, sent == items.len());
                while let Some(b) = c.pull_batch() {
                    got += b.items.len();
                }
                if !active {
                    break;
                }
                if sent < items.len() {
                    sent += c.push_slice(pe, &items[sent..], 0).unwrap().accepted;
                }
            }
            assert_eq!(got, items.len(), "shrinking must not lose deliveries");
        })
        .unwrap();
    }

    #[test]
    fn batch_buffers_recycle_across_supersteps() {
        // Single-PE self-traffic yields one origin run per round, so the
        // batch free list settles after round 0 and steady-state rounds
        // allocate nothing (mirrors the staging-pool flatness gate).
        let grid = Grid::single_node(1).unwrap();
        spmd::run(grid, |pe| {
            let mut c = Conveyor::<u64>::new(pe, ConveyorOptions::default()).unwrap();
            let mut per_round = Vec::new();
            for _ in 0..4 {
                let items = [1u64, 2, 3];
                let mut sent = 0usize;
                loop {
                    if sent < items.len() {
                        sent += c.push_slice(pe, &items[sent..], 0).unwrap().accepted;
                    }
                    let active = c.advance(pe, sent == items.len());
                    while c.pull_batch().is_some() {}
                    if !active {
                        break;
                    }
                }
                per_round.push(c.stats().batch_allocs);
                c.reset(pe);
            }
            assert!(per_round[0] > 0, "round 0 takes batch buffers");
            for later in &per_round[1..] {
                assert_eq!(
                    *later, per_round[0],
                    "steady-state rounds must not allocate batch buffers"
                );
            }
        })
        .unwrap();
    }

    #[test]
    fn per_item_and_batched_pulls_interoperate() {
        // pull() nibbles the front of the batch queue; pull_batch() then
        // hands out the remainder of that run — no item lost or reordered.
        let grid = Grid::single_node(1).unwrap();
        spmd::run(grid, |pe| {
            let mut c = Conveyor::<u64>::new(pe, ConveyorOptions::default()).unwrap();
            let items: Vec<u64> = (0..10).collect();
            assert_eq!(c.push_slice(pe, &items, 0).unwrap().accepted, 10);
            let mut got: Vec<u64> = Vec::new();
            loop {
                let active = c.advance(pe, true);
                if let Some(d) = c.pull() {
                    got.push(d.item);
                }
                while let Some(b) = c.pull_batch() {
                    got.extend_from_slice(b.items);
                }
                if !active {
                    break;
                }
            }
            assert_eq!(got, items, "mixed pull surfaces must interleave cleanly");
            assert_eq!(c.pending_pulls(), 0);
        })
        .unwrap();
    }
}
