//! The exchange vocabulary: everything a conveyor hands across its API
//! boundary.
//!
//! One module owns every type a caller sees when items enter
//! ([`PushOutcome`], [`PushReport`]) or leave ([`Delivery`],
//! [`BatchDelivery`]) a [`Conveyor`](crate::Conveyor), plus the wire-level
//! [`Envelope`] and the [`ExchangeMode`] knob that selects which surface the
//! actor layer drives. Re-exported from the crate root so downstream code
//! never has to reach into `convey`.

/// What travels in a buffer: the item plus enough routing to survive a
/// relay hop.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Envelope<T> {
    /// Final destination PE.
    pub final_dst: u32,
    /// PE that pushed the item.
    pub origin: u32,
    /// The payload.
    pub item: T,
}

/// Result of a single-item [`push`](crate::Conveyor::push).
///
/// `Retry` is the conveyors-style refusal: the item was *not* taken, the
/// caller must `advance` and try again. Batched callers never see this —
/// [`push_slice`](crate::Conveyor::push_slice) folds refusals into
/// [`PushReport::accepted`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "a refused push must be retried after advance()"]
pub enum PushOutcome {
    /// The item was staged for delivery.
    Accepted,
    /// Buffers were full; the item was refused and must be re-pushed.
    Retry,
}

impl PushOutcome {
    /// `true` if the item was taken.
    pub fn is_accepted(self) -> bool {
        matches!(self, PushOutcome::Accepted)
    }
}

/// Result of a batched [`push_slice`](crate::Conveyor::push_slice): how far
/// the slice got, instead of a per-item accept/refuse verdict.
///
/// `accepted` is always a prefix length — items `[0, accepted)` of the
/// submitted slice were staged in submission order, so the caller resubmits
/// `&items[report.accepted..]` after an `advance`. This folds the old
/// `PushOutcome::Retry` loop into plain arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[must_use = "check `accepted` — a partial push must be resubmitted after advance()"]
pub struct PushReport {
    /// Items staged for delivery (a prefix of the submitted slice).
    pub accepted: usize,
    /// Refusal events hit while staging (buffer full after a flush
    /// attempt); mirrors `ConveyorStats::push_refusals` for this call.
    pub retried: u64,
}

impl PushReport {
    /// `true` if every submitted item was staged.
    pub fn is_complete(self, submitted: usize) -> bool {
        self.accepted == submitted
    }
}

/// One delivered item, tagged with the PE that pushed it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery<T> {
    /// Origin PE.
    pub src: u32,
    /// The payload.
    pub item: T,
}

/// A zero-copy batch of delivered items from a single origin PE.
///
/// Borrowed from the conveyor's delivery queue: the slice is valid until
/// the next `pull`/`pull_batch`/`advance` call. Items appear in push order
/// (pairwise FIFO per origin, as with per-item `pull`).
#[derive(Debug, PartialEq, Eq)]
pub struct BatchDelivery<'a, T> {
    /// Origin PE for every item in the batch.
    pub src: u32,
    /// The payloads, in arrival order.
    pub items: &'a [T],
}

/// Which exchange surface the actor runtime drives.
///
/// The conveyor itself always supports both surfaces; this knob only
/// selects how the selector moves items (batched `push_slice`/`pull_batch`
/// vs. the legacy per-item `push`/`pull`). Application-observable behavior
/// is identical — the equivalence suite proves bit-identical logical
/// traces across both modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExchangeMode {
    /// Amortize the SPSC state-word protocol over whole slices and drain
    /// deliveries as zero-copy per-source batches.
    #[default]
    Batched,
    /// One state-word round trip per item (the pre-batching surface).
    PerItem,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_outcome_accepts() {
        assert!(PushOutcome::Accepted.is_accepted());
        assert!(!PushOutcome::Retry.is_accepted());
    }

    #[test]
    fn push_report_tracks_completion() {
        assert!(PushReport { accepted: 3, retried: 0 }.is_complete(3));
        assert!(!PushReport { accepted: 2, retried: 1 }.is_complete(3));
        assert!(PushReport::default().is_complete(0));
    }

    #[test]
    fn exchange_mode_defaults_to_batched() {
        assert_eq!(ExchangeMode::default(), ExchangeMode::Batched);
    }
}
