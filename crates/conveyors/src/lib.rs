//! # fabsp-conveyors — message aggregation with routed topologies
//!
//! A Rust reproduction of the Conveyors library (Maley & DeVinney, IA³'19)
//! as the ActorProf paper uses it: the aggregation substrate under
//! HClib-Actor that turns billions of 8–32-byte messages into full network
//! buffers.
//!
//! ## Programming model
//!
//! A [`Conveyor`] moves fixed-size items between PEs with the classic
//! three-call protocol:
//!
//! - [`push`](Conveyor::push) — enqueue an item for a destination PE. May
//!   *refuse* (return the item back) when aggregation buffers are full; the
//!   caller must [`advance`](Conveyor::advance) and retry. (HClib-Actor
//!   hides exactly this error handling from users — §I of the paper.)
//! - [`pull`](Conveyor::pull) — take a delivered item, if any.
//! - [`advance`](Conveyor::advance) — make progress: consume incoming
//!   buffers, relay multi-hop traffic, flush full buffers, complete
//!   non-blocking sends. Returns `false` once the conveyor has terminated
//!   (all PEs signalled done and every pushed item was pulled).
//!
//! The batched surface amortizes the per-item protocol:
//! [`push_slice`](Conveyor::push_slice) stages a whole slice toward one
//! destination and reports how far it got ([`PushReport`]), and
//! [`pull_batch`](Conveyor::pull_batch) hands out every queued item from
//! one origin run as a zero-copy [`BatchDelivery`] slice. `push`/`pull`
//! remain as thin one-item wrappers over the same machinery, so both
//! surfaces interoperate freely and deliver identical orderings.
//!
//! ## Topologies and send classes
//!
//! Following §IV-D: a single node uses a **1D linear** topology (direct
//! links, all `local_send`); multiple nodes use a **2D mesh** where a PE is
//! the grid point (node, local-index), `local_send` runs along the *row*
//! (same node, via `shmem_ptr` + memcpy) and `nonblock_send` along the
//! *column* (same local index across nodes, via `shmem_putmem_nbi`);
//! off-row/off-column traffic takes two hops (row first, then column).
//! Completion of non-blocking sends is `nonblock_progress`: one
//! `shmem_quiet` followed by a signalling put per destination.
//!
//! These three call classes are precisely what ActorProf's physical trace
//! records (§III-C), via an optional [`actorprof_trace::SharedCollector`].
//!
//! ## Example
//!
//! ```
//! use fabsp_conveyors::{Conveyor, ConveyorOptions};
//! use fabsp_shmem::{spmd, Grid};
//!
//! // 2 PEs bounce one message each to the other.
//! let totals = spmd::run(Grid::single_node(2).unwrap(), |pe| {
//!     let mut c = Conveyor::<u64>::new(pe, ConveyorOptions::default()).unwrap();
//!     let other = 1 - pe.rank();
//!     let mut sent = false;
//!     let mut got = 0u64;
//!     loop {
//!         if !sent && c.push(pe, 40 + pe.rank() as u64, other).unwrap().is_accepted() {
//!             sent = true;
//!         }
//!         let active = c.advance(pe, sent);
//!         while let Some(delivery) = c.pull() {
//!             got = delivery.item;
//!         }
//!         if !active {
//!             break;
//!         }
//!         pe.poll_yield();
//!     }
//!     got
//! })
//! .unwrap();
//! assert_eq!(totals, vec![41, 40]);
//! ```
//!
//! ## Self-sends
//!
//! Self-sends take the full buffer path — no bypass — matching the paper's
//! "Note for self-sends": algorithms may rely on ordered arrival, so
//! Conveyors never short-circuits, at the cost of several extra memcpys per
//! message (observable in [`ConveyorStats::item_copies`]).

// Zero unsafe today; keep it that way by construction.
#![forbid(unsafe_code)]

pub mod convey;
pub mod error;
pub mod exchange;
pub mod stats;
pub mod topology;

pub use convey::{Conveyor, ConveyorOptions};
pub use error::ConveyorError;
pub use exchange::{
    BatchDelivery, Delivery, Envelope, ExchangeMode, PushOutcome, PushReport,
};
pub use stats::ConveyorStats;
pub use topology::{LinkKind, Topology, TopologySpec};
