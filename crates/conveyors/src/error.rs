//! Conveyor error types.

/// Errors surfaced by conveyor construction and operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConveyorError {
    /// Buffer capacity must hold at least one item.
    ZeroCapacity,
    /// A destination PE outside the grid.
    InvalidDestination { dst: usize, n_pes: usize },
    /// `push` after this PE signalled done.
    PushAfterDone,
    /// Underlying symmetric-memory failure (a bug in the conveyor itself).
    Shmem(String),
}

impl std::fmt::Display for ConveyorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConveyorError::ZeroCapacity => write!(f, "conveyor capacity must be at least 1 item"),
            ConveyorError::InvalidDestination { dst, n_pes } => {
                write!(f, "destination PE {dst} out of range ({n_pes} PEs)")
            }
            ConveyorError::PushAfterDone => {
                write!(f, "push called after done() was signalled on this PE")
            }
            ConveyorError::Shmem(m) => write!(f, "symmetric memory error: {m}"),
        }
    }
}

impl std::error::Error for ConveyorError {}

impl From<fabsp_shmem::ShmemError> for ConveyorError {
    fn from(e: fabsp_shmem::ShmemError) -> Self {
        ConveyorError::Shmem(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(ConveyorError::ZeroCapacity.to_string().contains("at least 1"));
        assert!(ConveyorError::InvalidDestination { dst: 7, n_pes: 4 }
            .to_string()
            .contains("PE 7"));
        assert!(ConveyorError::PushAfterDone.to_string().contains("done"));
    }

    #[test]
    fn from_shmem_error() {
        let e: ConveyorError = fabsp_shmem::ShmemError::EmptyGrid.into();
        assert!(matches!(e, ConveyorError::Shmem(_)));
    }
}
