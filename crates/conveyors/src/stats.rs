//! Per-PE conveyor operation statistics.
//!
//! These counters exist independently of ActorProf tracing: they are the
//! conveyor's own instrumentation, cheap enough to keep always-on, and the
//! basis for tests of structural claims (e.g. the self-send memcpy count
//! from §IV-D's "Note for self-sends").

/// Counters for one PE's view of one conveyor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConveyorStats {
    /// Items accepted by `push` on this PE.
    pub pushed: u64,
    /// Items handed to the user by `pull` on this PE.
    pub pulled: u64,
    /// `push` attempts refused because buffers were full.
    pub push_refusals: u64,
    /// Items this PE forwarded on behalf of others (mesh second hop).
    pub relayed: u64,
    /// Buffers delivered by `local_send` (same-node memcpy).
    pub local_sends: u64,
    /// Buffers initiated by `nonblock_send` (`shmem_putmem_nbi`).
    pub nonblock_sends: u64,
    /// `nonblock_progress` signalling puts issued (one per destination per
    /// quiet).
    pub nonblock_progress: u64,
    /// `shmem_quiet` fences issued.
    pub quiets: u64,
    /// Item-granularity copies performed (push staging, buffer delivery,
    /// relay re-staging, pull hand-off, and the capture+apply pair of a
    /// non-blocking put). This is the §IV-D memcpy count.
    pub item_copies: u64,
    /// Calls to `advance`.
    pub advances: u64,
    /// Relay-link parks forced by chaos injection
    /// ([`Conveyor::inject_chaos`](crate::Conveyor::inject_chaos)); always
    /// zero in production.
    pub forced_parks: u64,
    /// Staging/scratch buffers allocated from the conveyor's pool. Settles
    /// at construction and stays flat across supersteps — the free-list
    /// keeps routed double-buffering from allocating per superstep.
    pub buffer_allocs: u64,
    /// Multi-item `push_slice` calls (each may stage many items and flush
    /// several slabs).
    pub batched_pushes: u64,
    /// `pull_batch` calls that handed out a zero-copy batch.
    pub batched_pulls: u64,
    /// Batch backing buffers allocated for the delivery queue. Recycled
    /// through a free list like `buffer_allocs`, but sized by how many
    /// origin runs are simultaneously queued, so it settles with traffic
    /// rather than at construction.
    pub batch_allocs: u64,
    /// Adaptive-capacity controller decisions that grew the occupancy
    /// target (always zero with `adaptive` off).
    pub capacity_grows: u64,
    /// Adaptive-capacity controller decisions that shrank the occupancy
    /// target (always zero with `adaptive` off).
    pub capacity_shrinks: u64,
}

impl ConveyorStats {
    /// Buffers sent by any mechanism.
    pub fn buffers_sent(&self) -> u64 {
        self.local_sends + self.nonblock_sends
    }

    /// Merge another PE's stats into this one (for world-wide aggregates).
    pub fn merge(&mut self, other: &ConveyorStats) {
        self.pushed += other.pushed;
        self.pulled += other.pulled;
        self.push_refusals += other.push_refusals;
        self.relayed += other.relayed;
        self.local_sends += other.local_sends;
        self.nonblock_sends += other.nonblock_sends;
        self.nonblock_progress += other.nonblock_progress;
        self.quiets += other.quiets;
        self.item_copies += other.item_copies;
        self.advances += other.advances;
        self.forced_parks += other.forced_parks;
        self.buffer_allocs += other.buffer_allocs;
        self.batched_pushes += other.batched_pushes;
        self.batched_pulls += other.batched_pulls;
        self.batch_allocs += other.batch_allocs;
        self.capacity_grows += other.capacity_grows;
        self.capacity_shrinks += other.capacity_shrinks;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_fields() {
        let mut a = ConveyorStats {
            pushed: 1,
            pulled: 2,
            local_sends: 3,
            ..Default::default()
        };
        let b = ConveyorStats {
            pushed: 10,
            pulled: 20,
            nonblock_sends: 5,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.pushed, 11);
        assert_eq!(a.pulled, 22);
        assert_eq!(a.buffers_sent(), 8);
    }
}
