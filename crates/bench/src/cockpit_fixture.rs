//! Deterministic cockpit/dashboard fixtures, shared between the golden
//! tests (`tests/viz_golden.rs`) and the CI smoke binary
//! (`bin/cockpit_smoke.rs`) so both gate on the *same* bytes.
//!
//! Everything here is hand-stamped: counter values, span cycle ranges,
//! frame `at_cycles`, and governor samples are fixed constants, and phase
//! attribution goes through [`fixture_site`] instead of the runtime's
//! first-caller-wins registry. The renders are therefore pure functions —
//! byte-stable across machines, thread schedules, and test orderings.

use std::time::Duration;

use actorprof::{Counter, Frame, Gauge, Hist, Phase, Snapshot, TelemetryRegistry};
use actorprof_viz::ascii;
use actorprof_viz::cockpit::{Cockpit, CockpitConfig};
use fabsp_telemetry::{FlightDump, FlightRing, GovernorSample, PhaseSite};

/// Pinned phase → `file:line` attribution for golden renders.
pub fn fixture_site(phase: Phase) -> Option<PhaseSite> {
    Some(match phase {
        Phase::Superstep => ("crates/actor/src/selector.rs", 100),
        Phase::Advance => ("crates/conveyors/src/convey.rs", 200),
        Phase::Quiet => ("crates/shmem/src/quiet.rs", 300),
        Phase::RelayHop => ("crates/conveyors/src/relay.rs", 400),
    })
}

fn tick(
    cockpit: &mut Cockpit,
    reg: &TelemetryRegistry,
    seq: u64,
    at_cycles: u64,
    prev: &mut Snapshot,
    governor: Option<GovernorSample>,
) -> String {
    let total = reg.snapshot();
    let frame = Frame {
        seq,
        at_cycles,
        delta: total.diff(prev),
        total: total.clone(),
        governor,
    };
    *prev = total;
    cockpit.render(&frame)
}

/// Three cockpit ticks of a synthetic 4-PE run: ramp-up, steady state,
/// and a tick where the governor has ratcheted back toward full fidelity.
pub fn cockpit_live() -> String {
    let reg = TelemetryRegistry::new(4);
    let mut cockpit = Cockpit::new(CockpitConfig::plain(fixture_site));
    let half = fabsp_hwpc::NOMINAL_HZ / 2;
    let mut prev = Snapshot::default();
    let mut out = String::new();

    // tick 0: uneven ramp-up, first superstep under way, over budget at
    // the conservative initial stride.
    for pe in 0..4 {
        reg.pe(pe).add(Counter::ActorSends, 120 * (pe as u64 + 1));
    }
    reg.pe(3).gauge_set(Gauge::ConveyorBufferedItems, 12);
    reg.pe(0).gauge_set(Gauge::ConveyorPullBacklog, 3);
    reg.pe(0).flight_span(Phase::Superstep, 1_000, 50_000); // 20.0us
    reg.pe(1).flight_span(Phase::Advance, 2_000, 26_500); // 10.0us
    reg.pe(2).flight_span(Phase::Quiet, 3_000, 10_350); // 3.0us
    out.push_str(&tick(
        &mut cockpit,
        &reg,
        0,
        2 * half,
        &mut prev,
        Some(GovernorSample {
            overhead_pct: 7.50,
            stride: 128,
            cadence: Duration::from_millis(4),
            within_budget: false,
        }),
    ));

    // tick 1: half a nominal second later — true rates kick in, the
    // governor has backed under budget.
    reg.pe(0).add(Counter::ActorSends, 600);
    reg.pe(1).add(Counter::ActorSends, 300);
    reg.pe(2).add(Counter::ActorSends, 200);
    reg.pe(3).add(Counter::ActorSends, 100);
    reg.pe(3).gauge_set(Gauge::ConveyorBufferedItems, 4);
    reg.pe(1).flight_span(Phase::Superstep, 60_000, 109_000); // 20.0us
    reg.pe(0).flight_span(Phase::Advance, 60_000, 84_500); // 10.0us
    out.push_str(&tick(
        &mut cockpit,
        &reg,
        1,
        3 * half,
        &mut prev,
        Some(GovernorSample {
            overhead_pct: 4.10,
            stride: 64,
            cadence: Duration::from_millis(2),
            within_budget: true,
        }),
    ));

    // tick 2: second superstep reached, a net retry shows up, fidelity
    // ratcheted finer again.
    reg.pe(0).add(Counter::ActorSends, 150);
    reg.pe(1).add(Counter::ActorSends, 450);
    reg.pe(1).add(Counter::NetRetries, 2);
    reg.pe(0).flight_span(Phase::Superstep, 200_000, 249_000); // 20.0us
    reg.pe(3).flight_span(Phase::RelayHop, 210_000, 212_450); // 1.0us
    out.push_str(&tick(
        &mut cockpit,
        &reg,
        2,
        4 * half,
        &mut prev,
        Some(GovernorSample {
            overhead_pct: 2.30,
            stride: 32,
            cadence: Duration::from_millis(1),
            within_budget: true,
        }),
    ));
    out
}

/// A two-PE flight-recorder replay: pe0 overflows its 4-slot ring (the
/// "older dropped" path), pe1 supplies the earliest stamp both dumps are
/// rebased against.
pub fn cockpit_replay() -> String {
    let r0 = FlightRing::new(4);
    r0.span(Phase::Superstep, 2_450_000, 7_350_000); // evicted by the 5th
    r0.span(Phase::Advance, 7_350_000, 9_800_000);
    r0.note(Counter::ConveyorPushRetries, 3, 12_250_000);
    r0.span(Phase::Quiet, 12_250_000, 12_495_000);
    r0.span(Phase::Superstep, 14_700_000, 19_600_000);
    let d0 = FlightDump::parse(&r0.to_json(0)).expect("pe0 dump");
    let r1 = FlightRing::new(4);
    r1.span(Phase::Advance, 4_900_000, 7_350_000);
    r1.note(Counter::NetRetries, 1, 8_575_000);
    let d1 = FlightDump::parse(&r1.to_json(1)).expect("pe1 dump");
    let cockpit = Cockpit::new(CockpitConfig::plain(fixture_site));
    cockpit.render_replay(&[d0, d1])
}

/// Two consecutive `ascii::dashboard_since` frames: the first renders raw
/// deltas (no previous stamp), the second true per-interval rates.
pub fn dashboard_frames() -> String {
    let reg = TelemetryRegistry::new(2);
    reg.pe(0).add(Counter::ActorSends, 300);
    reg.pe(1).add(Counter::ActorSends, 150);
    reg.pe(0).add(Counter::ShmemPuts, 40);
    reg.pe(0).gauge_set(Gauge::ConveyorBufferedItems, 6);
    reg.pe(1).gauge_set(Gauge::ConveyorPullBacklog, 2);
    reg.pe(0).observe(Hist::AdvanceCycles, 1_000);
    let first = reg.snapshot();
    let f0 = Frame {
        seq: 0,
        at_cycles: fabsp_hwpc::NOMINAL_HZ,
        delta: first.diff(&Snapshot::default()),
        total: first.clone(),
        governor: None,
    };
    let mut out = ascii::dashboard_since(&f0, None);

    // Half a nominal second later: 490 sends → 980/s, 100 puts → 200/s.
    reg.pe(0).add(Counter::ActorSends, 350);
    reg.pe(1).add(Counter::ActorSends, 140);
    reg.pe(0).add(Counter::ShmemPuts, 100);
    reg.pe(1).add(Counter::ConveyorPushRetries, 7);
    reg.pe(0).observe(Hist::AdvanceCycles, 2_000);
    let total = reg.snapshot();
    let f1 = Frame {
        seq: 1,
        at_cycles: fabsp_hwpc::NOMINAL_HZ + fabsp_hwpc::NOMINAL_HZ / 2,
        delta: total.diff(&first),
        total,
        governor: None,
    };
    out.push_str(&ascii::dashboard_since(&f1, Some(f0.at_cycles)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_pure_functions() {
        assert_eq!(cockpit_live(), cockpit_live());
        assert_eq!(cockpit_replay(), cockpit_replay());
        assert_eq!(dashboard_frames(), dashboard_frames());
        assert!(!cockpit_live().contains('\x1b'), "plain mode, no ANSI");
    }
}
