//! Reusable figure builders — each `fig*` binary is a thin wrapper around
//! one of these, so the paper's 1-node/2-node figure pairs share code.

use actorprof::overall::OverallSummary;
use actorprof::papi::PapiSeries;
use actorprof::stats::Imbalance;
use actorprof::{Matrix, Quartiles};
use actorprof_trace::SendType;
use actorprof_viz::{ascii, bar, heatmap, stacked, violin};
use fabsp_apps::triangle::DistKind;
use fabsp_shmem::Grid;

use crate::experiment::{figure_dir, run_traced_tc, FigureCtx};

/// Figs 3–4: logical-trace heatmaps, Cyclic vs Range, for one grid.
pub fn logical_heatmap_figure(ctx: &FigureCtx, figure: &str, grid: Grid, node_label: &str) {
    let dir = figure_dir(figure);
    for dist in [DistKind::Cyclic, DistKind::RangeByNnz] {
        let outcome = run_traced_tc(ctx.l, grid, dist);
        let m = outcome.bundle.logical_matrix().expect("logical trace");
        let title = format!("Logical trace, {node_label}, {}", dist.label());
        let spec = heatmap::HeatmapSpec::titled(&title);
        let file = dir.join(format!(
            "logical_{}_{}.svg",
            node_label.replace(' ', ""),
            if dist == DistKind::Cyclic { "cyclic" } else { "range" }
        ));
        heatmap::render(&m, &spec).save(&file).expect("write svg");
        println!("\n{}", ascii::heatmap(&m, &title));
        describe_logical(&m, dist);
        if grid.nodes() > 1 {
            // node-level hotspot view (§III-D's "hotspots of node")
            let nm = m.aggregate_nodes(grid.pes_per_node());
            println!("{}", ascii::heatmap(&nm, "  node-aggregated sends"));
        }
        println!("svg: {}", file.display());
    }
}

fn describe_logical(m: &Matrix, dist: DistKind) {
    let sends = m.row_totals();
    let recvs = m.col_totals();
    let si = Imbalance::of(&sends);
    let ri = Imbalance::of(&recvs);
    println!(
        "observations [{}]: send max/mean {:.2} (PE{}), recv max/mean {:.2} (PE{})",
        dist.label(),
        si.max_over_mean,
        si.argmax,
        ri.max_over_mean,
        ri.argmax
    );
    match dist {
        DistKind::Cyclic => {
            // "PE0 incurs more communication with a specific set of PEs
            // (~3-4 in number)": count PE0's partners above half its max.
            let row0 = m.row(0);
            let max0 = row0.iter().copied().max().unwrap_or(0);
            let hot_partners = row0.iter().filter(|&&v| v * 2 >= max0 && v > 0).count();
            println!("  PE0 hot partners (>= half of its max): {hot_partners}");
        }
        DistKind::RangeByNnz => {
            println!(
                "  lower-triangular mass: {:.1}% (the (L) observation)",
                m.lower_triangular_fraction() * 100.0
            );
            let monotone = recvs.windows(2).filter(|w| w[1] <= w[0]).count();
            println!(
                "  recv totals monotonically decreasing at {}/{} steps",
                monotone,
                recvs.len() - 1
            );
        }
    }
}

/// Figs 5/7: quartile violins of per-PE totals, all four configurations.
/// `physical = true` selects buffer counts (Fig 7) instead of message
/// counts (Fig 5).
pub fn violin_figure(ctx: &FigureCtx, figure: &str, physical: bool) {
    let dir = figure_dir(figure);
    for (grid, node_label) in [(ctx.one_node, "1node"), (ctx.two_node, "2node")] {
        let mut series = Vec::new();
        let mut maxima = Vec::new();
        for dist in [DistKind::Cyclic, DistKind::RangeByNnz] {
            let outcome = run_traced_tc(ctx.l, grid, dist);
            let m = if physical {
                outcome.bundle.physical_matrix(None).expect("physical trace")
            } else {
                outcome.bundle.logical_matrix().expect("logical trace")
            };
            let tag = if dist == DistKind::Cyclic { "cyclic" } else { "range" };
            let sends = m.row_totals();
            let recvs = m.col_totals();
            maxima.push((
                tag,
                *sends.iter().max().unwrap_or(&0),
                *recvs.iter().max().unwrap_or(&0),
            ));
            series.push(violin::ViolinSeries::new(format!("{tag} send"), sends));
            series.push(violin::ViolinSeries::new(format!("{tag} recv"), recvs));
        }
        let what = if physical { "Physical" } else { "Logical" };
        let title = format!("{what} trace quartiles, {node_label}");
        let file = dir.join(format!(
            "{}_violin_{node_label}.svg",
            what.to_lowercase()
        ));
        violin::render(&series, &title).save(&file).expect("write svg");
        println!("\n{title}");
        let ascii_series: Vec<(String, Vec<u64>)> = series
            .iter()
            .map(|s| (s.label.clone(), s.values.clone()))
            .collect();
        print!("{}", ascii::violin(&ascii_series, ""));
        for (tag, smax, rmax) in &maxima {
            println!("  {tag}: max send {smax}, max recv {rmax}");
        }
        if maxima.len() == 2 {
            let (c, r) = (&maxima[0], &maxima[1]);
            println!(
                "  cyclic/range ratios: sends {:.2}x, recvs {:.2}x",
                c.1 as f64 / r.1.max(1) as f64,
                c.2 as f64 / r.2.max(1) as f64
            );
        }
        println!("svg: {}", file.display());
        for s in &series {
            let q = Quartiles::of(&s.values);
            println!(
                "  {:<13} min {:>8.0}  q1 {:>8.0}  med {:>8.0}  q3 {:>8.0}  max {:>8.0}",
                s.label, q.min, q.q1, q.median, q.q3, q.max
            );
        }
    }
}

/// Fig 6: verify the (L) observation structurally.
pub fn l_observation_figure(ctx: &FigureCtx, figure: &str) {
    let dir = figure_dir(figure);
    let outcome = run_traced_tc(ctx.l, ctx.one_node, DistKind::RangeByNnz);
    let m = outcome.bundle.logical_matrix().expect("logical trace");
    println!(
        "lower-triangular fraction of 1D Range send matrix: {:.4}",
        m.lower_triangular_fraction()
    );
    assert!(
        m.is_lower_triangular(),
        "(L) observation violated: a PE sent above the diagonal"
    );
    let recvs = m.col_totals();
    let decreasing_steps = recvs.windows(2).filter(|w| w[1] <= w[0]).count();
    println!(
        "recv totals: {:?}\nmonotonically decreasing at {decreasing_steps}/{} steps",
        recvs,
        recvs.len() - 1
    );
    let file = dir.join("l_observation.svg");
    heatmap::render(
        &m,
        &heatmap::HeatmapSpec::titled("(L) observation: 1D Range sends"),
    )
    .save(&file)
    .expect("write svg");
    println!("svg: {}", file.display());
    println!("PASS: every send under 1D Range targets an equal-or-lower-ranked PE");
}

/// Figs 8–9: physical-trace heatmaps split by send class, for one grid.
pub fn physical_heatmap_figure(ctx: &FigureCtx, figure: &str, grid: Grid, node_label: &str) {
    let dir = figure_dir(figure);
    for dist in [DistKind::Cyclic, DistKind::RangeByNnz] {
        let outcome = run_traced_tc(ctx.l, grid, dist);
        let tag = if dist == DistKind::Cyclic { "cyclic" } else { "range" };
        for (kind, kind_label) in [
            (None, "all"),
            (Some(SendType::LocalSend), "local_send"),
            (Some(SendType::NonblockSend), "nonblock_send"),
        ] {
            let m = outcome.bundle.physical_matrix(kind).expect("physical trace");
            if kind.is_some() && m.total() == 0 {
                continue; // e.g. no nonblock sends on one node
            }
            let title = format!("Physical trace ({kind_label}), {node_label}, {}", dist.label());
            let file = dir.join(format!("physical_{node_label}_{tag}_{kind_label}.svg"));
            heatmap::render(&m, &heatmap::HeatmapSpec::titled(&title))
                .save(&file)
                .expect("write svg");
            if kind.is_none() {
                println!("\n{}", ascii::heatmap(&m, &title));
            }
            println!("svg: {}", file.display());
        }
        // topology claims of §IV-D
        let local = outcome
            .bundle
            .physical_matrix(Some(SendType::LocalSend))
            .unwrap();
        let nonblock = outcome
            .bundle
            .physical_matrix(Some(SendType::NonblockSend))
            .unwrap();
        verify_topology(&local, &nonblock, grid, tag);
    }
}

fn verify_topology(local: &Matrix, nonblock: &Matrix, grid: Grid, tag: &str) {
    for src in 0..grid.n_pes() {
        for dst in 0..grid.n_pes() {
            if local.get(src, dst) > 0 {
                assert!(
                    grid.same_node(src, dst),
                    "local_send crossed nodes {src}->{dst}"
                );
            }
            if nonblock.get(src, dst) > 0 {
                assert!(
                    !grid.same_node(src, dst),
                    "nonblock_send within node {src}->{dst}"
                );
                assert_eq!(
                    grid.local_index(src),
                    grid.local_index(dst),
                    "mesh column violated {src}->{dst}"
                );
            }
        }
    }
    println!(
        "[{tag}] topology verified: local_send = rows (same node), \
         nonblock_send = columns (same local index); buffers: {} local, {} nonblock",
        local.total(),
        nonblock.total()
    );
}

/// Figs 10–11: PAPI_TOT_INS per PE bar graphs, for one grid.
pub fn papi_figure(ctx: &FigureCtx, figure: &str, grid: Grid, node_label: &str) {
    let dir = figure_dir(figure);
    for dist in [DistKind::Cyclic, DistKind::RangeByNnz] {
        let outcome = run_traced_tc(ctx.l, grid, dist);
        let series =
            PapiSeries::from_bundle(&outcome.bundle, fabsp_hwpc::Event::TotIns).expect("papi");
        let tag = if dist == DistKind::Cyclic { "cyclic" } else { "range" };
        let title = format!("PAPI_TOT_INS vs PE, {node_label}, {}", dist.label());
        let spec = bar::BarSpec {
            title: title.clone(),
            y_label: "PAPI_TOT_INS".into(),
            log: true,
            ..Default::default()
        };
        let file = dir.join(format!("papi_totins_{node_label}_{tag}.svg"));
        bar::render(&series.per_pe, &spec).save(&file).expect("write svg");
        print!("{}", ascii::bars(&series.per_pe, &title, true));
        println!(
            "imbalance: max/mean {:.2} on PE{}; dynamic range 10^{:.1}",
            series.imbalance.max_over_mean,
            series.imbalance.argmax,
            series.dynamic_range_log10()
        );
        println!("svg: {}", file.display());
    }
}

/// Figs 12–13: overall stacked bars + the paper's fraction statements.
///
/// Note on the "~2x total time" claim: the paper measured wall-clock on
/// real parallel nodes, where the *most loaded PE* sets the finish line.
/// This reproduction multiplexes all PEs onto however many cores the host
/// has; on a single core, wall-clock equals aggregate work and is
/// distribution-independent. The per-PE critical path is still measured —
/// it is the max per-PE user-region work — so the figure reports both the
/// raw wall-clock cycles and the **modeled parallel critical path**, whose
/// cyclic/range ratio is the paper's speedup.
pub fn overall_figure(ctx: &FigureCtx, figure: &str, grid: Grid, node_label: &str) {
    let dir = figure_dir(figure);
    let mut summaries = Vec::new();
    let mut critical_paths = Vec::new();
    for dist in [DistKind::Cyclic, DistKind::RangeByNnz] {
        let outcome = run_traced_tc(ctx.l, grid, dist);
        let records = outcome.bundle.overall_records().expect("overall");
        let tag = if dist == DistKind::Cyclic { "cyclic" } else { "range" };
        for (mode, mode_tag) in [
            (stacked::StackedMode::Absolute, "absolute"),
            (stacked::StackedMode::Relative, "relative"),
        ] {
            let title = format!("Overall, {node_label}, {} ({mode_tag})", dist.label());
            let file = dir.join(format!("overall_{node_label}_{tag}_{mode_tag}.svg"));
            stacked::render(&records, mode, &title)
                .save(&file)
                .expect("write svg");
            println!("svg: {}", file.display());
        }
        print!("{}", ascii::stacked(&records, &format!("{node_label} {tag}")));
        let summary = OverallSummary::of(&records);
        println!(
            "[{tag}] MAIN {:.1}% | COMM {:.1}% | PROC {:.1}% — bottleneck {} — max T_TOTAL {} cycles",
            summary.main.fraction * 100.0,
            summary.comm.fraction * 100.0,
            summary.proc.fraction * 100.0,
            summary.bottleneck,
            summary.max_total_cycles
        );
        summaries.push((tag, summary));

        // modeled parallel critical path: the most loaded PE's user-region
        // instruction count (sends constructed + messages handled)
        let series =
            PapiSeries::from_bundle(&outcome.bundle, fabsp_hwpc::Event::TotIns).expect("papi");
        let critical = series.per_pe.iter().copied().max().unwrap_or(0);
        let user_total: u64 = series.per_pe.iter().sum();
        println!(
            "[{tag}] modeled critical path: {critical} user-region instructions on PE{} \
             ({}x the per-PE average)",
            series.imbalance.argmax,
            format_ratio(critical as f64 * grid.n_pes() as f64 / user_total.max(1) as f64),
        );
        critical_paths.push((tag, critical));
    }
    if summaries.len() == 2 {
        let wall_speedup = summaries[1].1.speedup_over(&summaries[0].1);
        println!(
            "1D Range over 1D Cyclic — wall-clock (cores-limited): {:.2}x; \
             modeled parallel critical path: {:.2}x (paper: ~2x at scale 16)",
            wall_speedup,
            critical_paths[0].1 as f64 / critical_paths[1].1.max(1) as f64
        );
    }
}

fn format_ratio(r: f64) -> String {
    format!("{r:.2}")
}
