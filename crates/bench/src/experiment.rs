//! Shared experiment harness for the figure regenerators.

use std::path::PathBuf;
use std::sync::OnceLock;

use actorprof_trace::TraceConfig;
use fabsp_apps::triangle::{count_triangles, DistKind, TriangleConfig, TriangleOutcome};
use fabsp_graph::edgelist::to_lower_triangular;
use fabsp_graph::rmat::{generate_edges, RmatParams};
use fabsp_graph::Csr;
use fabsp_shmem::Grid;

/// R-MAT scale from `ACTORPROF_SCALE` (default 10; the paper used 16).
pub fn env_scale() -> u32 {
    std::env::var("ACTORPROF_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10)
}

/// PEs per node from `ACTORPROF_PES` (default 16, as in the paper).
pub fn env_pes_per_node() -> usize {
    std::env::var("ACTORPROF_PES")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&p| p > 0)
        .unwrap_or(16)
}

/// The paper's 1-node grid (1 × `ACTORPROF_PES`).
pub fn grid_1node() -> Grid {
    Grid::new(1, env_pes_per_node()).expect("non-empty grid")
}

/// The paper's 2-node grid (2 × `ACTORPROF_PES` = 32 PEs by default).
pub fn grid_2node() -> Grid {
    Grid::new(2, env_pes_per_node()).expect("non-empty grid")
}

/// Build the case-study input: the lower-triangular adjacency matrix of a
/// graph500 R-MAT graph at `scale` (§IV-C). Cached per process since every
/// figure uses the same input.
pub fn build_case_study_graph(scale: u32) -> &'static Csr {
    static GRAPH: OnceLock<(u32, Csr)> = OnceLock::new();
    let (cached_scale, csr) = GRAPH.get_or_init(|| {
        let params = RmatParams::graph500(scale);
        let edges = to_lower_triangular(&generate_edges(&params));
        (scale, Csr::from_edges(params.n_vertices(), &edges))
    });
    assert_eq!(
        *cached_scale, scale,
        "mixed scales within one process are not supported"
    );
    csr
}

/// Run the traced triangle-counting kernel (all traces on, the paper's
/// full `-DENABLE_TRACE -DENABLE_TCOMM_PROFILING -DENABLE_TRACE_PHYSICAL`
/// build) and validate the count.
pub fn run_traced_tc(l: &Csr, grid: Grid, dist: DistKind) -> TriangleOutcome {
    let config = TriangleConfig::new(grid)
        .with_dist(dist)
        .with_trace(TraceConfig::all());
    count_triangles(l, &config).expect("case-study run failed")
}

/// Output directory for a figure's artifacts.
pub fn figure_dir(figure: &str) -> PathBuf {
    let base = std::env::var("ACTORPROF_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("target/actorprof-figures"));
    let dir = base.join(figure);
    std::fs::create_dir_all(&dir).expect("create figure dir");
    dir
}

/// Everything a figure binary needs: the input graph and both grids.
pub struct FigureCtx {
    /// R-MAT scale in use.
    pub scale: u32,
    /// The case-study matrix.
    pub l: &'static Csr,
    /// 1-node grid.
    pub one_node: Grid,
    /// 2-node grid.
    pub two_node: Grid,
}

impl FigureCtx {
    /// Initialize from the environment and print the header every figure
    /// binary shares.
    pub fn init(figure: &str, paper_ref: &str) -> FigureCtx {
        let scale = env_scale();
        let l = build_case_study_graph(scale);
        let ctx = FigureCtx {
            scale,
            l,
            one_node: grid_1node(),
            two_node: grid_2node(),
        };
        println!("=== {figure} — {paper_ref} ===");
        println!(
            "input: graph500 R-MAT scale {scale} ({} vertices, {} lower-tri edges, {} wedges)",
            l.n(),
            l.nnz(),
            l.wedge_count()
        );
        ctx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_defaults() {
        // Do not set the env vars here (tests run in one process); just
        // check the defaults are sane when unset.
        if std::env::var("ACTORPROF_SCALE").is_err() {
            assert_eq!(env_scale(), 10);
        }
        if std::env::var("ACTORPROF_PES").is_err() {
            assert_eq!(env_pes_per_node(), 16);
        }
    }

    #[test]
    fn graph_is_cached_and_consistent() {
        let scale = env_scale();
        let a = build_case_study_graph(scale);
        let b = build_case_study_graph(scale);
        assert!(std::ptr::eq(a, b), "same cached instance");
        assert_eq!(a.n(), 1 << scale);
        assert!(a.nnz() > 0);
    }

    #[test]
    fn grids_match_paper_shape() {
        assert_eq!(grid_1node().nodes(), 1);
        assert_eq!(grid_2node().nodes(), 2);
        assert_eq!(grid_1node().pes_per_node(), grid_2node().pes_per_node());
    }
}
