//! Frozen pre-SPSC conveyor: the mutex-guarded implementation the ring
//! buffers replaced, kept verbatim (minus tracing/chaos hooks) as the
//! baseline for `bench_hotpath`'s same-machine comparison.
//!
//! Landing slots live in a [`SymmetricVec`] (every access takes the
//! region's `parking_lot::Mutex`), ready/ack words in two
//! [`SymmetricAtomicVec`]s, and every remote flush allocates: `put_nbi`
//! captures the staged buffer with a `to_vec`. Those three costs are
//! exactly what `fabsp_conveyors::Conveyor` no longer pays; do not
//! "improve" this module, or the comparison stops measuring the change.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use fabsp_conveyors::{ConveyorError, ConveyorOptions, Envelope, LinkKind, Topology};
use fabsp_shmem::{Pe, SymmetricAtomicVec, SymmetricVec};

/// Shared termination ledger (as in the frozen implementation).
struct SharedState {
    pushed: AtomicU64,
    pulled: AtomicU64,
    done: AtomicU64,
}

struct OutLink<T> {
    peer: usize,
    kind: LinkKind,
    buf: Vec<Envelope<T>>,
    /// Sends issued per slot; slot is free when the receiver's acks catch up.
    slot_sent: [u64; 2],
    /// Remote slots delivered but not yet signalled: (seq, item_count).
    in_flight: [Option<(u64, usize)>; 2],
    /// Per-link flush sequence (1-based).
    flush_seq: u64,
}

/// The pre-change conveyor: mutex-guarded landing slots, separate
/// ready/ack signal vectors, per-flush allocation on the remote path.
pub struct MutexConveyor<T> {
    me: usize,
    grid: fabsp_shmem::Grid,
    topology: Topology,
    capacity: usize,
    links: Vec<OutLink<T>>,
    landing: SymmetricVec<Envelope<T>>,
    /// Receiver-side ready words, one per (link, slot):
    /// `0` = free, else `(seq << 32) | (count + 1)`.
    ready: SymmetricAtomicVec,
    /// Sender-side ack counters, one per (link, slot).
    acks: SymmetricAtomicVec,
    /// Receiver-side consumption cursor per (link, slot).
    cursors: Vec<usize>,
    /// Next flush sequence expected per incoming link.
    expect_seq: Vec<u64>,
    pull_queue: VecDeque<(u32, T)>,
    scratch: Vec<Envelope<T>>,
    shared: Arc<SharedState>,
    done_signaled: bool,
    complete: bool,
    need_progress: bool,
}

impl<T: Copy + Default + Send + Sync + 'static> MutexConveyor<T> {
    /// Collectively create a conveyor across all PEs.
    pub fn new(pe: &Pe, options: ConveyorOptions) -> Result<MutexConveyor<T>, ConveyorError> {
        if options.capacity == 0 {
            return Err(ConveyorError::ZeroCapacity);
        }
        let grid = pe.grid();
        let topology = Topology::resolve(options.topology, grid);
        let n_links = topology.n_links(grid);
        let landing = SymmetricVec::new(pe, n_links * 2 * options.capacity)?;
        let ready = SymmetricAtomicVec::new(pe, n_links * 2)?;
        let acks = SymmetricAtomicVec::new(pe, n_links * 2)?;
        let shared = pe.allreduce((), |_| {
            Arc::new(SharedState {
                pushed: AtomicU64::new(0),
                pulled: AtomicU64::new(0),
                done: AtomicU64::new(0),
            })
        });
        let me = pe.rank();
        let links = (0..n_links)
            .map(|link| OutLink {
                peer: topology.link_peer(grid, me, link),
                kind: topology.link_kind(grid, me, link),
                buf: Vec::with_capacity(options.capacity),
                slot_sent: [0, 0],
                in_flight: [None, None],
                flush_seq: 1,
            })
            .collect();
        Ok(MutexConveyor {
            me,
            grid,
            topology,
            capacity: options.capacity,
            links,
            landing,
            ready,
            acks,
            cursors: vec![0; n_links * 2],
            expect_seq: vec![1; n_links],
            pull_queue: VecDeque::new(),
            scratch: Vec::with_capacity(options.capacity),
            shared,
            done_signaled: false,
            complete: false,
            need_progress: false,
        })
    }

    /// Try to enqueue `item` for `dst`; `Ok(false)` means buffers full.
    pub fn push(&mut self, pe: &Pe, item: T, dst: usize) -> Result<bool, ConveyorError> {
        if dst >= self.grid.n_pes() {
            return Err(ConveyorError::InvalidDestination {
                dst,
                n_pes: self.grid.n_pes(),
            });
        }
        if self.done_signaled {
            return Err(ConveyorError::PushAfterDone);
        }
        let route = self.topology.route(self.grid, self.me, dst);
        if self.links[route.link].buf.len() >= self.capacity {
            self.flush_link(pe, route.link);
            if self.links[route.link].buf.len() >= self.capacity {
                return Ok(false);
            }
        }
        self.links[route.link].buf.push(Envelope {
            final_dst: dst as u32,
            origin: self.me as u32,
            item,
        });
        self.shared.pushed.fetch_add(1, Ordering::SeqCst);
        Ok(true)
    }

    /// Take one delivered item, if any: `(origin PE, item)`.
    pub fn pull(&mut self) -> Option<(u32, T)> {
        let out = self.pull_queue.pop_front();
        if out.is_some() {
            self.shared.pulled.fetch_add(1, Ordering::SeqCst);
        }
        out
    }

    /// Make communication progress; `false` once terminated.
    pub fn advance(&mut self, pe: &Pe, done: bool) -> bool {
        if self.complete {
            return false;
        }
        if done && !self.done_signaled {
            self.done_signaled = true;
            self.shared.done.fetch_add(1, Ordering::SeqCst);
        }

        self.consume_incoming(pe);

        for link in 0..self.links.len() {
            let len = self.links[link].buf.len();
            if len >= self.capacity || (self.done_signaled && len > 0) {
                self.flush_link(pe, link);
            }
        }

        if self.need_progress || (self.done_signaled && self.has_in_flight()) {
            self.progress(pe);
        }

        self.consume_incoming(pe);

        if self.shared.done.load(Ordering::SeqCst) == self.grid.n_pes() as u64 {
            let pushed = self.shared.pushed.load(Ordering::SeqCst);
            let pulled = self.shared.pulled.load(Ordering::SeqCst);
            if pushed == pulled {
                self.complete = true;
                return false;
            }
        }
        true
    }

    fn has_in_flight(&self) -> bool {
        self.links
            .iter()
            .any(|l| l.in_flight.iter().any(|s| s.is_some()))
    }

    fn slot_index(link: usize, slot: usize) -> usize {
        link * 2 + slot
    }

    fn flush_link(&mut self, pe: &Pe, link: usize) {
        if self.links[link].buf.is_empty() {
            return;
        }
        let slot = {
            let l = &self.links[link];
            (0..2).find(|&s| {
                l.in_flight[s].is_none()
                    && self.acks.local_load(pe, Self::slot_index(link, s)) == l.slot_sent[s]
            })
        };
        let Some(slot) = slot else {
            if self.links[link].in_flight.iter().any(|s| s.is_some()) {
                self.need_progress = true;
            }
            return;
        };

        let peer = self.links[link].peer;
        let kind = self.links[link].kind;
        let count = self.links[link].buf.len();
        let seq = self.links[link].flush_seq;
        let rev = self.topology.reverse_link(self.grid, peer, self.me);
        let base = (Self::slot_index(rev, slot)) * self.capacity;
        let ready_word = (seq << 32) | (count as u64 + 1);

        match kind {
            LinkKind::Local => {
                self.landing
                    .put(pe, peer, base, &self.links[link].buf)
                    .expect("landing slot bounds are static");
                self.ready
                    .store(pe, peer, Self::slot_index(rev, slot), ready_word)
                    .expect("ready word bounds are static");
            }
            LinkKind::Remote => {
                self.landing
                    .put_nbi(pe, peer, base, &self.links[link].buf)
                    .expect("landing slot bounds are static");
                self.links[link].in_flight[slot] = Some((seq, count));
            }
        }
        self.links[link].slot_sent[slot] += 1;
        self.links[link].flush_seq += 1;
        self.links[link].buf.clear();
    }

    fn progress(&mut self, pe: &Pe) {
        if !self.has_in_flight() {
            self.need_progress = false;
            return;
        }
        pe.quiet();
        for link in 0..self.links.len() {
            for slot in 0..2 {
                if let Some((seq, count)) = self.links[link].in_flight[slot].take() {
                    let peer = self.links[link].peer;
                    let rev = self.topology.reverse_link(self.grid, peer, self.me);
                    let ready_word = (seq << 32) | (count as u64 + 1);
                    self.ready
                        .store(pe, peer, Self::slot_index(rev, slot), ready_word)
                        .expect("ready word bounds are static");
                }
            }
        }
        self.need_progress = false;
    }

    fn consume_incoming(&mut self, pe: &Pe) {
        let n_links = self.links.len();
        for link in 0..n_links {
            loop {
                let expected = self.expect_seq[link];
                let Some(slot) = (0..2).find(|&s| {
                    let word = self.ready.local_load(pe, Self::slot_index(link, s));
                    word != 0 && (word >> 32) == expected
                }) else {
                    break;
                };
                if !self.consume_slot(pe, link, slot) {
                    break;
                }
                self.expect_seq[link] += 1;
            }
        }
    }

    fn consume_slot(&mut self, pe: &Pe, link: usize, slot: usize) -> bool {
        let idx = Self::slot_index(link, slot);
        let word = self.ready.local_load(pe, idx);
        let count = ((word & 0xffff_ffff) - 1) as usize;
        let base = idx * self.capacity;
        let start = self.cursors[idx];

        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        // Ranged read, same single lock acquisition as read_local: other
        // producers legitimately put into disjoint slots of this landing
        // region concurrently, so only the consumed slot's span may be
        // reported as accessed.
        self.landing
            .read_local_range(pe, base + start, count - start, |span| {
                scratch.extend_from_slice(span);
            })
            .expect("landing slot bounds are static");

        let mut processed = 0;
        let mut blocked = false;
        for env in &scratch {
            if env.final_dst as usize == self.me {
                self.pull_queue.push_back((env.origin, env.item));
                processed += 1;
            } else {
                let rl = self
                    .topology
                    .relay_link(self.grid, self.me, env.final_dst as usize);
                if self.links[rl].buf.len() >= self.capacity {
                    self.flush_link(pe, rl);
                }
                if self.links[rl].buf.len() >= self.capacity {
                    blocked = true;
                    break;
                }
                self.links[rl].buf.push(*env);
                processed += 1;
            }
        }
        self.scratch = scratch;
        self.cursors[idx] = start + processed;

        if blocked {
            return false;
        }

        debug_assert_eq!(self.cursors[idx], count);
        self.cursors[idx] = 0;
        self.ready
            .store(pe, self.me, idx, 0)
            .expect("own ready word");
        let src = self.topology.link_peer(self.grid, self.me, link);
        let src_link = self.topology.reverse_link(self.grid, src, self.me);
        self.acks
            .fetch_add(pe, src, Self::slot_index(src_link, slot), 1)
            .expect("ack word bounds are static");
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabsp_shmem::{spmd, Grid};

    #[test]
    fn baseline_still_delivers_all_to_all() {
        for grid in [Grid::single_node(4).unwrap(), Grid::new(2, 2).unwrap()] {
            let got = spmd::run(grid, |pe| {
                let mut c = MutexConveyor::<u64>::new(pe, ConveyorOptions::default()).unwrap();
                let n = pe.n_pes();
                let mut received = 0u64;
                let mut next = 0usize;
                let total = n * 8;
                loop {
                    while next < total {
                        if c.push(pe, next as u64, next % n).unwrap() {
                            next += 1;
                        } else {
                            break;
                        }
                    }
                    let active = c.advance(pe, next == total);
                    while c.pull().is_some() {
                        received += 1;
                    }
                    if !active {
                        break;
                    }
                    pe.poll_yield();
                }
                received
            })
            .unwrap();
            assert_eq!(got.iter().sum::<u64>(), (grid.n_pes() * grid.n_pes() * 8) as u64);
        }
    }
}
