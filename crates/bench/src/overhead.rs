//! Tracing-overhead measurement (§IV-E).
//!
//! Runs the same workload with tracing off and with each trace class
//! enabled, reporting wall time and recorded-trace footprint. The paper
//! discusses exactly these costs: trace bloat for logical/physical traces
//! and the deliberately cheap `rdtsc` (not `rdtscp`, not OS timers) for
//! the overall breakdown.

use std::time::{Duration, Instant};

use actorprof_trace::TraceConfig;
use fabsp_apps::triangle::{count_triangles, DistKind, TriangleConfig};
use fabsp_graph::Csr;
use fabsp_shmem::Grid;

/// One overhead measurement.
#[derive(Debug, Clone)]
pub struct OverheadRow {
    /// Configuration label.
    pub label: &'static str,
    /// Wall time of the traced run.
    pub wall: Duration,
    /// Slowdown vs the untraced baseline.
    pub slowdown: f64,
    /// Bytes of trace data accumulated in memory.
    pub trace_bytes: usize,
}

/// The tracing configurations §IV-E discusses, in increasing intrusiveness.
pub fn configurations() -> Vec<(&'static str, TraceConfig)> {
    vec![
        ("untraced", TraceConfig::off()),
        ("overall (rdtsc)", TraceConfig::off().with_overall()),
        ("logical (aggregated)", TraceConfig::off().with_logical()),
        ("physical", TraceConfig::off().with_physical()),
        (
            "logical + papi",
            TraceConfig::off()
                .with_logical()
                .with_papi(actorprof_trace::PapiConfig::case_study()),
        ),
        ("all", TraceConfig::all()),
        (
            "all + exact records",
            TraceConfig::all().with_logical_records(),
        ),
    ]
}

/// Measure every configuration on one workload. The first row is the
/// untraced baseline (slowdown 1.0 by construction).
pub fn measure(l: &Csr, grid: Grid, dist: DistKind) -> Vec<OverheadRow> {
    let mut rows = Vec::new();
    let mut baseline: Option<Duration> = None;
    for (label, trace) in configurations() {
        let config = TriangleConfig::new(grid).with_dist(dist).with_trace(trace);
        let start = Instant::now();
        let outcome = count_triangles(l, &config).expect("overhead run failed");
        let wall = start.elapsed();
        let base = *baseline.get_or_insert(wall);
        rows.push(OverheadRow {
            label,
            wall,
            slowdown: wall.as_secs_f64() / base.as_secs_f64().max(1e-12),
            trace_bytes: outcome.bundle.trace_bytes(),
        });
    }
    rows
}

/// Format rows as an aligned table.
pub fn render_table(rows: &[OverheadRow]) -> String {
    let mut out = String::from(
        "configuration          wall [ms]   slowdown   trace bytes\n\
         -----------------------------------------------------------\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<22} {:>9.1} {:>10.2}x {:>12}\n",
            r.label,
            r.wall.as_secs_f64() * 1e3,
            r.slowdown,
            r.trace_bytes
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabsp_graph::edgelist::to_lower_triangular;
    use fabsp_graph::rmat::{generate_edges, RmatParams};

    #[test]
    fn overhead_rows_cover_all_configs() {
        let p = RmatParams::graph500(6);
        let l = Csr::from_edges(
            p.n_vertices(),
            &to_lower_triangular(&generate_edges(&p)),
        );
        let rows = measure(&l, Grid::single_node(2).unwrap(), DistKind::Cyclic);
        assert_eq!(rows.len(), configurations().len());
        assert_eq!(rows[0].label, "untraced");
        assert!((rows[0].slowdown - 1.0).abs() < 1e-9);
        assert_eq!(rows[0].trace_bytes, 0, "untraced run records nothing");
        // exact records strictly grow the footprint vs aggregated
        let agg = rows.iter().find(|r| r.label == "all").unwrap();
        let exact = rows
            .iter()
            .find(|r| r.label == "all + exact records")
            .unwrap();
        assert!(exact.trace_bytes > agg.trace_bytes);
        let table = render_table(&rows);
        assert!(table.contains("untraced"));
        assert!(table.contains("slowdown"));
    }
}
