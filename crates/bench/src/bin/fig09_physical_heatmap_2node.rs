//! Figure 9: Physical Trace Heatmap for 2 nodes — 2D mesh topology:
//! local_send along rows (same node), nonblock_send along columns.

use fabsp_bench::{figures, FigureCtx};

fn main() {
    let ctx = FigureCtx::init("Figure 9", "physical trace heatmap, 2 nodes");
    figures::physical_heatmap_figure(&ctx, "fig09", ctx.two_node, "2node");
}
