//! §IV-E: overhead of ActorProf tracing — wall time and trace footprint
//! per configuration, on the case-study kernel.

use fabsp_apps::triangle::DistKind;
use fabsp_bench::{overhead, FigureCtx};

fn main() {
    let ctx = FigureCtx::init("Overhead", "tracing overhead (section IV-E)");
    for (grid, label) in [(ctx.one_node, "1 node"), (ctx.two_node, "2 nodes")] {
        println!("\n--- {label}, 1D Cyclic ---");
        let rows = overhead::measure(ctx.l, grid, DistKind::Cyclic);
        print!("{}", overhead::render_table(&rows));
    }
}
