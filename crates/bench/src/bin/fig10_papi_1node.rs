//! Figure 10: Total instructions (PAPI_TOT_INS) per PE, 1 node.

use fabsp_bench::{figures, FigureCtx};

fn main() {
    let ctx = FigureCtx::init("Figure 10", "PAPI_TOT_INS per PE, 1 node");
    figures::papi_figure(&ctx, "fig10", ctx.one_node, "1node");
}
