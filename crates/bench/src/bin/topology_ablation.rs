//! Topology ablation: the same case-study workload routed over Conveyors'
//! three topologies (§III-C's 1D Linear / 2D Mesh / 3D Cube family) on a
//! 2-node grid. Shows the trade the topologies make: direct 1D links move
//! every buffer exactly once but need O(PEs) buffers per PE; the mesh and
//! cube cut the per-PE link count (memory frugality) at the price of
//! relayed traffic.

use actorprof_trace::{SendType, TraceConfig};
use fabsp_apps::triangle::{count_triangles, DistKind, TriangleConfig};
use fabsp_bench::{build_case_study_graph, env_scale};
use fabsp_conveyors::{ConveyorOptions, Topology, TopologySpec};
use fabsp_shmem::Grid;

fn main() {
    let scale = env_scale();
    let l = build_case_study_graph(scale);
    let grid = Grid::new(2, 8).expect("grid");
    println!(
        "=== Topology ablation — R-MAT scale {scale}, {} wedges, {} ===",
        l.wedge_count(),
        grid
    );
    println!(
        "{:<10} {:>7} {:>11} {:>13} {:>10} {:>10} {:>10}",
        "topology", "links", "buffers", "local_send", "nonblock", "progress", "wall[ms]"
    );

    for (label, spec) in [
        ("1D", TopologySpec::OneD),
        ("2D mesh", TopologySpec::Mesh2D),
        ("3D cube", TopologySpec::Cube3D),
    ] {
        let mut config = TriangleConfig::new(grid)
            .with_dist(DistKind::Cyclic)
            .with_trace(TraceConfig::off().with_physical());
        config.conveyor = ConveyorOptions {
            capacity: 64,
            topology: spec,
            ..ConveyorOptions::default()
        };
        let start = std::time::Instant::now();
        let outcome = count_triangles(l, &config).expect("run");
        let wall = start.elapsed();
        let count = |t: SendType| {
            outcome
                .bundle
                .physical_matrix(Some(t))
                .map(|m| m.total())
                .unwrap_or(0)
        };
        let local = count(SendType::LocalSend);
        let nonblock = count(SendType::NonblockSend);
        let progress = count(SendType::NonblockProgress);
        let links = Topology::resolve(spec, grid).n_links(grid);
        println!(
            "{label:<10} {links:>7} {:>11} {local:>13} {nonblock:>10} {progress:>10} {:>10.1}",
            local + nonblock,
            wall.as_secs_f64() * 1e3,
        );
    }
    println!(
        "\nlinks = aggregation buffers held per PE (the memory knob);\n\
         relayed topologies move more buffers overall but hold far fewer."
    );
}
