//! Figure 13: Overall profiling (MAIN/COMM/PROC stacked bars), 2 nodes.

use fabsp_bench::{figures, FigureCtx};

fn main() {
    let ctx = FigureCtx::init("Figure 13", "overall profiling, 2 nodes");
    figures::overall_figure(&ctx, "fig13", ctx.two_node, "2node");
}
