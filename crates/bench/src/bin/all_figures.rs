//! Regenerate every figure of the evaluation in one run (the sequence
//! EXPERIMENTS.md records). Equivalent to running each `fig*` binary.

use fabsp_bench::{figures, FigureCtx};

fn main() {
    let ctx = FigureCtx::init("All figures", "full evaluation sweep");
    figures::logical_heatmap_figure(&ctx, "fig03", ctx.one_node, "1 node");
    figures::logical_heatmap_figure(&ctx, "fig04", ctx.two_node, "2 nodes");
    figures::violin_figure(&ctx, "fig05", false);
    figures::l_observation_figure(&ctx, "fig06");
    figures::violin_figure(&ctx, "fig07", true);
    figures::physical_heatmap_figure(&ctx, "fig08", ctx.one_node, "1node");
    figures::physical_heatmap_figure(&ctx, "fig09", ctx.two_node, "2node");
    figures::papi_figure(&ctx, "fig10", ctx.one_node, "1node");
    figures::papi_figure(&ctx, "fig11", ctx.two_node, "2node");
    figures::overall_figure(&ctx, "fig12", ctx.one_node, "1node");
    figures::overall_figure(&ctx, "fig13", ctx.two_node, "2node");
    println!("\nall figures regenerated; see target/actorprof-figures/");
}
