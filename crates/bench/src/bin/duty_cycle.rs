//! Continuous-profiling duty-cycle gate: prove the overhead governor
//! earns fidelity instead of asserting it.
//!
//! Two arms of the same histogram exchange: an untraced baseline and a
//! `Profiler::continuous` run where the governor starts at the
//! conservative initial stride and ratchets span sampling toward keep-all
//! only while the measured instrumentation cost stays under the budget.
//! The artifact records both the *measured* (cycle-charged) overhead the
//! governor converged to and the *wall-clock* overhead of the whole
//! continuous apparatus versus the baseline.
//!
//! ```text
//! cargo run --release -p fabsp-bench --bin duty_cycle
//! ACTORPROF_CONTINUOUS_GATE_PCT=5 \
//!   cargo run --release -p fabsp-bench --bin duty_cycle   # CI gate
//! ```
//!
//! When `ACTORPROF_CONTINUOUS_GATE_PCT` is set it becomes the budget and
//! the run *gates*: the governor must have taken at least two ratchet
//! transitions (the control loop demonstrably moved) and the final window
//! must land within the budget. `ACTORPROF_DUTY_OUT` overrides the output
//! path (default `BENCH_duty_cycle.json`).

use std::cell::RefCell;
use std::rc::Rc;
use std::time::{Duration, Instant};

use actorprof::{Counter, OverheadBudget, Profiler, Report};
use fabsp_shmem::Grid;

const N_PER_PE: usize = 150_000;
const TABLE: usize = 512;

fn histogram_run(p: Profiler) -> Report<u64> {
    p.run(|pe, ctx| {
        let table = Rc::new(RefCell::new(vec![0u64; TABLE]));
        let h = Rc::clone(&table);
        let mut actor = ctx
            .selector(1, move |_mb, idx: u64, _from, _ctx| {
                h.borrow_mut()[idx as usize % TABLE] += 1;
            })
            .expect("selector");
        actor
            .execute(pe, |main| {
                for i in 0..N_PER_PE {
                    let dst = (i * 7 + main.rank()) % main.n_pes();
                    main.send(0, i as u64, dst).expect("send");
                }
                main.done(0).expect("done");
            })
            .expect("execute");
        let mass: u64 = table.borrow().iter().sum();
        mass
    })
    .expect("profiled run")
}

fn main() {
    let gate_pct: Option<f64> = std::env::var("ACTORPROF_CONTINUOUS_GATE_PCT")
        .ok()
        .and_then(|s| s.parse().ok());
    let budget_pct = gate_pct.unwrap_or(5.0);
    let out = std::env::var("ACTORPROF_DUTY_OUT")
        .unwrap_or_else(|_| "BENCH_duty_cycle.json".to_string());
    let grid = Grid::new(1, 4).expect("grid");
    let expect = (N_PER_PE * grid.n_pes()) as u64;

    // --- arm A: untraced baseline ----------------------------------------
    let t0 = Instant::now();
    let base = histogram_run(Profiler::new(grid));
    let base_secs = t0.elapsed().as_secs_f64();
    assert_eq!(base.results.iter().sum::<u64>(), expect);

    // --- arm B: continuous profiling under the budget --------------------
    let t0 = Instant::now();
    let cont = histogram_run(
        Profiler::new(grid)
            .continuous(OverheadBudget::pct(budget_pct))
            .observe_every(Duration::from_millis(2), |_| {}),
    );
    let cont_secs = t0.elapsed().as_secs_f64();
    assert_eq!(cont.results.iter().sum::<u64>(), expect);

    let report = cont.continuous.expect("continuous mode report");
    let snap = cont.telemetry.expect("telemetry snapshot");
    let wall_overhead_pct = (cont_secs / base_secs - 1.0) * 100.0;

    println!(
        "duty_cycle: {} msgs on {} PEs, budget {budget_pct:.1}%",
        expect,
        grid.n_pes()
    );
    println!(
        "  baseline {base_secs:.3}s, continuous {cont_secs:.3}s \
         (wall overhead {wall_overhead_pct:+.1}%)"
    );
    println!(
        "  governor: {} windows, {} ratchets, stride {} -> {}, \
         final measured overhead {:.2}% ({}), {} spans kept",
        report.windows(),
        report.ratchet_transitions(),
        report.budget.initial_stride,
        report.final_stride(),
        report.final_overhead_pct(),
        if report.within_budget() { "within budget" } else { "OVER BUDGET" },
        snap.counter_total(Counter::TelemetrySpans),
    );

    let json = format!(
        r#"{{
  "benchmark": "duty_cycle",
  "workload": "histogram exchange, {n} msgs/PE on {pes} PEs",
  "budget_pct": {budget_pct},
  "gated": {gated},
  "baseline_secs": {base_secs:.6},
  "continuous_secs": {cont_secs:.6},
  "wall_overhead_pct": {wall_overhead_pct:.2},
  "governor": {{
    "windows": {windows},
    "ratchet_transitions": {ratchets},
    "initial_stride": {stride0},
    "final_stride": {stride1},
    "final_overhead_pct": {final_pct:.4},
    "within_budget": {within}
  }}
}}
"#,
        n = N_PER_PE,
        pes = grid.n_pes(),
        gated = gate_pct.is_some(),
        windows = report.windows(),
        ratchets = report.ratchet_transitions(),
        stride0 = report.budget.initial_stride,
        stride1 = report.final_stride(),
        final_pct = report.final_overhead_pct(),
        within = report.within_budget(),
    );
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("wrote {out}");

    if gate_pct.is_some() {
        assert!(
            report.ratchet_transitions() >= 2,
            "gate: governor took {} ratchet transitions, need >= 2 \
             (the control loop never moved)",
            report.ratchet_transitions()
        );
        assert!(
            report.within_budget(),
            "gate: final measured overhead {:.2}% exceeds the {budget_pct:.1}% budget",
            report.final_overhead_pct()
        );
        println!("gate ok: >=2 ratchets and final window within budget");
    }
}
