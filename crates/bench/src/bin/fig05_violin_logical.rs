//! Figure 5: Violin plots of per-PE logical send/recv totals
//! (1 & 2 nodes, Cyclic vs Range).

use fabsp_bench::{figures, FigureCtx};

fn main() {
    let ctx = FigureCtx::init("Figure 5", "violin plot for logical trace");
    figures::violin_figure(&ctx, "fig05", false);
}
