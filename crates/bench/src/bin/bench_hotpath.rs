//! Hot-path microbenchmark: conveyor push/advance throughput, SPSC rings
//! vs the frozen mutex baseline, the batched (`push_slice`/`pull_batch`)
//! surface vs per-item, traced-vs-untraced overhead, and the always-on
//! telemetry self-overhead (metrics registry on, phase spans sampled).
//!
//! Writes `BENCH_hotpath.json` (path relative to the working directory —
//! run from the repo root to update the checked-in copy). Beyond the
//! per-topology table, the file carries an oned PE-count sweep of the
//! batched path (base, 2x, 4x PEs — 8/16/32 at the defaults) with a
//! roofline column: conveyor payload bytes/sec against a STREAM-triad
//! bandwidth measurement taken at the same PE count.
//!
//! ```text
//! cargo run --release -p fabsp-bench --bin bench_hotpath
//! ACTORPROF_HOTPATH_ITEMS=20000 ACTORPROF_HOTPATH_PES=4 \
//!   cargo run --release -p fabsp-bench --bin bench_hotpath   # CI smoke
//! ```
//!
//! Environment knobs: `ACTORPROF_HOTPATH_ITEMS` (items per PE, default
//! 200000), `ACTORPROF_HOTPATH_PES` (default 8, must be even),
//! `ACTORPROF_HOTPATH_REPS` (default 3, best-of), `ACTORPROF_HOTPATH_OUT`
//! (default `BENCH_hotpath.json`), `ACTORPROF_TELEMETRY_GATE_PCT` (when
//! set, exit non-zero if the oned telemetry overhead exceeds it),
//! `ACTORPROF_CKPT_GATE_PCT` (when set, exit non-zero if the oned
//! checkpoint-on overhead exceeds it; checkpoint-off is the plain spsc
//! configuration, so its cost when disabled is zero by construction),
//! `ACTORPROF_BATCH_GATE` (when set, exit non-zero if the oned batched
//! speedup over per-item spsc falls below it),
//! `ACTORPROF_TRANSPORT_GATE_PCT` (when set, exit non-zero if the fresh
//! `InProc` per-item throughput falls more than that percentage below the
//! frozen `BENCH_hotpath.json` — the regression budget for the transport
//! dispatch on the hot path; the comparison only engages when the run's
//! items/pes knobs match the frozen file's).

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Instant;

use actorprof_trace::{PeCollector, TraceConfig};
use fabsp_bench::baseline::MutexConveyor;
use fabsp_conveyors::{Conveyor, ConveyorOptions};
use fabsp_shmem::{spmd, Grid, Harness, TransportSpec};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// One all-to-all superstep on the SPSC conveyor: `items` pushes per PE,
/// round-robin destinations, drained to termination. Returns the slowest
/// PE's wall time for the push/advance/pull loop (construction excluded).
/// `trace` attaches a collector with that config; `telemetry` keeps the
/// always-on metrics registry wired (off isolates the ring baseline);
/// `transport` selects the backend carrying cross-node bytes (`InProc`
/// is the gated hot path, `Ipc` prices the ring-mailbox mirror).
fn run_spsc(
    grid: Grid,
    items: usize,
    trace: Option<TraceConfig>,
    telemetry: bool,
    transport: TransportSpec,
) -> f64 {
    let mut harness = Harness::new(grid).transport(transport);
    if !telemetry {
        harness = harness.telemetry_off();
    }
    let per_pe = spmd::run(harness, move |pe| {
        let mut c = Conveyor::<u64>::new(pe, ConveyorOptions::default()).expect("conveyor");
        if let Some(cfg) = trace.clone() {
            c.attach_collector(Rc::new(RefCell::new(PeCollector::new(
                pe.rank(),
                pe.n_pes(),
                pe.grid().pes_per_node(),
                cfg,
            ))));
        }
        let n = pe.n_pes();
        let me = pe.rank();
        pe.barrier_all();
        let t0 = Instant::now();
        let mut next = 0usize;
        let mut received = 0u64;
        loop {
            while next < items {
                let dst = (me + next) % n;
                if c.push(pe, next as u64, dst).expect("push").is_accepted() {
                    next += 1;
                } else {
                    break;
                }
            }
            let active = c.advance(pe, next == items);
            while c.pull().is_some() {
                received += 1;
            }
            if !active {
                break;
            }
            pe.poll_yield();
        }
        let secs = t0.elapsed().as_secs_f64();
        assert_eq!(received, items as u64, "all-to-all must balance");
        secs
    })
    .expect("SPMD run");
    per_pe.into_iter().fold(0.0f64, f64::max)
}

/// The batched surface on the same all-to-all workload: the round-robin
/// stream is bucketed per destination up front (the shape `DestBuckets`
/// callers hand the runtime), staged with `push_slice`, and drained as
/// zero-copy `pull_batch` runs. PEs are pinned — the batched path is the
/// hot-path showcase, and pinning keeps the SPSC ring endpoints from
/// migrating mid-measurement. `adaptive` arms the capacity controller.
fn run_spsc_batched(grid: Grid, items: usize, adaptive: bool) -> f64 {
    let harness = Harness::new(grid).telemetry_off().pin_pes(true);
    let per_pe = spmd::run(harness, move |pe| {
        let mut c = Conveyor::<u64>::new(
            pe,
            ConveyorOptions {
                adaptive,
                ..ConveyorOptions::default()
            },
        )
        .expect("conveyor");
        let n = pe.n_pes();
        let me = pe.rank();
        let slices: Vec<Vec<u64>> = (0..n)
            .map(|dst| {
                (0..items)
                    .filter(|k| (me + k) % n == dst)
                    .map(|k| k as u64)
                    .collect()
            })
            .collect();
        pe.barrier_all();
        let t0 = Instant::now();
        let mut offsets = vec![0usize; n];
        let mut sent = 0usize;
        let mut received = 0u64;
        loop {
            for (dst, slice) in slices.iter().enumerate() {
                if offsets[dst] < slice.len() {
                    let accepted = c
                        .push_slice(pe, &slice[offsets[dst]..], dst)
                        .expect("push_slice")
                        .accepted;
                    offsets[dst] += accepted;
                    sent += accepted;
                }
            }
            let active = c.advance(pe, sent == items);
            while let Some(batch) = c.pull_batch() {
                received += batch.items.len() as u64;
            }
            if !active {
                break;
            }
            pe.poll_yield();
        }
        let secs = t0.elapsed().as_secs_f64();
        assert_eq!(received, items as u64, "all-to-all must balance");
        secs
    })
    .expect("SPMD run");
    per_pe.into_iter().fold(0.0f64, f64::max)
}

/// Aggregate STREAM-triad bandwidth (`a[i] = b[i] + s * c[i]`, 24 bytes
/// moved per element) at the given PE count — the memory-bandwidth
/// roofline the batched conveyor path is compared against. Arrays are
/// sized well past L2 so the loop streams from memory.
fn stream_triad_bytes_per_sec(pes: usize, reps: usize) -> f64 {
    const N: usize = 1 << 21; // 3 x 16 MiB of f64 per PE
    let grid = Grid::single_node(pes).expect("grid");
    (0..reps)
        .map(|_| {
            let per_pe = spmd::run(Harness::new(grid).telemetry_off().pin_pes(true), |pe| {
                let mut a = vec![0.0f64; N];
                let b = vec![1.0f64; N];
                let c = vec![2.0f64; N];
                pe.barrier_all();
                let t0 = Instant::now();
                for i in 0..N {
                    a[i] = b[i] + 3.0 * c[i];
                }
                let secs = t0.elapsed().as_secs_f64();
                std::hint::black_box(&a);
                secs
            })
            .expect("SPMD run");
            let slowest = per_pe.into_iter().fold(0.0f64, f64::max);
            (pes * N * 24) as f64 / slowest
        })
        .fold(0.0f64, f64::max)
}

/// The SPSC superstep with fault tolerance armed: a symmetric payload
/// region to capture, `checkpoint_every(1)`, and a
/// begin/checkpoint/end-superstep bracket around the exchange — one
/// capture per superstep, the way the selector runtime drives it. The
/// plain `run_spsc` numbers are the checkpoint-off baselines: with no
/// `checkpoint_every` configured the hot loop takes no checkpoint branch
/// at all, so the disabled feature costs nothing by construction.
fn run_spsc_ckpt(grid: Grid, items: usize) -> f64 {
    let harness = Harness::new(grid).telemetry_off().checkpoint_every(1);
    let per_pe = spmd::run(harness, move |pe| {
        let payload = pe.alloc_sym::<u64>(1024);
        payload.write_local(pe, |v| v.fill(pe.rank() as u64));
        let mut c = Conveyor::<u64>::new(pe, ConveyorOptions::default()).expect("conveyor");
        let n = pe.n_pes();
        let me = pe.rank();
        pe.barrier_all();
        let t0 = Instant::now();
        let ss = pe.begin_superstep();
        if pe.checkpoint_due(ss) {
            pe.checkpoint().expect("superstep start is quiescent");
        }
        let mut next = 0usize;
        let mut received = 0u64;
        loop {
            while next < items {
                let dst = (me + next) % n;
                if c.push(pe, next as u64, dst).expect("push").is_accepted() {
                    next += 1;
                } else {
                    break;
                }
            }
            let active = c.advance(pe, next == items);
            while c.pull().is_some() {
                received += 1;
            }
            if !active {
                break;
            }
            pe.poll_yield();
        }
        pe.end_superstep(ss);
        let secs = t0.elapsed().as_secs_f64();
        assert_eq!(received, items as u64, "all-to-all must balance");
        secs
    })
    .expect("SPMD run");
    per_pe.into_iter().fold(0.0f64, f64::max)
}

/// The same superstep on the frozen mutex baseline (telemetry off so the
/// baseline keeps measuring only the ring discipline).
fn run_mutex(grid: Grid, items: usize) -> f64 {
    let per_pe = spmd::run(Harness::new(grid).telemetry_off(), |pe| {
        let mut c = MutexConveyor::<u64>::new(pe, ConveyorOptions::default()).expect("conveyor");
        let n = pe.n_pes();
        let me = pe.rank();
        pe.barrier_all();
        let t0 = Instant::now();
        let mut next = 0usize;
        let mut received = 0u64;
        loop {
            while next < items {
                let dst = (me + next) % n;
                if c.push(pe, next as u64, dst).expect("push") {
                    next += 1;
                } else {
                    break;
                }
            }
            let active = c.advance(pe, next == items);
            while c.pull().is_some() {
                received += 1;
            }
            if !active {
                break;
            }
            pe.poll_yield();
        }
        let secs = t0.elapsed().as_secs_f64();
        assert_eq!(received, items as u64, "all-to-all must balance");
        secs
    })
    .expect("SPMD run");
    per_pe.into_iter().fold(0.0f64, f64::max)
}

/// Best-of-`reps` throughput in items/sec.
fn best_tput(reps: usize, total_items: usize, mut run: impl FnMut() -> f64) -> f64 {
    (0..reps)
        .map(|_| total_items as f64 / run())
        .fold(0.0f64, f64::max)
}

/// Pull `"key": <number>` out of the frozen JSON, scoped to the first
/// occurrence of `"section"` (empty section = whole document). A few
/// string finds beat a JSON dependency for a file this tool itself wrote.
fn frozen_number(json: &str, section: &str, key: &str) -> Option<f64> {
    let start = if section.is_empty() {
        0
    } else {
        json.find(&format!("\"{section}\""))?
    };
    let tail = &json[start..];
    let tail = &tail[tail.find(&format!("\"{key}\""))?..];
    let rest = tail[tail.find(':')? + 1..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let items = env_usize("ACTORPROF_HOTPATH_ITEMS", 200_000);
    let pes = env_usize("ACTORPROF_HOTPATH_PES", 8);
    let reps = env_usize("ACTORPROF_HOTPATH_REPS", 3);
    let out = std::env::var("ACTORPROF_HOTPATH_OUT")
        .unwrap_or_else(|_| "BENCH_hotpath.json".to_string());
    assert!(
        pes >= 2 && pes.is_multiple_of(2),
        "ACTORPROF_HOTPATH_PES must be even"
    );

    let topologies = [
        ("oned", Grid::single_node(pes).expect("grid")),
        ("mesh2d", Grid::new(2, pes / 2).expect("grid")),
    ];

    // The frozen baseline this run may be gated against (read before the
    // write below replaces it).
    let frozen = std::fs::read_to_string(&out).ok();

    let mut sections = Vec::new();
    let mut oned_telemetry_overhead = 0.0f64;
    let mut oned_ckpt_overhead = 0.0f64;
    let mut oned_batched_speedup = 0.0f64;
    let mut fresh_spsc: Vec<(&str, f64)> = Vec::new();
    for (name, grid) in topologies {
        let total = items * grid.n_pes();
        eprintln!("[{name}] {} PEs x {items} items, best of {reps}", grid.n_pes());
        let mutex = best_tput(reps, total, || run_mutex(grid, items));
        let spsc = best_tput(reps, total, || {
            run_spsc(grid, items, None, false, TransportSpec::InProc)
        });
        let ipc = best_tput(reps, total, || {
            run_spsc(grid, items, None, false, TransportSpec::ipc())
        });
        let batched = best_tput(reps, total, || run_spsc_batched(grid, items, false));
        let batched_adaptive = best_tput(reps, total, || run_spsc_batched(grid, items, true));
        let traced = best_tput(reps, total, || {
            run_spsc(
                grid,
                items,
                Some(TraceConfig::off().with_physical()),
                false,
                TransportSpec::InProc,
            )
        });
        // the always-on configuration: metrics registry wired, phase spans
        // enabled but sampled (1 in 64 hot-phase spans kept)
        let telemetry = best_tput(reps, total, || {
            run_spsc(
                grid,
                items,
                Some(TraceConfig::off().with_spans().with_span_sampling(64)),
                true,
                TransportSpec::InProc,
            )
        });
        // fault tolerance on: one symmetric-heap checkpoint per superstep
        let ckpt = best_tput(reps, total, || run_spsc_ckpt(grid, items));
        let speedup = spsc / mutex;
        let batched_speedup = batched / spsc;
        let overhead = (1.0 - traced / spsc) * 100.0;
        let telemetry_overhead = (1.0 - telemetry / spsc) * 100.0;
        let ckpt_overhead = (1.0 - ckpt / spsc) * 100.0;
        let ipc_overhead = (1.0 - ipc / spsc) * 100.0;
        if name == "oned" {
            oned_telemetry_overhead = telemetry_overhead;
            oned_ckpt_overhead = ckpt_overhead;
            oned_batched_speedup = batched_speedup;
        }
        fresh_spsc.push((name, spsc));
        eprintln!(
            "[{name}] mutex {:.2e} it/s | spsc {:.2e} it/s ({speedup:.2}x) | ipc {:.2e} it/s ({ipc_overhead:.1}% overhead) | batched {:.2e} it/s ({batched_speedup:.2}x vs per-item) | adaptive {:.2e} it/s | traced {:.2e} it/s ({overhead:.1}% overhead) | telemetry {:.2e} it/s ({telemetry_overhead:.1}% overhead) | ckpt {:.2e} it/s ({ckpt_overhead:.1}% overhead)",
            mutex, spsc, ipc, batched, batched_adaptive, traced, telemetry, ckpt
        );
        sections.push(format!(
            r#"    "{name}": {{
      "mutex_baseline_items_per_sec": {mutex:.0},
      "spsc_items_per_sec": {spsc:.0},
      "speedup_vs_mutex": {speedup:.3},
      "ipc_transport_items_per_sec": {ipc:.0},
      "ipc_transport_overhead_percent": {ipc_overhead:.2},
      "batched_items_per_sec": {batched:.0},
      "batched_speedup_vs_per_item": {batched_speedup:.3},
      "batched_adaptive_items_per_sec": {batched_adaptive:.0},
      "traced_items_per_sec": {traced:.0},
      "tracing_overhead_percent": {overhead:.2},
      "telemetry_items_per_sec": {telemetry:.0},
      "telemetry_overhead_percent": {telemetry_overhead:.2},
      "ckpt_items_per_sec": {ckpt:.0},
      "checkpoint_overhead_percent": {ckpt_overhead:.2}
    }}"#
        ));
    }

    // oned PE-count sweep of the batched path with a STREAM-triad
    // roofline column: payload bytes/sec (8 bytes per item) over the
    // measured triad bandwidth at the same PE count.
    let mut sweep_sections = Vec::new();
    for p in [pes, pes * 2, pes * 4] {
        let grid = Grid::single_node(p).expect("grid");
        let total = items * p;
        eprintln!("[sweep] {p} PEs x {items} items (batched)");
        let batched = best_tput(reps, total, || run_spsc_batched(grid, items, false));
        let bytes_per_sec = batched * 8.0;
        let stream = stream_triad_bytes_per_sec(p, reps);
        let fraction = bytes_per_sec / stream;
        eprintln!(
            "[sweep] {p} PEs: batched {batched:.2e} it/s = {bytes_per_sec:.2e} B/s | stream triad {stream:.2e} B/s | {:.1}% of roofline",
            fraction * 100.0
        );
        sweep_sections.push(format!(
            r#"    {{
      "pes": {p},
      "batched_items_per_sec": {batched:.0},
      "payload_bytes_per_sec": {bytes_per_sec:.0},
      "stream_triad_bytes_per_sec": {stream:.0},
      "fraction_of_stream_roofline": {fraction:.4}
    }}"#
        ));
    }

    let json = format!(
        r#"{{
  "benchmark": "conveyor_hotpath",
  "workload": "all-to-all push/advance/pull, round-robin destinations",
  "items_per_pe": {items},
  "pes": {pes},
  "reps_best_of": {reps},
  "capacity": {capacity},
  "topologies": {{
{body}
  }},
  "oned_batched_pe_sweep": [
{sweep}
  ]
}}
"#,
        capacity = ConveyorOptions::default().capacity,
        body = sections.join(",\n"),
        sweep = sweep_sections.join(",\n")
    );
    std::fs::write(&out, json).expect("write BENCH_hotpath.json");
    println!("wrote {out}");

    // CI smoke gate: fail loudly if the always-on telemetry cost regresses
    if let Ok(gate) = std::env::var("ACTORPROF_TELEMETRY_GATE_PCT") {
        let gate: f64 = gate.parse().expect("ACTORPROF_TELEMETRY_GATE_PCT is a number");
        if oned_telemetry_overhead > gate {
            eprintln!(
                "FAIL: oned telemetry overhead {oned_telemetry_overhead:.2}% exceeds gate {gate}%"
            );
            std::process::exit(1);
        }
        println!(
            "telemetry gate ok: oned overhead {oned_telemetry_overhead:.2}% <= {gate}%"
        );
    }
    if let Ok(gate) = std::env::var("ACTORPROF_CKPT_GATE_PCT") {
        let gate: f64 = gate.parse().expect("ACTORPROF_CKPT_GATE_PCT is a number");
        if oned_ckpt_overhead > gate {
            eprintln!(
                "FAIL: oned checkpoint-on overhead {oned_ckpt_overhead:.2}% exceeds gate {gate}%"
            );
            std::process::exit(1);
        }
        println!("checkpoint gate ok: oned overhead {oned_ckpt_overhead:.2}% <= {gate}%");
    }
    if let Ok(gate) = std::env::var("ACTORPROF_BATCH_GATE") {
        let gate: f64 = gate.parse().expect("ACTORPROF_BATCH_GATE is a number");
        if oned_batched_speedup < gate {
            eprintln!(
                "FAIL: oned batched speedup {oned_batched_speedup:.2}x below gate {gate}x"
            );
            std::process::exit(1);
        }
        println!("batch gate ok: oned batched {oned_batched_speedup:.2}x >= {gate}x vs per-item");
    }
    // Transport-dispatch regression gate: the InProc per-item hot path
    // must stay within the budget of the frozen baseline. Only engages
    // when the run's knobs match what the frozen file was measured with —
    // a smoke run at reduced scale cannot be compared to it.
    if let Ok(gate) = std::env::var("ACTORPROF_TRANSPORT_GATE_PCT") {
        let gate: f64 = gate
            .parse()
            .expect("ACTORPROF_TRANSPORT_GATE_PCT is a number");
        let comparable = frozen.as_deref().filter(|json| {
            frozen_number(json, "", "items_per_pe") == Some(items as f64)
                && frozen_number(json, "", "pes") == Some(pes as f64)
        });
        match comparable {
            Some(json) => {
                for (name, spsc) in &fresh_spsc {
                    let Some(base) = frozen_number(json, name, "spsc_items_per_sec") else {
                        continue;
                    };
                    if *spsc < base * (1.0 - gate / 100.0) {
                        eprintln!(
                            "FAIL: {name} InProc {spsc:.0} it/s fell more than {gate}% below frozen {base:.0} it/s"
                        );
                        std::process::exit(1);
                    }
                    println!(
                        "transport gate ok: {name} InProc {spsc:.0} it/s within {gate}% of frozen {base:.0} it/s"
                    );
                }
            }
            None => println!(
                "transport gate skipped: no frozen baseline at matching items/pes knobs"
            ),
        }
    }
}
