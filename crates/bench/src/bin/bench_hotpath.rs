//! Hot-path microbenchmark: conveyor push/advance throughput, SPSC rings
//! vs the frozen mutex baseline, traced-vs-untraced overhead, and the
//! always-on telemetry self-overhead (metrics registry on, phase spans
//! sampled).
//!
//! Writes `BENCH_hotpath.json` (path relative to the working directory —
//! run from the repo root to update the checked-in copy).
//!
//! ```text
//! cargo run --release -p fabsp-bench --bin bench_hotpath
//! ACTORPROF_HOTPATH_ITEMS=20000 ACTORPROF_HOTPATH_PES=4 \
//!   cargo run --release -p fabsp-bench --bin bench_hotpath   # CI smoke
//! ```
//!
//! Environment knobs: `ACTORPROF_HOTPATH_ITEMS` (items per PE, default
//! 200000), `ACTORPROF_HOTPATH_PES` (default 8, must be even),
//! `ACTORPROF_HOTPATH_REPS` (default 3, best-of), `ACTORPROF_HOTPATH_OUT`
//! (default `BENCH_hotpath.json`), `ACTORPROF_TELEMETRY_GATE_PCT` (when
//! set, exit non-zero if the oned telemetry overhead exceeds it),
//! `ACTORPROF_CKPT_GATE_PCT` (when set, exit non-zero if the oned
//! checkpoint-on overhead exceeds it; checkpoint-off is the plain spsc
//! configuration, so its cost when disabled is zero by construction).

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Instant;

use actorprof_trace::{PeCollector, TraceConfig};
use fabsp_bench::baseline::MutexConveyor;
use fabsp_conveyors::{Conveyor, ConveyorOptions};
use fabsp_shmem::{spmd, Grid, Harness};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// One all-to-all superstep on the SPSC conveyor: `items` pushes per PE,
/// round-robin destinations, drained to termination. Returns the slowest
/// PE's wall time for the push/advance/pull loop (construction excluded).
/// `trace` attaches a collector with that config; `telemetry` keeps the
/// always-on metrics registry wired (off isolates the ring baseline).
fn run_spsc(grid: Grid, items: usize, trace: Option<TraceConfig>, telemetry: bool) -> f64 {
    let mut harness = Harness::new(grid);
    if !telemetry {
        harness = harness.telemetry_off();
    }
    let per_pe = spmd::run(harness, move |pe| {
        let mut c = Conveyor::<u64>::new(pe, ConveyorOptions::default()).expect("conveyor");
        if let Some(cfg) = trace.clone() {
            c.attach_collector(Rc::new(RefCell::new(PeCollector::new(
                pe.rank(),
                pe.n_pes(),
                pe.grid().pes_per_node(),
                cfg,
            ))));
        }
        let n = pe.n_pes();
        let me = pe.rank();
        pe.barrier_all();
        let t0 = Instant::now();
        let mut next = 0usize;
        let mut received = 0u64;
        loop {
            while next < items {
                let dst = (me + next) % n;
                if c.push(pe, next as u64, dst).expect("push").is_accepted() {
                    next += 1;
                } else {
                    break;
                }
            }
            let active = c.advance(pe, next == items);
            while c.pull().is_some() {
                received += 1;
            }
            if !active {
                break;
            }
            pe.poll_yield();
        }
        let secs = t0.elapsed().as_secs_f64();
        assert_eq!(received, items as u64, "all-to-all must balance");
        secs
    })
    .expect("SPMD run");
    per_pe.into_iter().fold(0.0f64, f64::max)
}

/// The SPSC superstep with fault tolerance armed: a symmetric payload
/// region to capture, `checkpoint_every(1)`, and a
/// begin/checkpoint/end-superstep bracket around the exchange — one
/// capture per superstep, the way the selector runtime drives it. The
/// plain `run_spsc` numbers are the checkpoint-off baselines: with no
/// `checkpoint_every` configured the hot loop takes no checkpoint branch
/// at all, so the disabled feature costs nothing by construction.
fn run_spsc_ckpt(grid: Grid, items: usize) -> f64 {
    let harness = Harness::new(grid).telemetry_off().checkpoint_every(1);
    let per_pe = spmd::run(harness, move |pe| {
        let payload = pe.alloc_sym::<u64>(1024);
        payload.write_local(pe, |v| v.fill(pe.rank() as u64));
        let mut c = Conveyor::<u64>::new(pe, ConveyorOptions::default()).expect("conveyor");
        let n = pe.n_pes();
        let me = pe.rank();
        pe.barrier_all();
        let t0 = Instant::now();
        let ss = pe.begin_superstep();
        if pe.checkpoint_due(ss) {
            pe.checkpoint().expect("superstep start is quiescent");
        }
        let mut next = 0usize;
        let mut received = 0u64;
        loop {
            while next < items {
                let dst = (me + next) % n;
                if c.push(pe, next as u64, dst).expect("push").is_accepted() {
                    next += 1;
                } else {
                    break;
                }
            }
            let active = c.advance(pe, next == items);
            while c.pull().is_some() {
                received += 1;
            }
            if !active {
                break;
            }
            pe.poll_yield();
        }
        pe.end_superstep(ss);
        let secs = t0.elapsed().as_secs_f64();
        assert_eq!(received, items as u64, "all-to-all must balance");
        secs
    })
    .expect("SPMD run");
    per_pe.into_iter().fold(0.0f64, f64::max)
}

/// The same superstep on the frozen mutex baseline (telemetry off so the
/// baseline keeps measuring only the ring discipline).
fn run_mutex(grid: Grid, items: usize) -> f64 {
    let per_pe = spmd::run(Harness::new(grid).telemetry_off(), |pe| {
        let mut c = MutexConveyor::<u64>::new(pe, ConveyorOptions::default()).expect("conveyor");
        let n = pe.n_pes();
        let me = pe.rank();
        pe.barrier_all();
        let t0 = Instant::now();
        let mut next = 0usize;
        let mut received = 0u64;
        loop {
            while next < items {
                let dst = (me + next) % n;
                if c.push(pe, next as u64, dst).expect("push") {
                    next += 1;
                } else {
                    break;
                }
            }
            let active = c.advance(pe, next == items);
            while c.pull().is_some() {
                received += 1;
            }
            if !active {
                break;
            }
            pe.poll_yield();
        }
        let secs = t0.elapsed().as_secs_f64();
        assert_eq!(received, items as u64, "all-to-all must balance");
        secs
    })
    .expect("SPMD run");
    per_pe.into_iter().fold(0.0f64, f64::max)
}

/// Best-of-`reps` throughput in items/sec.
fn best_tput(reps: usize, total_items: usize, mut run: impl FnMut() -> f64) -> f64 {
    (0..reps)
        .map(|_| total_items as f64 / run())
        .fold(0.0f64, f64::max)
}

fn main() {
    let items = env_usize("ACTORPROF_HOTPATH_ITEMS", 200_000);
    let pes = env_usize("ACTORPROF_HOTPATH_PES", 8);
    let reps = env_usize("ACTORPROF_HOTPATH_REPS", 3);
    let out = std::env::var("ACTORPROF_HOTPATH_OUT")
        .unwrap_or_else(|_| "BENCH_hotpath.json".to_string());
    assert!(
        pes >= 2 && pes.is_multiple_of(2),
        "ACTORPROF_HOTPATH_PES must be even"
    );

    let topologies = [
        ("oned", Grid::single_node(pes).expect("grid")),
        ("mesh2d", Grid::new(2, pes / 2).expect("grid")),
    ];

    let mut sections = Vec::new();
    let mut oned_telemetry_overhead = 0.0f64;
    let mut oned_ckpt_overhead = 0.0f64;
    for (name, grid) in topologies {
        let total = items * grid.n_pes();
        eprintln!("[{name}] {} PEs x {items} items, best of {reps}", grid.n_pes());
        let mutex = best_tput(reps, total, || run_mutex(grid, items));
        let spsc = best_tput(reps, total, || run_spsc(grid, items, None, false));
        let traced = best_tput(reps, total, || {
            run_spsc(grid, items, Some(TraceConfig::off().with_physical()), false)
        });
        // the always-on configuration: metrics registry wired, phase spans
        // enabled but sampled (1 in 64 hot-phase spans kept)
        let telemetry = best_tput(reps, total, || {
            run_spsc(
                grid,
                items,
                Some(TraceConfig::off().with_spans().with_span_sampling(64)),
                true,
            )
        });
        // fault tolerance on: one symmetric-heap checkpoint per superstep
        let ckpt = best_tput(reps, total, || run_spsc_ckpt(grid, items));
        let speedup = spsc / mutex;
        let overhead = (1.0 - traced / spsc) * 100.0;
        let telemetry_overhead = (1.0 - telemetry / spsc) * 100.0;
        let ckpt_overhead = (1.0 - ckpt / spsc) * 100.0;
        if name == "oned" {
            oned_telemetry_overhead = telemetry_overhead;
            oned_ckpt_overhead = ckpt_overhead;
        }
        eprintln!(
            "[{name}] mutex {:.2e} it/s | spsc {:.2e} it/s ({speedup:.2}x) | traced {:.2e} it/s ({overhead:.1}% overhead) | telemetry {:.2e} it/s ({telemetry_overhead:.1}% overhead) | ckpt {:.2e} it/s ({ckpt_overhead:.1}% overhead)",
            mutex, spsc, traced, telemetry, ckpt
        );
        sections.push(format!(
            r#"    "{name}": {{
      "mutex_baseline_items_per_sec": {mutex:.0},
      "spsc_items_per_sec": {spsc:.0},
      "speedup_vs_mutex": {speedup:.3},
      "traced_items_per_sec": {traced:.0},
      "tracing_overhead_percent": {overhead:.2},
      "telemetry_items_per_sec": {telemetry:.0},
      "telemetry_overhead_percent": {telemetry_overhead:.2},
      "ckpt_items_per_sec": {ckpt:.0},
      "checkpoint_overhead_percent": {ckpt_overhead:.2}
    }}"#
        ));
    }

    let json = format!(
        r#"{{
  "benchmark": "conveyor_hotpath",
  "workload": "all-to-all push/advance/pull, round-robin destinations",
  "items_per_pe": {items},
  "pes": {pes},
  "reps_best_of": {reps},
  "capacity": {capacity},
  "topologies": {{
{body}
  }}
}}
"#,
        capacity = ConveyorOptions::default().capacity,
        body = sections.join(",\n")
    );
    std::fs::write(&out, json).expect("write BENCH_hotpath.json");
    println!("wrote {out}");

    // CI smoke gate: fail loudly if the always-on telemetry cost regresses
    if let Ok(gate) = std::env::var("ACTORPROF_TELEMETRY_GATE_PCT") {
        let gate: f64 = gate.parse().expect("ACTORPROF_TELEMETRY_GATE_PCT is a number");
        if oned_telemetry_overhead > gate {
            eprintln!(
                "FAIL: oned telemetry overhead {oned_telemetry_overhead:.2}% exceeds gate {gate}%"
            );
            std::process::exit(1);
        }
        println!(
            "telemetry gate ok: oned overhead {oned_telemetry_overhead:.2}% <= {gate}%"
        );
    }
    if let Ok(gate) = std::env::var("ACTORPROF_CKPT_GATE_PCT") {
        let gate: f64 = gate.parse().expect("ACTORPROF_CKPT_GATE_PCT is a number");
        if oned_ckpt_overhead > gate {
            eprintln!(
                "FAIL: oned checkpoint-on overhead {oned_ckpt_overhead:.2}% exceeds gate {gate}%"
            );
            std::process::exit(1);
        }
        println!("checkpoint gate ok: oned overhead {oned_ckpt_overhead:.2}% <= {gate}%");
    }
}
