//! Trace-size growth (§IV-E / §VI): how the recorded trace volume scales
//! with message count under each recording strategy — exact per-send
//! records (the paper's 100 GB problem), sampling, aggregation, and
//! streaming to disk.

use actorprof_trace::TraceConfig;
use fabsp_apps::histogram::{self, HistogramConfig};
use fabsp_shmem::Grid;

fn run_with(trace: TraceConfig, updates: usize) -> (usize, u64) {
    let mut cfg = HistogramConfig::new(Grid::new(2, 4).unwrap());
    cfg.updates_per_pe = updates;
    cfg.table_size_per_pe = 256;
    cfg.trace = trace;
    let out = histogram::run(&cfg).expect("histogram");
    (out.bundle.trace_bytes(), out.total_updates)
}

fn main() {
    println!("=== Trace footprint vs message volume (histogram, 8 PEs) ===");
    println!(
        "{:>10} {:>16} {:>16} {:>16} {:>18}",
        "messages", "aggregated [B]", "exact [B]", "sampled/16 [B]", "streamed(mem) [B]"
    );
    let stream_dir = std::env::temp_dir().join(format!("actorprof-tsg-{}", std::process::id()));
    for updates in [1_000usize, 4_000, 16_000] {
        let (agg, total) = run_with(TraceConfig::off().with_logical(), updates);
        let (exact, _) = run_with(TraceConfig::off().with_logical_records(), updates);
        let (sampled, _) = run_with(TraceConfig::off().with_logical_sampling(16), updates);
        let (streamed, _) = run_with(TraceConfig::off().with_streaming(&stream_dir), updates);
        println!("{total:>10} {agg:>16} {exact:>16} {sampled:>16} {streamed:>18}");
    }
    let on_disk: u64 = std::fs::read_dir(&stream_dir)
        .map(|d| {
            d.filter_map(|e| e.ok())
                .filter_map(|e| e.metadata().ok())
                .map(|m| m.len())
                .sum()
        })
        .unwrap_or(0);
    println!(
        "\nstreamed records land on disk instead ({on_disk} bytes in {}),\n\
         keeping in-memory state O(PE^2) regardless of message volume —\n\
         the section-VI answer to traces 'of orders of 100GB'.",
        stream_dir.display()
    );
    let _ = std::fs::remove_dir_all(&stream_dir);
}
