//! Per-app throughput smoke over the whole workload registry.
//!
//! Runs every app in `fabsp_apps::registry()` (the same ten-app matrix
//! the schedule-fuzz / crash-recovery / race-detect suites sweep) and
//! writes a JSON artifact with, per app: the message count the run moved,
//! end-to-end items/s for the untraced arm, the overhead of logical
//! tracing on top of it, and the measured cost of continuous profiling
//! (span tracing governed by the overhead-budget sampling governor).
//! Times are end-to-end (input generation, the
//! exchange, and result validation against the sequential oracle), so the
//! numbers are honest "what does this workload cost in CI" figures, not
//! peak conveyor throughput — `bench_hotpath` measures that.
//!
//! ```text
//! cargo run --release -p fabsp-bench --bin apps_smoke
//! ACTORPROF_SCALE=6 ACTORPROF_APPS_REPS=2 \
//!   cargo run --release -p fabsp-bench --bin apps_smoke   # CI smoke
//! ```
//!
//! Environment knobs: `ACTORPROF_SCALE` (workload scale, the same knob
//! the test matrices use; default 6, clamped 3..=12),
//! `ACTORPROF_APPS_REPS` (best-of repetitions, default 3),
//! `ACTORPROF_APPS_OUT` (default `BENCH_apps_smoke.json`).

use std::time::Instant;

use fabsp_apps::registry;
use fabsp_shmem::Grid;
use fabsp_testkit::matrix::{scale_from_env, MatrixParams};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let reps = env_usize("ACTORPROF_APPS_REPS", 3).max(1);
    let out = std::env::var("ACTORPROF_APPS_OUT")
        .unwrap_or_else(|_| "BENCH_apps_smoke.json".to_string());
    let grid = Grid::new(2, 2).expect("2x2 grid");
    let n_pes = grid.n_pes();
    let scale = scale_from_env();
    let logical_params = MatrixParams::new(grid);
    let mut untraced_params = MatrixParams::new(grid);
    untraced_params.logical = false;
    // The continuous arm measures governed always-on profiling against the
    // untraced baseline: spans via the live knob, logical tracing off, the
    // default 5% budget.
    let mut continuous_params = MatrixParams::new(grid).with_continuous(5.0);
    continuous_params.logical = false;

    println!(
        "apps_smoke: {} apps, scale {scale}, {n_pes} PEs, best of {reps}",
        registry().len()
    );
    println!(
        "{:<14} {:>10} {:>14} {:>14} {:>10} {:>10}",
        "app", "messages", "items/s", "traced it/s", "overhead", "cont ovhd"
    );

    let mut sections = Vec::new();
    for app in registry() {
        // One logical run up front: golden-checked, and its trace matrix
        // total is the message count both timed arms move.
        let probe = app
            .run(&logical_params)
            .unwrap_or_else(|e| panic!("{}: {e}", app.name));
        probe.assert_golden(&app.name);
        let messages: u64 = probe
            .logical
            .as_ref()
            .expect("logical trace collected")
            .iter()
            .sum();

        let best = |params: &MatrixParams| -> f64 {
            let mut secs = f64::INFINITY;
            for _ in 0..reps {
                let t0 = Instant::now();
                let run = app
                    .run(params)
                    .unwrap_or_else(|e| panic!("{}: {e}", app.name));
                secs = secs.min(t0.elapsed().as_secs_f64());
                assert_eq!(
                    run.result_digest, probe.result_digest,
                    "{}: timed arm diverged from the probe run",
                    app.name
                );
            }
            messages as f64 / secs
        };
        let untraced = best(&untraced_params);
        let traced = best(&logical_params);
        let continuous = best(&continuous_params);
        let overhead = (untraced / traced - 1.0) * 100.0;
        let telemetry_overhead = (untraced / continuous - 1.0) * 100.0;

        println!(
            "{:<14} {:>10} {:>14.0} {:>14.0} {:>9.1}% {:>9.1}%",
            app.name, messages, untraced, traced, overhead, telemetry_overhead
        );
        sections.push(format!(
            r#"    "{name}": {{
      "messages": {messages},
      "items_per_sec": {untraced:.0},
      "traced_items_per_sec": {traced:.0},
      "logical_tracing_overhead_percent": {overhead:.2},
      "telemetry_overhead_pct": {telemetry_overhead:.2}
    }}"#,
            name = app.name,
        ));
    }

    let json = format!(
        r#"{{
  "benchmark": "apps_smoke",
  "workload": "full registry, end-to-end (generation + exchange + validation)",
  "scale": {scale},
  "pes": {n_pes},
  "reps_best_of": {reps},
  "apps": {{
{body}
  }}
}}
"#,
        body = sections.join(",\n")
    );
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("wrote {out}");
}
