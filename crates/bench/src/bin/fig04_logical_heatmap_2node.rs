//! Figure 4: Logical Trace Heatmap for 2 nodes (1D Cyclic vs 1D Range).

use fabsp_bench::{figures, FigureCtx};

fn main() {
    let ctx = FigureCtx::init("Figure 4", "logical trace heatmap, 2 nodes");
    figures::logical_heatmap_figure(&ctx, "fig04", ctx.two_node, "2 nodes");
}
