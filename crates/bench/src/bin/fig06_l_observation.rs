//! Figure 6: the (L) observation — under 1D Range, PE q only communicates
//! with PEs 0..=q, making the send matrix lower-triangular and recv totals
//! monotonically decreasing. Verified structurally.

use fabsp_bench::{figures, FigureCtx};

fn main() {
    let ctx = FigureCtx::init("Figure 6", "(L) observation verifier");
    figures::l_observation_figure(&ctx, "fig06");
}
