//! Figure 12: Overall profiling (MAIN/COMM/PROC stacked bars), 1 node.

use fabsp_bench::{figures, FigureCtx};

fn main() {
    let ctx = FigureCtx::init("Figure 12", "overall profiling, 1 node");
    figures::overall_figure(&ctx, "fig12", ctx.one_node, "1node");
}
