//! Figure 3: Logical Trace Heatmap for 1 node (1D Cyclic vs 1D Range).

use fabsp_bench::{figures, FigureCtx};

fn main() {
    let ctx = FigureCtx::init("Figure 3", "logical trace heatmap, 1 node x PEs");
    figures::logical_heatmap_figure(&ctx, "fig03", ctx.one_node, "1 node");
}
