//! CI cockpit smoke: render the glass cockpit headless and gate it
//! against the checked-in goldens.
//!
//! Three artifacts land under `target/ci-artifacts/`:
//!
//! - `cockpit.txt` — three live ticks from the deterministic fixture
//!   ([`fabsp_bench::cockpit_fixture::cockpit_live`]); must match
//!   `tests/golden/cockpit_live.txt` byte for byte.
//! - `cockpit_replay.txt` — the fixture flight-recorder replay; must match
//!   `tests/golden/cockpit_replay.txt`.
//! - `cockpit_crash_replay.txt` — a *real* kill-PE run's post-mortem
//!   dumps rendered through the same replay path (cycle stamps are live,
//!   so this one is sanity-checked, not golden-checked).
//!
//! ```text
//! cargo run --release -p fabsp-bench --bin cockpit_smoke
//! UPDATE_GOLDEN=1 cargo run -p fabsp-bench --bin cockpit_smoke  # regen
//! ```

use std::cell::RefCell;
use std::path::{Path, PathBuf};
use std::rc::Rc;

use actorprof::{FlightDump, Profiler, RecoverySpec};
use actorprof_viz::cockpit::{Cockpit, CockpitConfig};
use fabsp_bench::cockpit_fixture;
use fabsp_shmem::{FaultSpec, Grid};

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden").join(name)
}

/// Compare against the golden (shared with `tests/viz_golden.rs`), or
/// rewrite it when `UPDATE_GOLDEN` is set.
fn assert_matches_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        println!("updated golden {name}");
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {} ({e}); run with UPDATE_GOLDEN=1", path.display()));
    assert_eq!(
        actual, golden,
        "{name} diverged from tests/golden/{name}; regenerate with UPDATE_GOLDEN=1 if intentional"
    );
    println!("{name}: matches golden ({} bytes)", actual.len());
}

fn main() {
    let dir = Path::new("target/ci-artifacts");
    std::fs::create_dir_all(dir).expect("create artifact dir");

    // --- golden-gated fixture renders ------------------------------------
    let live = cockpit_fixture::cockpit_live();
    std::fs::write(dir.join("cockpit.txt"), &live).expect("write cockpit.txt");
    assert_matches_golden("cockpit_live.txt", &live);

    let replay = cockpit_fixture::cockpit_replay();
    std::fs::write(dir.join("cockpit_replay.txt"), &replay).expect("write cockpit_replay.txt");
    assert_matches_golden("cockpit_replay.txt", &replay);

    // --- real crash: kill pe1, recover, replay the flight recorder -------
    let flight_dir = dir.join("cockpit-flightrec");
    let _ = std::fs::remove_dir_all(&flight_dir);
    let report = Profiler::new(Grid::single_node(2).expect("grid"))
        .flightrec_dir(&flight_dir)
        .faults(FaultSpec::kill_pe(1, 0))
        .checkpoint_every(1)
        .recovery(RecoverySpec::restart(2))
        .run(|pe, ctx| {
            let table = Rc::new(RefCell::new(vec![0u64; 64]));
            let h = Rc::clone(&table);
            let mut actor = ctx
                .selector(1, move |_mb, idx: u64, _from, _ctx| {
                    h.borrow_mut()[idx as usize % 64] += 1;
                })
                .expect("selector");
            actor
                .execute(pe, |main| {
                    for i in 0..2_000usize {
                        let dst = (i + main.rank()) % main.n_pes();
                        main.send(0, i as u64, dst).expect("send");
                    }
                    main.done(0).expect("done");
                })
                .expect("execute");
            let mass: u64 = table.borrow().iter().sum();
            mass
        })
        .expect("recovered run");
    assert!(report.recovery.restarts >= 1, "the kill must have tripped");

    let dumps = FlightDump::load_dir(&flight_dir).expect("load flight dumps");
    assert!(!dumps.is_empty(), "kill_pe left at least one dump");
    let cockpit = Cockpit::new(CockpitConfig::plain(fabsp_telemetry::phase_site));
    let crash = cockpit.render_replay(&dumps);
    assert!(crash.contains("flight replay"), "replay header present");
    assert!(
        crash.contains("] span ") || crash.contains("] note "),
        "replay carries events:\n{crash}"
    );
    std::fs::write(dir.join("cockpit_crash_replay.txt"), &crash)
        .expect("write cockpit_crash_replay.txt");
    println!(
        "cockpit_crash_replay.txt: {} dumps, {} bytes, {} restarts logged",
        dumps.len(),
        crash.len(),
        report.recovery.restarts
    );
    println!("cockpit smoke ok");
}
