//! Figure 11: Total instructions (PAPI_TOT_INS) per PE, 2 nodes.

use fabsp_bench::{figures, FigureCtx};

fn main() {
    let ctx = FigureCtx::init("Figure 11", "PAPI_TOT_INS per PE, 2 nodes");
    figures::papi_figure(&ctx, "fig11", ctx.two_node, "2node");
}
