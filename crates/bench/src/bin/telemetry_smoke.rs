//! CI telemetry smoke: produce the observability artifacts a workflow run
//! uploads — a Perfetto-loadable trace-events JSON from a healthy profiled
//! run, and a flight-recorder dump from a run that dies (the deterministic
//! scheduler's termination budget trips).
//!
//! ```text
//! cargo run --release -p fabsp-bench --bin telemetry_smoke
//! ```
//!
//! Writes under `target/ci-artifacts/`: `trace_events.json` and
//! `flightrec/flightrec-pe*.json`. Exits non-zero if either artifact is
//! missing or empty.

use std::cell::RefCell;
use std::path::Path;
use std::rc::Rc;
use std::sync::Arc;

use actorprof::Profiler;
use fabsp_conveyors::{Conveyor, ConveyorOptions, TopologySpec};
use fabsp_shmem::{spmd, Grid, Harness, SchedSpec};
use fabsp_telemetry::TelemetryRegistry;

fn main() {
    let dir = Path::new("target/ci-artifacts");
    std::fs::create_dir_all(dir).expect("create artifact dir");

    // --- healthy run: Perfetto trace with spans + instants ---------------
    let trace_path = dir.join("trace_events.json");
    let grid = Grid::new(2, 2).expect("grid");
    let report = Profiler::new(grid)
        .physical()
        .spans()
        .trace_events_path(&trace_path)
        .run(|pe, ctx| {
            let table = Rc::new(RefCell::new(vec![0u64; 64]));
            let h = Rc::clone(&table);
            let mut actor = ctx
                .selector(1, move |_mb, idx: u64, _from, _ctx| {
                    h.borrow_mut()[idx as usize % 64] += 1;
                })
                .expect("selector");
            actor
                .execute(pe, |main| {
                    for i in 0..2000usize {
                        let dst = (i + main.rank()) % main.n_pes();
                        main.send(0, i as u64, dst).expect("send");
                    }
                    main.done(0).expect("done");
                })
                .expect("execute");
            let mass: u64 = table.borrow().iter().sum();
            mass
        })
        .expect("profiled run");
    let total: u64 = report.results.iter().sum();
    assert_eq!(total, 8000, "every message handled");
    let snap = report.telemetry.expect("telemetry snapshot");
    let json = std::fs::read_to_string(&trace_path).expect("trace written");
    assert!(json.contains("\"ph\":\"B\""), "trace has duration spans");
    println!(
        "trace_events.json: {} bytes, {} spans, {} sends counted",
        json.len(),
        json.matches("\"ph\":\"B\"").count(),
        snap.counter_total(actorprof::Counter::ActorSends)
    );

    // --- dying run: flight-recorder dump ---------------------------------
    let flight_dir = dir.join("flightrec");
    let _ = std::fs::remove_dir_all(&flight_dir);
    let reg = Arc::new(TelemetryRegistry::new(2).flight_dump_dir(&flight_dir));
    let harness = Harness::new(Grid::single_node(2).expect("grid"))
        .sched(SchedSpec::RandomWalk {
            seed: 9,
            max_steps: 10,
        })
        .telemetry(reg);
    let outcome = spmd::run(harness, |pe| {
        let mut c = Conveyor::<u64>::new(
            pe,
            ConveyorOptions {
                capacity: 1,
                topology: TopologySpec::Auto,
                ..ConveyorOptions::default()
            },
        )
        .expect("conveyor");
        let dst = 1 - pe.rank();
        let mut sent = 0;
        loop {
            while sent < 500 && c.push(pe, sent as u64, dst).expect("push").is_accepted() {
                sent += 1;
            }
            let active = c.advance(pe, sent == 500);
            while c.pull().is_some() {}
            if !active {
                break;
            }
            pe.poll_yield();
        }
    });
    assert!(outcome.is_err(), "the step budget must trip");
    let dumps: Vec<_> = std::fs::read_dir(&flight_dir)
        .expect("flightrec dir exists")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    assert!(!dumps.is_empty(), "at least one flight dump written");
    for d in &dumps {
        let body = std::fs::read_to_string(d).expect("dump readable");
        assert!(body.contains("\"events\":["), "dump carries the event ring");
        println!("{}: {} bytes", d.display(), body.len());
    }
    println!("telemetry smoke ok");
}
