//! Weak scaling of the case-study kernel: the graph grows with the PE
//! count (one R-MAT scale step per PE doubling keeps wedges-per-PE roughly
//! constant), both distributions. Complements `scaling_strong`.

use actorprof::papi::PapiSeries;
use actorprof_trace::TraceConfig;
use fabsp_apps::triangle::{count_triangles, DistKind, TriangleConfig};
use fabsp_graph::edgelist::to_lower_triangular;
use fabsp_graph::rmat::{generate_edges, RmatParams};
use fabsp_graph::Csr;
use fabsp_hwpc::Event;
use fabsp_shmem::Grid;

fn main() {
    let base_scale: u32 = std::env::var("ACTORPROF_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    println!("=== Weak scaling — base scale {base_scale} at 2 PEs, +1 scale per PE doubling ===");
    println!(
        "{:<18} {:>9} {:>10} {:>14} {:>16} {:>10}",
        "configuration", "scale", "wedges", "wall[ms]", "max user ins", "imbalance"
    );

    for dist in [DistKind::Cyclic, DistKind::RangeByNnz] {
        for (step, (nodes, ppn)) in [(1usize, 2usize), (1, 4), (1, 8), (2, 8)]
            .into_iter()
            .enumerate()
        {
            let scale = base_scale + step as u32;
            let params = RmatParams::graph500(scale);
            let lower = to_lower_triangular(&generate_edges(&params));
            let l = Csr::from_edges(params.n_vertices(), &lower);
            let grid = Grid::new(nodes, ppn).expect("grid");
            let config = TriangleConfig::new(grid).with_dist(dist).with_trace(
                TraceConfig::off()
                    .with_logical()
                    .with_papi(actorprof_trace::PapiConfig::case_study()),
            );
            let start = std::time::Instant::now();
            let outcome = count_triangles(&l, &config).expect("run");
            let wall = start.elapsed();
            let series = PapiSeries::from_bundle(&outcome.bundle, Event::TotIns).expect("papi");
            println!(
                "{:<18} {:>9} {:>10} {:>14.1} {:>16} {:>9.2}x",
                format!(
                    "{}n x {:<2} {}",
                    nodes,
                    ppn,
                    if dist == DistKind::Cyclic { "cyclic" } else { "range" }
                ),
                scale,
                outcome.wedges,
                wall.as_secs_f64() * 1e3,
                series.per_pe.iter().copied().max().unwrap_or(0),
                series.imbalance.max_over_mean,
            );
        }
        println!();
    }
    println!(
        "ideal weak scaling keeps max-user-instructions flat as PEs and \
         problem size grow together; cyclic's imbalance breaks that."
    );
}
