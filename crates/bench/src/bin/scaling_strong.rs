//! Strong scaling of the case-study kernel: fixed graph, growing PE
//! counts, both distributions. The paper motivates FA-BSP with strong/weak
//! scaling of irregular applications (§I); this harness reports how the
//! modeled parallel critical path (max per-PE user-region instructions)
//! shrinks with PEs — and how load imbalance throttles it for 1D Cyclic.

use actorprof::papi::PapiSeries;
use actorprof_trace::TraceConfig;
use actorprof_viz::line::{self, LineSeries, LineSpec};
use fabsp_apps::triangle::{count_triangles, DistKind, TriangleConfig};
use fabsp_bench::{build_case_study_graph, env_scale, figure_dir};
use fabsp_hwpc::Event;
use fabsp_shmem::Grid;

fn main() {
    let scale = env_scale();
    let l = build_case_study_graph(scale);
    println!("=== Strong scaling — R-MAT scale {scale}, {} wedges ===", l.wedge_count());
    println!(
        "{:<18} {:>9} {:>14} {:>14} {:>10} {:>9}",
        "configuration", "wall[ms]", "sum user ins", "max user ins", "imbalance", "speedup"
    );

    let mut chart = Vec::new();
    for dist in [DistKind::Cyclic, DistKind::RangeByNnz] {
        let mut base_critical: Option<u64> = None;
        let mut curve = Vec::new();
        for (nodes, ppn) in [(1, 2), (1, 4), (1, 8), (2, 8), (2, 16)] {
            let grid = Grid::new(nodes, ppn).expect("grid");
            let config = TriangleConfig::new(grid)
                .with_dist(dist)
                .with_trace(TraceConfig::off().with_logical().with_papi(
                    actorprof_trace::PapiConfig::case_study(),
                ));
            let start = std::time::Instant::now();
            let outcome = count_triangles(l, &config).expect("run");
            let wall = start.elapsed();
            let series = PapiSeries::from_bundle(&outcome.bundle, Event::TotIns).expect("papi");
            let sum: u64 = series.per_pe.iter().sum();
            let max = series.per_pe.iter().copied().max().unwrap_or(0);
            let base = *base_critical.get_or_insert(max);
            println!(
                "{:<18} {:>9.1} {:>14} {:>14} {:>9.2}x {:>8.2}x",
                format!("{}n x {:<2} {}", nodes, ppn, if dist == DistKind::Cyclic { "cyclic" } else { "range" }),
                wall.as_secs_f64() * 1e3,
                sum,
                max,
                series.imbalance.max_over_mean,
                base as f64 / max.max(1) as f64,
            );
            curve.push((grid.n_pes() as f64, base as f64 / max.max(1) as f64));
        }
        chart.push(LineSeries::new(
            if dist == DistKind::Cyclic { "1D Cyclic" } else { "1D Range" },
            curve,
        ));
        println!();
    }
    let svg = line::render(
        &chart,
        &LineSpec {
            title: format!("Strong scaling, R-MAT scale {scale}"),
            x_label: "PEs".into(),
            y_label: "critical-path speedup".into(),
            log_y: false,
        },
    );
    let file = figure_dir("scaling").join("strong_scaling.svg");
    svg.save(&file).expect("write svg");
    println!("svg: {}", file.display());
    println!(
        "speedup = modeled critical path vs the 2-PE run of the same \
         distribution; wall-clock is core-limited on this host."
    );
}
