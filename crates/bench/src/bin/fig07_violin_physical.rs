//! Figure 7: Violin plots of per-PE physical buffer send/recv totals.

use fabsp_bench::{figures, FigureCtx};

fn main() {
    let ctx = FigureCtx::init("Figure 7", "violin plot for physical trace");
    figures::violin_figure(&ctx, "fig07", true);
}
