//! Figure 8: Physical Trace Heatmap for 1 node — 1D linear topology, so
//! every buffer delivery is a local_send.

use fabsp_bench::{figures, FigureCtx};

fn main() {
    let ctx = FigureCtx::init("Figure 8", "physical trace heatmap, 1 node");
    figures::physical_heatmap_figure(&ctx, "fig08", ctx.one_node, "1node");
}
